// Package liquid holds the repository-level benchmark harness: one
// benchmark per reproduced table/figure (the F/L/T/X/A experiment ids of
// DESIGN.md), plus micro-benchmarks for the hot primitives underneath them.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package liquid

import (
	"context"
	"testing"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/engine"
	"liquid/internal/experiment"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/recycle"
	"liquid/internal/rng"
	"liquid/internal/scale"
)

// benchExperiment runs one full experiment per iteration at reduced scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiment.Run(context.Background(), id, experiment.Config{Seed: uint64(i) + 1, Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// One benchmark per figure/lemma/theorem/extension/ablation artifact.

func BenchmarkF1Star(b *testing.B)                 { benchExperiment(b, "F1") }
func BenchmarkF2Example(b *testing.B)              { benchExperiment(b, "F2") }
func BenchmarkL1PrefixDeviation(b *testing.B)      { benchExperiment(b, "L1") }
func BenchmarkL2RecycleConcentration(b *testing.B) { benchExperiment(b, "L2") }
func BenchmarkL3AntiConcentration(b *testing.B)    { benchExperiment(b, "L3") }
func BenchmarkL4CLT(b *testing.B)                  { benchExperiment(b, "L4") }
func BenchmarkL5MaxWeight(b *testing.B)            { benchExperiment(b, "L5") }
func BenchmarkL7Expectation(b *testing.B)          { benchExperiment(b, "L7") }
func BenchmarkV1Variance(b *testing.B)             { benchExperiment(b, "V1") }
func BenchmarkT2Complete(b *testing.B)             { benchExperiment(b, "T2") }
func BenchmarkT3DRegular(b *testing.B)             { benchExperiment(b, "T3") }
func BenchmarkT4BoundedDegree(b *testing.B)        { benchExperiment(b, "T4") }
func BenchmarkT5MinDegree(b *testing.B)            { benchExperiment(b, "T5") }
func BenchmarkX1Abstention(b *testing.B)           { benchExperiment(b, "X1") }
func BenchmarkX2WeightedMajority(b *testing.B)     { benchExperiment(b, "X2") }
func BenchmarkX3RealWorldGraphs(b *testing.B)      { benchExperiment(b, "X3") }
func BenchmarkX4ProbabilisticComps(b *testing.B)   { benchExperiment(b, "X4") }
func BenchmarkX5SparseTopologies(b *testing.B)     { benchExperiment(b, "X5") }
func BenchmarkX6PowerConcentration(b *testing.B)   { benchExperiment(b, "X6") }
func BenchmarkX7TrackRecords(b *testing.B)         { benchExperiment(b, "X7") }
func BenchmarkX8Equilibria(b *testing.B)           { benchExperiment(b, "X8") }
func BenchmarkX9Adaptive(b *testing.B)             { benchExperiment(b, "X9") }
func BenchmarkX10Homophily(b *testing.B)           { benchExperiment(b, "X10") }
func BenchmarkX11ReputationFarming(b *testing.B)   { benchExperiment(b, "X11") }
func BenchmarkX12GossipSpectral(b *testing.B)      { benchExperiment(b, "X12") }
func BenchmarkA1ThresholdSweep(b *testing.B)       { benchExperiment(b, "A1") }
func BenchmarkA2AlphaSweep(b *testing.B)           { benchExperiment(b, "A2") }
func BenchmarkA3EngineComparison(b *testing.B)     { benchExperiment(b, "A3") }
func BenchmarkA4Crossover(b *testing.B)            { benchExperiment(b, "A4") }
func BenchmarkA5TieRules(b *testing.B)             { benchExperiment(b, "A5") }
func BenchmarkA6PairedDuels(b *testing.B)          { benchExperiment(b, "A6") }
func BenchmarkR1AvailabilityFaults(b *testing.B)   { benchExperiment(b, "R1") }
func BenchmarkR2ProtocolFaults(b *testing.B)       { benchExperiment(b, "R2") }

// benchSuite runs a replication-heavy slice of the registry through the
// engine at the given worker count. The subset leans on Monte-Carlo
// experiments so the parallel speedup reflects real election workloads.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	var defs []experiment.Definition
	for _, id := range []string{"F2", "L1", "L2", "L5", "T2", "T3", "X1", "X4"} {
		def, err := experiment.Lookup(id)
		if err != nil {
			b.Fatal(err)
		}
		defs = append(defs, def)
	}
	cfg := experiment.Config{Seed: 1, Scale: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := engine.New(engine.Options{Workers: workers}).Run(context.Background(), defs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkRunAllSequential and BenchmarkRunAllParallel compare one worker
// against a pool of four on the same registry subset; the outcomes are
// identical, only the wall clock differs.
func BenchmarkRunAllSequential(b *testing.B) { benchSuite(b, 1) }
func BenchmarkRunAllParallel(b *testing.B)   { benchSuite(b, 4) }

// --- micro-benchmarks for the primitives the experiments lean on ---

func benchInstance(b *testing.B, n int) *core.Instance {
	b.Helper()
	s := rng.New(99)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkPoissonBinomialPMF measures the exact P^D kernel (n=2000)
// through the workspace API: construct the distribution (borrowing, no
// copy) and resolve the majority probability from its PMF.
// BenchmarkPoissonBinomialPMFNaive is the same workload on the plain
// O(n^2) DP with allocating construction — the pre-overhaul engine, kept
// for trajectory comparison (see BENCH_*.json).
func BenchmarkPoissonBinomialPMF(b *testing.B) {
	in := benchInstance(b, 2000)
	ps := in.Competencies()
	ws := prob.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb, err := ws.PoissonBinomial(ps)
		if err != nil {
			b.Fatal(err)
		}
		if pb.ProbMajorityWS(ws) < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkPoissonBinomialPMFNaive(b *testing.B) {
	in := benchInstance(b, 2000)
	ps := in.Competencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb, err := prob.NewPoissonBinomial(ps)
		if err != nil {
			b.Fatal(err)
		}
		f := pb.PMFNaive()
		if prob.Sum(f[len(ps)/2+1:]) < 0 {
			b.Fatal("impossible")
		}
	}
}

// benchVoters is the weighted-majority workload: n sinks with weights in
// [1, 20], the regime the raised exact-evaluation limits target.
func benchVoters(n int) []prob.WeightedVoter {
	voters := make([]prob.WeightedVoter, n)
	s := rng.New(7)
	for i := range voters {
		voters[i] = prob.WeightedVoter{Weight: 1 + s.IntN(20), P: s.Float64()}
	}
	return voters
}

func BenchmarkWeightedMajorityDP(b *testing.B) {
	voters := benchVoters(2000)
	ws := prob.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wm, err := ws.WeightedMajority(voters)
		if err != nil {
			b.Fatal(err)
		}
		if wm.ProbCorrectDecisionWS(ws) < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkWeightedMajorityDPNaive(b *testing.B) {
	voters := benchVoters(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wm, err := prob.NewWeightedMajority(voters)
		if err != nil {
			b.Fatal(err)
		}
		f := wm.PMFNaive()
		if prob.Sum(f[wm.TotalWeight()/2+1:]) < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkResolutionScoreCached measures the memoized exact-scoring path:
// one realized resolution scored repeatedly through a shared ScoreCache,
// the steady state of replication loops.
func BenchmarkResolutionScoreCached(b *testing.B) {
	in := benchInstance(b, 500)
	d, err := (mechanism.ApprovalThreshold{Alpha: 0.05}).Apply(in, rng.New(21))
	if err != nil {
		b.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		b.Fatal(err)
	}
	ws := prob.NewWorkspace()
	cache := election.NewScoreCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := election.ResolutionProbabilityExactCached(in, res, ws, cache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMechanismApplyComplete(b *testing.B) {
	in := benchInstance(b, 10000)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	s := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mech.Apply(in, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelegationResolve(b *testing.B) {
	in := benchInstance(b, 10000)
	d, err := (mechanism.ApprovalThreshold{Alpha: 0.05}).Apply(in, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Resolve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateMechanismSmall(b *testing.B) {
	in := benchInstance(b, 500)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := election.EvaluateMechanism(context.Background(), in, mech, election.Options{
			Replications: 8, Seed: uint64(i) + 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateSweepSmall measures the batched pipeline on the sweep
// shape the experiment engine actually runs: several alpha points sharing
// one Plan (score cache, P^D memo, approval memos). Compare against
// BenchmarkEvaluateMechanismSmall times the point count to see what the
// sharing buys.
func BenchmarkEvaluateSweepSmall(b *testing.B) {
	in := benchInstance(b, 500)
	alphas := []float64{0.02, 0.05, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := election.NewPlan(in, election.Options{Replications: 8})
		if err != nil {
			b.Fatal(err)
		}
		plan.PrewarmApproval(alphas...)
		points := make([]election.SweepPoint, len(alphas))
		for j, a := range alphas {
			points[j] = election.SweepPoint{
				Mechanism: mechanism.ApprovalThreshold{Alpha: a},
				Seed:      uint64(i)*uint64(len(alphas)) + uint64(j) + 1,
			}
		}
		if _, err := election.EvaluateSweep(context.Background(), plan, points); err != nil {
			b.Fatal(err)
		}
	}
}

// --- incremental re-evaluation (the BENCH_004 trajectory) ---

// benchDeltaInstance is benchInstance with a designated probe voter: voter
// 2 carries the electorate's highest competency, so a small competency
// drift keeps its rank in the canonical sorted sequence and the retained
// tree's diff window stays a single leaf.
func benchDeltaInstance(b *testing.B, n int) *core.Instance {
	b.Helper()
	s := rng.New(99)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	p[2] = 0.95
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// benchDeltaProfile is the base delegation profile the delta benchmarks
// probe against: every third voter delegates upward, the shape liquidload
// drives at the daemon's what-if endpoint. Voter 2 stays a weight-1 sink.
func benchDeltaProfile(n int) *core.DelegationGraph {
	d := core.NewDelegationGraph(n)
	for v := 0; v+1 < n; v += 3 {
		if err := d.SetDelegate(v, v+1); err != nil {
			panic(err)
		}
	}
	return d
}

// deltaDriftP returns the i-th probe competency: a strictly decreasing
// drift below 0.95 that never repeats, so neither side of the comparison
// can hit a content-addressed cache, and never crosses another voter's
// competency, so the probe's rank is stable.
func deltaDriftP(i int) float64 { return 0.95 - float64(i+1)*1e-9 }

// benchDeltaSingleVoter measures steady-state single-delta re-evaluation:
// one retained scenario, each iteration applies a fresh competency delta
// to the probe voter and re-scores, so the retained tree recomputes one
// root path instead of rebuilding. Divide benchDeltaScratchSweep at the
// same n by this to read off the incremental win.
func benchDeltaSingleVoter(b *testing.B, n int) {
	b.Helper()
	in := benchDeltaInstance(b, n)
	plan, err := election.NewPlan(in, election.Options{Replications: 1, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := election.NewScenario(plan, benchDeltaProfile(n))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sc.Score(); err != nil { // warm the retained tree
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.ApplyDelta(election.Delta{Kind: election.DeltaCompetency, Voter: 2, P: deltaDriftP(i)}); err != nil {
			b.Fatal(err)
		}
		if s, err := sc.Score(); err != nil || s <= 0 {
			b.Fatalf("score %v: %v", s, err)
		}
	}
}

// benchDeltaScratchSweep is the from-scratch cost the delta path replaces:
// after the same single competency delta, re-run the full staged pipeline —
// fresh plan, fresh caches, EvaluateSweep over the usual three-alpha sweep
// — on the mutated instance. Every iteration sees a never-before-seen
// instance, exactly as a naive re-evaluation would.
func benchDeltaScratchSweep(b *testing.B, n int) {
	b.Helper()
	in := benchDeltaInstance(b, n)
	alphas := []float64{0.02, 0.05, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in2, err := in.WithCompetency(2, deltaDriftP(i))
		if err != nil {
			b.Fatal(err)
		}
		plan, err := election.NewPlan(in2, election.Options{Replications: 8})
		if err != nil {
			b.Fatal(err)
		}
		plan.PrewarmApproval(alphas...)
		points := make([]election.SweepPoint, len(alphas))
		for j, a := range alphas {
			points[j] = election.SweepPoint{
				Mechanism: mechanism.ApprovalThreshold{Alpha: a},
				Seed:      uint64(i)*uint64(len(alphas)) + uint64(j) + 1,
			}
		}
		if _, err := election.EvaluateSweep(context.Background(), plan, points); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDeltaChurn measures sustained repoint churn: the probing voter
// rotates across the electorate and every iteration re-points a different
// voter, so consecutive diffs wander through the weight-sorted multiset —
// the dynamics/history workload, where windows legitimately cross the
// rebuild threshold — rather than the single-leaf serving probe.
func benchDeltaChurn(b *testing.B, n int) {
	b.Helper()
	in := benchDeltaInstance(b, n)
	plan, err := election.NewPlan(in, election.Options{Replications: 1, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := election.NewScenario(plan, benchDeltaProfile(n))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sc.Score(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := 3 * (i % (n / 3))
		target := core.NoDelegate // base profile has v -> v+1
		if (i/(n/3))%2 == 1 {     // alternate direction per sweep over the electorate
			target = v + 1
		}
		if err := sc.ApplyDelta(election.Delta{Kind: election.DeltaRepoint, Voter: v, Target: target}); err != nil {
			b.Fatal(err)
		}
		if s, err := sc.Score(); err != nil || s <= 0 {
			b.Fatalf("score %v: %v", s, err)
		}
	}
}

func BenchmarkDeltaSingleVoter2000(b *testing.B)   { benchDeltaSingleVoter(b, 2000) }
func BenchmarkDeltaSingleVoter20000(b *testing.B)  { benchDeltaSingleVoter(b, 20000) }
func BenchmarkDeltaScratchSweep2000(b *testing.B)  { benchDeltaScratchSweep(b, 2000) }
func BenchmarkDeltaScratchSweep20000(b *testing.B) { benchDeltaScratchSweep(b, 20000) }
func BenchmarkDeltaChurn2000(b *testing.B)         { benchDeltaChurn(b, 2000) }
func BenchmarkDeltaChurn20000(b *testing.B)        { benchDeltaChurn(b, 20000) }

// benchLadderMajority measures the approximation ladder end to end on a
// streamed n-voter electorate with a 1e-3 error budget: at these sizes the
// normal tier certifies, so the cost is one O(n) moments pass over derived
// chunks — the scale tier's headline number for BENCH_005 and beyond.
func benchLadderMajority(b *testing.B, n int) {
	b.Helper()
	s, err := scale.New(scale.Spec{N: n, Seed: 2026, Low: 0.3, High: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ci, err := prob.LadderMajority(context.Background(), s, prob.LadderOptions{ErrorBudget: 1e-3})
		if err != nil {
			b.Fatal(err)
		}
		if ci.HalfWidth > 1e-3 {
			b.Fatalf("half-width %v over budget", ci.HalfWidth)
		}
	}
}

func BenchmarkLadderMajority100000(b *testing.B)  { benchLadderMajority(b, 100_000) }
func BenchmarkLadderMajority1000000(b *testing.B) { benchLadderMajority(b, 1_000_000) }

// benchScaleEvaluateMajority measures the full streamed mechanism
// evaluation: chunk-local delegation resolution, counting-sort multiset
// canonicalisation, and the certified fold, at a 4-worker budget.
func benchScaleEvaluateMajority(b *testing.B, n int) {
	b.Helper()
	s, err := scale.New(scale.Spec{N: n, Seed: 2026, Low: 0.3, High: 0.6, DelegateFrac: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scale.EvaluateMajority(context.Background(), s, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.WeightSum != int64(n) {
			b.Fatal("weight not conserved")
		}
	}
}

func BenchmarkScaleEvaluateMajority100000(b *testing.B)  { benchScaleEvaluateMajority(b, 100_000) }
func BenchmarkScaleEvaluateMajority1000000(b *testing.B) { benchScaleEvaluateMajority(b, 1_000_000) }

func BenchmarkRecycleRealize(b *testing.B) {
	in := benchInstance(b, 5000)
	g, err := recycle.FromCompleteDelegation(in, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.RealizeSum(s) < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkRandomRegular(b *testing.B) {
	s := rng.New(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.RandomRegular(2000, 8, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	s := rng.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.BarabasiAlbert(2000, 4, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalProtocol(b *testing.B) {
	s := rng.New(15)
	top, err := graph.RandomRegular(1000, 12, s)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 1000)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := localsim.RunThresholdDelegation(context.Background(), in, 0.05, nil, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
