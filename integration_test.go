package liquid

import (
	"context"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/mechanism"
	"liquid/internal/power"
	"liquid/internal/recycle"
	"liquid/internal/rng"
)

// TestEndToEndPipeline exercises the whole stack on one instance: graph
// generation, mechanism, distributed execution (with faulty links),
// centralized resolution, exact and Monte-Carlo election scoring, power
// metrics, and the recycle-sampling correspondence.
func TestEndToEndPipeline(t *testing.T) {
	const (
		n     = 120
		alpha = 0.04
		seed  = 2024
	)
	root := rng.New(seed)

	// 1. A small-world voting graph and bounded competencies.
	top, err := graph.WattsStrogatz(n, 8, 0.15, root.DeriveString("graph"))
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, n)
	comp := root.DeriveString("comp")
	for i := range p {
		p[i] = 0.30 + 0.19*comp.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := (core.PropertySet{
		core.BoundedCompetency{Beta: 0.25},
		core.PlausibleChangeability{A: 0.3},
	}).Check(in); err != nil {
		t.Fatal(err)
	}

	// 2. The mechanism runs distributedly over a lossy network...
	dist, err := localsim.RunReliableDelegation(context.Background(), in, alpha, localsim.ThresholdRule(nil), seed, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.Delegation.ValidateLocal(in, alpha); err != nil {
		t.Fatal(err)
	}
	// ...and its weights agree with the centralized resolution.
	res, err := dist.Delegation.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		want := 0
		if res.SinkOf[v] == v {
			want = res.Weight[v]
		}
		if dist.Weights[v] != want {
			t.Fatalf("distributed weight mismatch at %d", v)
		}
	}

	// 3. Exact and Monte-Carlo scoring agree.
	exact, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := election.ResolutionProbabilityMC(context.Background(), in, res, 60000, root.DeriveString("mc"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-mc) > 0.02 {
		t.Fatalf("exact %v vs MC %v", exact, mc)
	}

	// 4. Delegation gains over direct voting in this regime.
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= pd {
		t.Fatalf("expected gain: P^M %v vs P^D %v", exact, pd)
	}

	// 5. Power metrics are consistent with the resolution.
	sinkWeights := make([]int, 0, len(res.Sinks))
	for _, sk := range res.Sinks {
		sinkWeights = append(sinkWeights, res.Weight[sk])
	}
	w := power.FromInts(sinkWeights)
	if got := int(w.Total()); got != n {
		t.Fatalf("power total %d, want %d", got, n)
	}
	nak, err := w.Nakamoto()
	if err != nil {
		t.Fatal(err)
	}
	if nak < 1 || nak > len(res.Sinks) {
		t.Fatalf("Nakamoto %d outside [1, %d]", nak, len(res.Sinks))
	}

	// 6. The recycle-sampling correspondence holds on the complete-graph
	// version of the same competency vector: realized sums respect the
	// Lemma 2 bound in the vast majority of draws.
	kin, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := recycle.FromCompleteDelegation(kin, alpha, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := rg.Lemma2Bound(1.0)
	viol := 0
	const draws = 200
	rs := root.DeriveString("recycle")
	for i := 0; i < draws; i++ {
		if float64(rg.RealizeSum(rs)) < bound {
			viol++
		}
	}
	if viol > draws/10 {
		t.Fatalf("Lemma 2 bound violated in %d/%d draws", viol, draws)
	}
}

// TestAdversarialMechanismsAreContained verifies the typed-error contract
// end to end: broken mechanisms cannot silently corrupt results.
func TestAdversarialMechanismsAreContained(t *testing.T) {
	in, err := core.NewInstance(graph.NewComplete(8), []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := election.EvaluateMechanism(context.Background(), in, mechanism.CycleForcing{}, election.Options{
		Replications: 2, Seed: 1,
	}); err == nil {
		t.Fatal("cycle-forcing mechanism not rejected")
	}
	d, err := mechanism.NonLocal{}.Apply(in, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// On K_n NonLocal is technically local; on a star it is not.
	star, err := graph.Star(8)
	if err != nil {
		t.Fatal(err)
	}
	starIn, err := core.NewInstance(star, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	d, err = mechanism.NonLocal{}.Apply(starIn, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateLocal(starIn, 0.01); err == nil {
		t.Fatal("non-local delegation passed validation on a star")
	}
}

// TestLargeScaleSmoke exercises the implicit-K_n fast paths at a scale the
// theory cares about: 100k voters, mechanism application, resolution, and
// Monte-Carlo scoring. Guarded by -short.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 100000
	root := rng.New(555)
	p := make([]float64, n)
	comp := root.DeriveString("comp")
	for i := range p {
		p[i] = 0.30 + 0.19*comp.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := (mechanism.ApprovalThreshold{Alpha: 0.05}).Apply(in, root.DeriveString("mech"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delegators < n/2 {
		t.Fatalf("expected heavy delegation, got %d", res.Delegators)
	}
	total := 0
	for _, sk := range res.Sinks {
		total += res.Weight[sk]
	}
	if total != n {
		t.Fatalf("weights sum to %d, want %d", total, n)
	}
	pm, err := election.ResolutionProbabilityMC(context.Background(), in, res, 400, root.DeriveString("mc"))
	if err != nil {
		t.Fatal(err)
	}
	if pm < 0 || pm > 1 {
		t.Fatalf("P^M = %v", pm)
	}
}
