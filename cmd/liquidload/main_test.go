package main

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"liquid/internal/server"
)

// TestScheduleDeterministic: the same seed must yield byte-identical
// request schedules — that is what makes a load run reproducible.
func TestScheduleDeterministic(t *testing.T) {
	a, err := buildSchedule(42, 50, 15, 4, 1000, 0.2, 0.15, 0.2, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSchedule(42, 50, 15, 4, 1000, 0.2, 0.15, 0.2, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c, err := buildSchedule(43, 50, 15, 4, 1000, 0.2, 0.15, 0.2, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleBodiesMatchServerContract decodes every generated body with
// the daemon's own parser: non-malformed requests must be accepted,
// malformed ones must draw a typed 400.
func TestScheduleBodiesMatchServerContract(t *testing.T) {
	reqs, err := buildSchedule(7, 80, 15, 4, 1000, 0.2, 0.15, 0.2, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for i, rq := range reqs {
		kinds[rq.kind]++
		switch rq.kind {
		case "evaluate", "fault":
			if _, aerr := server.ParseEvaluateRequest(rq.body); aerr != nil {
				t.Fatalf("request %d (%s) rejected by the daemon parser: %v", i, rq.kind, aerr)
			}
		case "whatif":
			// Cyclic profiles are legal wire input (the daemon 400s them at
			// resolution); the parse itself must succeed.
			if _, aerr := server.ParseWhatIfRequest(rq.body); aerr != nil {
				t.Fatalf("request %d (whatif) rejected by the daemon parser: %v", i, aerr)
			}
		case "whatif-delta":
			parsed, aerr := server.ParseWhatIfRequest(rq.body)
			if aerr != nil {
				t.Fatalf("request %d (whatif-delta) rejected by the daemon parser: %v", i, aerr)
			}
			if len(parsed.Deltas) == 0 {
				t.Fatalf("request %d (whatif-delta) carries no deltas", i)
			}
		case "malformed":
			if _, aerr := server.ParseEvaluateRequest(rq.body); aerr == nil {
				t.Fatalf("request %d: malformed body accepted", i)
			}
		default:
			t.Fatalf("request %d: unknown kind %q", i, rq.kind)
		}
	}
	for _, k := range []string{"evaluate", "fault", "whatif", "whatif-delta", "malformed"} {
		if kinds[k] == 0 {
			t.Fatalf("schedule has no %s requests: %v", k, kinds)
		}
	}
}

func TestSlowReaderDeliversEverything(t *testing.T) {
	payload := bytes.Repeat([]byte("abc"), 100)
	r := &slowReader{data: payload, chunk: 7, delay: time.Microsecond}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("slow reader corrupted the payload: %d bytes vs %d", len(got), len(payload))
	}
}
