// Command liquidload drives a running liquidd with a seeded, deterministic
// open-loop request schedule and checks the serving invariants from the
// outside. The same -seed produces the same request mix — instances,
// mechanism parameters, per-request seeds, and injected faults (malformed
// bodies, slow clients) — so a load run is reproducible end to end.
//
// After the run it fetches /statsz and verifies the daemon's accounting
// delta matches the client-observed outcomes exactly:
//
//	sent == completed + malformed + shed + failed + expired
//
// and, with -verify, recomputes every completed exact evaluate response
// offline (election.EvaluateMechanism with the same seed and options) and
// every completed delta what-if (exact kernels on the post-delta election)
// and requires bit-identical bytes. Any violation exits nonzero.
//
// -whatif-delta-frac carves out a slice of delta what-ifs: every such
// request probes the same shared base election with a short list of
// incremental edits, the traffic shape the daemon's retained-scenario
// cache serves without re-evaluating from scratch.
//
// With -bench the run writes a schema-stable JSON snapshot
// ("liquid-bench-serve/1") with the outcome counts, latency percentiles,
// and achieved throughput, for trajectory tracking alongside BENCH_<n>.json.
//
// Usage:
//
//	liquidload -addr host:port [-requests N] [-rate R] [-seed N]
//	           [-voters N] [-replications N] [-deadline-ms N]
//	           [-whatif-frac F] [-whatif-delta-frac F] [-fault-frac F]
//	           [-malformed-frac F] [-slow-frac F] [-verify] [-bench out.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
	"liquid/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "liquidload:", err)
		os.Exit(1)
	}
}

// request is one scheduled request: its wire bytes plus everything needed
// to verify the response offline.
type request struct {
	kind string // evaluate | fault | whatif | malformed
	path string
	body []byte
	seed uint64
	slow bool
	// alpha parameterizes the evaluate mechanism for -verify.
	alpha float64
}

// outcome is one completed request's client-side observation.
type outcome struct {
	status  int
	body    []byte
	latency time.Duration
	err     error
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("liquidload", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr       = fs.String("addr", "", "daemon address (host:port; required)")
		requests   = fs.Int("requests", 200, "number of requests to send")
		rate       = fs.Float64("rate", 200, "open-loop arrival rate, requests/sec")
		seed       = fs.Uint64("seed", 1, "schedule seed (same seed => same request mix)")
		voters     = fs.Int("voters", 25, "instance size per request")
		reps       = fs.Int("replications", 8, "sweep replications per request")
		deadlineMS = fs.Int64("deadline-ms", 2000, "per-request deadline")
		whatifF    = fs.Float64("whatif-frac", 0.2, "fraction of /v1/whatif requests")
		whatifDF   = fs.Float64("whatif-delta-frac", 0, "fraction of delta what-ifs: incremental edits probed against one shared base election")
		faultF     = fs.Float64("fault-frac", 0.2, "fraction of evaluate requests carrying a fault block")
		malformedF = fs.Float64("malformed-frac", 0.1, "fraction of malformed bodies (typed 400s)")
		slowF      = fs.Float64("slow-frac", 0.1, "fraction of slow clients (trickled request bodies)")
		verify     = fs.Bool("verify", false, "recompute completed exact evaluate responses offline and require bit-identity")
		benchOut   = fs.String("bench", "", "write a liquid-bench-serve/1 JSON snapshot here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}

	reqs, err := buildSchedule(*seed, *requests, *voters, *reps, *deadlineMS, *whatifF, *whatifDF, *faultF, *malformedF, *slowF)
	if err != nil {
		return err
	}

	before, err := fetchStats(base)
	if err != nil {
		return fmt.Errorf("statsz before run: %w", err)
	}

	// Open-loop arrival: request i fires at start + i/rate regardless of how
	// earlier requests are faring, so the daemon sees sustained pressure
	// rather than a closed feedback loop that slows down when it does.
	interval := time.Duration(float64(time.Second) / *rate)
	outcomes := make([]outcome, len(reqs))
	start := time.Now()
	var wg sync.WaitGroup
	for i, rq := range reqs {
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int, rq request) {
			defer wg.Done()
			outcomes[i] = send(base, rq)
		}(i, rq)
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchStats(base)
	if err != nil {
		return fmt.Errorf("statsz after run: %w", err)
	}

	// Classify the client-observed outcomes.
	var got server.Stats
	var latencies []time.Duration
	for i, o := range outcomes {
		if o.err != nil {
			return fmt.Errorf("request %d: transport error: %v", i, o.err)
		}
		got.Received++
		latencies = append(latencies, o.latency)
		switch o.status {
		case http.StatusOK:
			got.Completed++
		case http.StatusBadRequest:
			got.Malformed++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			got.Shed++
		case http.StatusGatewayTimeout:
			got.Expired++
		default:
			got.Failed++
		}
	}

	// The accounting invariant, checked from the outside against the
	// daemon's own counters.
	delta := server.Stats{
		Received:  after.Received - before.Received,
		Malformed: after.Malformed - before.Malformed,
		Shed:      after.Shed - before.Shed,
		Completed: after.Completed - before.Completed,
		Failed:    after.Failed - before.Failed,
		Expired:   after.Expired - before.Expired,
	}
	fmt.Fprintf(out, "sent %d in %.2fs (%.1f req/s): completed %d, malformed %d, shed %d, failed %d, expired %d\n",
		got.Received, wall.Seconds(), float64(got.Received)/wall.Seconds(),
		got.Completed, got.Malformed, got.Shed, got.Failed, got.Expired)
	if delta != got {
		return fmt.Errorf("accounting mismatch: daemon delta %+v, client observed %+v", delta, got)
	}
	if sum := got.Malformed + got.Shed + got.Completed + got.Failed + got.Expired; sum != got.Received {
		return fmt.Errorf("outcome taxonomy leaks: %d outcomes for %d requests", sum, got.Received)
	}

	verified, verifiedWhatIf := 0, 0
	if *verify {
		for i, o := range outcomes {
			if o.status != http.StatusOK {
				continue
			}
			switch reqs[i].kind {
			case "evaluate":
				want, err := offlineEvaluate(reqs[i], *voters, *reps, *seed)
				if err != nil {
					return fmt.Errorf("offline verify request %d: %w", i, err)
				}
				if !bytes.Equal(o.body, want) {
					return fmt.Errorf("request %d (seed %d) not bit-identical to offline evaluation:\n got: %s\nwant: %s",
						i, reqs[i].seed, o.body, want)
				}
				verified++
			case "whatif-delta":
				want, err := offlineWhatIfDelta(reqs[i])
				if err != nil {
					return fmt.Errorf("offline verify request %d: %w", i, err)
				}
				if !bytes.Equal(o.body, want) {
					return fmt.Errorf("delta what-if %d not bit-identical to offline evaluation:\n got: %s\nwant: %s",
						i, o.body, want)
				}
				verifiedWhatIf++
			}
		}
		fmt.Fprintf(out, "verified %d completed evaluate responses and %d delta what-ifs bit-identical to offline evaluation\n",
			verified, verifiedWhatIf)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	fmt.Fprintf(out, "latency ms: p50 %.2f, p90 %.2f, p99 %.2f, max %.2f\n", p(0.50), p(0.90), p(0.99), p(1))

	if *benchOut != "" {
		snap := benchSnapshot{
			Schema:    "liquid-bench-serve/1",
			Go:        runtime.Version(),
			Seed:      *seed,
			Requests:  *requests,
			RatePerS:  *rate,
			Voters:    *voters,
			Completed: got.Completed, Malformed: got.Malformed, Shed: got.Shed,
			Failed: got.Failed, Expired: got.Expired,
			ReqPerSec: float64(got.Received) / wall.Seconds(),
			P50MS:     p(0.50), P90MS: p(0.90), P99MS: p(0.99), MaxMS: p(1),
			Verified: verified, VerifiedWhatIf: verifiedWhatIf,
			WhatIfDeltas: countKind(reqs, "whatif-delta"),
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "bench snapshot: %s\n", *benchOut)
	}
	return nil
}

// benchSnapshot is the schema-stable serving benchmark record. Timings are
// machine-dependent; the outcome counts are seed-deterministic up to
// scheduling (how many requests shed depends on timing, their sum does
// not).
type benchSnapshot struct {
	Schema    string  `json:"schema"`
	Go        string  `json:"go"`
	Seed      uint64  `json:"seed"`
	Requests  int     `json:"requests"`
	RatePerS  float64 `json:"rate_per_sec"`
	Voters    int     `json:"voters"`
	Completed uint64  `json:"completed"`
	Malformed uint64  `json:"malformed"`
	Shed      uint64  `json:"shed"`
	Failed    uint64  `json:"failed"`
	Expired   uint64  `json:"expired"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50MS     float64 `json:"p50_ms"`
	P90MS     float64 `json:"p90_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
	Verified  int     `json:"verified"`
	// Delta what-if extras: how many delta requests the schedule carried
	// and how many completed responses passed offline bit-identity.
	WhatIfDeltas   int `json:"whatif_deltas,omitempty"`
	VerifiedWhatIf int `json:"verified_whatif,omitempty"`
}

// countKind tallies scheduled requests of one kind.
func countKind(reqs []request, kind string) int {
	n := 0
	for _, rq := range reqs {
		if rq.kind == kind {
			n++
		}
	}
	return n
}

// buildSchedule derives the full request mix from the seed. Request i's
// randomness comes from stream Derive(i), so the schedule is independent
// of evaluation order.
func buildSchedule(seed uint64, n, voters, reps int, deadlineMS int64, whatifF, whatifDF, faultF, malformedF, slowF float64) ([]request, error) {
	root := rng.New(seed).DeriveString("liquidload")
	baseDeleg := baseDelegations(voters)
	reqs := make([]request, n)
	for i := range reqs {
		s := root.Derive(uint64(i))
		rq := request{seed: s.Uint64(), slow: s.Float64() < slowF, path: "/v1/evaluate"}
		inst := instanceSpec(voters, s)
		switch u := s.Float64(); {
		case u < malformedF:
			rq.kind = "malformed"
			rq.body = []byte(fmt.Sprintf(`{"instance": {"n": %d}, "mech`, i))
		case u < malformedF+whatifF:
			rq.kind = "whatif"
			rq.path = "/v1/whatif"
			// Mostly upward delegations (acyclic by construction) so the bulk
			// of what-ifs complete; a 10% slice delegates uniformly, which is
			// nearly always cyclic — legal wire input that the daemon answers
			// with a typed 400, counted as malformed.
			cyclicProne := s.Float64() < 0.1
			deleg := make([]int, voters)
			for v := range deleg {
				switch {
				case cyclicProne:
					if to := int(s.Uint64() % uint64(voters+1)); to != v && to < voters {
						deleg[v] = to
					} else {
						deleg[v] = -1
					}
				case v < voters-1 && s.Float64() < 0.5:
					deleg[v] = v + 1 + int(s.Uint64()%uint64(voters-v-1))
				default:
					deleg[v] = -1
				}
			}
			body, err := json.Marshal(server.WhatIfRequest{Instance: inst, Delegations: deleg, DeadlineMS: deadlineMS})
			if err != nil {
				return nil, err
			}
			rq.body = body
		case u < malformedF+whatifF+whatifDF:
			rq.kind = "whatif-delta"
			rq.path = "/v1/whatif"
			// Every delta what-if probes the SAME base election — that is
			// the workload the daemon's retained-scenario cache exists for —
			// with a short list of upward (acyclic by construction) repoints
			// and an occasional competency edit, which forces the
			// instance-level path.
			k := 1 + int(s.Uint64()%3)
			deltas := make([]server.DeltaSpec, 0, k+1)
			for j := 0; j < k; j++ {
				v := int(s.Uint64() % uint64(voters))
				to := -1
				if v+1 < voters && s.Float64() < 0.7 {
					to = v + 1 + int(s.Uint64()%uint64(voters-v-1))
				}
				target := to
				deltas = append(deltas, server.DeltaSpec{Kind: "repoint", Voter: v, Target: &target})
			}
			if s.Float64() < 0.3 {
				deltas = append(deltas, server.DeltaSpec{
					Kind: "competency", Voter: int(s.Uint64() % uint64(voters)), P: 0.35 + 0.5*s.Float64(),
				})
			}
			body, err := json.Marshal(server.WhatIfRequest{Instance: inst, Delegations: baseDeleg, Deltas: deltas, DeadlineMS: deadlineMS})
			if err != nil {
				return nil, err
			}
			rq.body = body
		case u < malformedF+whatifF+whatifDF+faultF:
			rq.kind = "fault"
			body, err := json.Marshal(server.EvaluateRequest{
				Instance:     inst,
				Mechanism:    server.MechanismSpec{Name: "greedy-best", Alpha: 0.05},
				Seed:         rq.seed,
				Replications: reps,
				DeadlineMS:   deadlineMS,
				Fault:        &server.FaultSpec{Policy: "fallback-to-direct", DownRate: 0.2},
			})
			if err != nil {
				return nil, err
			}
			rq.body = body
		default:
			rq.kind = "evaluate"
			rq.alpha = 0.05 * float64(s.Uint64()%5)
			body, err := json.Marshal(server.EvaluateRequest{
				Instance:     inst,
				Mechanism:    server.MechanismSpec{Name: "approval-threshold", Alpha: rq.alpha},
				Seed:         rq.seed,
				Replications: reps,
				DeadlineMS:   deadlineMS,
			})
			if err != nil {
				return nil, err
			}
			rq.body = body
		}
		reqs[i] = rq
	}
	return reqs, nil
}

// baseDelegations is the shared base profile every delta what-if probes:
// a fixed, acyclic pattern (every third voter delegates one step up), so
// all delta requests content-address the same retained scenario in the
// daemon.
func baseDelegations(voters int) []int {
	deleg := make([]int, voters)
	for v := range deleg {
		if v%3 == 0 && v+1 < voters {
			deleg[v] = v + 1
		} else {
			deleg[v] = -1
		}
	}
	return deleg
}

// instanceSpec derives a deterministic competency profile. The values are
// a fixed grid (not draws) so -verify can rebuild the same instance.
func instanceSpec(voters int, s *rng.Stream) server.InstanceSpec {
	ps := make([]float64, voters)
	for i := range ps {
		ps[i] = 0.4 + 0.5*float64(i)/float64(voters)
	}
	_ = s
	return server.InstanceSpec{N: voters, Complete: true, P: ps}
}

// send issues one request, optionally through the slow-client fault
// (trickling the body a few bytes at a time).
func send(base string, rq request) outcome {
	var body io.Reader = bytes.NewReader(rq.body)
	if rq.slow {
		body = &slowReader{data: rq.body, chunk: 64, delay: 2 * time.Millisecond}
	}
	start := time.Now()
	req, err := http.NewRequest("POST", base+rq.path, body)
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if rq.slow {
		// Defeat transparent buffering so the daemon really sees a trickle.
		req.ContentLength = -1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return outcome{err: err, latency: time.Since(start)}
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return outcome{status: resp.StatusCode, body: data, latency: time.Since(start), err: err}
}

// slowReader trickles its payload chunk by chunk with a delay, simulating
// a slow or adversarial client holding a connection open.
type slowReader struct {
	data  []byte
	off   int
	chunk int
	delay time.Duration
}

func (r *slowReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	if r.off > 0 {
		time.Sleep(r.delay)
	}
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if rem := len(r.data) - r.off; n > rem {
		n = rem
	}
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return n, nil
}

// fetchStats reads the daemon's accounting counters.
func fetchStats(base string) (server.Stats, error) {
	var st server.Stats
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statsz: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// offlineWhatIfDelta rebuilds a completed delta what-if response from the
// request's own body: re-parse it with the daemon's decoder, then score
// the post-delta election with the exact kernels — a path that shares no
// retained scenario or patched tree with the daemon, so byte equality
// certifies the incremental path against from-scratch evaluation.
func offlineWhatIfDelta(rq request) ([]byte, error) {
	parsed, aerr := server.ParseWhatIfRequest(rq.body)
	if aerr != nil {
		return nil, aerr
	}
	res, err := parsed.FinalGraph.Resolve()
	if err != nil {
		return nil, err
	}
	pm, err := election.ResolutionProbabilityExact(parsed.FinalInstance, res)
	if err != nil {
		return nil, err
	}
	pd, err := election.DirectProbabilityExact(parsed.FinalInstance)
	if err != nil {
		return nil, err
	}
	resp := server.WhatIfResponse{
		PM: pm, PD: pd, Gain: pm - pd,
		Sinks: len(res.Sinks), MaxWeight: res.MaxWeight, TotalWeight: res.TotalWeight,
		Delegators: res.Delegators, LongestChain: res.LongestChain,
		DeltasApplied: len(parsed.Deltas),
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// offlineEvaluate rebuilds a completed evaluate response from the exact
// engine with the request's own seed and options.
func offlineEvaluate(rq request, voters, reps int, scheduleSeed uint64) ([]byte, error) {
	spec := instanceSpec(voters, rng.New(scheduleSeed))
	in, err := core.NewInstance(graph.NewComplete(voters), spec.P)
	if err != nil {
		return nil, err
	}
	res, err := election.EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: rq.alpha}, election.Options{
		Replications: reps, Seed: rq.seed, Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	resp := server.EvaluateResponse{Results: []server.PointResult{{
		Mechanism: res.Mechanism, Alpha: rq.alpha, N: res.N,
		PM: res.PM, PMStdErr: res.PMStdErr, PD: res.PD,
		Gain: res.Gain, GainLo: res.GainLo, GainHi: res.GainHi,
		MeanDelegators: res.MeanDelegators, MeanSinks: res.MeanSinks,
		MeanMaxWeight: res.MeanMaxWeight, MaxMaxWeight: res.MaxMaxWeight,
		MeanLongestChain: res.MeanLongestChain,
		PDTier:           prob.ClassifyExactTier(res.N).String(),
	}}}
	data, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
