package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMDrainFlushesPartialOutput runs the real binary, interrupts it
// mid-run with SIGTERM, and asserts the drain contract: completed results
// are still rendered as well-formed JSON, the manifest is flushed, and the
// exit code is the stable cancellation code (1).
func TestSIGTERMDrainFlushesPartialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "reproduce")
	if out, err := exec.Command("go", "build", "-o", bin, "liquid/cmd/reproduce").CombinedOutput(); err != nil {
		t.Fatalf("building reproduce: %v\n%s", err, out)
	}

	manifest := filepath.Join(dir, "manifest.json")
	cmd := exec.Command(bin, "-run", "all", "-scale", "1", "-seed", "1", "-json", "-quiet", "-manifest", manifest)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it get into the suite, then interrupt mid-run. Full scale takes
	// far longer than this, so the signal lands with experiments in flight.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(60*time.Second, func() { _ = cmd.Process.Kill() })
	err := cmd.Wait()
	killer.Stop()

	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v (stderr: %s)", err, stderr.String())
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want the stable cancellation code 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Fatalf("stderr does not report cancellation:\n%s", stderr.String())
	}

	// Partial output must still be a well-formed document.
	var outs []any
	if err := json.Unmarshal(stdout.Bytes(), &outs); err != nil {
		t.Fatalf("drained stdout is not valid JSON: %v\n%s", err, stdout.String())
	}

	// The manifest was flushed before exit.
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not flushed on drain: %v", err)
	}
	var man map[string]any
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if man["schema"] != "liquid-manifest/1" {
		t.Fatalf("manifest schema = %v", man["schema"])
	}
}
