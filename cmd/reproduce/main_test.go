package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// runQuiet invokes run with progress suppressed so test output stays clean.
func runQuiet(t *testing.T, args []string, out io.Writer) error {
	t.Helper()
	return run(context.Background(), append([]string{"-quiet"}, args...), out, io.Discard)
}

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"F1", "F2", "L1", "T2", "X3", "A3"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "F2", "-scale", "0.1", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== F2") {
		t.Fatal("missing experiment header")
	}
	if !strings.Contains(out, "[PASS]") {
		t.Fatal("missing check results")
	}
	if strings.Contains(out, "[FAIL]") {
		t.Fatalf("unexpected failures:\n%s", out)
	}
}

func TestRunMultipleWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "F1, F2", "-scale", "0.1", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 { // F1 has 1 table, F2 has 2
		t.Fatalf("expected >= 3 CSV files, got %d", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "F1_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gain") {
		t.Fatal("CSV missing header")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "ZZ"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestDeterministicOutput re-runs with the same seed: stdout carries no
// wall-clock data anymore, so the two runs must match byte for byte.
func TestDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-run", "F2", "-scale", "0.1", "-seed", "9"}
	if err := runQuiet(t, args, &a); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(t, args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed should give byte-identical output")
	}
}

// TestWorkerCountInvariance is the engine's end-to-end contract at the CLI
// layer: sequential and parallel schedules render the same bytes.
func TestWorkerCountInvariance(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-run", "F2,L3,L4,V1,A5,X6,R1,R2", "-scale", "0.1", "-seed", "11", "-workers", workers}
	}
	var seq, par bytes.Buffer
	if err := runQuiet(t, args("1"), &seq); err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}
	if err := runQuiet(t, args(strconv.Itoa(workers)), &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatal("worker count changed rendered output")
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "F2", "-scale", "0.1", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var outs []struct {
		ID           string `json:"id"`
		Claim        string `json:"claim"`
		Replications int    `json:"replications"`
		Tables       []struct {
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
		Checks []struct {
			Name   string `json:"Name"`
			Passed bool   `json:"Passed"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &outs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(outs) != 1 || outs[0].ID != "F2" {
		t.Fatalf("outs = %+v", outs)
	}
	if len(outs[0].Tables) != 2 || len(outs[0].Checks) == 0 {
		t.Fatalf("F2 shape wrong: %+v", outs[0])
	}
	if outs[0].Replications == 0 {
		t.Fatal("F2 should report its replication count")
	}
	for _, c := range outs[0].Checks {
		if !c.Passed {
			t.Fatalf("check failed in JSON: %s", c.Name)
		}
	}
}

func TestMarkdownOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "F2", "-scale", "0.1", "-md"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| --- |") {
		t.Fatalf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "[PASS]") {
		t.Fatal("check results missing")
	}
}

// TestEventsFile checks the -events JSONL sink: one object per line, with
// the expected lifecycle kinds.
func TestEventsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "F2", "-scale", "0.1", "-events", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // started, finished, suite_finished
		t.Fatalf("expected 3 event lines, got %d:\n%s", len(lines), data)
	}
	var kinds []string
	for _, line := range lines {
		var ev struct {
			Kind string `json:"kind"`
			Seq  int    `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := "experiment_started,experiment_finished,suite_finished"
	if strings.Join(kinds, ",") != want {
		t.Fatalf("event kinds = %v", kinds)
	}
}

// TestCancelledRunFlushesPartialOutput pre-cancels the context: run must
// still render (nothing completed, so an empty JSON array) and return a
// cancellation error rather than dying before the flush.
func TestCancelledRunFlushesPartialOutput(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, []string{"-quiet", "-run", "F2,T2", "-scale", "0.1", "-json"}, &buf, io.Discard)
	if err == nil {
		t.Fatal("cancelled run should return an error")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	var outs []any
	if err := json.Unmarshal(buf.Bytes(), &outs); err != nil {
		t.Fatalf("cancelled run did not flush valid JSON: %v\n%s", err, buf.String())
	}
}

// TestMetricsAndManifestDoNotChangeOutput is the sink half of the
// write-only contract at the CLI layer: a run streaming -metrics and
// writing a -manifest must render byte-identical tables to a bare run,
// and the side files must be well-formed.
func TestMetricsAndManifestDoNotChangeOutput(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.jsonl")
	manifestPath := filepath.Join(dir, "manifest.json")
	base := []string{"-run", "F2,L3", "-scale", "0.1", "-seed", "17", "-workers", "2"}
	var plain, tapped bytes.Buffer
	if err := runQuiet(t, base, &plain); err != nil {
		t.Fatal(err)
	}
	if err := runQuiet(t, append([]string{"-metrics", metricsPath, "-manifest", manifestPath}, base...), &tapped); err != nil {
		t.Fatal(err)
	}
	if plain.String() != tapped.String() {
		t.Fatal("attaching -metrics/-manifest changed stdout")
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 { // two experiments + suite
		t.Fatalf("expected >= 3 metrics lines, got %d", len(lines))
	}
	for _, line := range lines {
		var rec struct {
			Seq      int             `json:"seq"`
			Snapshot json.RawMessage `json:"snapshot"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad metrics line %q: %v", line, err)
		}
		if rec.Seq == 0 || len(rec.Snapshot) == 0 {
			t.Fatalf("metrics line missing seq/snapshot: %s", line)
		}
	}

	mdata, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Schema    string            `json:"schema"`
		GoVersion string            `json:"go_version"`
		GitRev    string            `json:"git_rev"`
		Seed      uint64            `json:"seed"`
		Flags     map[string]string `json:"flags"`
		Wall      float64           `json:"wall_seconds"`
	}
	if err := json.Unmarshal(mdata, &man); err != nil {
		t.Fatalf("bad manifest: %v\n%s", err, mdata)
	}
	if man.Schema != "liquid-manifest/1" {
		t.Fatalf("manifest schema = %q", man.Schema)
	}
	if man.Seed != 17 || man.Flags["scale"] != "0.1" || man.Flags["run"] != "F2,L3" {
		t.Fatalf("manifest config wrong: seed=%d flags=%v", man.Seed, man.Flags)
	}
	if man.GoVersion == "" || man.GitRev == "" || man.Wall <= 0 {
		t.Fatalf("manifest provenance incomplete: %+v", man)
	}
}

// TestTelemetryCompiledOutByteIdentity is the strongest form of the
// write-only contract: a reproduce binary with telemetry compiled out
// entirely (-tags liquidnotelemetry) renders the same stdout bytes as the
// instrumented one, across worker counts. Build-and-exec is slow, so the
// test is skipped under -short (make check runs the full suite).
func TestTelemetryCompiledOutByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two binaries; skipped with -short")
	}
	dir := t.TempDir()
	onBin := filepath.Join(dir, "reproduce_on")
	offBin := filepath.Join(dir, "reproduce_off")
	build := func(bin string, tags ...string) {
		t.Helper()
		args := append([]string{"build", "-o", bin}, tags...)
		args = append(args, "liquid/cmd/reproduce")
		cmd := exec.Command("go", args...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go %v: %v\n%s", args, err, out)
		}
	}
	build(onBin)
	build(offBin, "-tags", "liquidnotelemetry")

	for _, workers := range []string{"1", "4", "16"} {
		args := []string{"-quiet", "-run", "F2,L3,V1", "-scale", "0.1", "-seed", "11", "-workers", workers}
		outOn, err := exec.Command(onBin, args...).Output()
		if err != nil {
			t.Fatalf("telemetry-on run (workers=%s): %v", workers, err)
		}
		outOff, err := exec.Command(offBin, args...).Output()
		if err != nil {
			t.Fatalf("telemetry-off run (workers=%s): %v", workers, err)
		}
		if !bytes.Equal(outOn, outOff) {
			t.Fatalf("workers=%s: compiled-out telemetry changed stdout\non:\n%s\noff:\n%s", workers, outOn, outOff)
		}
	}
}

// TestFailFastFlag wires -failfast through to the engine: on a healthy
// subset everything still runs and renders.
func TestFailFastFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuiet(t, []string{"-run", "F2,A5", "-scale", "0.1", "-failfast", "-workers", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== F2") || !strings.Contains(out, "=== A5") {
		t.Fatalf("both healthy experiments should render:\n%s", out)
	}
}
