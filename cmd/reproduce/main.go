// Command reproduce regenerates the paper-reproduction experiments: the two
// figures, the lemma validations, the theorem sweeps, the Section 6
// extensions, and the design ablations. See DESIGN.md for the index.
//
// Experiments are scheduled onto a deterministic parallel engine: the same
// seed yields byte-identical tables regardless of -workers, because every
// experiment derives its randomness hierarchically from the seed rather than
// from scheduling order. Progress is reported on stderr; tables go to stdout.
//
// Usage:
//
//	reproduce [-run F1,T2,...|all] [-seed N] [-scale 0.25] [-workers N]
//	          [-timeout 30s] [-failfast] [-legacy-eval] [-events out.jsonl]
//	          [-metrics out.jsonl] [-manifest out.json] [-pprof addr]
//	          [-csv dir] [-json] [-md] [-list]
//
// Observability (see DESIGN.md "Observability"): -metrics streams registry
// snapshots as JSON lines alongside the event stream, -manifest writes the
// end-of-run provenance record (seeds, flags, timings, metrics, git rev),
// and -pprof serves expvar + net/http/pprof on the given address for live
// debugging. All three are write-only taps: tables on stdout stay
// byte-identical whether they are on, off, or compiled out entirely
// (-tags liquidnotelemetry).
//
// SIGINT cancels the run gracefully: in-flight experiments drain, completed
// results are still rendered (and flushed to -csv/-json), and the exit code
// is non-zero. The exit code is also non-zero if any paper-shape check fails.
package main

import (
	"context"
	"encoding/json"
	"errors"
	_ "expvar" // registers /debug/vars on the -pprof server
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -pprof server
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"liquid/internal/engine"
	"liquid/internal/experiment"
	"liquid/internal/report"
	"liquid/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

// run parses flags, schedules the selected experiments on the engine, and
// renders results to out in registry order. Progress and event lines go to
// errOut so stdout stays byte-identical for a fixed seed no matter the
// worker count.
func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		runIDs   = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed     = fs.Uint64("seed", 1, "random seed (same seed => identical tables)")
		scale    = fs.Float64("scale", 1, "size scale in (0,1]; smaller is faster")
		workers  = fs.Int("workers", 0, "parallel experiments (0 = one per CPU core)")
		timeout  = fs.Duration("timeout", 0, "per-experiment timeout (0 = none)")
		failfast = fs.Bool("failfast", false, "stop scheduling after the first failure")
		events   = fs.String("events", "", "append engine events as JSON lines to this file")
		metrics  = fs.String("metrics", "", "stream telemetry snapshots as JSON lines to this file")
		manifest = fs.String("manifest", "", "write the end-of-run manifest JSON to this file")
		pprof    = fs.String("pprof", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
		csvDir   = fs.String("csv", "", "directory to also write per-table CSV files")
		legacy   = fs.Bool("legacy-eval", false, "evaluate sweeps point-by-point through the pre-pipeline path (same output, for verification)")
		asJSON   = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		asMD     = fs.Bool("md", false, "render tables as GitHub markdown")
		quiet    = fs.Bool("quiet", false, "suppress per-experiment progress on stderr")
		list     = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n     %s\n", d.ID, d.Title, d.Claim)
		}
		return nil
	}

	defs, err := selectDefinitions(*runIDs)
	if err != nil {
		return err
	}

	start := time.Now()
	if *pprof != "" {
		// The debug server is best-effort observability: it serves until the
		// process exits and is never waited on. A bad address is a hard error
		// so a typo does not silently lose the endpoint.
		ln, err := net.Listen("tcp", *pprof)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		fmt.Fprintf(errOut, "pprof: serving expvar and net/http/pprof on http://%s/debug/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	var metricsSink telemetry.Sink = telemetry.Discard
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		defer f.Close()
		metricsSink = telemetry.NewJSONLSink(f)
	}

	var sinks []func(engine.Event)
	if !*quiet {
		sinks = append(sinks, engine.Progress(errOut))
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		jw := report.NewJSONLWriter(f)
		sinks = append(sinks, func(ev engine.Event) { jw.Write(ev) })
	}
	if *metrics != "" {
		// One snapshot line per finished experiment turns the metrics file
		// into a stream alongside the event stream; the pull direction means
		// the flush can observe the computation but never influence it.
		sinks = append(sinks, func(ev engine.Event) {
			if ev.Kind == engine.ExperimentFinished || ev.Kind == engine.SuiteFinished {
				if err := metricsSink.Flush(telemetry.Default.Snapshot()); err != nil {
					fmt.Fprintln(errOut, "metrics flush:", err)
				}
			}
		})
	}
	var sink func(engine.Event)
	if len(sinks) > 0 {
		sink = engine.Tee(sinks...)
	}

	eng := engine.New(engine.Options{
		Workers:  *workers,
		FailFast: *failfast,
		Timeout:  *timeout,
		Events:   sink,
	})
	cfg := experiment.Config{Seed: *seed, Scale: *scale, LegacyEval: *legacy}
	results, runErr := eng.Run(ctx, defs, cfg)

	// Render whatever completed, even on cancellation: partial tables, CSV
	// files and JSON are flushed before the non-zero exit.
	var renderErr error
	if *asJSON {
		renderErr = renderJSON(results, out)
	} else {
		renderErr = renderText(results, out, *asMD, *csvDir)
	}
	if renderErr != nil {
		return renderErr
	}

	// Cache telemetry is scheduling-dependent, so it goes to errOut only;
	// stdout must stay byte-identical across worker counts. Reading the
	// registry happens here, at the entry point, after all tables rendered —
	// internal packages only ever write it (telemflow analyzer).
	snap := telemetry.Default.Snapshot()
	fmt.Fprintf(errOut, "kernel caches: resolution %d hit / %d miss, direct %d hit / %d miss\n",
		snap.Counter("election/resolution_cache_hits"), snap.Counter("election/resolution_cache_misses"),
		snap.Counter("election/direct_cache_hits"), snap.Counter("election/direct_cache_misses"))

	if *manifest != "" {
		flagVals := make(map[string]string)
		fs.VisitAll(func(f *flag.Flag) { flagVals[f.Name] = f.Value.String() })
		man := telemetry.BuildManifest(telemetry.Default, *seed, flagVals)
		man.WallSeconds = time.Since(start).Seconds()
		if err := man.WriteFile(*manifest); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintf(errOut, "manifest: %s (sha256 %s)\n", *manifest, man.Hash())
	}

	if runErr != nil {
		return fmt.Errorf("run cancelled: %w", runErr)
	}
	failures := 0
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
		if res.Outcome != nil {
			failures += len(res.Outcome.Failed())
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d paper-shape checks failed", failures)
	}
	return nil
}

// selectDefinitions resolves -run into registry definitions, rejecting
// unknown ids before anything is scheduled.
func selectDefinitions(runIDs string) ([]experiment.Definition, error) {
	if runIDs == "all" {
		return experiment.All(), nil
	}
	var defs []experiment.Definition
	for _, id := range strings.Split(runIDs, ",") {
		def, err := experiment.Lookup(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		defs = append(defs, def)
	}
	return defs, nil
}

// renderText writes the classic table/check report. The output contains no
// wall-clock data, so a fixed seed renders byte-identically whether the run
// used one worker or many.
func renderText(results []engine.Result, out io.Writer, asMD bool, csvDir string) error {
	for _, res := range results {
		if res.Skipped {
			continue
		}
		if res.Err != nil {
			if errors.Is(res.Err, context.Canceled) {
				continue // cancelled mid-run; nothing to render
			}
			fmt.Fprintf(out, "=== %s: error: %v\n\n", res.Def.ID, res.Err)
			continue
		}
		o := res.Outcome
		fmt.Fprintf(out, "=== %s: %s\n", o.ID, o.Title)
		fmt.Fprintf(out, "    claim: %s\n\n", o.Claim)
		for ti, tab := range o.Tables {
			if asMD {
				if err := tab.RenderMarkdown(out); err != nil {
					return err
				}
			} else if err := tab.Render(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", o.ID, ti)
				if err := writeCSV(filepath.Join(csvDir, name), tab); err != nil {
					return err
				}
			}
		}
		for _, c := range o.Checks {
			mark := "PASS"
			if !c.Passed {
				mark = "FAIL"
			}
			detail := ""
			if c.Detail != "" {
				detail = " — " + c.Detail
			}
			fmt.Fprintf(out, "  [%s] %s%s\n", mark, c.Name, detail)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func writeCSV(path string, tab *report.Table) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tab.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonOutcome is the machine-readable experiment result. It deliberately
// carries no wall-clock timing so that output for a fixed seed is
// byte-identical across runs and worker counts; timing lives in the engine
// event stream (-events).
type jsonOutcome struct {
	ID           string             `json:"id"`
	Title        string             `json:"title"`
	Claim        string             `json:"claim"`
	Replications int                `json:"replications"`
	Error        string             `json:"error,omitempty"`
	Tables       []jsonTable        `json:"tables,omitempty"`
	Checks       []experiment.Check `json:"checks,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// renderJSON streams one JSON document with all completed outcomes. Skipped
// experiments are omitted; errored ones carry an error string so a partial
// (cancelled) run is still a well-formed document.
func renderJSON(results []engine.Result, out io.Writer) error {
	outs := make([]jsonOutcome, 0, len(results))
	for _, res := range results {
		if res.Skipped {
			continue
		}
		if res.Err != nil {
			outs = append(outs, jsonOutcome{ID: res.Def.ID, Title: res.Def.Title, Error: res.Err.Error()})
			continue
		}
		o := res.Outcome
		jo := jsonOutcome{
			ID:           o.ID,
			Title:        o.Title,
			Claim:        o.Claim,
			Replications: o.Replications,
			Checks:       o.Checks,
		}
		for _, tab := range o.Tables {
			jo.Tables = append(jo.Tables, jsonTable{Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows})
		}
		outs = append(outs, jo)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(outs)
}
