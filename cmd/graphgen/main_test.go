package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"liquid/internal/graph"
)

func TestRunAllKinds(t *testing.T) {
	kinds := []string{"complete", "star", "cycle", "path", "grid", "regular", "er", "ba", "community", "bounded", "ws"}
	for _, kind := range kinds {
		var buf bytes.Buffer
		if err := run([]string{"-kind", kind, "-n", "60", "-d", "4"}, &buf); err != nil {
			t.Errorf("kind %s: %v", kind, err)
			continue
		}
		if !strings.Contains(buf.String(), "vertices") {
			t.Errorf("kind %s: missing stats table", kind)
		}
	}
}

func TestRunWritesEdgeList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	var buf bytes.Buffer
	if err := run([]string{"-kind", "regular", "-n", "50", "-d", "4", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 || !graph.IsRegular(g, 4) {
		t.Fatalf("round-tripped graph wrong: n=%d", g.N())
	}
}

func TestRunUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "tesseract"}, &buf); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-kind", "er", "-n", "80", "-d", "6", "-seed", "11"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must give identical stats")
	}
}
