// Command graphgen generates voting-graph topologies, reports their
// structural properties (the paper's graph restrictions), and optionally
// writes them as edge lists.
//
// Example:
//
//	graphgen -kind ba -n 5000 -d 6 -seed 3 -out network.edges
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"liquid/internal/graph"
	"liquid/internal/report"
	"liquid/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "regular", "generator: complete|star|cycle|path|grid|regular|er|ba|community|bounded|ws")
		n       = fs.Int("n", 1000, "number of vertices")
		d       = fs.Int("d", 6, "degree parameter")
		seed    = fs.Uint64("seed", 1, "random seed")
		outPath = fs.String("out", "", "write edge list to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := rng.New(*seed)
	g, err := build(*kind, *n, *d, s)
	if err != nil {
		return err
	}

	deg := graph.Degrees(g)
	_, comps := graph.ConnectedComponents(g)
	hist := graph.DegreeHistogram(g)

	tab := report.NewTable(fmt.Sprintf("graphgen: %s (n=%d, d=%d, seed=%d)", *kind, *n, *d, *seed),
		"property", "value")
	tab.AddRow("vertices", report.Itoa(g.N()))
	tab.AddRow("edges", report.Itoa(g.M()))
	tab.AddRow("degree min", report.Itoa(deg.Min))
	tab.AddRow("degree mean", report.F2(deg.Mean))
	tab.AddRow("degree max", report.Itoa(deg.Max))
	tab.AddRow("connected components", report.Itoa(comps))
	tab.AddRow("regular", fmt.Sprintf("%v", deg.Min == deg.Max))
	tab.AddRow("Δ ≤ sqrt(n)", fmt.Sprintf("%v", graph.MaxDegreeAtMost(g, int(math.Sqrt(float64(g.N()))))))
	tab.AddRow("degree histogram buckets", report.Itoa(len(hist)))
	if err := tab.Render(out); err != nil {
		return err
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := graph.WriteEdgeList(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}

func build(kind string, n, d int, s *rng.Stream) (*graph.Graph, error) {
	switch kind {
	case "complete":
		return graph.CompleteExplicit(n)
	case "star":
		return graph.Star(n)
	case "cycle":
		return graph.Cycle(n)
	case "path":
		return graph.Path(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.Grid(side, side)
	case "ws":
		k := d
		if k%2 != 0 {
			k++
		}
		return graph.WattsStrogatz(n, k, 0.2, s)
	case "regular":
		if n*d%2 != 0 {
			d++
		}
		return graph.RandomRegular(n, d, s)
	case "er":
		return graph.ErdosRenyi(n, float64(d)/float64(n-1), s)
	case "ba":
		return graph.BarabasiAlbert(n, max(d/2, 1), s)
	case "community":
		return graph.Community(n, 8, math.Min(1, 4*float64(d)/float64(n)), float64(d)/(4*float64(n)), s)
	case "bounded":
		return graph.RandomBoundedDegree(n, d, 8*n, s)
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}
