package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultsSmall(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-n", "201", "-reps", "4", "-seed", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P^D (direct)", "P^M (delegation)", "gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllGraphKinds(t *testing.T) {
	kinds := []string{"complete", "star", "regular", "er", "ba", "community", "grid", "ws"}
	for _, kind := range kinds {
		var buf bytes.Buffer
		err := run(context.Background(), []string{"-graph", kind, "-n", "100", "-d", "4", "-reps", "2", "-seed", "3"}, &buf)
		if err != nil {
			t.Errorf("graph %s: %v", kind, err)
		}
	}
}

func TestRunAllMechanisms(t *testing.T) {
	mechs := []string{"direct", "threshold", "greedy", "half", "sampling", "capped"}
	for _, m := range mechs {
		var buf bytes.Buffer
		err := run(context.Background(), []string{"-mechanism", m, "-n", "100", "-d", "4", "-reps", "2", "-seed", "4"}, &buf)
		if err != nil {
			t.Errorf("mechanism %s: %v", m, err)
		}
	}
}

func TestRunAllDistributions(t *testing.T) {
	for _, d := range []string{"uniform", "beta", "truncnorm"} {
		var buf bytes.Buffer
		err := run(context.Background(), []string{"-dist", d, "-n", "80", "-reps", "2"}, &buf)
		if err != nil {
			t.Errorf("dist %s: %v", d, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	tests := [][]string{
		{"-graph", "moebius"},
		{"-mechanism", "oracle"},
		{"-dist", "cauchy"},
		{"-bogus-flag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(context.Background(), append(args, "-n", "50", "-reps", "1"), &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestThresholdFlag(t *testing.T) {
	var buf bytes.Buffer
	// Threshold so large nobody delegates: mean delegators must be 0.
	err := run(context.Background(), []string{"-n", "100", "-threshold", "99", "-reps", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean delegators") {
		t.Fatal("missing delegator row")
	}
}

func TestSaveLoadDotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	dot := filepath.Join(dir, "run.dot")

	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-n", "60", "-reps", "2", "-save", inst, "-dot", dot, "-seed", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := run(context.Background(), []string{"-load", inst, "-reps", "2", "-seed", "5"}, &buf2); err != nil {
		t.Fatal(err)
	}
	// Same instance, same seed: identical election results (title aside).
	if !strings.Contains(buf2.String(), "voters") {
		t.Fatal("loaded run produced no table")
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph delegation") {
		t.Fatal("DOT file missing header")
	}
}

func TestLoadMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-load", "/nonexistent/inst.json"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}
