// Command liquidsim runs a single liquid-democracy election from command
// line flags and reports P^D, P^M, the gain, and the delegation structure.
//
// Example:
//
//	liquidsim -graph complete -n 1000 -mechanism threshold -alpha 0.05 \
//	          -plo 0.3 -phi 0.49 -reps 64 -seed 7
package main

import (
	"context"
	_ "expvar" // registers /debug/vars on the -pprof server
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -pprof server
	"os"
	"os/signal"
	"syscall"
	"time"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
	"liquid/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "liquidsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("liquidsim", flag.ContinueOnError)
	var (
		graphKind = fs.String("graph", "complete", "topology: complete|star|regular|er|ba|community|grid|ws")
		n         = fs.Int("n", 1001, "number of voters")
		d         = fs.Int("d", 8, "degree parameter (regular/ba/er mean degree)")
		mechKind  = fs.String("mechanism", "threshold", "mechanism: direct|threshold|greedy|half|sampling|capped")
		alpha     = fs.Float64("alpha", 0.05, "approval margin")
		threshold = fs.Int("threshold", 0, "approval-set size threshold j(n) (0 = delegate whenever possible)")
		capW      = fs.Int("cap", 16, "max sink weight for -mechanism capped")
		dist      = fs.String("dist", "uniform", "competency distribution: uniform|beta|truncnorm")
		plo       = fs.Float64("plo", 0.30, "competency lower bound")
		phi       = fs.Float64("phi", 0.49, "competency upper bound")
		reps      = fs.Int("reps", 64, "mechanism replications")
		seed      = fs.Uint64("seed", 1, "random seed")
		loadPath  = fs.String("load", "", "load instance JSON instead of generating one")
		savePath  = fs.String("save", "", "save the generated instance as JSON")
		dotPath   = fs.String("dot", "", "write one realized delegation graph as Graphviz DOT")
		manifest  = fs.String("manifest", "", "write the end-of-run manifest JSON to this file")
		pprof     = fs.String("pprof", "", "serve expvar and net/http/pprof on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	start := time.Now()
	if *pprof != "" {
		ln, err := net.Listen("tcp", *pprof)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof: serving expvar and net/http/pprof on http://%s/debug/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	root := rng.New(*seed)
	var in *core.Instance
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		in, err = core.ReadInstance(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		top, err := buildTopology(*graphKind, *n, *d, root.DeriveString("graph"))
		if err != nil {
			return err
		}
		sampler, err := prob.NewCompetencySampler(*dist, *plo, *phi)
		if err != nil {
			return err
		}
		p := make([]float64, top.N())
		compStream := root.DeriveString("competencies")
		for i := range p {
			p[i] = sampler.Sample(compStream)
		}
		in, err = core.NewInstance(top, p)
		if err != nil {
			return err
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := core.WriteInstance(f, in); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	mech, err := buildMechanism(*mechKind, *alpha, *threshold, *d, *capW)
	if err != nil {
		return err
	}

	if *dotPath != "" {
		dg, err := mech.Apply(in, root.DeriveString("dot"))
		if err != nil {
			return err
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := core.WriteDOT(f, in, dg); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// One mechanism is still a sweep of one point: going through the
	// explicit Plan keeps liquidsim on the same pipeline the experiment
	// engine uses, and a future -mechs flag only grows the points slice.
	plan, err := election.NewPlan(in, election.Options{
		Replications: *reps,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	sweep, err := election.EvaluateSweep(ctx, plan, []election.SweepPoint{
		{Mechanism: mech, Seed: *seed},
	})
	if err != nil {
		return err
	}
	res := sweep[0]

	deg := graph.Degrees(in.Topology())
	tab := report.NewTable(fmt.Sprintf("liquidsim: %s on %s(n=%d)", mech.Name(), *graphKind, in.N()),
		"quantity", "value")
	tab.AddRow("voters", report.Itoa(res.N))
	tab.AddRow("degree min/mean/max", fmt.Sprintf("%d / %.1f / %d", deg.Min, deg.Mean, deg.Max))
	tab.AddRow("mean competency", report.F(in.MeanCompetency()))
	tab.AddRow("P^D (direct)", report.F(res.PD))
	tab.AddRow("P^M (delegation)", report.F(res.PM)+" ± "+report.F(res.PMStdErr))
	tab.AddRow("gain", report.F(res.Gain))
	tab.AddRow("gain 95% CI", report.Interval(res.GainLo, res.GainHi))
	tab.AddRow("mean delegators", report.F2(res.MeanDelegators))
	tab.AddRow("mean sinks", report.F2(res.MeanSinks))
	tab.AddRow("mean/max sink weight", report.F2(res.MeanMaxWeight)+" / "+report.Itoa(res.MaxMaxWeight))
	tab.AddRow("mean longest chain", report.F2(res.MeanLongestChain))
	if err := tab.Render(out); err != nil {
		return err
	}

	// The manifest is written after the table so the metrics snapshot covers
	// the whole evaluation; like reproduce, liquidsim only ever reads the
	// registry here at the entry point.
	if *manifest != "" {
		flagVals := make(map[string]string)
		fs.VisitAll(func(f *flag.Flag) { flagVals[f.Name] = f.Value.String() })
		man := telemetry.BuildManifest(telemetry.Default, *seed, flagVals)
		man.WallSeconds = time.Since(start).Seconds()
		if err := man.WriteFile(*manifest); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintf(os.Stderr, "manifest: %s (sha256 %s)\n", *manifest, man.Hash())
	}
	return nil
}

func buildTopology(kind string, n, d int, s *rng.Stream) (graph.Topology, error) {
	switch kind {
	case "complete":
		return graph.NewComplete(n), nil
	case "star":
		return graph.Star(n)
	case "regular":
		if n*d%2 != 0 {
			d++
		}
		return graph.RandomRegular(n, d, s)
	case "er":
		return graph.ErdosRenyi(n, float64(d)/float64(n-1), s)
	case "ba":
		return graph.BarabasiAlbert(n, max(d/2, 1), s)
	case "community":
		return graph.Community(n, 8, math.Min(1, 4*float64(d)/float64(n)), float64(d)/(4*float64(n)), s)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.Grid(side, side)
	case "ws":
		k := d
		if k%2 != 0 {
			k++
		}
		return graph.WattsStrogatz(n, k, 0.2, s)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func buildMechanism(kind string, alpha float64, threshold, d, capW int) (mechanism.Mechanism, error) {
	var th mechanism.ThresholdFunc
	if threshold > 0 {
		th = mechanism.ConstantThreshold(threshold)
	}
	switch kind {
	case "direct":
		return mechanism.Direct{}, nil
	case "threshold":
		return mechanism.ApprovalThreshold{Alpha: alpha, Threshold: th}, nil
	case "greedy":
		return mechanism.GreedyBest{Alpha: alpha}, nil
	case "half":
		return mechanism.HalfNeighborhood{Alpha: alpha}, nil
	case "sampling":
		return mechanism.NeighborSampling{Alpha: alpha, D: d, Threshold: th}, nil
	case "capped":
		return mechanism.WeightCapped{
			Inner:     mechanism.ApprovalThreshold{Alpha: alpha, Threshold: th},
			MaxWeight: capW,
		}, nil
	default:
		return nil, fmt.Errorf("unknown mechanism %q", kind)
	}
}
