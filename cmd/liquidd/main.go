// Command liquidd serves election evaluation over HTTP: POST /v1/evaluate
// runs a mechanism (optionally under a fault model) across an alpha sweep,
// POST /v1/whatif scores one explicit delegation profile, GET /healthz and
// GET /statsz expose liveness and the request accounting. See DESIGN.md
// "Serving layer" for the wire format and the serving invariants.
//
// The daemon is built for partial failure: requests carry deadlines that
// propagate into engine cancellation, a bounded admission queue sheds load
// with 429 + Retry-After before it builds up, worker panics surface as
// typed 500s without taking a shard down, and when a deadline cannot
// afford the exact engine the response degrades to a certified normal
// approximation (flagged, with its error bound) instead of missing the
// deadline.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests run to completion (their deadlines still apply) within
// -drain-grace, then the telemetry manifest is flushed. A drained exit is
// code 0; a failed startup is code 1.
//
// Usage:
//
//	liquidd [-addr host:port] [-shards N] [-queue-depth N] [-max-cost N]
//	        [-cost-rate N] [-deadline d] [-max-deadline d] [-max-body N]
//	        [-replications N] [-workers N] [-drain-grace d]
//	        [-manifest out.json] [-pprof addr]
package main

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on the -pprof server
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -pprof server
	"os"
	"os/signal"
	"syscall"
	"time"

	"liquid/internal/server"
	"liquid/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "liquidd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, errOut io.Writer) error {
	fs := flag.NewFlagSet("liquidd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr       = fs.String("addr", "localhost:8090", "listen address (use :0 for an ephemeral port)")
		shards     = fs.Int("shards", 0, "worker shards (0 = one per CPU core)")
		queueDepth = fs.Int("queue-depth", 0, "per-shard queue depth (0 = default 64)")
		maxCost    = fs.Int64("max-cost", 0, "admission budget in DP units (0 = default 1<<28)")
		costRate   = fs.Float64("cost-rate", 0, "degradation calibration in DP units/sec (0 = default 50e6)")
		deadlineD  = fs.Duration("deadline", 0, "default per-request deadline (0 = 5s)")
		maxDead    = fs.Duration("max-deadline", 0, "cap on requested deadlines (0 = 60s)")
		maxBody    = fs.Int64("max-body", 0, "request body cap in bytes (0 = 1 MiB)")
		reps       = fs.Int("replications", 0, "default sweep replications (0 = 64)")
		workers    = fs.Int("workers", 0, "per-request evaluation workers (0 = 1; parallelism is across requests)")
		drainGrace = fs.Duration("drain-grace", 10*time.Second, "how long a shutdown waits for in-flight requests")
		manifest   = fs.String("manifest", "", "write the telemetry manifest JSON here on shutdown")
		pprof      = fs.String("pprof", "", "serve expvar and net/http/pprof on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()

	if *pprof != "" {
		ln, err := net.Listen("tcp", *pprof)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		fmt.Fprintf(errOut, "pprof: serving on http://%s/debug/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	srv := server.New(server.Config{
		MaxBody:         *maxBody,
		Shards:          *shards,
		QueueDepth:      *queueDepth,
		MaxCost:         *maxCost,
		CostRate:        *costRate,
		DefaultDeadline: *deadlineD,
		MaxDeadline:     *maxDead,
		Replications:    *reps,
		Workers:         *workers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	// The bound address goes out before serving starts so harnesses using
	// :0 can discover the port.
	fmt.Fprintf(errOut, "liquidd: serving on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight handlers finish (their own
	// deadlines still apply), then stop the worker shards.
	fmt.Fprintln(errOut, "liquidd: draining")
	shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drainGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		// Grace expired with requests still in flight: close hard. The
		// manifest below still records what the daemon finished.
		fmt.Fprintln(errOut, "liquidd: drain grace expired, closing:", err)
		_ = httpSrv.Close()
	}
	srv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}

	st := srv.Stats()
	fmt.Fprintf(errOut, "liquidd: drained: received %d = malformed %d + shed %d + completed %d + failed %d + expired %d\n",
		st.Received, st.Malformed, st.Shed, st.Completed, st.Failed, st.Expired)

	if *manifest != "" {
		flagVals := make(map[string]string)
		fs.VisitAll(func(f *flag.Flag) { flagVals[f.Name] = f.Value.String() })
		man := telemetry.BuildManifest(telemetry.Default, 0, flagVals)
		man.WallSeconds = time.Since(start).Seconds()
		if err := man.WriteFile(*manifest); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintf(errOut, "manifest: %s (sha256 %s)\n", *manifest, man.Hash())
	}
	return nil
}
