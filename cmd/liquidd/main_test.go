package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles a package of this module into dir.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// lockedBuffer collects subprocess stderr concurrently with the test
// reading it.
type lockedBuffer struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	done chan struct{}
}

// WaitEOF blocks until the collecting goroutine has seen the pipe close,
// so String() after a cmd.Wait() observes the final lines.
func (b *lockedBuffer) WaitEOF() { <-b.done }

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon launches liquidd on an ephemeral port and returns the bound
// address parsed from its startup line.
func startDaemon(t *testing.T, bin string, extra ...string) (*exec.Cmd, string, *lockedBuffer) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first stderr line announces the bound address; keep draining the
	// pipe afterwards so the daemon never blocks on a full pipe buffer.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "liquidd: serving on http://"); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("liquidd never announced its address (scan err %v)", sc.Err())
	}
	rest := &lockedBuffer{done: make(chan struct{})}
	go func() {
		_, _ = io.Copy(rest, stderr)
		close(rest.done)
	}()
	return cmd, addr, rest
}

// TestServeSmoke is the end-to-end serving gate (`make serve-smoke`): build
// the daemon and the load generator, drive a deterministic load profile
// with offline bit-identity verification, then drain with SIGTERM and
// check the manifest was flushed and the exit code is 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives subprocesses")
	}
	dir := t.TempDir()
	daemon := buildBinary(t, dir, "liquid/cmd/liquidd", "liquidd")
	loader := buildBinary(t, dir, "liquid/cmd/liquidload", "liquidload")
	manifest := filepath.Join(dir, "manifest.json")

	cmd, addr, stderrRest := startDaemon(t, daemon, "-manifest", manifest)
	defer func() { _ = cmd.Process.Kill() }()

	// The load generator exits nonzero if the accounting identity or the
	// bit-identity verification fails, so its exit code is the assertion.
	bench := filepath.Join(dir, "bench_serve.json")
	load := exec.Command(loader,
		"-addr", addr, "-requests", "120", "-rate", "400", "-seed", "7",
		"-whatif-delta-frac", "0.3", "-verify", "-bench", bench)
	out, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("liquidload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "verified") {
		t.Fatalf("liquidload did not verify responses:\n%s", out)
	}
	t.Logf("liquidload:\n%s", out)

	var snap map[string]any
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("bench snapshot not valid JSON: %v", err)
	}
	if snap["schema"] != "liquid-bench-serve/1" {
		t.Fatalf("bench schema = %v", snap["schema"])
	}

	// SIGTERM drains: exit 0, accounting line on stderr, manifest flushed.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(30*time.Second, func() { _ = cmd.Process.Kill() })
	waitErr := cmd.Wait()
	killer.Stop()
	stderrRest.WaitEOF()
	if waitErr != nil {
		t.Fatalf("drained exit: %v\nstderr: %s", waitErr, stderrRest.String())
	}
	if !strings.Contains(stderrRest.String(), "drained: received") {
		t.Fatalf("missing drain accounting line:\n%s", stderrRest.String())
	}

	mdata, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not flushed on drain: %v", err)
	}
	var man map[string]any
	if err := json.Unmarshal(mdata, &man); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if man["schema"] != "liquid-manifest/1" {
		t.Fatalf("manifest schema = %v", man["schema"])
	}
}

// TestSIGTERMDrainWithInFlightRequest holds a request in flight across the
// SIGTERM and asserts the drain waits for it: the response completes, the
// daemon exits 0, and the drained accounting includes it.
func TestSIGTERMDrainWithInFlightRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a subprocess")
	}
	dir := t.TempDir()
	daemon := buildBinary(t, dir, "liquid/cmd/liquidd", "liquidd")
	cmd, addr, stderrRest := startDaemon(t, daemon, "-drain-grace", "30s")
	defer func() { _ = cmd.Process.Kill() }()

	// An instance past the exact-cost limit runs ~1.5s of Monte-Carlo
	// scoring, so the signal reliably lands while the request is in flight.
	n := 3000
	ps := make([]string, n)
	for i := range ps {
		ps[i] = "0.51"
	}
	body := fmt.Sprintf(`{"instance": {"n": %d, "complete": true, "p": [%s]}, "mechanism": {"name": "approval-threshold", "alpha": 0.05}, "replications": 16, "deadline_ms": 10000}`,
		n, strings.Join(ps, ","))

	type result struct {
		out []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := httpPost("http://"+addr+"/v1/evaluate", body)
		done <- result{out, err}
	}()
	time.Sleep(300 * time.Millisecond) // request in flight
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed across drain: %v", res.err)
	}
	if !bytes.Contains(res.out, []byte(`"results"`)) {
		t.Fatalf("in-flight request did not complete: %s", res.out)
	}

	killer := time.AfterFunc(30*time.Second, func() { _ = cmd.Process.Kill() })
	waitErr := cmd.Wait()
	killer.Stop()
	stderrRest.WaitEOF()
	if waitErr != nil {
		t.Fatalf("drained exit: %v\nstderr: %s", waitErr, stderrRest.String())
	}
	if !strings.Contains(stderrRest.String(), "completed 1") {
		t.Fatalf("drain accounting missing the in-flight completion:\n%s", stderrRest.String())
	}
}

// httpPost is a minimal JSON POST returning the response body; any non-200
// status is an error.
func httpPost(url, body string) ([]byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return data, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return data, nil
}
