// Command liquidlint is the repository's multichecker: it runs the custom
// determinism and hygiene analyzers from internal/lint over the module and
// fails the build on violations. It is part of `make check` (between vet and
// test); see DESIGN.md "Static invariants" for what each analyzer guards.
//
// Usage:
//
//	liquidlint [-json] [-disable name,name] [-list] [packages]
//
// With no package arguments it analyzes ./... . Exit status: 0 clean,
// 1 findings, 2 usage or load failure. Findings print as
// file:line:col: analyzer: message, or as a JSON array with -json.
// Suppress an individual finding with a justified annotation:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"liquid/internal/lint/analysis"
	"liquid/internal/lint/ctxflow"
	"liquid/internal/lint/floatacc"
	"liquid/internal/lint/load"
	"liquid/internal/lint/maporder"
	"liquid/internal/lint/seedflow"
	"liquid/internal/lint/telemflow"
	"liquid/internal/lint/walltime"
)

// analyzers is the full suite, in documentation order.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	seedflow.Analyzer,
	walltime.Analyzer,
	ctxflow.Analyzer,
	floatacc.Analyzer,
	telemflow.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker; split from main for testing.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("liquidlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		disable = fs.String("disable", "", "comma-separated analyzer names to skip")
		list    = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: liquidlint [-json] [-disable name,name] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	active, err := selectAnalyzers(*disable)
	if err != nil {
		fmt.Fprintln(errOut, "liquidlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "liquidlint:", err)
		return 2
	}
	var targets []*analysis.Target
	loadBroken := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			// A package that fails to type-check must not pass lint silently.
			fmt.Fprintf(errOut, "liquidlint: %s: %v\n", p.ImportPath, te)
			loadBroken = true
		}
		targets = append(targets, &analysis.Target{
			Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info,
		})
	}
	if loadBroken {
		return 2
	}

	diags, err := analysis.Run(targets, active)
	if err != nil {
		fmt.Fprintln(errOut, "liquidlint:", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(errOut, "liquidlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "liquidlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite by the -disable flag.
func selectAnalyzers(disable string) ([]*analysis.Analyzer, error) {
	skip := make(map[string]bool)
	for _, name := range strings.Split(disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	known := make(map[string]bool, len(analyzers))
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		known[a.Name] = true
		if !skip[a.Name] {
			active = append(active, a)
		}
	}
	for name := range skip {
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q in -disable (have: maporder, seedflow, walltime, ctxflow, floatacc, telemflow)", name)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("-disable turned off every analyzer")
	}
	return active, nil
}
