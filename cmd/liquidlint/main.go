// Command liquidlint is the repository's multichecker: it runs the custom
// determinism and hygiene analyzers from internal/lint over the module and
// fails the build on violations. It is part of `make check` (between vet and
// test); see DESIGN.md "Static invariants" for what each analyzer guards.
//
// Usage:
//
//	liquidlint [-json] [-only name,name] [-disable name,name] [-cache dir] [-list] [packages]
//
// With no package arguments it analyzes ./... . Packages are analyzed in
// dependency order so the fact-based analyzers (lockorder, goroleak,
// hotalloc, walltime, seedflow) can reason across package boundaries;
// packages pulled in only as dependencies of the named patterns are analyzed
// for facts but report no diagnostics of their own. With -cache, per-package
// results and facts are reused across runs, keyed on a content hash of the
// package, its dependency cone, and the lint tree itself, so incremental
// runs only re-analyze what changed.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings print
// as file:line:col: analyzer: message, or with -json as a schema-stable
// object {version, analyzers, diagnostics, suppressions} with diagnostics
// sorted by position — the format LINT.baseline pins in make check. A
// summary of live suppressions goes to stderr.
//
// Suppress an individual finding with a justified annotation:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line, the line above it, or the first line of the
// enclosing multi-line statement. Unused or reasonless directives are
// themselves findings, reported under the lintdirective pseudo-analyzer.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"liquid/internal/lint/analysis"
	"liquid/internal/lint/ctxflow"
	"liquid/internal/lint/floatacc"
	"liquid/internal/lint/goroleak"
	"liquid/internal/lint/hotalloc"
	"liquid/internal/lint/load"
	"liquid/internal/lint/lockorder"
	"liquid/internal/lint/maporder"
	"liquid/internal/lint/seedflow"
	"liquid/internal/lint/telemflow"
	"liquid/internal/lint/walltime"
)

// jsonVersion is bumped whenever the -json schema changes shape, so baseline
// diffs fail loudly instead of misreading fields.
const jsonVersion = 1

// analyzers is the full ten-analyzer suite, in documentation order. The
// lintdirective entry is a framework pseudo-analyzer: directive auditing
// runs inside analysis.RunPackage, and listing it here makes its name
// addressable by -only/-disable and -list.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	seedflow.Analyzer,
	walltime.Analyzer,
	ctxflow.Analyzer,
	floatacc.Analyzer,
	telemflow.Analyzer,
	lockorder.Analyzer,
	goroleak.Analyzer,
	hotalloc.Analyzer,
	analysis.Directive,
}

// report is the -json output schema. Field order, sorted diagnostics, and
// json's sorted map keys make the encoding byte-stable for a given tree.
type report struct {
	Version      int                   `json:"version"`
	Analyzers    []string              `json:"analyzers"`
	Diagnostics  []analysis.Diagnostic `json:"diagnostics"`
	Suppressions map[string]int        `json:"suppressions"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker; split from main for testing.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("liquidlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as a schema-stable JSON object")
		only     = fs.String("only", "", "comma-separated analyzer names to run exclusively")
		disable  = fs.String("disable", "", "comma-separated analyzer names to skip")
		cacheDir = fs.String("cache", "", "directory for the per-package analysis cache")
		list     = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: liquidlint [-json] [-only name,name] [-disable name,name] [-cache dir] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	active, err := selectAnalyzers(*only, *disable)
	if err != nil {
		fmt.Fprintln(errOut, "liquidlint:", err)
		return 2
	}
	activeNames := make([]string, len(active))
	activeSet := make(map[string]bool, len(active))
	for i, a := range active {
		activeNames[i] = a.Name
		activeSet[a.Name] = true
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.List(".", patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "liquidlint:", err)
		return 2
	}

	cache, err := load.NewCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(errOut, "liquidlint:", err)
		return 2
	}
	keys := load.Keys(pkgs, suiteSalt(activeNames, pkgs))

	store := analysis.NewFactStore(active)
	total := &analysis.Result{Suppressions: make(map[string]int)}
	loadBroken := false
	for _, p := range pkgs {
		key := keys[p.ImportPath]
		if entry, hit := cache.Get(p.ImportPath, key); hit {
			if err := store.DecodePackage(p.ImportPath, entry.Facts); err == nil {
				if !p.DepOnly {
					total.Diagnostics = append(total.Diagnostics, entry.Diagnostics...)
					for name, n := range entry.Suppressions {
						total.Suppressions[name] += n
					}
				}
				continue
			}
			// Undecodable facts: fall through to a clean re-analysis.
		}
		if err := p.Load(); err != nil {
			if p.DepOnly {
				fmt.Fprintf(errOut, "liquidlint: warning: dependency %s: %v (its facts are unavailable)\n", p.ImportPath, err)
				continue
			}
			fmt.Fprintln(errOut, "liquidlint:", err)
			return 2
		}
		if len(p.TypeErrors) > 0 && !p.DepOnly {
			// A package that fails to type-check must not pass lint silently.
			for _, te := range p.TypeErrors {
				fmt.Fprintf(errOut, "liquidlint: %s: %v\n", p.ImportPath, te)
			}
			loadBroken = true
			continue
		}
		res, err := analysis.RunPackage(&analysis.Target{
			Path: p.ImportPath, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info,
			Imports: p.Imports,
		}, active, store)
		if err != nil {
			fmt.Fprintln(errOut, "liquidlint:", err)
			return 2
		}
		facts, err := store.EncodePackage(p.ImportPath)
		if err == nil {
			// Cache write failures only cost speed, never correctness.
			_ = cache.Put(p.ImportPath, &load.Entry{
				Key: key, Diagnostics: res.Diagnostics, Suppressions: res.Suppressions, Facts: facts,
			})
		}
		if !p.DepOnly {
			total.Diagnostics = append(total.Diagnostics, res.Diagnostics...)
			for name, n := range res.Suppressions {
				total.Suppressions[name] += n
			}
		}
	}
	if loadBroken {
		return 2
	}

	diags := total.Diagnostics[:0]
	for _, d := range total.Diagnostics {
		if activeSet[d.Analyzer] {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	if n := len(total.Suppressions); n > 0 {
		parts := make([]string, 0, n)
		for name := range total.Suppressions {
			parts = append(parts, name)
		}
		sort.Strings(parts)
		for i, name := range parts {
			parts[i] = fmt.Sprintf("%s=%d", name, total.Suppressions[name])
		}
		fmt.Fprintf(errOut, "liquidlint: live suppressions: %s\n", strings.Join(parts, " "))
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Version:      jsonVersion,
			Analyzers:    activeNames,
			Diagnostics:  diags,
			Suppressions: total.Suppressions,
		}); err != nil {
			fmt.Fprintln(errOut, "liquidlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "liquidlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// suiteSalt derives the cache-key salt from the schema version, the active
// analyzer set, and the content of the lint tree itself, so editing an
// analyzer — not just the analyzed code — invalidates cached results.
func suiteSalt(activeNames []string, pkgs []*load.Package) string {
	h := sha256.New()
	fmt.Fprintf(h, "liquidlint v%d\nactive %s\n", jsonVersion, strings.Join(activeNames, ","))
	for _, p := range pkgs {
		if strings.HasPrefix(p.ImportPath, "liquid/internal/lint") || p.ImportPath == "liquid/cmd/liquidlint" {
			fmt.Fprintf(h, "lintpkg %s %s\n", p.ImportPath, p.Sum)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// selectAnalyzers filters the suite by the -only and -disable flags.
func selectAnalyzers(only, disable string) ([]*analysis.Analyzer, error) {
	if only != "" && disable != "" {
		return nil, fmt.Errorf("-only and -disable are mutually exclusive")
	}
	known := make(map[string]bool, len(analyzers))
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		known[a.Name] = true
		names[i] = a.Name
	}
	parse := func(flagName, value string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, name := range strings.Split(value, ",") {
			if name = strings.TrimSpace(name); name != "" {
				if !known[name] {
					return nil, fmt.Errorf("unknown analyzer %q in %s (have: %s)", name, flagName, strings.Join(names, ", "))
				}
				set[name] = true
			}
		}
		return set, nil
	}
	var active []*analysis.Analyzer
	switch {
	case only != "":
		keep, err := parse("-only", only)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			if keep[a.Name] {
				active = append(active, a)
			}
		}
	default:
		skip, err := parse("-disable", disable)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			if !skip[a.Name] {
				active = append(active, a)
			}
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return active, nil
}
