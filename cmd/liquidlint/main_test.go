package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the smoke test required by the lint gate: the full
// ten-analyzer suite over the whole module must report nothing on stdout.
// The live-suppression summary goes to stderr and must account for exactly
// the justified floatacc ignores the tree carries. The test runs from
// cmd/liquidlint, so name the module explicitly rather than ./... .
func TestRepoIsClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"liquid/..."}, &out, &errOut); code != 0 {
		t.Fatalf("liquidlint liquid/... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "live suppressions: floatacc=4") {
		t.Fatalf("suppression summary missing or wrong (want floatacc=4):\n%s", errOut.String())
	}
}

// TestFindingsExitOne drives the checker over a fixture module that is known
// to contain violations and checks the findings path end to end.
func TestFindingsExitOne(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	code := run([]string{"./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "maporder:") {
		t.Fatalf("findings output missing maporder diagnostics:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Fatalf("findings output missing summary line:\n%s", out.String())
	}
}

// TestJSONOutput checks that -json emits the schema-stable report object:
// version, the analyzer roster, sorted diagnostics, and suppressions — the
// exact shape LINT.baseline pins.
func TestJSONOutput(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if rep.Version != jsonVersion {
		t.Fatalf("version %d, want %d", rep.Version, jsonVersion)
	}
	if len(rep.Analyzers) != len(analyzers) {
		t.Fatalf("analyzer roster has %d entries, want %d: %v", len(rep.Analyzers), len(analyzers), rep.Analyzers)
	}
	if len(rep.Diagnostics) == 0 {
		t.Fatal("-json produced no diagnostics for a fixture with violations")
	}
	sawMaporder := false
	for i, d := range rep.Diagnostics {
		if d.Analyzer == "maporder" {
			sawMaporder = true
		}
		if i > 0 {
			prev := rep.Diagnostics[i-1]
			if prev.File > d.File || (prev.File == d.File && prev.Line > d.Line) {
				t.Fatalf("diagnostics not sorted: %v before %v", prev, d)
			}
		}
	}
	if !sawMaporder {
		t.Fatalf("no maporder diagnostics in %v", rep.Diagnostics)
	}
}

// TestOnly restricts the run to a single analyzer.
func TestOnly(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "maporder", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-only maporder: exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "maporder:") {
		t.Fatalf("-only maporder produced no maporder findings:\n%s", out.String())
	}
	out.Reset()
	// -only an analyzer that is quiet on this fixture: clean exit.
	if code := run([]string{"-only", "lockorder", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-only lockorder: exit %d, want 0\nstdout:\n%s", code, out.String())
	}
}

// TestOnlyDisableConflict: the two selection flags are mutually exclusive.
func TestOnlyDisableConflict(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "maporder", "-disable", "seedflow", "liquid/..."}, &out, &errOut); code != 2 {
		t.Fatalf("-only with -disable: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Fatalf("missing mutual-exclusion error:\n%s", errOut.String())
	}
}

// TestDisable checks per-analyzer disable: turning maporder off silences the
// fixture's only violations.
func TestDisable(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	if code := run([]string{"-disable", "maporder", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0 with maporder disabled\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// TestDisableValidation checks flag hygiene: unknown names and disabling
// everything are usage errors, not silent successes.
func TestDisableValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-disable", "nosuch", "liquid/..."}, &out, &errOut); code != 2 {
		t.Fatalf("unknown -disable name: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("missing unknown-analyzer error:\n%s", errOut.String())
	}
	errOut.Reset()
	all := "maporder,seedflow,walltime,ctxflow,floatacc,telemflow,lockorder,goroleak,hotalloc,lintdirective"
	if code := run([]string{"-disable", all, "liquid/..."}, &out, &errOut); code != 2 {
		t.Fatalf("disabling every analyzer: exit %d, want 2", code)
	}
}

// TestList checks that -list names the full ten-analyzer suite.
func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{
		"maporder", "seedflow", "walltime", "ctxflow", "floatacc", "telemflow",
		"lockorder", "goroleak", "hotalloc", "lintdirective",
	} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestCacheWarmRunMatchesCold: with -cache, a second run over an unchanged
// tree is served from the cache and must produce byte-identical output —
// including findings and the suppression summary.
func TestCacheWarmRunMatchesCold(t *testing.T) {
	cacheDir := t.TempDir()
	t.Chdir("../../internal/lint/maporder/testdata")
	var cold, coldErr bytes.Buffer
	if code := run([]string{"-cache", cacheDir, "./..."}, &cold, &coldErr); code != 1 {
		t.Fatalf("cold run: exit %d, want 1\nstderr:\n%s", code, coldErr.String())
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run left no cache entries (err=%v)", err)
	}
	var warm, warmErr bytes.Buffer
	if code := run([]string{"-cache", cacheDir, "./..."}, &warm, &warmErr); code != 1 {
		t.Fatalf("warm run: exit %d, want 1\nstderr:\n%s", code, warmErr.String())
	}
	if cold.String() != warm.String() {
		t.Fatalf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

// TestCacheCorruptionDegrades: trashing every cache entry must not change
// the outcome — corrupt entries are misses, re-analyzed cleanly.
func TestCacheCorruptionDegrades(t *testing.T) {
	cacheDir := t.TempDir()
	t.Chdir("../../internal/lint/maporder/testdata")
	var cold bytes.Buffer
	if code := run([]string{"-cache", cacheDir, "./..."}, &cold, &bytes.Buffer{}); code != 1 {
		t.Fatalf("cold run: exit %d, want 1", code)
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(cacheDir, e.Name()), []byte("{corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var again bytes.Buffer
	if code := run([]string{"-cache", cacheDir, "./..."}, &again, &bytes.Buffer{}); code != 1 {
		t.Fatalf("run over corrupt cache: exit %d, want 1", code)
	}
	if cold.String() != again.String() {
		t.Fatalf("corrupt cache changed the findings:\ncold:\n%s\nagain:\n%s", cold.String(), again.String())
	}
}
