package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"liquid/internal/lint/analysis"
)

// TestRepoIsClean is the smoke test required by the lint gate: the full
// analyzer suite over the whole module must report nothing. The test runs
// from cmd/liquidlint, so name the module explicitly rather than ./... .
func TestRepoIsClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"liquid/..."}, &out, &errOut); code != 0 {
		t.Fatalf("liquidlint liquid/... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", out.String())
	}
}

// TestFindingsExitOne drives the checker over a fixture module that is known
// to contain violations and checks the findings path end to end.
func TestFindingsExitOne(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	code := run([]string{"./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "maporder:") {
		t.Fatalf("findings output missing maporder diagnostics:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Fatalf("findings output missing summary line:\n%s", out.String())
	}
}

// TestJSONOutput checks that -json emits a decodable array of diagnostics.
func TestJSONOutput(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array for a fixture with violations")
	}
	for _, d := range diags {
		if d.Analyzer != "maporder" {
			t.Fatalf("unexpected analyzer %q in %v", d.Analyzer, d)
		}
	}
}

// TestDisable checks per-analyzer disable: turning maporder off silences the
// fixture's only violations.
func TestDisable(t *testing.T) {
	t.Chdir("../../internal/lint/maporder/testdata")
	var out, errOut bytes.Buffer
	if code := run([]string{"-disable", "maporder", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0 with maporder disabled\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// TestDisableValidation checks flag hygiene: unknown names and disabling
// everything are usage errors, not silent successes.
func TestDisableValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-disable", "nosuch", "liquid/..."}, &out, &errOut); code != 2 {
		t.Fatalf("unknown -disable name: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("missing unknown-analyzer error:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-disable", "maporder,seedflow,walltime,ctxflow,floatacc,telemflow", "liquid/..."}, &out, &errOut); code != 2 {
		t.Fatalf("disabling every analyzer: exit %d, want 2", code)
	}
}

// TestList checks that -list names all six analyzers.
func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"maporder", "seedflow", "walltime", "ctxflow", "floatacc", "telemflow"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
