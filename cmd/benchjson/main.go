// Command benchjson runs the repository benchmark suite and records a
// schema-stable JSON snapshot of the results as BENCH_<n>.json in the
// repository root, picking the next free index. Committing one snapshot
// per perf-relevant PR builds a benchmark trajectory that later sessions
// (and reviewers) can diff without re-running older code.
//
// The schema is deliberately small and append-only:
//
//	{
//	  "schema": "liquid-bench/1",
//	  "go": "go1.24.x",
//	  "git_rev": "<producing commit, or "unknown">",
//	  "manifest_sha256": "<hash of the run's telemetry manifest>",
//	  "benchmarks": [
//	    {"name": "BenchmarkPoissonBinomialPMF", "iterations": 6682,
//	     "ns_per_op": 311315, "b_per_op": 24, "allocs_per_op": 0},
//	    ...
//	  ]
//	}
//
// ns_per_op/b_per_op/allocs_per_op are as printed by `go test -bench`;
// b_per_op and allocs_per_op are -1 when the line carried no -benchmem
// columns. Timings are machine-dependent — trajectories are meaningful on
// one machine, ratios approximately across machines.
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime d] [-dir path] [-dry-run]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"liquid/internal/telemetry"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshot is the BENCH_<n>.json document. GitRev and ManifestSHA256 tie a
// snapshot to the commit and the telemetry manifest of the run that
// produced it, so a trajectory entry is attributable after the fact.
type snapshot struct {
	Schema         string      `json:"schema"`
	Go             string      `json:"go"`
	GitRev         string      `json:"git_rev"`
	ManifestSHA256 string      `json:"manifest_sha256"`
	Benchmarks     []benchLine `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "benchtime passed to go test")
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
	dryRun := flag.Bool("dry-run", false, "print the snapshot to stdout instead of writing a file")
	flag.Parse()

	lines, err := runBenchmarks(*bench, *benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}
	// The manifest records this benchjson run itself (flags, timings, git
	// rev); its hash lands in the snapshot so BENCH_<n>.json entries are
	// attributable to a concrete, reconstructible run configuration.
	flagVals := make(map[string]string)
	flag.VisitAll(func(f *flag.Flag) { flagVals[f.Name] = f.Value.String() })
	man := telemetry.BuildManifest(telemetry.Default, 0, flagVals)
	snap := snapshot{
		Schema:         "liquid-bench/1",
		Go:             runtime.Version(),
		GitRev:         telemetry.GitRev(),
		ManifestSHA256: man.Hash(),
		Benchmarks:     lines,
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *dryRun {
		os.Stdout.Write(out)
		return
	}
	path, err := nextSnapshotPath(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(lines))
}

// runBenchmarks executes the suite and parses the result lines.
func runBenchmarks(bench, benchtime string) ([]benchLine, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", "./...")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var lines []benchLine
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the human-readable stream visible
		if b, ok := parseBenchLine(line); ok {
			lines = append(lines, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return lines, nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo-8   1234   5678 ns/op   90 B/op   1 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots compare across
// machines with different core counts.
func parseBenchLine(line string) (benchLine, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchLine{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchLine{}, false
	}
	b := benchLine{Name: name, Iterations: iters, BPerOp: -1, AllocsPerOp: -1}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchLine{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp == 0 {
		return benchLine{}, false
	}
	return b, true
}

// nextSnapshotPath returns BENCH_<n>.json for the smallest unused n >= 1.
func nextSnapshotPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%03d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("no free BENCH_<n>.json index in %s", dir)
}
