# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet lint lint-facts lint-baseline test test-short test-race test-faults cover fuzz-smoke bench bench-smoke bench-json bench-large bench-serve serve-smoke reproduce reproduce-fast examples fmt

all: check

# check is the gate for a change, in order: compile, go vet, the repo's own
# determinism analyzers (cmd/liquidlint — see DESIGN.md "Static invariants"),
# the lint baseline ratchet (lint-facts), tests, the race detector over the
# parallel engine and election sampling, the coverage floor against
# COVERAGE.baseline, a short fuzz pass over the simulator's
# message-validation invariants and the convolution kernels, and a
# one-iteration smoke run of the kernel benchmarks (catches crashes in
# benchmark-only code paths, not timings).
# Lint sits between vet and test so cheap structural violations fail the
# gate before the expensive suites run. The recipe runs every stage it can
# reach, prints a one-line pass/fail summary, and exits nonzero on the
# first failure (later stages report as skip).
check:
	@rc=0; summary=""; \
	for stage in build vet lint lint-facts test test-race cover fuzz-smoke bench-smoke serve-smoke; do \
		if [ $$rc -ne 0 ]; then summary="$$summary $$stage:skip"; continue; fi; \
		echo "== $$stage"; \
		if $(MAKE) --no-print-directory $$stage; then summary="$$summary $$stage:ok"; \
		else summary="$$summary $$stage:FAIL"; rc=1; fi; \
	done; \
	echo "check:$$summary"; exit $$rc

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the determinism multichecker over the module with the
# per-package cache, so incremental runs only re-analyze packages whose
# content hash (or dependency cone, or the lint tree itself) changed.
# Suppress an individual finding with `//lint:ignore <analyzer> <reason>`
# on or above the flagged line; disable a whole analyzer with -disable for
# triage, or run one with -only while developing it.
lint:
	$(GO) run ./cmd/liquidlint -cache .lintcache ./...

# lint-facts is the baseline ratchet: the schema-stable -json report
# (analyzer roster, sorted findings, live suppressions) must match the
# committed LINT.baseline byte for byte. New findings, new suppressions,
# and roster changes all fail here until LINT.baseline is regenerated
# deliberately with `make lint-baseline` — same contract as
# COVERAGE.baseline: the committed file is the decision record.
lint-facts:
	@$(GO) run ./cmd/liquidlint -cache .lintcache -json ./... > .lint.report.json 2>/dev/null; st=$$?; \
	if [ $$st -ge 2 ]; then rm -f .lint.report.json; $(GO) run ./cmd/liquidlint -cache .lintcache -json ./...; exit $$st; fi; \
	if diff -u LINT.baseline .lint.report.json; then \
		echo "lint-facts: report matches LINT.baseline"; rm -f .lint.report.json; \
	else \
		echo "lint-facts: report drifted from committed LINT.baseline — fix the findings, or regenerate deliberately with 'make lint-baseline'"; \
		rm -f .lint.report.json; exit 1; \
	fi

lint-baseline:
	@$(GO) run ./cmd/liquidlint -json ./... > LINT.baseline; st=$$?; \
	if [ $$st -ge 2 ]; then exit $$st; fi; \
	echo "wrote LINT.baseline"

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# test-faults exercises just the fault-injection stack: the fault plans and
# recovery policies, the crash-tolerant convergecast, and the engine's
# panic/retry hardening.
test-faults:
	$(GO) test ./internal/fault/... ./internal/localsim/... ./internal/engine/...

# cover runs the suite with statement coverage (-short: the expensive
# cross-binary byte-identity test re-runs under plain `test`), prints the
# per-package summary, and enforces a floor: total statement coverage must
# not drop below COVERAGE.baseline. The baseline is a deliberately
# committed number — raise it when coverage genuinely improves, never
# lower it to make a regression pass.
cover:
	@$(GO) test -short -count=1 -coverprofile=coverage.out ./... > coverage.pkgs 2>&1 || { cat coverage.pkgs; rm -f coverage.pkgs; exit 1; }
	@grep -v 'no test files' coverage.pkgs || true; rm -f coverage.pkgs
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/{sub(/%/,"",$$3); print $$3}'); \
	base=$$(cat COVERAGE.baseline); \
	echo "coverage: total $$total% (baseline floor $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN{exit (t+0 < b+0) ? 1 : 0}' || \
		{ echo "coverage: total $$total% fell below committed baseline $$base% — add tests or (deliberately) update COVERAGE.baseline"; exit 1; }

# fuzz-smoke is a short deterministic-budget fuzz pass (also part of check):
# the simulator's message validation, the divide-and-conquer convolution
# kernels against the naive DP reference, and the approximation ladder's
# certified intervals against the exact DP answer.
fuzz-smoke:
	$(GO) test ./internal/localsim -run='^$$' -fuzz=FuzzMessageValidation -fuzztime=5s
	$(GO) test ./internal/prob -run='^$$' -fuzz=FuzzConvolutionEquivalence -fuzztime=5s
	$(GO) test ./internal/prob -run='^$$' -fuzz=FuzzLadderSoundness -fuzztime=5s
	$(GO) test ./internal/server -run='^$$' -fuzz=FuzzDecodeEvaluateRequest -fuzztime=5s
	$(GO) test ./internal/election -run='^$$' -fuzz=FuzzDeltaEquivalence -fuzztime=5s

# serve-smoke is the end-to-end serving gate (also part of check): build
# liquidd and liquidload, drive a deterministic load profile against a
# live daemon with offline bit-identity verification, then drain with
# SIGTERM and check the manifest flush and exit code.
serve-smoke:
	$(GO) test ./cmd/liquidd -run='^TestServeSmoke$$' -count=1

# bench-serve runs the load generator against a fresh daemon and writes
# the schema-stable serving snapshots: BENCH_SERVE_001.json is the base
# evaluate-heavy profile, BENCH_SERVE_002.json the delta-what-if-heavy mix
# that measures the incremental serving win (latency percentiles,
# throughput, outcome mix); see README "Benchmark trajectory".
bench-serve:
	@$(GO) build -o /tmp/liquidd.bench ./cmd/liquidd
	@$(GO) build -o /tmp/liquidload.bench ./cmd/liquidload
	@/tmp/liquidd.bench -addr 127.0.0.1:0 2>/tmp/liquidd.bench.log & \
	pid=$$!; \
	for i in $$(seq 50); do grep -q 'serving on' /tmp/liquidd.bench.log && break; sleep 0.1; done; \
	addr=$$(sed -n 's|.*serving on http://||p' /tmp/liquidd.bench.log | head -1); \
	/tmp/liquidload.bench -addr $$addr -requests 400 -rate 800 -seed 1 -verify -bench BENCH_SERVE_001.json; rc=$$?; \
	if [ $$rc -eq 0 ]; then \
		/tmp/liquidload.bench -addr $$addr -requests 400 -rate 800 -seed 2 -whatif-delta-frac 0.5 -verify -bench BENCH_SERVE_002.json; rc=$$?; \
	fi; \
	kill -TERM $$pid; wait $$pid; exit $$rc

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs the exact-engine kernel benchmarks for a single
# iteration each: a crash check over benchmark-only code, cheap enough for
# the check gate. Timings from one iteration are meaningless; use
# bench/bench-json for numbers.
bench-smoke:
	$(GO) test -run='^$$' -benchtime=1x -bench='^(BenchmarkPoissonBinomialPMF|BenchmarkWeightedMajorityDP|BenchmarkResolutionScoreCached|BenchmarkEvaluateMechanismSmall|BenchmarkEvaluateSweepSmall|BenchmarkDeltaSingleVoter2000|BenchmarkDeltaChurn2000|BenchmarkLadderMajority100000)$$' .

# bench-json runs the full benchmark suite and appends a schema-stable
# snapshot BENCH_<n>.json (next free index) for trajectory tracking across
# PRs; see cmd/benchjson and README "Benchmark trajectory".
bench-json:
	$(GO) run ./cmd/benchjson

# bench-large snapshots the million-voter scale tier only: the streamed
# certified ladder and the chunk-folded mechanism evaluation at n = 10^5
# and 10^6 (see DESIGN.md §16 and README "Benchmark trajectory").
bench-large:
	$(GO) run ./cmd/benchjson -bench '^(BenchmarkLadderMajority|BenchmarkScaleEvaluateMajority)(100000|1000000)$$'

# Regenerate every paper experiment at full scale (deterministic, seed 1).
reproduce:
	$(GO) run ./cmd/reproduce -scale 1 -seed 1

reproduce-fast:
	$(GO) run ./cmd/reproduce -scale 0.25 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/daogovernance
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/localprotocol
	$(GO) run ./examples/equilibrium
	$(GO) run ./examples/learningcurve
	$(GO) run ./examples/distributedelection

fmt:
	gofmt -w .
