# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test test-short test-race test-faults fuzz-smoke bench reproduce reproduce-fast examples fmt

all: check

# check is the gate for a change: compile, static checks, tests, the race
# detector over the parallel engine and election sampling, and a short
# fuzz pass over the simulator's message-validation invariants.
check: build vet test test-race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# test-faults exercises just the fault-injection stack: the fault plans and
# recovery policies, the crash-tolerant convergecast, and the engine's
# panic/retry hardening.
test-faults:
	$(GO) test ./internal/fault/... ./internal/localsim/... ./internal/engine/...

# fuzz-smoke is a short deterministic-budget fuzz pass (also part of check).
fuzz-smoke:
	$(GO) test ./internal/localsim -run='^$$' -fuzz=FuzzMessageValidation -fuzztime=5s

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper experiment at full scale (deterministic, seed 1).
reproduce:
	$(GO) run ./cmd/reproduce -scale 1 -seed 1

reproduce-fast:
	$(GO) run ./cmd/reproduce -scale 0.25 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/daogovernance
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/localprotocol
	$(GO) run ./examples/equilibrium
	$(GO) run ./examples/learningcurve
	$(GO) run ./examples/distributedelection

fmt:
	gofmt -w .
