# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test test-short test-race bench reproduce reproduce-fast examples fmt

all: check

# check is the gate for a change: compile, static checks, tests, and the
# race detector over the parallel engine and election sampling.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper experiment at full scale (deterministic, seed 1).
reproduce:
	$(GO) run ./cmd/reproduce -scale 1 -seed 1

reproduce-fast:
	$(GO) run ./cmd/reproduce -scale 0.25 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/daogovernance
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/localprotocol
	$(GO) run ./examples/equilibrium
	$(GO) run ./examples/learningcurve
	$(GO) run ./examples/distributedelection

fmt:
	gofmt -w .
