package prob

// The approximation ladder. Million-voter electorates cannot afford — and do
// not need — the exact kernels: the normal approximation's certified error
// shrinks like 1/sqrt(n), so beyond a few thousand voters a rigorous interval
// of width far below any experimental tolerance costs one O(n) streaming pass
// instead of an O(n log^2 n) convolution tree. The ladder puts the three
// evaluation strategies behind one entry point:
//
//	exact DP   — the quadratic convolution DP, error exactly 0;
//	FFT D&C    — the divide-and-conquer evaluator with FFT merges, error
//	             bounded by the kernel's cross-validated total-variation
//	             budget (FuzzConvolutionEquivalence enforces it);
//	normal     — the Berry–Esseen-certified normal approximation intersected
//	             with the one-sided Hoeffding tail bound, from one streaming
//	             moments pass that never materialises the electorate.
//
// LadderMajority auto-selects the cheapest tier whose certified half-width
// fits the caller's error budget, and every tier returns a CertifiedInterval
// — a point estimate plus a machine-checkable rigorous half-width — instead
// of a bare float. The metamorphic property tests in ladder_test.go and the
// FuzzLadderSoundness target hold every tier to the containment contract:
// the exact value always lies inside any cheaper tier's interval.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
)

// Tier identifies a rung of the approximation ladder.
type Tier int

const (
	// TierAuto selects the cheapest tier whose certified half-width fits the
	// error budget (the zero value, so LadderOptions defaults to it).
	TierAuto Tier = iota
	// TierExact is the quadratic convolution DP: half-width exactly 0.
	TierExact
	// TierFFT is the divide-and-conquer evaluator with FFT merges:
	// half-width FFTTierErrorBudget.
	TierFFT
	// TierNormal is the certified normal approximation: half-width from the
	// Berry–Esseen bound intersected with the Hoeffding tail bound.
	TierNormal
)

// String returns the tier's wire name (stable; the serving layer reports it).
func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierExact:
		return "exact"
	case TierFFT:
		return "fft"
	case TierNormal:
		return "normal"
	default:
		return "unknown"
	}
}

// FFTTierErrorBudget is the certified half-width of a TierFFT result: the
// total-variation budget the D&C evaluator is held to against the naive DP
// (FuzzConvolutionEquivalence in `make check` fuzz-smoke; observed error is
// ~1e-15, the budget leaves six orders of headroom). Total-variation distance
// dominates any tail-sum difference, so the majority mass inherits it.
const FFTTierErrorBudget = 1e-9

// ErrBudgetInfeasible reports that no ladder tier could certify the requested
// error budget within the cost constraints. The interval returned alongside
// it is still valid — the tightest certified one available — so callers that
// prefer degraded answers over refusals (the serving layer) can use it.
var ErrBudgetInfeasible = errors.New("prob: error budget infeasible within cost constraints")

// CertifiedInterval is a point estimate of a probability together with a
// rigorous half-width: the exact value provably lies in [Lo, Hi]. Tier
// records which rung produced it.
type CertifiedInterval struct {
	Point     float64
	HalfWidth float64
	Tier      Tier
}

// Lo returns the interval's lower bound, clamped to the probability domain.
func (ci CertifiedInterval) Lo() float64 { return clamp01(ci.Point - ci.HalfWidth) }

// Hi returns the interval's upper bound, clamped to the probability domain.
func (ci CertifiedInterval) Hi() float64 { return clamp01(ci.Point + ci.HalfWidth) }

// Contains reports whether v lies inside the certified interval.
func (ci CertifiedInterval) Contains(v float64) bool {
	return v >= ci.Lo() && v <= ci.Hi()
}

// ChunkedSeq is a streamed probability sequence: the competency (or resolved
// sink success-probability) vector of an electorate, produced in fixed chunks
// so no consumer ever materialises the whole thing. Chunks partition the
// index range [0, Len) in order; AppendChunk appends chunk c's values to dst
// and returns the extended slice, so callers iterate with one chunk-sized
// buffer. internal/scale's StreamInstance is the million-voter implementation;
// SliceSeq adapts an in-memory vector.
type ChunkedSeq interface {
	Len() int
	NumChunks() int
	AppendChunk(dst []float64, c int) []float64
}

// sliceSeqChunk is SliceSeq's default chunk size.
const sliceSeqChunk = 1 << 14

// SliceSeq adapts an in-memory probability vector to ChunkedSeq. Chunk is
// the chunk size (default 1<<14). The values are borrowed, not copied.
type SliceSeq struct {
	PS    []float64
	Chunk int
}

func (s SliceSeq) chunk() int {
	if s.Chunk > 0 {
		return s.Chunk
	}
	return sliceSeqChunk
}

// Len returns the sequence length.
func (s SliceSeq) Len() int { return len(s.PS) }

// NumChunks returns the number of chunks covering the sequence.
func (s SliceSeq) NumChunks() int {
	c := s.chunk()
	return (len(s.PS) + c - 1) / c
}

// AppendChunk appends chunk c's values to dst.
func (s SliceSeq) AppendChunk(dst []float64, c int) []float64 {
	lo := c * s.chunk()
	hi := lo + s.chunk()
	if hi > len(s.PS) {
		hi = len(s.PS)
	}
	return append(dst, s.PS[lo:hi]...)
}

// SumStats accumulates the normal tier's sufficient statistics for a sum of
// independent weighted Bernoulli terms w·X, X ~ Bernoulli(p): mean, variance,
// the Berry–Esseen third-moment numerator, and the Hoeffding squared-span
// total. Partials fold per chunk and merge in chunk order (Merge), so a
// parallel fold that merges partials in a fixed order is bit-identical to the
// sequential pass regardless of worker count. The zero value is empty.
type SumStats struct {
	n                  int64
	mu, vr, rho, spans Accumulator
}

// Add incorporates one term with weight w and success probability p.
func (s *SumStats) Add(w, p float64) {
	s.n++
	q := p * (1 - p)
	aw := math.Abs(w)
	s.mu.Add(w * p)
	s.vr.Add(w * w * q)
	s.rho.Add(aw * aw * aw * q * (p*p + (1-p)*(1-p)))
	s.spans.Add(w * w)
}

// Merge folds o's totals into s. Merging partials in a fixed order is the
// determinism contract: the compensated sums are not associative to the last
// ulp, so parallel folds must merge chunk partials in chunk index order.
func (s *SumStats) Merge(o *SumStats) {
	s.n += o.n
	s.mu.Add(o.mu.Sum())
	s.vr.Add(o.vr.Sum())
	s.rho.Add(o.rho.Sum())
	s.spans.Add(o.spans.Sum())
}

// N returns the number of terms added.
func (s *SumStats) N() int64 { return s.n }

// Mean returns the accumulated E[S].
func (s *SumStats) Mean() float64 { return s.mu.Sum() }

// Variance returns the accumulated Var[S].
func (s *SumStats) Variance() float64 { return s.vr.Sum() }

// SumSquaredSpans returns the Hoeffding squared-span total, taking each
// term's range as [0, w] (valid for any Bernoulli term, if loose for
// near-deterministic ones).
func (s *SumStats) SumSquaredSpans() float64 { return s.spans.Sum() }

// BerryEsseen returns the certified uniform bound on the normal
// approximation error of the accumulated sum — the same bound as
// BerryEsseenWeightedBound, from the streamed moments.
func (s *SumStats) BerryEsseen() float64 {
	sigma2 := s.Variance()
	if sigma2 <= 0 {
		return 1
	}
	b := berryEsseenC * s.rho.Sum() / (sigma2 * math.Sqrt(sigma2))
	if b > 1 || math.IsNaN(b) {
		return 1
	}
	return b
}

// certifySlack widens the normal tier's band by a fixed numerical margin.
// The Berry–Esseen and Hoeffding enclosures are exact statements about the
// true probability, but the values they are checked against — the exact DP,
// the FFT evaluator — are finite-precision computations with their own
// rounding (observed ~1e-16 at test sizes; the metamorphic containment
// tests compare computed values, not reals). 1e-12 covers that rounding
// with orders of headroom while staying far below any statistically
// meaningful width.
const certifySlack = 1e-12

// CertifyMajority builds the normal tier's certified interval for
// q = P[S > threshold] from streamed sufficient statistics. The certified
// band is the intersection of two rigorous enclosures of q:
//
//   - Berry–Esseen: |q - SF(threshold)| <= BerryEsseen(), uniformly;
//   - Hoeffding, one-sided on whichever tail the threshold sits in:
//     q <= exp(-2t²/Σspan²) when t = threshold - mean >= 0, and
//     1 - q <= exp(-2t²/Σspan²) when t < 0.
//
// The point estimate is the continuity-corrected SF(threshold + 1/2) (exact
// sums are integer-supported), clamped into the certified band; HalfWidth
// covers the whole band, so the interval remains rigorous whatever the point.
// A zero-variance sum is deterministic and certifies with half-width 0.
func CertifyMajority(s *SumStats, threshold float64) CertifiedInterval {
	mu := s.Mean()
	sigma2 := s.Variance()
	dist := Normal{Mu: mu, Sigma: math.Sqrt(sigma2)}
	base := dist.SF(threshold)
	if sigma2 <= 0 {
		// Every term is deterministic: S = mu always, and the degenerate SF
		// is exactly P[S > threshold].
		return CertifiedInterval{Point: base, HalfWidth: 0, Tier: TierNormal}
	}
	be := s.BerryEsseen()
	lo := clamp01(base - be)
	hi := clamp01(base + be)
	if sss := s.SumSquaredSpans(); sss > 0 {
		t := threshold - mu
		h := math.Exp(-2 * t * t / sss)
		if t >= 0 {
			if h < hi {
				hi = h
			}
		} else if 1-h > lo {
			lo = 1 - h
		}
	}
	lo = clamp01(lo - certifySlack)
	hi = clamp01(hi + certifySlack)
	if hi < lo {
		hi = lo
	}
	point := clamp01(dist.SF(threshold + 0.5))
	if point < lo {
		point = lo
	} else if point > hi {
		point = hi
	}
	return CertifiedInterval{Point: point, HalfWidth: math.Max(point-lo, hi-point), Tier: TierNormal}
}

// ClassifyExactTier reports which kernel rung the cost model runs an n-voter
// Poisson-binomial evaluation on: TierExact when the root of the D&C tree
// stays on the quadratic DP leaf (the whole evaluation is one exact DP, no
// FFT anywhere, so the result carries zero approximation error), TierFFT
// when the root splits and at least the final merge goes through FFT
// convolution. The rule is the same leaf-vs-split decision pbDC makes at the
// root, so the label always matches what the kernel actually does.
func ClassifyExactTier(n int) Tier {
	if n < dcMinLeaf || pbSplitGain(n) <= fftMergeCost(n+1) {
		return TierExact
	}
	return TierFFT
}

// ParallelWorkerBudget chooses the fork-join worker budget for an n-voter
// kernel evaluation from the cost model: 1 when the root stays a DP leaf
// (nothing to fork), otherwise roughly one worker per forkable subtree
// (parForkMinWeight support each), capped at max. The choice tunes only
// scheduling — PMFParallelWS is bit-identical for every workers value — so
// routing every caller through it makes the D&C tree parallel by default
// without risking any table.
func ParallelWorkerBudget(n, max int) int {
	if max < 1 {
		max = 1
	}
	if ClassifyExactTier(n) == TierExact {
		return 1
	}
	w := n / parForkMinWeight
	if w < 1 {
		w = 1
	}
	if w > max {
		w = max
	}
	return w
}

// ladderEscalationN is the size below which LadderCostEstimate assumes the
// ladder escalates past the normal tier: the certified half-width shrinks
// like 1/sqrt(n), so small instances are the ones whose budgets force the
// kernel tiers.
const ladderEscalationN = 1 << 12

// exactTierCost prices the kernel tiers in DP units: the quadratic DP below
// the root crossover, the FFT D&C's padded O(m log^2 m) unit count above it.
func exactTierCost(n int) int64 {
	if ClassifyExactTier(n) == TierExact {
		return PoissonBinomialDPCost(n)
	}
	lg := int64(ceilLog2(n + 1))
	m := int64(1) << lg
	return fftUnitCost * m * lg * lg
}

// LadderCostEstimate prices an n-voter ladder majority query in DP units for
// admission control: the O(n) streaming moments pass always runs; the kernel
// tier's cost is added when the query is small enough that a realistic error
// budget forces escalation (see ladderEscalationN), or when errorBudget <= 0
// demands the kernel tiers outright. Like EstimateCost in the serving layer,
// this is a shed threshold, not an exact prediction.
func LadderCostEstimate(n int, errorBudget float64) int64 {
	if n <= 0 {
		return 0
	}
	moments := int64(n)
	if errorBudget > 0 && n > ladderEscalationN {
		return moments
	}
	return moments + exactTierCost(n)
}

// LadderOptions tunes LadderMajority. The zero value auto-selects with no
// error budget (most precise affordable tier), the default exact-tier size
// cap, and the full GOMAXPROCS worker budget.
type LadderOptions struct {
	// ErrorBudget is the maximum acceptable certified half-width. > 0 lets
	// the ladder stop at the cheapest tier within budget; <= 0 demands the
	// most precise tier the other constraints afford.
	ErrorBudget float64
	// CostBudget, when > 0, caps the kernel tiers' DP-unit cost; a query
	// whose exact evaluation would exceed it stays on the normal tier.
	CostBudget int64
	// Workers caps the kernel tiers' fork-join budget (0 = GOMAXPROCS). The
	// effective budget is cost-model-chosen via ParallelWorkerBudget and
	// never affects any result.
	Workers int
	// Force pins a tier, bypassing selection: TierExact runs the quadratic
	// DP whatever n (the metamorphic reference), TierFFT the D&C evaluator,
	// TierNormal the streaming pass. TierAuto (zero) selects.
	Force Tier
	// MaxExactN caps the size the kernel tiers will materialise (default
	// 1<<17). Beyond it the ladder stays on the streaming normal tier, which
	// is what keeps million-voter queries out of O(n^2) memory-time space.
	MaxExactN int
}

func (o LadderOptions) withDefaults() LadderOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxExactN <= 0 {
		o.MaxExactN = 1 << 17
	}
	return o
}

// LadderMajority evaluates q = P[sum > n/2] — the majority mass of the
// Poisson binomial over seq's probabilities — on the cheapest ladder tier
// whose certified half-width fits opts.ErrorBudget. The streaming normal
// tier holds only one chunk of seq at a time; the kernel tiers materialise
// the vector (sorted ascending, the kernels' canonical order) only when
// selected and only below opts.MaxExactN. When no tier satisfies the
// constraints the tightest certified interval is returned along with
// ErrBudgetInfeasible, so degrading callers still get a sound answer.
func LadderMajority(ctx context.Context, seq ChunkedSeq, opts LadderOptions) (CertifiedInterval, error) {
	n := seq.Len()
	if n <= 0 {
		return CertifiedInterval{}, fmt.Errorf("%w: empty electorate", ErrInvalidParameter)
	}
	if err := ctx.Err(); err != nil {
		return CertifiedInterval{}, err
	}
	opts = opts.withDefaults()
	threshold := float64(n / 2)

	switch opts.Force {
	case TierExact:
		ps, err := materializeSorted(ctx, seq)
		if err != nil {
			return CertifiedInterval{}, err
		}
		return CertifiedInterval{Point: exactMajorityDP(ps), HalfWidth: 0, Tier: TierExact}, nil
	case TierFFT:
		ps, err := materializeSorted(ctx, seq)
		if err != nil {
			return CertifiedInterval{}, err
		}
		point, err := kernelMajority(ctx, ps, opts.Workers)
		if err != nil {
			return CertifiedInterval{}, err
		}
		return CertifiedInterval{Point: point, HalfWidth: FFTTierErrorBudget, Tier: TierFFT}, nil
	case TierNormal:
		st, err := streamMajorityStats(ctx, seq)
		if err != nil {
			return CertifiedInterval{}, err
		}
		return CertifyMajority(st, threshold), nil
	}

	// Auto selection: the O(n) moments pass runs first — it is never wasted,
	// because either its interval already satisfies the budget or its cost is
	// negligible next to the kernel tier it escalates to.
	st, err := streamMajorityStats(ctx, seq)
	if err != nil {
		return CertifiedInterval{}, err
	}
	ci := CertifyMajority(st, threshold)
	if opts.ErrorBudget > 0 && ci.HalfWidth <= opts.ErrorBudget {
		return ci, nil
	}
	if n <= opts.MaxExactN && (opts.CostBudget <= 0 || exactTierCost(n) <= opts.CostBudget) {
		ps, err := materializeSorted(ctx, seq)
		if err != nil {
			return CertifiedInterval{}, err
		}
		point, err := kernelMajority(ctx, ps, opts.Workers)
		if err != nil {
			return CertifiedInterval{}, err
		}
		tier := ClassifyExactTier(n)
		kci := CertifiedInterval{Point: point, Tier: tier}
		if tier == TierFFT {
			kci.HalfWidth = FFTTierErrorBudget
		}
		if opts.ErrorBudget > 0 && kci.HalfWidth > opts.ErrorBudget {
			return kci, ErrBudgetInfeasible
		}
		return kci, nil
	}
	return ci, ErrBudgetInfeasible
}

// streamMajorityStats runs the one-pass streaming moments fold over seq,
// holding one chunk at a time, with validation on the fly.
func streamMajorityStats(ctx context.Context, seq ChunkedSeq) (*SumStats, error) {
	var st SumStats
	var buf []float64
	nc := seq.NumChunks()
	for c := 0; c < nc; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		buf = seq.AppendChunk(buf[:0], c)
		for i, p := range buf {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("%w: chunk %d p[%d] = %v not in [0,1]", ErrInvalidParameter, c, i, p)
			}
			st.Add(1, p)
		}
	}
	if st.n != int64(seq.Len()) {
		return nil, fmt.Errorf("%w: chunks yielded %d values for Len() = %d", ErrInvalidParameter, st.n, seq.Len())
	}
	return &st, nil
}

// materializeSorted collects seq into one vector sorted ascending — the
// canonical competency order the exact kernels (and the election engine's
// P^D path) evaluate in, so a ladder kernel result is bit-identical whatever
// chunk layout produced the values.
func materializeSorted(ctx context.Context, seq ChunkedSeq) ([]float64, error) {
	n := seq.Len()
	ps := make([]float64, 0, n)
	nc := seq.NumChunks()
	for c := 0; c < nc; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps = seq.AppendChunk(ps, c)
	}
	if len(ps) != n {
		return nil, fmt.Errorf("%w: chunks yielded %d values for Len() = %d", ErrInvalidParameter, len(ps), n)
	}
	if err := validateProbs(ps); err != nil {
		return nil, err
	}
	sort.Float64s(ps)
	return ps, nil
}

// exactMajorityDP is the ladder's zero-error reference: the plain quadratic
// DP with a compensated tail sum, no D&C, no FFT, whatever the size.
func exactMajorityDP(ps []float64) float64 {
	n := len(ps)
	f := make([]float64, n+1)
	pbDPInto(f, ps)
	return clamp01(Sum(f[n/2+1 : n+1]))
}

// kernelMajority runs the cost-model kernel (DP leaf or FFT D&C) on the
// fork-join evaluator with a cost-model-chosen worker budget. Bit-identical
// for every workers value.
func kernelMajority(ctx context.Context, ps []float64, workers int) (float64, error) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	pb, err := ws.PoissonBinomial(ps)
	if err != nil {
		return 0, err
	}
	return pb.ProbMajorityParallelWS(ctx, ws, ParallelWorkerBudget(len(ps), workers))
}
