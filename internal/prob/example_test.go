package prob_test

import (
	"fmt"

	"liquid/internal/prob"
)

// Example computes the exact probability that a weighted delegated vote
// decides correctly, with the paper's ties-lose rule.
func Example() {
	wm, err := prob.NewWeightedMajority([]prob.WeightedVoter{
		{Weight: 5, P: 0.8},  // a heavy, competent sink
		{Weight: 3, P: 0.4},  // a medium, weak sink
		{Weight: 1, P: 0.55}, // a direct voter
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P[correct] = %.4f\n", wm.ProbCorrectDecision())
	fmt.Printf("P[tie]     = %.4f\n", wm.ProbTie())
	fmt.Println("max weight:", wm.MaxWeight())
	// Output:
	// P[correct] = 0.8000
	// P[tie]     = 0.0000
	// max weight: 5
}

// ExamplePoissonBinomial shows the direct-voting distribution (Condorcet
// jury theorem territory).
func ExamplePoissonBinomial() {
	ps := make([]float64, 101)
	for i := range ps {
		ps[i] = 0.55 // everyone slightly better than a coin
	}
	pb, err := prob.NewPoissonBinomial(ps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("101 voters at 0.55: P[majority correct] = %.3f\n", pb.ProbMajority())
	// Output:
	// 101 voters at 0.55: P[majority correct] = 0.844
}
