package prob

import (
	"context"
	"errors"
	"math"
	"testing"

	"liquid/internal/rng"
)

// ladderSeq builds a deterministic test sequence of n probabilities in
// [lo, hi) from a derived seed, chunked at the given width.
func ladderSeq(n int, lo, hi float64, seed uint64, chunk int) SliceSeq {
	s := rng.New(seed)
	return SliceSeq{PS: randomPs(n, lo, hi, s), Chunk: chunk}
}

// ladderRun forces one tier and fails the test on error.
func ladderRun(t *testing.T, seq ChunkedSeq, opts LadderOptions) CertifiedInterval {
	t.Helper()
	ci, err := LadderMajority(context.Background(), seq, opts)
	if err != nil {
		t.Fatalf("LadderMajority(%+v): %v", opts, err)
	}
	return ci
}

// TestLadderMetamorphicContainment is the ladder's core soundness property,
// metamorphic across tiers: for the same instance, every cheaper tier's
// certified interval must contain the exact value computed by the tier above
// it (TierExact is the zero-error reference, so "the exact value" is its
// point). Table-driven over instance shapes; every case seeds via rng.Derive
// so the table is stable and extensible without seed collisions.
func TestLadderMetamorphicContainment(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		lo, hi float64
	}{
		{"tiny", 3, 0.2, 0.9},
		{"smallBalanced", 40, 0.4, 0.6},
		{"dpLeaf", 200, 0.3, 0.7},
		{"atCrossover", 512, 0.25, 0.75},
		{"fftRoot", 900, 0.1, 0.9},
		{"skewedLow", 300, 0.05, 0.35},
		{"skewedHigh", 300, 0.65, 0.95},
		{"nearDeterministic", 150, 0.97, 0.999},
		{"wide", 1200, 0.01, 0.99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := ladderSeq(tc.n, tc.lo, tc.hi, rng.Derive(3, "ladder", "metamorphic", tc.name), 64)
			exact := ladderRun(t, seq, LadderOptions{Force: TierExact})
			if exact.HalfWidth != 0 || exact.Tier != TierExact {
				t.Fatalf("exact tier: half-width %v tier %v", exact.HalfWidth, exact.Tier)
			}
			fft := ladderRun(t, seq, LadderOptions{Force: TierFFT})
			if fft.Tier != TierFFT && fft.Tier != TierExact {
				t.Fatalf("fft tier label %v", fft.Tier)
			}
			if !fft.Contains(exact.Point) {
				t.Errorf("FFT interval [%v, %v] does not contain exact %v", fft.Lo(), fft.Hi(), exact.Point)
			}
			normal := ladderRun(t, seq, LadderOptions{Force: TierNormal})
			if normal.Tier != TierNormal {
				t.Fatalf("normal tier label %v", normal.Tier)
			}
			if !normal.Contains(exact.Point) {
				t.Errorf("normal interval [%v, %v] (±%v) does not contain exact %v",
					normal.Lo(), normal.Hi(), normal.HalfWidth, exact.Point)
			}
			// The next rung up must also land inside the cheaper certificate:
			// the FFT point differs from exact by at most its own budget.
			if !normal.Contains(fft.Point) && math.Abs(fft.Point-exact.Point) <= FFTTierErrorBudget {
				t.Errorf("normal interval [%v, %v] does not contain FFT point %v", normal.Lo(), normal.Hi(), fft.Point)
			}
			if math.Abs(fft.Point-exact.Point) > FFTTierErrorBudget {
				t.Errorf("FFT point %v differs from exact %v beyond the tier budget", fft.Point, exact.Point)
			}
		})
	}
}

// TestLadderAutoSelection pins the tier-selection rule: generous budgets stay
// on the streaming tier, tight budgets escalate to the kernels, and budgets
// no kernel can certify within the cost constraints surface
// ErrBudgetInfeasible alongside the tightest interval available.
func TestLadderAutoSelection(t *testing.T) {
	ctx := context.Background()
	seq := ladderSeq(2000, 0.3, 0.6, rng.Derive(3, "ladder", "auto"), 0)

	// Mean well below the threshold: Hoeffding certifies a tiny half-width,
	// so a loose budget keeps the O(n) tier.
	ci, err := LadderMajority(ctx, seq, LadderOptions{ErrorBudget: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if ci.Tier != TierNormal {
		t.Fatalf("loose budget escalated to %v", ci.Tier)
	}
	if ci.HalfWidth > 1e-2 {
		t.Fatalf("normal half-width %v over budget", ci.HalfWidth)
	}

	// A budget below what the normal tier certifies escalates to the kernel;
	// at n=2000 the root splits, so the label is TierFFT.
	ci, err = LadderMajority(ctx, seq, LadderOptions{ErrorBudget: 5e-13})
	if err == nil || errors.Is(err, ErrBudgetInfeasible) {
		// A sub-FFT-budget request is infeasible on the kernel tiers too —
		// both outcomes must still hand back the kernel interval.
	} else {
		t.Fatal(err)
	}
	if ci.Tier != TierFFT {
		t.Fatalf("tight budget ran %v, want fft", ci.Tier)
	}

	// No budget at all demands the most precise affordable tier.
	ci, err = LadderMajority(ctx, seq, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ci.Tier != TierFFT {
		t.Fatalf("no-budget selection ran %v, want fft", ci.Tier)
	}

	// Small n with no budget is the pure DP.
	small := ladderSeq(100, 0.3, 0.6, rng.Derive(3, "ladder", "auto", "small"), 0)
	ci, err = LadderMajority(ctx, small, LadderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ci.Tier != TierExact || ci.HalfWidth != 0 {
		t.Fatalf("small no-budget selection ran %v (±%v), want exact ±0", ci.Tier, ci.HalfWidth)
	}

	// Beyond MaxExactN the ladder must refuse to materialise: the streaming
	// interval comes back with ErrBudgetInfeasible.
	ci, err = LadderMajority(ctx, seq, LadderOptions{ErrorBudget: 1e-15, MaxExactN: 1000})
	if !errors.Is(err, ErrBudgetInfeasible) {
		t.Fatalf("err = %v, want ErrBudgetInfeasible", err)
	}
	if ci.Tier != TierNormal || ci.HalfWidth <= 0 {
		t.Fatalf("degraded interval %+v, want normal tier with positive half-width", ci)
	}

	// A kernel cost budget below the exact tier's price pins the ladder to
	// the streaming tier the same way.
	ci, err = LadderMajority(ctx, seq, LadderOptions{ErrorBudget: 1e-15, CostBudget: 10})
	if !errors.Is(err, ErrBudgetInfeasible) {
		t.Fatalf("err = %v, want ErrBudgetInfeasible", err)
	}
	if ci.Tier != TierNormal {
		t.Fatalf("cost-capped tier %v, want normal", ci.Tier)
	}
}

// TestLadderBitIdentityAcrossWorkersAndChunks pins the two determinism
// contracts: the kernel tiers are bit-identical for every worker budget
// (fork-join determinism), and every tier is bit-identical across chunk
// layouts (the streaming fold visits values in index order; the kernel tiers
// canonicalise by sorting).
func TestLadderBitIdentityAcrossWorkersAndChunks(t *testing.T) {
	base := ladderSeq(2500, 0.2, 0.8, rng.Derive(3, "ladder", "bitident"), 0)
	for _, force := range []Tier{TierExact, TierFFT, TierNormal} {
		var ref CertifiedInterval
		for i, workers := range []int{1, 4, 16} {
			for _, chunk := range []int{0, 64, 999} {
				seq := SliceSeq{PS: base.PS, Chunk: chunk}
				ci := ladderRun(t, seq, LadderOptions{Force: force, Workers: workers})
				if i == 0 && chunk == 0 {
					ref = ci
					continue
				}
				if math.Float64bits(ci.Point) != math.Float64bits(ref.Point) || ci.HalfWidth != ref.HalfWidth {
					t.Fatalf("tier %v workers=%d chunk=%d: %+v != reference %+v", force, workers, chunk, ci, ref)
				}
			}
		}
	}
}

// TestCertifyMajorityDeterministic checks the degenerate rung: an electorate
// of certainties has zero variance and certifies exactly with half-width 0.
func TestCertifyMajorityDeterministic(t *testing.T) {
	var st SumStats
	for i := 0; i < 9; i++ {
		st.Add(1, float64(i%2)) // 4 certain ones: S = 4 always
	}
	ci := CertifyMajority(&st, 4)
	if ci.HalfWidth != 0 {
		t.Fatalf("half-width %v, want 0", ci.HalfWidth)
	}
	if ci.Point != 0 { // S = 4 always, P[S > 4] = 0
		t.Fatalf("point %v, want 0", ci.Point)
	}
	st = SumStats{}
	for i := 0; i < 9; i++ {
		st.Add(1, 1)
	}
	ci = CertifyMajority(&st, 4)
	if ci.HalfWidth != 0 || ci.Point != 1 {
		t.Fatalf("got %+v, want point 1 half-width 0", ci)
	}
}

// TestCertifyMajorityWeighted holds the weighted certificate to the exact
// weighted-majority DP: resolved sink multisets are what the scale tier
// feeds through SumStats, so the interval must contain the exact weighted
// tail mass, not just the unit-weight one.
func TestCertifyMajorityWeighted(t *testing.T) {
	s := rng.New(rng.Derive(3, "ladder", "weighted"))
	for trial := 0; trial < 30; trial++ {
		nv := 5 + s.IntN(60)
		voters := make([]WeightedVoter, nv)
		total := 0
		var st SumStats
		for i := range voters {
			v := WeightedVoter{Weight: 1 + s.IntN(9), P: s.Float64()}
			voters[i] = v
			total += v.Weight
			st.Add(float64(v.Weight), v.P)
		}
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			t.Fatal(err)
		}
		f := wm.PMFNaive()
		exact := Sum(f[total/2+1:])
		ci := CertifyMajority(&st, float64(total/2))
		if !ci.Contains(exact) {
			t.Fatalf("trial %d: interval [%v, %v] does not contain exact %v", trial, ci.Lo(), ci.Hi(), exact)
		}
	}
}

// TestSumStatsMergeOrdered pins the parallel-fold determinism rule: merging
// per-chunk partials in chunk index order reproduces itself bit-for-bit, and
// stays within float tolerance of the single-pass fold (compensated sums are
// not associative, which is exactly why the merge order is part of the
// contract).
func TestSumStatsMergeOrdered(t *testing.T) {
	s := rng.New(rng.Derive(3, "ladder", "merge"))
	const n, chunk = 1000, 64
	ws := make([]float64, n)
	ps := make([]float64, n)
	var seq SumStats
	for i := range ps {
		ws[i] = float64(1 + s.IntN(20))
		ps[i] = s.Float64()
		seq.Add(ws[i], ps[i])
	}
	merged := func() SumStats {
		var out SumStats
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			var part SumStats
			for i := lo; i < hi; i++ {
				part.Add(ws[i], ps[i])
			}
			out.Merge(&part)
		}
		return out
	}
	a, b := merged(), merged()
	if math.Float64bits(a.Mean()) != math.Float64bits(b.Mean()) ||
		math.Float64bits(a.Variance()) != math.Float64bits(b.Variance()) ||
		math.Float64bits(a.BerryEsseen()) != math.Float64bits(b.BerryEsseen()) {
		t.Fatal("ordered merge is not deterministic")
	}
	if a.N() != seq.N() {
		t.Fatalf("N %d != %d", a.N(), seq.N())
	}
	if math.Abs(a.Mean()-seq.Mean()) > 1e-9 || math.Abs(a.Variance()-seq.Variance()) > 1e-9 {
		t.Fatalf("merged moments (%v, %v) diverge from sequential (%v, %v)",
			a.Mean(), a.Variance(), seq.Mean(), seq.Variance())
	}
}

// TestParallelWorkerBudget pins the cost-model worker rule.
func TestParallelWorkerBudget(t *testing.T) {
	cases := []struct {
		n, max, want int
	}{
		{10, 8, 1},    // below dcMinLeaf: DP leaf, nothing to fork
		{256, 8, 1},   // DP-leaf root at the crossover's near side
		{2048, 8, 2},  // two forkable subtrees
		{20000, 8, 8}, // capped at max
		{20000, 0, 1}, // max < 1 clamps to 1
		{100000, 64, 64},
	}
	for _, tc := range cases {
		if got := ParallelWorkerBudget(tc.n, tc.max); got != tc.want {
			t.Errorf("ParallelWorkerBudget(%d, %d) = %d, want %d", tc.n, tc.max, got, tc.want)
		}
	}
}

// TestLadderCostEstimate pins the admission pricing shape: free for empty
// queries, O(n) when a realistic budget keeps a large query on the streaming
// tier, kernel-priced when the size or a zero budget forces escalation.
func TestLadderCostEstimate(t *testing.T) {
	if got := LadderCostEstimate(0, 1e-3); got != 0 {
		t.Fatalf("empty query costs %d", got)
	}
	large := LadderCostEstimate(1_000_000, 1e-3)
	if large != 1_000_000 {
		t.Fatalf("budgeted large query costs %d, want the streaming pass", large)
	}
	if exact := LadderCostEstimate(1_000_000, 0); exact <= large {
		t.Fatalf("no-budget large query costs %d, want kernel-priced > %d", exact, large)
	}
	small := LadderCostEstimate(2000, 1e-3)
	if small <= 2000 {
		t.Fatalf("small query costs %d, want kernel tier included", small)
	}
}

// FuzzLadderSoundness drives random instances, thresholds shifted by random
// competency skews, and random error budgets through every ladder path and
// requires the one inviolable property: whatever tier auto-selection lands
// on, the certified interval contains the exact DP answer. Wired into the
// `make check` fuzz-smoke stage.
func FuzzLadderSoundness(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint8(128), uint8(0))
	f.Add(uint64(7), uint16(600), uint8(30), uint8(3))
	f.Add(uint64(42), uint16(3), uint8(250), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, alphaRaw, budgetRaw uint8) {
		nv := int(n)%700 + 1
		// alpha skews the competency band across [0, 1): low alpha is an
		// incompetent electorate, high alpha a near-deterministic one.
		alpha := float64(alphaRaw) / 256
		lo := 0.9 * alpha
		hi := lo + (1-lo)*0.8 + 0.1
		if hi > 1 {
			hi = 1
		}
		// budget spans {none} ∪ [1e-12, ~1): 0 demands the exact tiers.
		var budget float64
		if budgetRaw > 0 {
			budget = math.Pow(10, -float64(budgetRaw%13))
		}
		s := rng.New(seed)
		seq := SliceSeq{PS: randomPs(nv, lo, hi, s), Chunk: nv/3 + 1}
		ctx := context.Background()

		exact, err := LadderMajority(ctx, seq, LadderOptions{Force: TierExact})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []LadderOptions{
			{ErrorBudget: budget},
			{Force: TierFFT},
			{Force: TierNormal},
		} {
			ci, err := LadderMajority(ctx, seq, opts)
			if err != nil && !errors.Is(err, ErrBudgetInfeasible) {
				t.Fatal(err)
			}
			if !ci.Contains(exact.Point) {
				t.Fatalf("seed=%d n=%d alpha=%v budget=%v opts=%+v: interval [%v, %v] (tier %v) does not contain exact %v",
					seed, nv, alpha, budget, opts, ci.Lo(), ci.Hi(), ci.Tier, exact.Point)
			}
			if err == nil && opts.ErrorBudget > 0 && ci.HalfWidth > opts.ErrorBudget {
				t.Fatalf("accepted interval half-width %v over budget %v", ci.HalfWidth, opts.ErrorBudget)
			}
		}
	})
}
