package prob

import (
	"fmt"
	"math"
)

// WeightedVoter is one independent Bernoulli voter with an integer vote
// weight. In the delegation setting a voter is a sink of the delegation
// graph and its weight counts the votes delegated to it (including itself).
type WeightedVoter struct {
	Weight int
	P      float64
}

// WeightedMajority is the distribution of the total correct weight
// W = sum_i Weight_i * Bernoulli(P_i) over independent voters.
type WeightedMajority struct {
	voters []WeightedVoter
	total  int
}

// validateVoters checks weights >= 1 and probabilities in [0, 1], and
// returns the total weight.
func validateVoters(voters []WeightedVoter) (int, error) {
	total := 0
	for i, v := range voters {
		if v.Weight < 1 {
			return 0, fmt.Errorf("%w: voter %d has weight %d < 1", ErrInvalidParameter, i, v.Weight)
		}
		if v.P < 0 || v.P > 1 || math.IsNaN(v.P) {
			return 0, fmt.Errorf("%w: voter %d has p = %v not in [0,1]", ErrInvalidParameter, i, v.P)
		}
		total += v.Weight
	}
	return total, nil
}

// NewWeightedMajority validates voters (weights >= 1, probabilities in
// [0, 1]) and returns the distribution. The slice is copied; for a
// zero-allocation borrowing constructor see Workspace.WeightedMajority.
func NewWeightedMajority(voters []WeightedVoter) (*WeightedMajority, error) {
	total, err := validateVoters(voters)
	if err != nil {
		return nil, err
	}
	cp := make([]WeightedVoter, len(voters))
	copy(cp, voters)
	return &WeightedMajority{voters: cp, total: total}, nil
}

// TotalWeight returns the sum of all weights (n in the paper: every vote is
// delegated somewhere, so weights sum to the number of voters).
func (wm *WeightedMajority) TotalWeight() int { return wm.total }

// Mean returns E[W], the expected correct weight.
func (wm *WeightedMajority) Mean() float64 {
	var m Accumulator
	for _, v := range wm.voters {
		m.Add(float64(v.Weight) * v.P)
	}
	return m.Sum()
}

// Variance returns Var[W].
func (wm *WeightedMajority) Variance() float64 {
	var s Accumulator
	for _, v := range wm.voters {
		w := float64(v.Weight)
		s.Add(w * w * v.P * (1 - v.P))
	}
	return s.Sum()
}

// PMF returns f with f[t] = P[W = t] for t in [0, TotalWeight]. Small
// instances run the exact O(|voters| * TotalWeight) dynamic program; large
// ones the divide-and-conquer evaluator (see PMFWS).
func (wm *WeightedMajority) PMF() []float64 {
	ws := getWorkspace()
	f := wm.PMFWS(ws)
	out := make([]float64, len(f))
	copy(out, f)
	putWorkspace(ws)
	return out
}

// PMFNaive returns the PMF via the plain O(|voters| * TotalWeight) dynamic
// program with no divide-and-conquer, whatever the size. It is the
// cross-validation reference for the fast evaluator (and its leaf kernel).
func (wm *WeightedMajority) PMFNaive() []float64 {
	f := make([]float64, wm.total+1)
	wmDPInto(f, wm.voters)
	return f
}

// PMFWS computes the PMF into ws-owned memory and returns it. The result
// is valid until the next kernel call on ws. Above the cost-model
// crossover the voter set is split weight-balanced and halves are merged
// by FFT convolution; below it the in-place DP runs unchanged.
func (wm *WeightedMajority) PMFWS(ws *Workspace) []float64 {
	ws.reset(3*(wm.total+1) + 64)
	pw := ws.prefixWeights(wm.voters)
	return ws.wmDC(wm.voters, pw, 0, len(wm.voters))
}

// ProbAbove returns P[W > threshold].
func (wm *WeightedMajority) ProbAbove(threshold int) float64 {
	ws := getWorkspace()
	v := wm.ProbAboveWS(ws, threshold)
	putWorkspace(ws)
	return v
}

// ProbAboveWS returns P[W > threshold] using ws for scratch: the PMF lives
// only in workspace memory and the upper tail is summed in place, so the
// call allocates nothing once ws is warm.
func (wm *WeightedMajority) ProbAboveWS(ws *Workspace, threshold int) float64 {
	if threshold < 0 {
		return 1
	}
	if threshold >= wm.total {
		return 0
	}
	f := wm.PMFWS(ws)
	return clamp01(Sum(f[threshold+1 : wm.total+1]))
}

// ProbCorrectDecision returns the probability that the weighted-majority
// vote selects the correct option: P[W > TotalWeight - W], i.e.
// P[2W > TotalWeight]. Exact ties lose, per the paper's Section 2.2 rule
// that the correct option is chosen only if the correct weight strictly
// exceeds the incorrect weight.
func (wm *WeightedMajority) ProbCorrectDecision() float64 {
	// 2W > total  <=>  W > floor(total/2) when total is odd, and
	// W > total/2 when total is even; both are W > total/2 in integers:
	return wm.ProbAbove(wm.total / 2)
}

// ProbCorrectDecisionWS is ProbCorrectDecision with caller-provided
// scratch.
func (wm *WeightedMajority) ProbCorrectDecisionWS(ws *Workspace) float64 {
	return wm.ProbAboveWS(ws, wm.total/2)
}

// NormalApproximation returns the CLT approximation of W.
func (wm *WeightedMajority) NormalApproximation() Normal {
	return Normal{Mu: wm.Mean(), Sigma: math.Sqrt(wm.Variance())}
}

// MaxWeight returns the largest single weight, the quantity bounded by
// Lemma 5 of the paper.
func (wm *WeightedMajority) MaxWeight() int {
	maxW := 0
	for _, v := range wm.voters {
		if v.Weight > maxW {
			maxW = v.Weight
		}
	}
	return maxW
}

// TieRule selects how exact ties (possible only for even total weight) are
// decided. The paper's Section 2.2 rule is TiesLose.
type TieRule int

const (
	// TiesLose counts a tie as an incorrect decision (the paper's rule).
	TiesLose TieRule = iota + 1
	// TiesWin counts a tie as a correct decision.
	TiesWin
	// TiesCoin decides ties by a fair coin.
	TiesCoin
)

// ProbCorrectDecisionRule returns the probability of a correct decision
// under the given tie rule. For odd total weight all rules coincide.
func (wm *WeightedMajority) ProbCorrectDecisionRule(rule TieRule) float64 {
	base := wm.ProbCorrectDecision()
	if wm.total%2 != 0 {
		return base
	}
	tie := wm.ProbTie()
	switch rule {
	case TiesWin:
		return clamp01(base + tie)
	case TiesCoin:
		return clamp01(base + tie/2)
	default:
		return base
	}
}

// ProbTie returns the probability of an exact tie (0 for odd totals).
func (wm *WeightedMajority) ProbTie() float64 {
	if wm.total%2 != 0 {
		return 0
	}
	ws := getWorkspace()
	v := wm.PMFWS(ws)[wm.total/2]
	putWorkspace(ws)
	return v
}
