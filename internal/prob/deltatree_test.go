package prob

import (
	"math"
	"math/rand"
	"testing"
)

// deltaRandomVoters returns n voters with weights in [1, maxW] and random ps,
// including exact 0 and 1 endpoints occasionally.
func deltaRandomVoters(r *rand.Rand, n, maxW int) []WeightedVoter {
	vs := make([]WeightedVoter, n)
	for i := range vs {
		p := r.Float64()
		switch r.Intn(12) {
		case 0:
			p = 0
		case 1:
			p = 1
		}
		vs[i] = WeightedVoter{Weight: 1 + r.Intn(maxW), P: p}
	}
	return vs
}

func pmfBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// requireTreeMatchesScratch checks the tree against a from-scratch
// transient evaluation of the same voter order: PMF bytes, the decision
// probability, and an off-center tail.
func requireTreeMatchesScratch(t *testing.T, tree *DeltaTree, voters []WeightedVoter) {
	t.Helper()
	ws := NewWorkspace()
	wm, err := ws.WeightedMajority(voters)
	if err != nil {
		t.Fatalf("WeightedMajority: %v", err)
	}
	want := append([]float64(nil), wm.PMFWS(ws)...)
	if !pmfBitsEqual(tree.PMF(), want) {
		t.Fatalf("n=%d: tree PMF differs from from-scratch PMFWS", len(voters))
	}
	if got, ref := tree.ProbCorrectDecision(), wm.ProbCorrectDecisionWS(ws); math.Float64bits(got) != math.Float64bits(ref) {
		t.Fatalf("n=%d: ProbCorrectDecision %v != from-scratch %v", len(voters), got, ref)
	}
	th := tree.TotalWeight() / 3
	if got, ref := tree.ProbAbove(th), wm.ProbAboveWS(ws, th); math.Float64bits(got) != math.Float64bits(ref) {
		t.Fatalf("n=%d: ProbAbove(%d) %v != from-scratch %v", len(voters), th, got, ref)
	}
}

func TestDeltaTreeMatchesFromScratch(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	// Sizes straddle dcMinLeaf and the FFT crossover; maxW up to 60 forces
	// deep trees with FFT merges at the top and DP leaves below.
	for _, n := range []int{0, 1, 2, 5, dcMinLeaf - 1, dcMinLeaf, 70, 257, 1024} {
		for _, maxW := range []int{1, 3, 60} {
			voters := deltaRandomVoters(r, n, maxW)
			tree, err := NewDeltaTree(voters)
			if err != nil {
				t.Fatalf("NewDeltaTree(n=%d): %v", n, err)
			}
			requireTreeMatchesScratch(t, tree, voters)
		}
	}
}

func TestDeltaTreeEmptyAndBounds(t *testing.T) {
	tree, err := NewDeltaTree(nil)
	if err != nil {
		t.Fatalf("NewDeltaTree(nil): %v", err)
	}
	if tree.Len() != 0 || tree.TotalWeight() != 0 {
		t.Fatalf("empty tree: Len=%d TotalWeight=%d", tree.Len(), tree.TotalWeight())
	}
	// All abstained: the correct option never strictly wins.
	if got := tree.ProbCorrectDecision(); got != 0 {
		t.Fatalf("empty ProbCorrectDecision = %v, want 0", got)
	}
	if got := tree.ProbAbove(-1); got != 1 {
		t.Fatalf("ProbAbove(-1) = %v, want 1", got)
	}
	if _, err := NewDeltaTree([]WeightedVoter{{Weight: 0, P: 0.5}}); err == nil {
		t.Fatal("weight 0 accepted")
	}
	if _, err := NewDeltaTree([]WeightedVoter{{Weight: 1, P: math.NaN()}}); err == nil {
		t.Fatal("NaN p accepted")
	}
	if err := tree.Update([]WeightedVoter{{Weight: 1, P: 2}}); err == nil {
		t.Fatal("Update accepted p > 1")
	}
	// A failed Update must leave the tree intact.
	if tree.Len() != 0 || tree.ProbCorrectDecision() != 0 {
		t.Fatal("failed Update mutated the tree")
	}
}

// TestDeltaTreeWeightOnePoissonBinomial checks the all-weight-1 coincidence
// the P^D path relies on: the tree's decision probability equals the
// Poisson-binomial majority probability bit for bit.
func TestDeltaTreeWeightOnePoissonBinomial(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 33, 100, 501} {
		voters := deltaRandomVoters(r, n, 1)
		ps := make([]float64, n)
		for i, v := range voters {
			ps[i] = v.P
		}
		tree, err := NewDeltaTree(voters)
		if err != nil {
			t.Fatalf("NewDeltaTree: %v", err)
		}
		ws := NewWorkspace()
		pb, err := ws.PoissonBinomial(ps)
		if err != nil {
			t.Fatalf("PoissonBinomial: %v", err)
		}
		want := pb.ProbMajorityWS(ws)
		if got := tree.ProbCorrectDecision(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: tree %v != PoissonBinomial majority %v", n, got, want)
		}
	}
}

// mutate applies one random edit kind to a copy of voters.
func mutate(r *rand.Rand, voters []WeightedVoter, maxW int) []WeightedVoter {
	out := append([]WeightedVoter(nil), voters...)
	kind := r.Intn(5)
	if len(out) == 0 {
		kind = 2
	}
	switch kind {
	case 0: // single-voter competency change
		out[r.Intn(len(out))].P = r.Float64()
	case 1: // single-voter weight change
		out[r.Intn(len(out))].Weight = 1 + r.Intn(maxW)
	case 2: // insert
		i := r.Intn(len(out) + 1)
		v := WeightedVoter{Weight: 1 + r.Intn(maxW), P: r.Float64()}
		out = append(out[:i], append([]WeightedVoter{v}, out[i:]...)...)
	case 3: // remove
		i := r.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	default: // contiguous block rewrite
		i := r.Intn(len(out))
		k := 1 + r.Intn(4)
		for j := i; j < len(out) && j < i+k; j++ {
			out[j].P = r.Float64()
		}
	}
	return out
}

func TestDeltaTreeUpdateSequences(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		n := 40 + r.Intn(300)
		maxW := []int{1, 4, 40}[trial%3]
		voters := deltaRandomVoters(r, n, maxW)
		tree, err := NewDeltaTree(voters)
		if err != nil {
			t.Fatalf("NewDeltaTree: %v", err)
		}
		for step := 0; step < 25; step++ {
			voters = mutate(r, voters, maxW)
			if err := tree.Update(voters); err != nil {
				t.Fatalf("trial %d step %d: Update: %v", trial, step, err)
			}
			requireTreeMatchesScratch(t, tree, voters)
		}
		st := tree.Stats()
		if st.Patches == 0 {
			t.Fatalf("trial %d: no Update took the patch path (stats %+v)", trial, st)
		}
		// A single-leaf tree (small total weight) has no subtrees to
		// reuse; only demand reuse when the tree has internal structure.
		if st.ReusedNodes == 0 && tree.root.left != nil {
			t.Fatalf("trial %d: patching reused no subtrees (stats %+v)", trial, st)
		}
	}
}

// TestDeltaTreeSingleEditReuse checks the O(log n) claim structurally: a
// one-voter edit in a large tree recomputes only the root path, so the
// overwhelming majority of nodes are adopted unchanged.
func TestDeltaTreeSingleEditReuse(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	voters := deltaRandomVoters(r, 2000, 1)
	tree, err := NewDeltaTree(voters)
	if err != nil {
		t.Fatalf("NewDeltaTree: %v", err)
	}
	before := tree.Stats()
	voters[1234].P = r.Float64()
	if err := tree.Update(voters); err != nil {
		t.Fatalf("Update: %v", err)
	}
	st := tree.Stats()
	if st.Patches != before.Patches+1 {
		t.Fatalf("single edit did not patch: %+v", st)
	}
	recomputed := (st.RecomputedLeaves - before.RecomputedLeaves) +
		(st.RecomputedMerges - before.RecomputedMerges)
	if recomputed > 24 {
		t.Fatalf("single edit recomputed %d nodes, want a root path (<= 24)", recomputed)
	}
	requireTreeMatchesScratch(t, tree, voters)
}

func TestDeltaTreeRebuildThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	voters := deltaRandomVoters(r, 128, 3)
	tree, err := NewDeltaTree(voters)
	if err != nil {
		t.Fatalf("NewDeltaTree: %v", err)
	}
	// Rewriting every voter must cross the 2*changed >= len threshold.
	repl := deltaRandomVoters(r, 128, 3)
	if err := tree.Update(repl); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if st := tree.Stats(); st.Rebuilds == 0 {
		t.Fatalf("full rewrite did not rebuild: %+v", st)
	}
	requireTreeMatchesScratch(t, tree, repl)
}

func TestDeltaTreeClonePersistence(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	voters := deltaRandomVoters(r, 300, 5)
	tree, err := NewDeltaTree(voters)
	if err != nil {
		t.Fatalf("NewDeltaTree: %v", err)
	}
	clone := tree.Clone()
	wantPMF := append([]float64(nil), tree.PMF()...)

	mutated := append([]WeightedVoter(nil), voters...)
	mutated[7].P = r.Float64()
	if err := clone.Update(mutated); err != nil {
		t.Fatalf("clone Update: %v", err)
	}
	// The original must be untouched by the clone's update...
	if !pmfBitsEqual(tree.PMF(), wantPMF) {
		t.Fatal("updating a clone mutated the original tree's PMF")
	}
	requireTreeMatchesScratch(t, tree, voters)
	// ...and vice versa.
	if err := tree.Update(deltaRandomVoters(r, 300, 5)); err != nil {
		t.Fatalf("original Update: %v", err)
	}
	requireTreeMatchesScratch(t, clone, mutated)
}

// TestDeltaTreeSignedZero guards the Float64bits diff rule: flipping +0 to
// -0 changes no value but must still force a recompute, because downstream
// float ops can propagate the sign into different result bytes.
func TestDeltaTreeSignedZero(t *testing.T) {
	voters := make([]WeightedVoter, dcMinLeaf*2)
	for i := range voters {
		voters[i] = WeightedVoter{Weight: 1, P: 0.25}
	}
	voters[3].P = 0
	tree, err := NewDeltaTree(voters)
	if err != nil {
		t.Fatalf("NewDeltaTree: %v", err)
	}
	neg := append([]WeightedVoter(nil), voters...)
	neg[3].P = math.Copysign(0, -1)
	if err := tree.Update(neg); err != nil {
		t.Fatalf("Update: %v", err)
	}
	requireTreeMatchesScratch(t, tree, neg)
}

func TestDeltaUpdateCost(t *testing.T) {
	if c := DeltaUpdateCost(0); c != 1 {
		t.Fatalf("DeltaUpdateCost(0) = %d, want 1", c)
	}
	prev := int64(0)
	for _, w := range []int{1, 10, 100, 2000, 20000} {
		c := DeltaUpdateCost(w)
		if c <= 0 || c < prev {
			t.Fatalf("DeltaUpdateCost(%d) = %d not positive/monotone", w, c)
		}
		prev = c
	}
	// The patch bound must stay well under the full evaluation cost for
	// large n — otherwise the serving cost class would never prefer deltas.
	if full, patch := WeightedMajorityDPCost(2000, 2000), DeltaUpdateCost(2000); patch*10 > full {
		t.Fatalf("DeltaUpdateCost(2000)=%d not <= 1/10 of DP cost %d", patch, full)
	}
}
