package prob

import "liquid/internal/telemetry"

// Kernel telemetry, registered on the telemetry.Default registry. These
// counters record decisions the cost model and the workspace make — which
// way the D&C crossover went, how often scratch had to grow — and nothing
// in this package ever reads them back: telemetry is write-only with
// respect to results (enforced by the telemflow analyzer), so the numbers
// can explain performance without being able to change a PMF.
var (
	// cDCFFTMerges counts D&C segments merged by FFT convolution;
	// cDCDPLeaves counts segments the cost model kept on the quadratic DP.
	cDCFFTMerges = telemetry.NewCounter("prob/dc_fft_merges")
	cDCDPLeaves  = telemetry.NewCounter("prob/dc_dp_leaves")

	// cWorkspaceResets counts kernel invocations (one reset each);
	// cArenaGrows counts resets that had to reallocate the arena, and
	// cArenaFallbacks counts alloc calls that outgrew the arena estimate.
	// A warm workspace shows resets climbing with the other two flat.
	cWorkspaceResets = telemetry.NewCounter("prob/workspace_resets")
	cArenaGrows      = telemetry.NewCounter("prob/arena_grows")
	cArenaFallbacks  = telemetry.NewCounter("prob/arena_fallback_allocs")

	// DeltaTree update telemetry: cDeltaPatches counts Updates that reused
	// the retained tree through the diff window, cDeltaRebuilds counts
	// Updates that crossed the cost threshold and rebuilt from scratch, and
	// cDeltaNodesReused counts subtrees carried over unchanged. The
	// deterministic per-tree equivalents live in DeltaTreeStats; these
	// aggregates exist for process-wide observability (liquidd /statsz).
	cDeltaPatches     = telemetry.NewCounter("prob/delta_patches")
	cDeltaRebuilds    = telemetry.NewCounter("prob/delta_rebuilds")
	cDeltaNodesReused = telemetry.NewCounter("prob/delta_nodes_reused")
)
