package prob

import (
	"errors"
	"math"
	"testing"

	"liquid/internal/rng"
)

func sampleMany(s Sampler, n int, seed uint64) []float64 {
	st := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(st)
	}
	return out
}

func TestUniformSamplerRange(t *testing.T) {
	xs := sampleMany(UniformSampler{Lo: 2, Hi: 5}, 10000, 1)
	for _, x := range xs {
		if x < 2 || x >= 5 {
			t.Fatalf("uniform sample %v out of [2,5)", x)
		}
	}
	if m := Mean(xs); math.Abs(m-3.5) > 0.05 {
		t.Fatalf("uniform mean %v, want ~3.5", m)
	}
}

func TestConstantSampler(t *testing.T) {
	xs := sampleMany(ConstantSampler{Value: 0.42}, 10, 1)
	for _, x := range xs {
		if x != 0.42 {
			t.Fatalf("constant sampler returned %v", x)
		}
	}
}

func TestGammaSamplerMoments(t *testing.T) {
	tests := []float64{0.5, 1, 2.5, 9}
	for _, shape := range tests {
		xs := sampleMany(GammaSampler{Shape: shape}, 100000, uint64(shape*100))
		m := Mean(xs)
		v := Variance(xs)
		// Gamma(shape,1): mean = shape, var = shape.
		if math.Abs(m-shape) > 0.15*shape+0.05 {
			t.Errorf("shape %v: mean %v", shape, m)
		}
		if math.Abs(v-shape) > 0.25*shape+0.1 {
			t.Errorf("shape %v: variance %v", shape, v)
		}
		for _, x := range xs[:100] {
			if x < 0 {
				t.Fatalf("negative gamma sample %v", x)
			}
		}
	}
}

func TestGammaSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape 0")
		}
	}()
	GammaSampler{Shape: 0}.Sample(rng.New(1))
}

func TestBetaSamplerMoments(t *testing.T) {
	a, b := 2.0, 5.0
	xs := sampleMany(BetaSampler{Alpha: a, Beta: b}, 100000, 3)
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if m := Mean(xs); math.Abs(m-wantMean) > 0.01 {
		t.Errorf("beta mean %v, want %v", m, wantMean)
	}
	if v := Variance(xs); math.Abs(v-wantVar) > 0.01 {
		t.Errorf("beta variance %v, want %v", v, wantVar)
	}
	for _, x := range xs {
		if x < 0 || x > 1 {
			t.Fatalf("beta sample %v out of [0,1]", x)
		}
	}
}

func TestTruncatedNormalRange(t *testing.T) {
	s := TruncatedNormalSampler{Mu: 0.5, Sigma: 0.3, Lo: 0.2, Hi: 0.8}
	xs := sampleMany(s, 20000, 5)
	for _, x := range xs {
		if x < 0.2 || x > 0.8 {
			t.Fatalf("truncated normal sample %v out of range", x)
		}
	}
}

func TestTruncatedNormalFarTail(t *testing.T) {
	// Interval with essentially no mass: must still terminate and return an
	// in-range value.
	s := TruncatedNormalSampler{Mu: 0, Sigma: 0.001, Lo: 100, Hi: 101}
	x := s.Sample(rng.New(7))
	if x < 100 || x > 101 {
		t.Fatalf("fallback sample %v out of range", x)
	}
}

func TestClampedSampler(t *testing.T) {
	base := TruncatedNormalSampler{Mu: 0.5, Sigma: 3, Lo: -10, Hi: 10}
	c := ClampedSampler{Base: base, Lo: 0.1, Hi: 0.9}
	for _, x := range sampleMany(c, 5000, 9) {
		if x < 0.1 || x > 0.9 {
			t.Fatalf("clamped sample %v out of range", x)
		}
	}
}

func TestNewCompetencySampler(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  float64
		params  []float64
		wantErr bool
	}{
		{name: "uniform", lo: 0.2, hi: 0.8},
		{name: "beta", lo: 0.1, hi: 0.9, params: []float64{2, 3}},
		{name: "beta", lo: 0.1, hi: 0.9}, // defaults
		{name: "truncnorm", lo: 0.3, hi: 0.7, params: []float64{0.5, 0.1}},
		{name: "truncnorm", lo: 0.3, hi: 0.7},
		{name: "nope", lo: 0, hi: 1, wantErr: true},
		{name: "uniform", lo: 0.8, hi: 0.2, wantErr: true},
		{name: "beta", lo: 0, hi: 1, params: []float64{-1, 2}, wantErr: true},
		{name: "truncnorm", lo: 0, hi: 1, params: []float64{0.5, -1}, wantErr: true},
	}
	for _, tt := range tests {
		s, err := NewCompetencySampler(tt.name, tt.lo, tt.hi, tt.params...)
		if tt.wantErr {
			if err == nil {
				t.Errorf("%s [%v,%v]: expected error", tt.name, tt.lo, tt.hi)
			} else if !errors.Is(err, ErrInvalidParameter) {
				t.Errorf("%s: error %v should wrap ErrInvalidParameter", tt.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tt.name, err)
			continue
		}
		for _, x := range sampleMany(s, 2000, 11) {
			if x < tt.lo || x > tt.hi {
				t.Errorf("%s sample %v outside [%v,%v]", tt.name, x, tt.lo, tt.hi)
				break
			}
		}
	}
}
