package prob

import (
	"math"
	"testing"

	"liquid/internal/rng"
)

// naiveDFT is the O(n^2) reference transform for validating fftCore.
func naiveDFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	outR := make([]float64, n)
	outI := make([]float64, n)
	for k := 0; k < n; k++ {
		var sr, si Accumulator
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			sr.Add(re[j]*c - im[j]*s)
			si.Add(re[j]*s + im[j]*c)
		}
		outR[k], outI[k] = sr.Sum(), si.Sum()
	}
	return outR, outI
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	ws := NewWorkspace()
	s := rng.New(41)
	for lg := 1; lg <= 8; lg++ {
		n := 1 << lg
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = s.Float64() - 0.5
			im[i] = s.Float64() - 0.5
		}
		wantR, wantI := naiveDFT(re, im)
		fftCore(re, im, ws.tables(lg), lg)
		for i := range re {
			if math.Abs(re[i]-wantR[i]) > 1e-9 || math.Abs(im[i]-wantI[i]) > 1e-9 {
				t.Fatalf("n=%d bin %d: got (%g,%g) want (%g,%g)", n, i, re[i], im[i], wantR[i], wantI[i])
			}
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	ws := NewWorkspace()
	s := rng.New(43)
	for _, sizes := range [][2]int{{1, 1}, {1, 7}, {5, 5}, {33, 64}, {100, 300}, {517, 291}} {
		a := make([]float64, sizes[0])
		b := make([]float64, sizes[1])
		for i := range a {
			a[i] = s.Float64()
		}
		for i := range b {
			b[i] = s.Float64()
		}
		want := make([]float64, len(a)+len(b)-1)
		convDirect(a, b, want)
		got := ws.convolve(a, b)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: got length %d, want %d", sizes, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*float64(len(want)) {
				t.Fatalf("sizes %v: index %d: got %g want %g", sizes, i, got[i], want[i])
			}
		}
	}
}

// pmfTV is the total-variation distance between a divide-and-conquer PMF
// and its naive-DP reference.
func pmfTV(t *testing.T, voters []WeightedVoter, ws *Workspace) float64 {
	t.Helper()
	wm, err := NewWeightedMajority(voters)
	if err != nil {
		t.Fatal(err)
	}
	fast := wm.PMFWS(ws)
	return TotalVariation(fast, wm.PMFNaive())
}

// TestDivideAndConquerEquivalence is the seeded property test for the
// kernel overhaul: across random sizes and weights, the divide-and-conquer
// PMF must match the naive DP within 1e-9 total-variation distance.
func TestDivideAndConquerEquivalence(t *testing.T) {
	ws := NewWorkspace()
	s := rng.New(20240806)
	for trial := 0; trial < 60; trial++ {
		n := 1 + s.IntN(700)
		maxW := 1 + s.IntN(24)
		voters := make([]WeightedVoter, n)
		for i := range voters {
			voters[i] = WeightedVoter{Weight: 1 + s.IntN(maxW), P: s.Float64()}
		}
		if tv := pmfTV(t, voters, ws); tv > 1e-9 {
			t.Fatalf("trial %d (n=%d maxW=%d): TV %g > 1e-9", trial, n, maxW, tv)
		}
	}
}

func TestDivideAndConquerEdgeCases(t *testing.T) {
	ws := NewWorkspace()
	s := rng.New(7)

	t.Run("weight-1-only", func(t *testing.T) {
		// All weights 1: the weighted-majority kernel degenerates to the
		// Poisson binomial; both evaluators must agree with the PB DP.
		for _, n := range []int{1, 2, 63, 256, 701} {
			voters := make([]WeightedVoter, n)
			ps := make([]float64, n)
			for i := range voters {
				p := s.Float64()
				voters[i] = WeightedVoter{Weight: 1, P: p}
				ps[i] = p
			}
			if tv := pmfTV(t, voters, ws); tv > 1e-9 {
				t.Fatalf("n=%d: weighted TV %g > 1e-9", n, tv)
			}
			pb, err := NewPoissonBinomial(ps)
			if err != nil {
				t.Fatal(err)
			}
			if tv := TotalVariation(pb.PMFWS(ws), pb.PMFNaive()); tv > 1e-9 {
				t.Fatalf("n=%d: poisson-binomial TV %g > 1e-9", n, tv)
			}
		}
	})

	t.Run("single-voter", func(t *testing.T) {
		if tv := pmfTV(t, []WeightedVoter{{Weight: 17, P: 0.3}}, ws); tv != 0 {
			t.Fatalf("single voter: TV %g != 0", tv)
		}
	})

	t.Run("all-p-degenerate", func(t *testing.T) {
		// Every p in {0, 1}: the distribution is a point mass; the fast
		// evaluator must keep it exact to within clamping noise.
		for trial := 0; trial < 10; trial++ {
			n := 200 + s.IntN(400)
			voters := make([]WeightedVoter, n)
			for i := range voters {
				voters[i] = WeightedVoter{Weight: 1 + s.IntN(8), P: float64(s.IntN(2))}
			}
			if tv := pmfTV(t, voters, ws); tv > 1e-9 {
				t.Fatalf("trial %d (n=%d): TV %g > 1e-9", trial, n, tv)
			}
		}
	})

	t.Run("empty", func(t *testing.T) {
		pb, err := NewPoissonBinomial(nil)
		if err != nil {
			t.Fatal(err)
		}
		f := pb.PMFWS(ws)
		if len(f) != 1 || f[0] != 1 {
			t.Fatalf("empty PMF = %v, want [1]", f)
		}
	})
}

// TestWorkspaceReuse pins the workspace contract: repeated use of one
// workspace yields bit-identical results to fresh evaluation.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	s := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		n := 300 + s.IntN(300)
		voters := make([]WeightedVoter, n)
		for i := range voters {
			voters[i] = WeightedVoter{Weight: 1 + s.IntN(10), P: s.Float64()}
		}
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			t.Fatal(err)
		}
		fresh := wm.PMF()
		reused := wm.PMFWS(ws)
		for i := range fresh {
			if fresh[i] != reused[i] {
				t.Fatalf("trial %d index %d: fresh %v != reused %v", trial, i, fresh[i], reused[i])
			}
		}
		if got, want := wm.ProbCorrectDecisionWS(ws), wm.ProbCorrectDecision(); got != want {
			t.Fatalf("trial %d: ProbCorrectDecisionWS %v != ProbCorrectDecision %v", trial, got, want)
		}
	}
}

// TestBorrowingConstructors covers the zero-copy Workspace constructors.
func TestBorrowingConstructors(t *testing.T) {
	ws := NewWorkspace()
	if _, err := ws.PoissonBinomial([]float64{0.5, 1.5}); err == nil {
		t.Fatal("expected validation error for p > 1")
	}
	if _, err := ws.WeightedMajority([]WeightedVoter{{Weight: 0, P: 0.5}}); err == nil {
		t.Fatal("expected validation error for weight 0")
	}
	ps := []float64{0.2, 0.8, 0.5}
	pb, err := ws.PoissonBinomial(ps)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewPoissonBinomial(ps)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pb.ProbMajorityWS(ws), ref.ProbMajority(); got != want {
		t.Fatalf("borrowed ProbMajority %v != copied %v", got, want)
	}
	voters := ws.VoterBuffer(3)
	voters = append(voters, WeightedVoter{3, 0.9}, WeightedVoter{1, 0.2}, WeightedVoter{2, 0.5})
	wm, err := ws.WeightedMajority(voters)
	if err != nil {
		t.Fatal(err)
	}
	refWM, err := NewWeightedMajority(voters)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wm.ProbCorrectDecisionWS(ws), refWM.ProbCorrectDecision(); got != want {
		t.Fatalf("borrowed ProbCorrectDecision %v != copied %v", got, want)
	}
}

// FuzzConvolutionEquivalence feeds arbitrary voter encodings through both
// PMF engines and requires total-variation agreement. Wired into the
// `make check` fuzz-smoke stage.
func FuzzConvolutionEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(10), uint8(4))
	f.Add(uint64(7), uint16(300), uint8(1))
	f.Add(uint64(42), uint16(600), uint8(20))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, maxW uint8) {
		nv := int(n)%800 + 1
		mw := int(maxW)%32 + 1
		s := rng.New(seed)
		voters := make([]WeightedVoter, nv)
		for i := range voters {
			voters[i] = WeightedVoter{Weight: 1 + s.IntN(mw), P: s.Float64()}
		}
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorkspace()
		if tv := TotalVariation(wm.PMFWS(ws), wm.PMFNaive()); tv > 1e-9 {
			t.Fatalf("seed=%d n=%d maxW=%d: TV %g > 1e-9", seed, nv, mw, tv)
		}
	})
}
