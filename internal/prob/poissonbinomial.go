package prob

import (
	"fmt"
	"math"
)

// PoissonBinomial is the distribution of a sum of independent Bernoulli
// variables with (possibly distinct) success probabilities.
type PoissonBinomial struct {
	ps []float64
}

// NewPoissonBinomial validates the probability vector and returns the
// distribution. Every p must lie in [0, 1].
func NewPoissonBinomial(ps []float64) (*PoissonBinomial, error) {
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: p[%d] = %v not in [0,1]", ErrInvalidParameter, i, p)
		}
	}
	cp := make([]float64, len(ps))
	copy(cp, ps)
	return &PoissonBinomial{ps: cp}, nil
}

// N returns the number of summands.
func (pb *PoissonBinomial) N() int { return len(pb.ps) }

// Mean returns the expected value of the sum.
func (pb *PoissonBinomial) Mean() float64 {
	return Sum(pb.ps)
}

// Variance returns the variance of the sum.
func (pb *PoissonBinomial) Variance() float64 {
	var v Accumulator
	for _, p := range pb.ps {
		v.Add(p * (1 - p))
	}
	return v.Sum()
}

// PMF returns the full probability mass function f where f[k] = P[sum = k]
// for k in [0, n]. It runs the exact O(n^2) convolution dynamic program.
func (pb *PoissonBinomial) PMF() []float64 {
	f := make([]float64, len(pb.ps)+1)
	f[0] = 1
	for i, p := range pb.ps {
		// Iterate downward so f[k-1] is still the previous round's value.
		for k := i + 1; k >= 1; k-- {
			f[k] = f[k]*(1-p) + f[k-1]*p
		}
		f[0] *= 1 - p
	}
	return f
}

// ProbAtLeast returns P[sum >= k].
func (pb *PoissonBinomial) ProbAtLeast(k int) float64 {
	if k <= 0 {
		return 1
	}
	n := len(pb.ps)
	if k > n {
		return 0
	}
	f := pb.PMF()
	return clamp01(Sum(f[k : n+1]))
}

// ProbMajority returns the probability that strictly more than half of the
// variables succeed: P[sum > n/2]. Ties (possible only for even n) count as
// failure, matching the paper's weighted-majority rule.
func (pb *PoissonBinomial) ProbMajority() float64 {
	n := len(pb.ps)
	return pb.ProbAtLeast(n/2 + 1)
}

// NormalApproximation returns the normal distribution matching the sum's
// mean and variance (the CLT limit of Lemma 4 in the paper).
func (pb *PoissonBinomial) NormalApproximation() Normal {
	return Normal{Mu: pb.Mean(), Sigma: math.Sqrt(pb.Variance())}
}
