package prob

import (
	"fmt"
	"math"
)

// PoissonBinomial is the distribution of a sum of independent Bernoulli
// variables with (possibly distinct) success probabilities.
type PoissonBinomial struct {
	ps []float64
}

// validateProbs checks every probability lies in [0, 1].
func validateProbs(ps []float64) error {
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("%w: p[%d] = %v not in [0,1]", ErrInvalidParameter, i, p)
		}
	}
	return nil
}

// NewPoissonBinomial validates the probability vector and returns the
// distribution. Every p must lie in [0, 1]. The vector is copied; for a
// zero-allocation borrowing constructor see Workspace.PoissonBinomial.
func NewPoissonBinomial(ps []float64) (*PoissonBinomial, error) {
	if err := validateProbs(ps); err != nil {
		return nil, err
	}
	cp := make([]float64, len(ps))
	copy(cp, ps)
	return &PoissonBinomial{ps: cp}, nil
}

// N returns the number of summands.
func (pb *PoissonBinomial) N() int { return len(pb.ps) }

// Mean returns the expected value of the sum.
func (pb *PoissonBinomial) Mean() float64 {
	return Sum(pb.ps)
}

// Variance returns the variance of the sum.
func (pb *PoissonBinomial) Variance() float64 {
	var v Accumulator
	for _, p := range pb.ps {
		v.Add(p * (1 - p))
	}
	return v.Sum()
}

// PMF returns the full probability mass function f where f[k] = P[sum = k]
// for k in [0, n]. Small instances run the exact O(n^2) convolution DP;
// large ones the divide-and-conquer evaluator (see PMFWS).
func (pb *PoissonBinomial) PMF() []float64 {
	ws := getWorkspace()
	f := pb.PMFWS(ws)
	out := make([]float64, len(f))
	copy(out, f)
	putWorkspace(ws)
	return out
}

// PMFNaive returns the PMF via the plain O(n^2) dynamic program with no
// divide-and-conquer, whatever the size. It is the cross-validation
// reference for the fast evaluator (and its leaf kernel).
func (pb *PoissonBinomial) PMFNaive() []float64 {
	f := make([]float64, len(pb.ps)+1)
	pbDPInto(f, pb.ps)
	return f
}

// PMFWS computes the PMF into ws-owned memory and returns it. The result
// is valid until the next kernel call on ws. Above the cost-model
// crossover the voter set is split recursively and halves are merged by
// FFT convolution (O(n log^2 n) work); below it the in-place DP runs
// unchanged, so workspace reuse is the only difference for small inputs.
func (pb *PoissonBinomial) PMFWS(ws *Workspace) []float64 {
	n := len(pb.ps)
	ws.reset(3*(n+1) + 64)
	return ws.pbDC(pb.ps, 0, n)
}

// ProbAtLeast returns P[sum >= k].
func (pb *PoissonBinomial) ProbAtLeast(k int) float64 {
	ws := getWorkspace()
	v := pb.ProbAtLeastWS(ws, k)
	putWorkspace(ws)
	return v
}

// ProbAtLeastWS returns P[sum >= k] using ws for scratch: the PMF lives
// only in workspace memory and the upper tail is summed in place, so the
// call allocates nothing once ws is warm.
func (pb *PoissonBinomial) ProbAtLeastWS(ws *Workspace, k int) float64 {
	if k <= 0 {
		return 1
	}
	n := len(pb.ps)
	if k > n {
		return 0
	}
	f := pb.PMFWS(ws)
	return clamp01(Sum(f[k : n+1]))
}

// ProbMajority returns the probability that strictly more than half of the
// variables succeed: P[sum > n/2]. Ties (possible only for even n) count as
// failure, matching the paper's weighted-majority rule.
func (pb *PoissonBinomial) ProbMajority() float64 {
	n := len(pb.ps)
	return pb.ProbAtLeast(n/2 + 1)
}

// ProbMajorityWS is ProbMajority with caller-provided scratch.
func (pb *PoissonBinomial) ProbMajorityWS(ws *Workspace) float64 {
	n := len(pb.ps)
	return pb.ProbAtLeastWS(ws, n/2+1)
}

// NormalApproximation returns the normal distribution matching the sum's
// mean and variance (the CLT limit of Lemma 4 in the paper).
func (pb *PoissonBinomial) NormalApproximation() Normal {
	return Normal{Mu: pb.Mean(), Sigma: math.Sqrt(pb.Variance())}
}
