package prob

import (
	"math"
	"testing"
	"testing/quick"

	"liquid/internal/rng"
)

func mustWM(t *testing.T, voters []WeightedVoter) *WeightedMajority {
	t.Helper()
	wm, err := NewWeightedMajority(voters)
	if err != nil {
		t.Fatal(err)
	}
	return wm
}

func TestWeightedMajorityRejectsInvalid(t *testing.T) {
	bad := [][]WeightedVoter{
		{{Weight: 0, P: 0.5}},
		{{Weight: -1, P: 0.5}},
		{{Weight: 1, P: -0.2}},
		{{Weight: 1, P: 1.2}},
		{{Weight: 1, P: math.NaN()}},
	}
	for _, voters := range bad {
		if _, err := NewWeightedMajority(voters); err == nil {
			t.Errorf("expected error for %v", voters)
		}
	}
}

func TestWeightedReducesToPoissonBinomial(t *testing.T) {
	ps := []float64{0.3, 0.8, 0.51, 0.49, 0.9}
	voters := make([]WeightedVoter, len(ps))
	for i, p := range ps {
		voters[i] = WeightedVoter{Weight: 1, P: p}
	}
	wm := mustWM(t, voters)
	pb := mustPB(t, ps)

	fw, fp := wm.PMF(), pb.PMF()
	for k := range fp {
		if math.Abs(fw[k]-fp[k]) > 1e-12 {
			t.Fatalf("PMF mismatch at %d: %v vs %v", k, fw[k], fp[k])
		}
	}
	if math.Abs(wm.ProbCorrectDecision()-pb.ProbMajority()) > 1e-12 {
		t.Fatal("majority probabilities differ for unit weights")
	}
}

func TestDictatorWeight(t *testing.T) {
	// One sink holding all n votes: correctness probability equals its p.
	// This is exactly the Figure 1 star outcome.
	wm := mustWM(t, []WeightedVoter{{Weight: 9, P: 2.0 / 3}})
	if got := wm.ProbCorrectDecision(); math.Abs(got-2.0/3) > 1e-15 {
		t.Fatalf("dictator ProbCorrectDecision = %v, want 2/3", got)
	}
	if wm.MaxWeight() != 9 {
		t.Fatalf("MaxWeight = %d", wm.MaxWeight())
	}
}

func TestWeightedTieLoses(t *testing.T) {
	// Weight 2 certain-correct vs two weight-1 certain-wrong: 2 vs 2 tie.
	wm := mustWM(t, []WeightedVoter{
		{Weight: 2, P: 1},
		{Weight: 1, P: 0},
		{Weight: 1, P: 0},
	})
	if got := wm.ProbCorrectDecision(); got != 0 {
		t.Fatalf("tie should lose, got %v", got)
	}
}

func TestWeightedStrictWin(t *testing.T) {
	wm := mustWM(t, []WeightedVoter{
		{Weight: 3, P: 1},
		{Weight: 2, P: 0},
	})
	if got := wm.ProbCorrectDecision(); got != 1 {
		t.Fatalf("3 vs 2 should win, got %v", got)
	}
}

func TestWeightedPMFSumsToOne(t *testing.T) {
	wm := mustWM(t, []WeightedVoter{
		{Weight: 3, P: 0.4},
		{Weight: 5, P: 0.7},
		{Weight: 1, P: 0.99},
		{Weight: 2, P: 0.01},
	})
	var s float64
	for _, v := range wm.PMF() {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("PMF sums to %v", s)
	}
}

func TestWeightedMeanVariance(t *testing.T) {
	wm := mustWM(t, []WeightedVoter{
		{Weight: 2, P: 0.5},
		{Weight: 3, P: 0.2},
	})
	if got, want := wm.Mean(), 2*0.5+3*0.2; math.Abs(got-want) > 1e-15 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	want := 4*0.25 + 9*0.16
	if got := wm.Variance(); math.Abs(got-want) > 1e-15 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestWeightedMatchesMonteCarlo(t *testing.T) {
	voters := []WeightedVoter{
		{Weight: 4, P: 0.62},
		{Weight: 1, P: 0.3},
		{Weight: 2, P: 0.85},
		{Weight: 3, P: 0.5},
		{Weight: 1, P: 0.11},
	}
	wm := mustWM(t, voters)
	want := wm.ProbCorrectDecision()

	s := rng.New(7)
	const trials = 300000
	wins := 0
	for i := 0; i < trials; i++ {
		correct := 0
		for _, v := range voters {
			if s.Bernoulli(v.P) {
				correct += v.Weight
			}
		}
		if 2*correct > wm.TotalWeight() {
			wins++
		}
	}
	got := float64(wins) / trials
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("Monte Carlo %v vs exact %v", got, want)
	}
}

func TestQuickWeightedPMFValid(t *testing.T) {
	f := func(rawW []uint8, rawP []float64) bool {
		m := len(rawW)
		if len(rawP) < m {
			m = len(rawP)
		}
		if m > 12 {
			m = 12
		}
		if m == 0 {
			return true
		}
		voters := make([]WeightedVoter, m)
		for i := 0; i < m; i++ {
			p := rawP[i]
			if math.IsNaN(p) || math.IsInf(p, 0) {
				p = 0.5
			}
			voters[i] = WeightedVoter{
				Weight: int(rawW[i]%10) + 1,
				P:      math.Abs(math.Mod(p, 1)),
			}
		}
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range wm.PMF() {
			if v < -1e-15 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTieRules(t *testing.T) {
	// Two voters, p = 0.5 each: P(tie) = 0.5, P(win strictly) = 0.25.
	wm := mustWM(t, []WeightedVoter{{Weight: 1, P: 0.5}, {Weight: 1, P: 0.5}})
	if got := wm.ProbTie(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ProbTie = %v, want 0.5", got)
	}
	if got := wm.ProbCorrectDecisionRule(TiesLose); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("TiesLose = %v, want 0.25", got)
	}
	if got := wm.ProbCorrectDecisionRule(TiesWin); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("TiesWin = %v, want 0.75", got)
	}
	if got := wm.ProbCorrectDecisionRule(TiesCoin); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TiesCoin = %v, want 0.5", got)
	}
}

func TestTieRulesOddTotalCoincide(t *testing.T) {
	wm := mustWM(t, []WeightedVoter{{Weight: 1, P: 0.6}, {Weight: 2, P: 0.4}})
	if wm.ProbTie() != 0 {
		t.Fatal("odd total cannot tie")
	}
	a := wm.ProbCorrectDecisionRule(TiesLose)
	b := wm.ProbCorrectDecisionRule(TiesWin)
	c := wm.ProbCorrectDecisionRule(TiesCoin)
	if a != b || b != c {
		t.Fatalf("rules should coincide for odd totals: %v %v %v", a, b, c)
	}
}
