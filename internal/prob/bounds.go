package prob

import "math"

// HoeffdingTwoSided returns the Hoeffding upper bound on
// P[|S - E[S]| >= t] for S a sum of independent variables with ranges
// [a_i, b_i] whose squared spans sum to sumSquaredSpans:
//
//	2 * exp(-2 t^2 / sum_i (b_i - a_i)^2).
//
// This is Theorem 1 in the paper (Hoeffding's inequality).
func HoeffdingTwoSided(t, sumSquaredSpans float64) float64 {
	if t <= 0 {
		return 1
	}
	if sumSquaredSpans <= 0 {
		return 0
	}
	return clamp01(2 * math.Exp(-2*t*t/sumSquaredSpans))
}

// HoeffdingSinkBound specializes Hoeffding to the paper's Lemma 6 setting:
// at least n/w sinks, each contributing a span of at most w, giving
// P[|X - mu| >= t] <= 2 exp(-2 t^2 / (n w)). With t = sqrt(n^{1+eps}) * w the
// bound becomes 2 exp(-2 n^eps w), which vanishes for any eps > 0.
func HoeffdingSinkBound(n int, maxWeight int, t float64) float64 {
	if n <= 0 || maxWeight <= 0 {
		return 1
	}
	return HoeffdingTwoSided(t, float64(n)*float64(maxWeight))
}

// ChernoffLowerTail returns the multiplicative Chernoff upper bound on
// P[S <= (1 - delta) mu] for a sum of independent [0,1] variables with mean
// mu: exp(-delta^2 mu / 2). delta outside (0, 1] yields the trivial bound 1.
func ChernoffLowerTail(delta, mu float64) float64 {
	if delta <= 0 || mu <= 0 {
		return 1
	}
	if delta > 1 {
		delta = 1
	}
	return clamp01(math.Exp(-delta * delta * mu / 2))
}

// ChernoffUpperTail returns the multiplicative Chernoff upper bound on
// P[S >= (1 + delta) mu]: exp(-delta^2 mu / (2 + delta)) for delta > 0.
func ChernoffUpperTail(delta, mu float64) float64 {
	if delta <= 0 || mu <= 0 {
		return 1
	}
	return clamp01(math.Exp(-delta * delta * mu / (2 + delta)))
}

// FlipProbabilityBound evaluates the Lemma 3 anti-concentration bound: the
// probability that delegating d votes can change the outcome of direct
// voting is at most the normal mass of X^D in an interval of width 2*2d
// around n/2 ... bounded in the paper by erf(d / (sigma sqrt(2)/2)) with
// sigma >= sqrt(n beta(1-beta)). We expose the direct quantity: for a direct
// vote total X ~ Normal(mu, sigma), the chance the realized value falls
// within margin votes of the majority threshold n/2.
func FlipProbabilityBound(n int, mu, sigma float64, margin float64) float64 {
	if sigma <= 0 {
		return 1
	}
	half := float64(n) / 2
	dist := Normal{Mu: mu, Sigma: sigma}
	return dist.ProbInInterval(half-margin, half+margin)
}

// Erf is the error function, re-exported for experiment code that reports
// the paper's erf(n^{-eps}/sqrt(2)) style bounds.
func Erf(x float64) float64 { return math.Erf(x) }

// berryEsseenC is a valid universal constant for the Berry–Esseen theorem
// with non-identically distributed summands (Shevtsova 2010 proves 0.5600;
// any C >= that keeps the bound certified).
const berryEsseenC = 0.56

// BerryEsseenWeightedBound returns a certified uniform bound on the normal
// approximation error of a weighted Bernoulli sum S = sum_i w_i X_i with
// X_i ~ Bernoulli(p_i) independent:
//
//	sup_x |P[S <= x] - Phi((x - mu)/sigma)| <= C * sum_i rho_i / sigma^3
//
// with rho_i = E|w_i(X_i - p_i)|^3 = |w_i|^3 p_i(1-p_i)(p_i^2 + (1-p_i)^2)
// and sigma^2 = sum_i w_i^2 p_i(1-p_i). The bound is clamped to 1 (the
// trivial bound) and is 1 when sigma = 0, where the normal approximation
// carries no information. weights and ps must have equal length; a nil
// weights slice means unit weights.
//
// This is the certified error the serving layer's graceful-degradation
// ladder attaches to a normal-approximation response: the exact probability
// provably lies within the returned bound of the approximate one.
func BerryEsseenWeightedBound(weights, ps []float64) float64 {
	var v, rho Accumulator
	for i, p := range ps {
		w := 1.0
		if weights != nil {
			w = math.Abs(weights[i])
		}
		q := p * (1 - p)
		v.Add(w * w * q)
		rho.Add(w * w * w * q * (p*p + (1-p)*(1-p)))
	}
	sigma2 := v.Sum()
	if sigma2 <= 0 {
		return 1
	}
	sigma := math.Sqrt(sigma2)
	b := berryEsseenC * rho.Sum() / (sigma2 * sigma)
	if b > 1 || math.IsNaN(b) {
		return 1
	}
	return b
}

// BerryEsseenBound specializes BerryEsseenWeightedBound to unit weights:
// the Poisson-binomial total of independent direct votes.
func BerryEsseenBound(ps []float64) float64 {
	return BerryEsseenWeightedBound(nil, ps)
}
