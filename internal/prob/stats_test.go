package prob

import (
	"math"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got, want := s.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should be all zeros")
	}
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 {
		t.Error("single observation: mean 3.5, variance 0")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("single observation min/max")
	}
}

func TestSummaryCICoversMean(t *testing.T) {
	var s Summary
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 10))
	}
	lo, hi := s.MeanCI(0.95)
	if lo > s.Mean() || hi < s.Mean() {
		t.Fatalf("CI [%v,%v] does not contain mean %v", lo, hi, s.Mean())
	}
	if hi <= lo {
		t.Fatal("CI should have positive width")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty slice should be NaN")
	}
	// Input must not be modified.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Quantile modified its input")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 0.95)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson [%v,%v] should straddle 0.5", lo, hi)
	}
	// Zero successes must still give a positive-width interval touching 0.
	lo, hi = WilsonInterval(0, 100, 0.95)
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.1 {
		t.Errorf("hi = %v for 0/100", hi)
	}
	// Degenerate trials.
	lo, hi = WilsonInterval(0, 0, 0.95)
	if lo != 0 || hi != 1 {
		t.Errorf("no-trials interval = [%v,%v], want [0,1]", lo, hi)
	}
}

func TestWilsonNarrowsWithTrials(t *testing.T) {
	lo1, hi1 := WilsonInterval(30, 100, 0.95)
	lo2, hi2 := WilsonInterval(300, 1000, 0.95)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Fatal("interval should narrow with more trials")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9999, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestMeanVarianceHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of one point should be 0")
	}
	xs := []float64{1, 2, 3}
	if got := Mean(xs); math.Abs(got-2) > 1e-15 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-1) > 1e-15 {
		t.Errorf("Variance = %v", got)
	}
}

func TestBounds(t *testing.T) {
	if HoeffdingTwoSided(0, 10) != 1 {
		t.Error("t=0 should give trivial bound")
	}
	if HoeffdingTwoSided(5, 0) != 0 {
		t.Error("zero span should give 0")
	}
	got := HoeffdingTwoSided(10, 100)
	want := 2 * math.Exp(-2.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Hoeffding = %v, want %v", got, want)
	}
	if ChernoffLowerTail(0.5, 0) != 1 {
		t.Error("mu=0 should give trivial Chernoff bound")
	}
	if got := ChernoffLowerTail(0.5, 8); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("Chernoff lower = %v", got)
	}
	if b := ChernoffUpperTail(1, 6); math.Abs(b-math.Exp(-2)) > 1e-12 {
		t.Errorf("Chernoff upper = %v", b)
	}
}

func TestFlipProbabilityBoundDecays(t *testing.T) {
	// For a fair direct vote, the chance of being within sqrt(n)^(1-) votes
	// of the threshold decays as n grows; this is the Lemma 3 mechanism.
	prev := 1.0
	for _, n := range []int{100, 10000, 1000000} {
		sigma := math.Sqrt(float64(n) * 0.25)
		margin := 2 * math.Pow(float64(n), 0.3)
		got := FlipProbabilityBound(n, float64(n)/2, sigma, margin)
		if got >= prev {
			t.Fatalf("flip bound did not decay at n=%d: %v >= %v", n, got, prev)
		}
		prev = got
	}
	// margin/sigma ~ n^{-0.2}, so the decay is slow; just require real
	// progress from the n=100 starting point.
	if prev > 0.25 {
		t.Fatalf("flip bound should be small at n=1e6, got %v", prev)
	}
}

func TestHoeffdingSinkBound(t *testing.T) {
	if HoeffdingSinkBound(0, 1, 5) != 1 {
		t.Error("n=0 trivial")
	}
	// Larger max weight weakens the bound at fixed t.
	loose := HoeffdingSinkBound(1000, 100, 50)
	tight := HoeffdingSinkBound(1000, 1, 50)
	if tight >= loose {
		t.Fatalf("bound should tighten with smaller max weight: %v vs %v", tight, loose)
	}
}
