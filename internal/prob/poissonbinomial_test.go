package prob

import (
	"math"
	"testing"
	"testing/quick"

	"liquid/internal/rng"
)

func mustPB(t *testing.T, ps []float64) *PoissonBinomial {
	t.Helper()
	pb, err := NewPoissonBinomial(ps)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func TestPoissonBinomialRejectsInvalid(t *testing.T) {
	for _, ps := range [][]float64{{-0.1}, {1.1}, {0.5, math.NaN()}} {
		if _, err := NewPoissonBinomial(ps); err == nil {
			t.Errorf("expected error for %v", ps)
		}
	}
}

func TestPMFMatchesBinomial(t *testing.T) {
	// Equal ps reduce to Binomial(n, p).
	const n, p = 10, 0.3
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = p
	}
	f := mustPB(t, ps).PMF()
	for k := 0; k <= n; k++ {
		want := binomialPMF(n, k, p)
		if math.Abs(f[k]-want) > 1e-12 {
			t.Errorf("PMF[%d] = %v, want %v", k, f[k], want)
		}
	}
}

func binomialPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func TestPMFSumsToOne(t *testing.T) {
	pb := mustPB(t, []float64{0.1, 0.9, 0.5, 0.33, 0.67, 1, 0})
	var s float64
	for _, v := range pb.PMF() {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("PMF sums to %v", s)
	}
}

func TestDeterministicVoters(t *testing.T) {
	pb := mustPB(t, []float64{1, 1, 0})
	f := pb.PMF()
	if math.Abs(f[2]-1) > 1e-15 {
		t.Fatalf("PMF should be a point mass at 2, got %v", f)
	}
	if got := pb.ProbMajority(); math.Abs(got-1) > 1e-15 {
		t.Fatalf("ProbMajority = %v, want 1", got)
	}
}

func TestProbMajorityTieLoses(t *testing.T) {
	// Two certain-correct and two certain-wrong voters: tie at 2 of 4, which
	// must count as incorrect under the strict-majority rule.
	pb := mustPB(t, []float64{1, 1, 0, 0})
	if got := pb.ProbMajority(); got != 0 {
		t.Fatalf("tie should lose, ProbMajority = %v", got)
	}
}

func TestProbMajoritySingleVoter(t *testing.T) {
	pb := mustPB(t, []float64{0.7})
	if got := pb.ProbMajority(); math.Abs(got-0.7) > 1e-15 {
		t.Fatalf("ProbMajority = %v, want 0.7", got)
	}
}

func TestProbAtLeastEdges(t *testing.T) {
	pb := mustPB(t, []float64{0.5, 0.5})
	if pb.ProbAtLeast(0) != 1 {
		t.Error("ProbAtLeast(0) should be 1")
	}
	if pb.ProbAtLeast(3) != 0 {
		t.Error("ProbAtLeast(n+1) should be 0")
	}
	if got := pb.ProbAtLeast(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ProbAtLeast(1) = %v, want 0.75", got)
	}
}

func TestMeanVariance(t *testing.T) {
	pb := mustPB(t, []float64{0.2, 0.8, 0.5})
	if got, want := pb.Mean(), 1.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	want := 0.2*0.8 + 0.8*0.2 + 0.25
	if got := pb.Variance(); math.Abs(got-want) > 1e-15 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestMajorityMatchesMonteCarlo(t *testing.T) {
	ps := []float64{0.9, 0.2, 0.55, 0.71, 0.33, 0.44, 0.66}
	pb := mustPB(t, ps)
	want := pb.ProbMajority()

	s := rng.New(99)
	const trials = 300000
	wins := 0
	for i := 0; i < trials; i++ {
		correct := 0
		for _, p := range ps {
			if s.Bernoulli(p) {
				correct++
			}
		}
		if 2*correct > len(ps) {
			wins++
		}
	}
	got := float64(wins) / trials
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("Monte Carlo %v vs exact %v", got, want)
	}
}

func TestQuickPMFValidDistribution(t *testing.T) {
	f := func(raw []float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				continue
			}
			ps = append(ps, math.Abs(math.Mod(r, 1)))
		}
		if len(ps) > 25 {
			ps = ps[:25]
		}
		pb, err := NewPoissonBinomial(ps)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pb.PMF() {
			if v < -1e-15 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
