package prob

// DeltaTree is the retained (persistent) form of the divide-and-conquer
// PMF evaluator: the same weight-balanced tree pbDC/wmDC walk transiently,
// kept alive between evaluations so that a small edit to the voter multiset
// recomputes only the merges whose segments changed — O(log n) convolutions
// for a single-leaf edit instead of a full rebuild.
//
// Bit-identity is the design invariant, not an afterthought. Every node's
// PMF is a pure function of its segment's (weight, p) contents, because
// every structural decision the builder makes — the DP-leaf test, the
// weight-balanced split point, the FFT/DP merge crossover — depends only on
// prefix-weight *differences* inside the segment and is therefore invariant
// under shifting the segment left or right. A cached node whose contents
// did not change is consequently the same bytes a from-scratch evaluation
// would produce, and the root PMF equals WeightedMajority.PMFWS on the same
// voter order no matter which subtrees were reused. For all-weight-1 voters
// the cost model and the paired-FMA DP leaves coincide with the
// Poisson-binomial path (see wmDPInto), so one tree serves both the
// weighted-majority and the P^D use.
//
// Update takes the *entire* new voter sequence and discovers reuse itself:
// it computes the longest common prefix and suffix of the old and new
// sequences (exact Float64bits comparison — reuse must never equate values
// whose bit patterns differ) and, while rebuilding top-down, adopts any old
// subtree whose segment lies fully inside the unchanged prefix or suffix.
// Nodes are immutable once built, which makes the structure persistent:
// Clone is O(n) slice copies sharing every node, and an Update on the clone
// never mutates nodes the original still references.
//
// Rebuild-vs-patch cost rule (DESIGN.md §15): when the changed window
// covers half the sequence or more, nearly every merge on the recomputation
// frontier has to run anyway, so Update skips the reuse index entirely and
// rebuilds — same bytes, less bookkeeping. The decision is deterministic
// (a pure function of the two sequences), so per-tree Stats may appear in
// reproduced tables; the telemetry counters mirror them write-only.

import "math"

// deltaNode is one retained tree node: a DP leaf (left == nil) or an FFT/DP
// merge of its two children. Nodes are immutable after construction.
type deltaNode struct {
	span        int       // voters in the segment
	pmf         []float64 // exact PMF of the segment, length = segment weight + 1
	left, right *deltaNode
}

// DeltaTreeStats are deterministic per-tree counters: pure functions of the
// sequence of NewDeltaTree/Update inputs, independent of scheduling, so —
// unlike cache hit rates — they may be rendered into reproduced tables.
type DeltaTreeStats struct {
	// Builds counts from-scratch constructions (NewDeltaTree and Updates
	// that crossed the rebuild threshold also count under Rebuilds).
	Builds uint64
	// Patches counts Updates that went through the reuse index; Rebuilds
	// counts Updates that crossed the cost threshold and rebuilt.
	Patches  uint64
	Rebuilds uint64
	// ReusedNodes counts subtrees adopted unchanged across all Updates;
	// RecomputedLeaves and RecomputedMerges count freshly evaluated nodes.
	ReusedNodes      uint64
	RecomputedLeaves uint64
	RecomputedMerges uint64
}

// DeltaTree retains the D&C evaluation of one voter sequence. The zero
// value is not usable; construct with NewDeltaTree. A DeltaTree is not safe
// for concurrent use.
type DeltaTree struct {
	voters []WeightedVoter
	prev   []WeightedVoter // retired buffer, reused on the next Update
	pw     []int64
	total  int
	root   *deltaNode

	re, im []float64 // FFT scratch, pre-ensured outside the merge kernel

	stats DeltaTreeStats

	// Update scratch: the retiring root (adoption descends it by span
	// arithmetic), plus the diff window.
	oldRoot        *deltaNode
	reuseP, reuseS int
	shift          int
}

// NewDeltaTree validates voters (weights >= 1, p in [0,1]) and builds the
// retained tree. The slice is copied; the tree evaluates voters in the
// given order, and its PMF is bit-identical to
// Workspace.WeightedMajority(voters).PMFWS on that order. An empty sequence
// is valid and yields the point mass at zero.
func NewDeltaTree(voters []WeightedVoter) (*DeltaTree, error) {
	total, err := validateVoters(voters)
	if err != nil {
		return nil, err
	}
	t := &DeltaTree{}
	t.setVoters(voters, total)
	t.stats.Builds++
	t.root = t.build(0, len(t.voters))
	return t, nil
}

// setVoters installs the new sequence (copying into the retired buffer when
// one is available) and rebuilds the prefix-weight table.
func (t *DeltaTree) setVoters(voters []WeightedVoter, total int) {
	buf := t.prev[:0]
	buf = append(buf, voters...)
	t.prev = t.voters
	t.voters = buf
	t.total = total
	if cap(t.pw) < len(buf)+1 {
		t.pw = make([]int64, len(buf)+1)
	}
	t.pw = t.pw[:len(buf)+1]
	t.pw[0] = 0
	for i, v := range buf {
		t.pw[i+1] = t.pw[i] + int64(v.Weight)
	}
}

// voterBitsEqual compares two voters exactly: weights and the bit patterns
// of their probabilities. Reuse keyed on anything weaker (e.g. float ==,
// which identifies +0 and -0) could adopt a node whose bytes differ from
// what a from-scratch evaluation of the new sequence would compute.
func voterBitsEqual(a, b WeightedVoter) bool {
	return a.Weight == b.Weight && math.Float64bits(a.P) == math.Float64bits(b.P)
}

// Update replaces the tree's voter sequence, reusing every retained subtree
// whose segment is untouched by the edit. The resulting PMF is
// bit-identical to a from-scratch build of the new sequence for every edit
// pattern; only the amount of recomputation varies. voters may alias caller
// scratch — it is copied before the tree adopts it.
func (t *DeltaTree) Update(voters []WeightedVoter) error {
	total, err := validateVoters(voters)
	if err != nil {
		return err
	}
	old := t.voters
	oldRoot := t.root

	// Longest common prefix, then longest common suffix of the remainder.
	p := 0
	for p < len(old) && p < len(voters) && voterBitsEqual(old[p], voters[p]) {
		p++
	}
	s := 0
	for s < len(old)-p && s < len(voters)-p &&
		voterBitsEqual(old[len(old)-1-s], voters[len(voters)-1-s]) {
		s++
	}

	changed := len(voters) - p - s
	patch := oldRoot != nil && 2*changed < len(voters)
	if patch {
		t.stats.Patches++
		cDeltaPatches.Inc()
		t.oldRoot = oldRoot
		t.reuseP, t.reuseS = p, s
		t.shift = len(voters) - len(old)
	} else {
		t.stats.Rebuilds++
		cDeltaRebuilds.Inc()
	}

	t.setVoters(voters, total)
	t.root = t.build(0, len(t.voters))
	t.oldRoot = nil // drop the reference so retired subtrees can be collected
	return nil
}

// descend walks the old tree by span arithmetic to the node covering
// exactly [lo, hi) in old coordinates, or nil if no node aligns with that
// segment. Equivalent to indexing every old node by segment, without the
// per-Update map churn: each adoption costs one O(depth) walk.
func descend(nd *deltaNode, lo, hi int) *deltaNode {
	base := 0
	for nd != nil {
		if base == lo && base+nd.span == hi {
			return nd
		}
		if nd.left == nil {
			return nil
		}
		if mid := base + nd.left.span; hi <= mid {
			nd = nd.left
		} else if lo >= mid {
			nd, base = nd.right, mid
		} else {
			return nil
		}
	}
	return nil
}

// reusable returns the old subtree covering exactly [lo, hi) of the new
// sequence, if the segment lies fully inside the unchanged prefix or
// suffix. Old suffix segments live shift positions to the left.
func (t *DeltaTree) reusable(lo, hi int) *deltaNode {
	if t.oldRoot == nil {
		return nil
	}
	if hi <= t.reuseP {
		return descend(t.oldRoot, lo, hi)
	}
	if lo >= len(t.voters)-t.reuseS {
		return descend(t.oldRoot, lo-t.shift, hi-t.shift)
	}
	return nil
}

// build constructs (or adopts) the node for voters[lo:hi], making exactly
// the leaf/split/merge decisions wmDC makes on the same segment.
func (t *DeltaTree) build(lo, hi int) *deltaNode {
	if nd := t.reusable(lo, hi); nd != nil {
		t.stats.ReusedNodes++
		cDeltaNodesReused.Inc()
		return nd
	}
	w := int(t.pw[hi] - t.pw[lo])
	if hi-lo < dcMinLeaf || wmSplitGain(t.pw, lo, hi) <= fftMergeCost(w+1) {
		t.stats.RecomputedLeaves++
		nd := &deltaNode{span: hi - lo, pmf: make([]float64, w+1)}
		wmDPInto(nd.pmf, t.voters[lo:hi])
		return nd
	}
	mid := wmSplitPoint(t.pw, lo, hi)
	left := t.build(lo, mid)
	right := t.build(mid, hi)
	nd := &deltaNode{span: hi - lo, left: left, right: right, pmf: make([]float64, w+1)}
	t.merge(nd)
	t.stats.RecomputedMerges++
	return nd
}

// merge fills nd.pmf with the convolution of its children, pre-ensuring
// scratch and twiddle tables so the kernel itself allocates nothing.
func (t *DeltaTree) merge(nd *deltaNode) {
	a, b := nd.left.pmf, nd.right.pmf
	if len(a)*len(b) <= convDirectThreshold {
		deltaMergeInto(nd.pmf, a, b, nil, nil, nil, 0)
		return
	}
	lg := ceilLog2(len(a) + len(b) - 1)
	n := 1 << lg
	if cap(t.re) < n {
		t.re = make([]float64, n)
		t.im = make([]float64, n)
	}
	deltaMergeInto(nd.pmf, a, b, t.re[:n], t.im[:n], fftTablesFor(lg), lg)
}

// deltaMergeInto is the root-path merge kernel: Workspace.convolve followed
// by copyClampNonneg, fused into dst, with every float operation in the
// same order — the merged bytes must equal what wmDC writes for the same
// operands. The direct path needs no scratch; the FFT path requires re and
// im of length 1 << lg and the matching twiddle tables, both provided by
// the (unannotated) caller so this function stays allocation-free.
//
//lint:hotpath
func deltaMergeInto(dst, a, b, re, im []float64, t *fftTables, lg int) {
	outLen := len(a) + len(b) - 1
	if len(a)*len(b) <= convDirectThreshold {
		out := dst[:outLen]
		convDirect(a, b, out)
		for i, v := range out {
			if v < 0 {
				out[i] = 0
			}
		}
		return
	}
	n := 1 << lg
	copy(re, a)
	zeroFloats(re[len(a):])
	copy(im, b)
	zeroFloats(im[len(b):])
	fftCore(re, im, t, lg)
	// Pointwise spectrum multiply via conjugate symmetry — the same
	// separation convolve performs (see fft.go for the derivation).
	re[0], im[0] = re[0]*im[0], 0
	h := n / 2
	re[h], im[h] = re[h]*im[h], 0
	for k := 1; k < h; k++ {
		k2 := n - k
		zr1, zi1 := re[k], im[k]
		zr2, zi2 := re[k2], im[k2]
		ar := (zr1 + zr2) / 2
		ai := (zi1 - zi2) / 2
		br := (zi1 + zi2) / 2
		bi := (zr2 - zr1) / 2
		cr := ar*br - ai*bi
		ci := ar*bi + ai*br
		re[k], im[k] = cr, ci
		re[k2], im[k2] = cr, -ci
	}
	fftCore(im, re, t, lg)
	inv := 1 / float64(n)
	for i := 0; i < outLen; i++ {
		v := re[i] * inv
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

// Len returns the number of voters in the current sequence.
func (t *DeltaTree) Len() int { return len(t.voters) }

// TotalWeight returns the sum of the current voters' weights.
func (t *DeltaTree) TotalWeight() int { return t.total }

// PMF returns the root PMF (indices 0..TotalWeight). The slice is owned by
// the tree and must not be modified; it remains valid until the tree is
// updated (retained nodes are immutable, so clones and snapshots taken
// before an Update stay intact).
func (t *DeltaTree) PMF() []float64 { return t.root.pmf }

// ProbAbove returns P[total correct weight > threshold], the same clamped
// tail sum WeightedMajority.ProbAboveWS computes — bit-identical to the
// transient evaluator on the same voter order.
func (t *DeltaTree) ProbAbove(threshold int) float64 {
	if threshold < 0 {
		return 1
	}
	if threshold >= t.total {
		return 0
	}
	return clamp01(Sum(t.root.pmf[threshold+1 : t.total+1]))
}

// ProbCorrectDecision returns P[weighted majority decides correctly] with
// ties losing: ProbAbove(TotalWeight/2), matching
// WeightedMajority.ProbCorrectDecisionWS (and, on weight-1 sequences,
// PoissonBinomial.ProbMajorityWS) bit for bit.
func (t *DeltaTree) ProbCorrectDecision() float64 {
	return t.ProbAbove(t.total / 2)
}

// Stats returns the tree's deterministic lifetime counters.
func (t *DeltaTree) Stats() DeltaTreeStats { return t.stats }

// Clone returns a tree sharing every retained node with t. Because nodes
// are immutable, updating either tree never disturbs the other; the clone
// costs two O(n) slice copies and starts with fresh scratch and zeroed
// update stats (Builds reflects the shared initial build).
func (t *DeltaTree) Clone() *DeltaTree {
	c := &DeltaTree{
		voters: append([]WeightedVoter(nil), t.voters...),
		pw:     append([]int64(nil), t.pw...),
		total:  t.total,
		root:   t.root,
	}
	c.stats.Builds = 1
	return c
}

// DeltaUpdateCost prices one retained-tree patch in the cost model's DP
// units: a single-leaf edit recomputes one merge per level of the
// weight-balanced tree, a geometric series dominated by the root merge, so
// two root-sized FFT merges bound it. The serving layer's delta admission
// class budgets with this, in the same units as PoissonBinomialDPCost and
// WeightedMajorityDPCost.
func DeltaUpdateCost(w int) int64 {
	if w <= 0 {
		return 1
	}
	return 2 * fftMergeCost(w+1)
}
