package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, tt := range tests {
		if got := n.CDF(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalShiftScale(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 2}
	std := Normal{Mu: 0, Sigma: 1}
	for _, x := range []float64{4, 8, 10, 12, 16} {
		want := std.CDF((x - 10) / 2)
		if got := n.CDF(x); math.Abs(got-want) > 1e-14 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNormalSFComplement(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 1.5}
	for _, x := range []float64{-2, 0, 3, 5, 9} {
		if got := n.CDF(x) + n.SF(x); math.Abs(got-1) > 1e-12 {
			t.Errorf("CDF+SF at %v = %v, want 1", x, got)
		}
	}
}

func TestNormalDegenerateSigma(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 0}
	if n.CDF(4.9) != 0 || n.CDF(5) != 1 || n.CDF(5.1) != 1 {
		t.Error("degenerate normal CDF should be a step at mu")
	}
}

func TestProbInInterval(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	// ~68.27% within one sigma.
	got := n.ProbInInterval(-1, 1)
	if math.Abs(got-0.6826894921370859) > 1e-12 {
		t.Errorf("ProbInInterval(-1,1) = %v", got)
	}
	if n.ProbInInterval(2, 1) != 0 {
		t.Error("empty interval should have probability 0")
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	n := Normal{Mu: -2, Sigma: 3}
	for _, p := range []float64{1e-8, 0.001, 0.01, 0.25, 0.5, 0.75, 0.99, 0.999, 1 - 1e-8} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestQuantilePanicsOutsideDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) should panic", p)
				}
			}()
			Normal{Sigma: 1}.Quantile(p)
		}()
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := 0.001 + 0.998*math.Abs(math.Mod(a, 1))
		pb := 0.001 + 0.998*math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		n := Normal{Mu: 0, Sigma: 1}
		return n.Quantile(pa) <= n.Quantile(pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
