package prob

import (
	"math"
	"sort"
)

// Summary accumulates streaming descriptive statistics using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll incorporates a slice of observations.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// MeanCI returns a normal-approximation confidence interval for the mean at
// the given confidence level (e.g. 0.95).
func (s *Summary) MeanCI(level float64) (lo, hi float64) {
	if s.n == 0 {
		return 0, 0
	}
	z := Normal{Mu: 0, Sigma: 1}.Quantile(0.5 + level/2)
	h := z * s.StdErr()
	return s.mean - h, s.mean + h
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with successes out of trials at the given confidence level. It is accurate
// for small counts and proportions near 0 or 1, which is the regime of
// rare-event estimates like DNH violation rates.
func WilsonInterval(successes, trials int, level float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	z := Normal{Mu: 0, Sigma: 1}.Quantile(0.5 + level/2)
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return clamp01(center - half), clamp01(center + half)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("prob: NewHistogram requires bins > 0 and hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation; values outside [Lo, Hi) are counted in
// underflow/overflow buckets.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the total number of observations, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Density returns the normalized bin heights (fraction of in-range mass per
// bin, not per unit).
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.total == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / float64(h.total)
	}
	return d
}

// Mean of float64 slice; returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s Accumulator
	for _, x := range xs {
		d := x - m
		s.Add(d * d)
	}
	return s.Sum() / float64(len(xs)-1)
}
