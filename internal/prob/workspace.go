package prob

import (
	"sync"
)

// Workspace owns the scratch memory behind the exact convolution kernels:
// the arena that divide-and-conquer PMF evaluation builds partial
// distributions in, the FFT buffers and twiddle tables, and the reusable
// voter/key buffers that let callers construct distributions without
// per-call allocation.
//
// Ownership rules (see DESIGN.md "Performance kernels"):
//
//   - a Workspace is NOT safe for concurrent use; give each goroutine its
//     own (EvaluateMechanism hands one to every replication worker);
//   - every slice returned by a Workspace method (PMFWS results,
//     VoterBuffer, KeyBuffer) or by a borrowing constructor remains valid
//     only until the next call on the same Workspace;
//   - a Workspace never influences results, only allocation: for any input,
//     the kernels write the same bytes through a fresh or a reused one.
//
// The zero value is ready to use; NewWorkspace is provided for symmetry.
type Workspace struct {
	arena []float64
	off   int

	fftRe, fftIm []float64

	voters []WeightedVoter
	aux    []WeightedVoter
	counts []int
	key    []byte
	pw     []int64

	pb PoissonBinomial
	wm WeightedMajority
}

// NewWorkspace returns an empty workspace. Buffers grow on first use and
// are retained for reuse.
func NewWorkspace() *Workspace {
	return &Workspace{}
}

// wsPool backs the non-workspace entry points (PMF, ProbAtLeast, ...), so
// even legacy callers reuse kernels' scratch instead of reallocating it.
// Pooling affects allocation only, never results.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

func getWorkspace() *Workspace  { return wsPool.Get().(*Workspace) }
func putWorkspace(w *Workspace) { wsPool.Put(w) }

// reset begins a new kernel invocation: all previously returned arena
// slices are invalidated.
func (ws *Workspace) reset(need int) {
	cWorkspaceResets.Inc()
	ws.off = 0
	if cap(ws.arena) < need {
		cArenaGrows.Inc()
		ws.arena = make([]float64, need)
	}
	ws.arena = ws.arena[:cap(ws.arena)]
}

// alloc carves n float64s out of the arena. If the arena estimate was too
// small (it is sized generously at reset) the slice falls back to a fresh
// allocation, which is always correct because arena slices are never
// reallocated while borrowed.
func (ws *Workspace) alloc(n int) []float64 {
	if ws.off+n > len(ws.arena) {
		cArenaFallbacks.Inc()
		return make([]float64, n)
	}
	s := ws.arena[ws.off : ws.off+n : ws.off+n]
	ws.off += n
	return s
}

// ensureFFT sizes the FFT scratch for transforms of length n.
func (ws *Workspace) ensureFFT(n int) {
	if cap(ws.fftRe) < n {
		ws.fftRe = make([]float64, n)
		ws.fftIm = make([]float64, n)
	}
}

// VoterBuffer returns the workspace's reusable voter slice, emptied, with
// capacity for at least n voters. Callers append voters and typically pass
// the result to Workspace.WeightedMajority; the buffer is invalidated by
// the next VoterBuffer call.
func (ws *Workspace) VoterBuffer(n int) []WeightedVoter {
	if cap(ws.voters) < n {
		ws.voters = make([]WeightedVoter, 0, n)
	}
	return ws.voters[:0]
}

// SortVotersByWeight stably reorders voters ascending by weight with a
// counting sort over ws scratch — O(len + maxW) with no comparisons.
// Callers that append voters in ascending-p order obtain the canonical
// (weight, p) ordering of the kernel cache keys. maxW must be >= every
// weight. The result aliases ws memory and is invalidated by the next
// SortVotersByWeight call; the input slice is left untouched.
func (ws *Workspace) SortVotersByWeight(voters []WeightedVoter, maxW int) []WeightedVoter {
	if cap(ws.counts) < maxW+1 {
		ws.counts = make([]int, maxW+1)
	}
	counts := ws.counts[:maxW+1]
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range voters {
		counts[v.Weight]++
	}
	pos := 0
	for w, c := range counts {
		counts[w] = pos
		pos += c
	}
	if cap(ws.aux) < len(voters) {
		ws.aux = make([]WeightedVoter, len(voters))
	}
	out := ws.aux[:len(voters)]
	for _, v := range voters {
		out[counts[v.Weight]] = v
		counts[v.Weight]++
	}
	return out
}

// KeyBuffer returns the workspace's reusable byte scratch, emptied, with
// capacity for at least n bytes. It exists for callers that build cache
// keys around kernel calls (internal/election's resolution-score cache)
// without allocating per replication.
func (ws *Workspace) KeyBuffer(n int) []byte {
	if cap(ws.key) < n {
		ws.key = make([]byte, 0, n)
	}
	return ws.key[:0]
}

// PoissonBinomial validates ps and returns a workspace-owned distribution
// that borrows ps (no copy). The caller must not mutate ps while the
// distribution is in use; the returned pointer is invalidated by the next
// PoissonBinomial call on the same workspace.
func (ws *Workspace) PoissonBinomial(ps []float64) (*PoissonBinomial, error) {
	if err := validateProbs(ps); err != nil {
		return nil, err
	}
	ws.pb.ps = ps
	return &ws.pb, nil
}

// WeightedMajority validates voters and returns a workspace-owned
// distribution that borrows the slice (no copy). The caller must not
// mutate voters while the distribution is in use; the returned pointer is
// invalidated by the next WeightedMajority call on the same workspace.
func (ws *Workspace) WeightedMajority(voters []WeightedVoter) (*WeightedMajority, error) {
	total, err := validateVoters(voters)
	if err != nil {
		return nil, err
	}
	ws.wm.voters = voters
	ws.wm.total = total
	return &ws.wm, nil
}
