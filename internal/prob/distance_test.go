package prob

import (
	"math"
	"testing"
)

func TestKolmogorovDistanceDecreasesWithN(t *testing.T) {
	// Binomial(n, 0.4) vs its normal approximation: KS distance ~ 1/sqrt(n)
	// (Berry-Esseen), so it must shrink as n grows.
	prev := 1.0
	for _, n := range []int{10, 100, 1000} {
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = 0.4
		}
		pb := mustPB(t, ps)
		d := KolmogorovDistanceToNormal(pb.PMF(), pb.NormalApproximation())
		if d >= prev {
			t.Fatalf("KS distance did not shrink at n=%d: %v >= %v", n, d, prev)
		}
		prev = d
	}
	if prev > 0.02 {
		t.Fatalf("KS distance at n=1000 should be tiny, got %v", prev)
	}
}

func TestKolmogorovDistanceDegenerate(t *testing.T) {
	// Point mass at 0 vs a wide normal: distance ~ 0.5 at the step.
	d := KolmogorovDistanceToNormal([]float64{1}, Normal{Mu: 0, Sigma: 10})
	if d < 0.4 {
		t.Fatalf("point-mass distance = %v, want large", d)
	}
}

func TestTotalVariation(t *testing.T) {
	tests := []struct {
		p, q []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 0},
		{[]float64{1, 0}, []float64{0, 1}, 1},
		{[]float64{0.5, 0.5}, []float64{0.25, 0.75}, 0.25},
		{[]float64{1}, []float64{0.5, 0.5}, 0.5}, // padding
		{nil, nil, 0},
	}
	for _, tt := range tests {
		if got := TotalVariation(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("TV(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestTotalVariationSymmetric(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	q := []float64{0.5, 0.25, 0.25}
	if TotalVariation(p, q) != TotalVariation(q, p) {
		t.Fatal("TV must be symmetric")
	}
}
