package prob

import (
	"context"
	"math"
	"sync"
	"testing"

	"liquid/internal/rng"
)

// randomPs returns n probabilities in [lo, hi).
func randomPs(n int, lo, hi float64, s *rng.Stream) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = lo + (hi-lo)*s.Float64()
	}
	return ps
}

// randomVoters returns n voters with weights in [1, maxW].
func randomVoters(n, maxW int, s *rng.Stream) []WeightedVoter {
	vs := make([]WeightedVoter, n)
	for i := range vs {
		vs[i] = WeightedVoter{Weight: 1 + s.IntN(maxW), P: 0.2 + 0.6*s.Float64()}
	}
	return vs
}

// equalBits reports a[i] == b[i] bit-for-bit (NaN-free inputs).
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestPBPMFParallelBitIdentical checks the Poisson-binomial parallel
// evaluator against the sequential one across sizes straddling every
// cost-model branch, for several worker budgets.
func TestPBPMFParallelBitIdentical(t *testing.T) {
	ctx := context.Background()
	s := rng.New(41)
	for _, n := range []int{1, 5, dcMinLeaf - 1, dcMinLeaf, 257, 1000, 2048, 4097} {
		ps := randomPs(n, 0.05, 0.95, s)
		pb, err := NewPoissonBinomial(ps)
		if err != nil {
			t.Fatal(err)
		}
		seqWS := NewWorkspace()
		want := append([]float64(nil), pb.PMFWS(seqWS)...)
		for _, workers := range []int{1, 2, 4, 16} {
			parWS := NewWorkspace()
			got, err := pb.PMFParallelWS(ctx, parWS, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !equalBits(want, got) {
				t.Fatalf("n=%d workers=%d: parallel PMF differs from sequential", n, workers)
			}
		}
	}
}

// TestWMPMFParallelBitIdentical is the weighted-majority analogue,
// including the majority-probability entry point.
func TestWMPMFParallelBitIdentical(t *testing.T) {
	ctx := context.Background()
	s := rng.New(43)
	for _, n := range []int{1, 17, 64, 301, 1000} {
		for _, maxW := range []int{1, 7, 40} {
			wm, err := NewWeightedMajority(randomVoters(n, maxW, s))
			if err != nil {
				t.Fatal(err)
			}
			seqWS := NewWorkspace()
			want := append([]float64(nil), wm.PMFWS(seqWS)...)
			wantP := wm.ProbCorrectDecisionWS(seqWS)
			for _, workers := range []int{1, 3, 8} {
				parWS := NewWorkspace()
				got, err := wm.PMFParallelWS(ctx, parWS, workers)
				if err != nil {
					t.Fatalf("n=%d maxW=%d workers=%d: %v", n, maxW, workers, err)
				}
				if !equalBits(want, got) {
					t.Fatalf("n=%d maxW=%d workers=%d: parallel PMF differs", n, maxW, workers)
				}
				gotP, err := wm.ProbCorrectDecisionParallelWS(ctx, parWS, workers)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(gotP) != math.Float64bits(wantP) {
					t.Fatalf("n=%d maxW=%d workers=%d: P correct %v != %v", n, maxW, workers, gotP, wantP)
				}
			}
		}
	}
}

// TestPMFParallelCancellation checks the fork-join tree aborts with ctx's
// error instead of completing.
func TestPMFParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := rng.New(47)
	pb, err := NewPoissonBinomial(randomPs(4000, 0.1, 0.9, s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.PMFParallelWS(ctx, NewWorkspace(), 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	wm, err := NewWeightedMajority(randomVoters(2000, 3, s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wm.PMFParallelWS(ctx, NewWorkspace(), 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWorkspacePoolHammer is the concurrent-pooling stress test: many
// goroutines run parallel and sequential evaluations simultaneously,
// sharing the subtree workspace pool, and every result must be
// bit-identical to a reference computed up front. Run under -race this
// doubles as the arena-aliasing check — if any pooled workspace were
// handed to two subtrees at once, the racing writes to its arena would
// both trip the detector and corrupt a PMF.
func TestWorkspacePoolHammer(t *testing.T) {
	ctx := context.Background()
	s := rng.New(53)
	const inputs = 6
	type testCase struct {
		pb  *PoissonBinomial
		wm  *WeightedMajority
		pbF []float64
		wmF []float64
	}
	cases := make([]testCase, inputs)
	ref := NewWorkspace()
	for i := range cases {
		pb, err := NewPoissonBinomial(randomPs(1500+137*i, 0.1, 0.9, s))
		if err != nil {
			t.Fatal(err)
		}
		wm, err := NewWeightedMajority(randomVoters(400+61*i, 5, s))
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = testCase{
			pb:  pb,
			wm:  wm,
			pbF: append([]float64(nil), pb.PMFWS(ref)...),
		}
		cases[i].wmF = append([]float64(nil), wm.PMFWS(ref)...)
	}

	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := NewWorkspace()
			for r := 0; r < rounds; r++ {
				c := cases[(g+r)%inputs]
				workers := 1 + (g+r)%4
				got, err := c.pb.PMFParallelWS(ctx, ws, workers)
				if err == nil && !equalBits(c.pbF, got) {
					err = errDiff
				}
				if err == nil {
					var wmGot []float64
					wmGot, err = c.wm.PMFParallelWS(ctx, ws, workers)
					if err == nil && !equalBits(c.wmF, wmGot) {
						err = errDiff
					}
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// errDiff marks a bit-level divergence in the hammer test.
var errDiff = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "parallel PMF differs from sequential reference" }

// BenchmarkPBPMFParallel measures the parallel evaluator at the sizes the
// BENCH trajectory tracks. On a single-core host the parallel tree should
// track the sequential time (budget degrades to inline recursion); on
// multi-core hosts the subtree fan-out shows up as a speedup.
func BenchmarkPBPMFParallel(b *testing.B) {
	ctx := context.Background()
	s := rng.New(59)
	for _, n := range []int{2000, 20000} {
		ps := randomPs(n, 0.1, 0.9, s)
		pb, err := NewPoissonBinomial(ps)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			b.Run(benchName(n, workers), func(b *testing.B) {
				ws := NewWorkspace()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pb.PMFParallelWS(ctx, ws, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func benchName(n, workers int) string {
	switch {
	case n == 2000 && workers == 1:
		return "n2000w1"
	case n == 2000 && workers == 4:
		return "n2000w4"
	case n == 20000 && workers == 1:
		return "n20000w1"
	default:
		return "n20000w4"
	}
}
