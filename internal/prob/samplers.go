package prob

import (
	"fmt"
	"math"

	"liquid/internal/rng"
)

// Sampler draws float64 variates from a distribution.
type Sampler interface {
	Sample(s *rng.Stream) float64
}

// UniformSampler draws uniformly from [Lo, Hi).
type UniformSampler struct {
	Lo, Hi float64
}

// Sample implements Sampler.
func (u UniformSampler) Sample(s *rng.Stream) float64 {
	return u.Lo + (u.Hi-u.Lo)*s.Float64()
}

// ConstantSampler always returns Value.
type ConstantSampler struct {
	Value float64
}

// Sample implements Sampler.
func (c ConstantSampler) Sample(*rng.Stream) float64 { return c.Value }

// GammaSampler draws from a Gamma(Shape, 1) distribution using the
// Marsaglia-Tsang squeeze method, with Johnk-style boosting for shape < 1.
type GammaSampler struct {
	Shape float64
}

// Sample implements Sampler. It panics if Shape <= 0.
func (g GammaSampler) Sample(s *rng.Stream) float64 {
	if g.Shape <= 0 {
		panic("prob: GammaSampler requires Shape > 0")
	}
	shape := g.Shape
	boost := 1.0
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		boost = math.Pow(s.Float64(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v
		}
	}
}

// BetaSampler draws from Beta(Alpha, Beta) via two gamma variates.
type BetaSampler struct {
	Alpha, Beta float64
}

// Sample implements Sampler. It panics if either parameter is <= 0.
func (b BetaSampler) Sample(s *rng.Stream) float64 {
	if b.Alpha <= 0 || b.Beta <= 0 {
		panic("prob: BetaSampler requires positive parameters")
	}
	x := GammaSampler{Shape: b.Alpha}.Sample(s)
	y := GammaSampler{Shape: b.Beta}.Sample(s)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// TruncatedNormalSampler draws from Normal(Mu, Sigma) conditioned on
// [Lo, Hi], by rejection. Suitable when the interval holds non-negligible
// mass, which is always the case for competency vectors.
type TruncatedNormalSampler struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// Sample implements Sampler. It panics if Hi <= Lo or Sigma <= 0.
func (t TruncatedNormalSampler) Sample(s *rng.Stream) float64 {
	if t.Hi <= t.Lo || t.Sigma <= 0 {
		panic("prob: TruncatedNormalSampler requires Hi > Lo and Sigma > 0")
	}
	for i := 0; i < 10000; i++ {
		v := t.Mu + t.Sigma*s.NormFloat64()
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	// The interval carries almost no mass; fall back to a uniform draw so
	// callers still make progress.
	return UniformSampler{Lo: t.Lo, Hi: t.Hi}.Sample(s)
}

// ClampedSampler wraps another sampler and clamps its output into
// [Lo, Hi]. Used to enforce the paper's bounded-competency restriction
// p in (beta, 1-beta) on arbitrary base distributions.
type ClampedSampler struct {
	Base   Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (c ClampedSampler) Sample(s *rng.Stream) float64 {
	v := c.Base.Sample(s)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// NewCompetencySampler builds a sampler for the named competency
// distribution. Supported names:
//
//	"uniform"   — Uniform(lo, hi)
//	"beta"      — Beta(a, b) rescaled into [lo, hi]
//	"truncnorm" — Normal(mu, sigma) truncated to [lo, hi]
//
// with params interpreted per name. It returns an error for unknown names.
func NewCompetencySampler(name string, lo, hi float64, params ...float64) (Sampler, error) {
	if hi <= lo {
		return nil, fmt.Errorf("%w: competency range [%v,%v]", ErrInvalidParameter, lo, hi)
	}
	switch name {
	case "uniform":
		return UniformSampler{Lo: lo, Hi: hi}, nil
	case "beta":
		a, b := 2.0, 2.0
		if len(params) >= 2 {
			a, b = params[0], params[1]
		}
		if a <= 0 || b <= 0 {
			return nil, fmt.Errorf("%w: beta(%v,%v)", ErrInvalidParameter, a, b)
		}
		return rescaledBeta{alpha: a, beta: b, lo: lo, hi: hi}, nil
	case "truncnorm":
		mu, sigma := (lo+hi)/2, (hi-lo)/4
		if len(params) >= 2 {
			mu, sigma = params[0], params[1]
		}
		if sigma <= 0 {
			return nil, fmt.Errorf("%w: truncnorm sigma %v", ErrInvalidParameter, sigma)
		}
		return TruncatedNormalSampler{Mu: mu, Sigma: sigma, Lo: lo, Hi: hi}, nil
	default:
		return nil, fmt.Errorf("%w: unknown competency distribution %q", ErrInvalidParameter, name)
	}
}

type rescaledBeta struct {
	alpha, beta float64
	lo, hi      float64
}

func (r rescaledBeta) Sample(s *rng.Stream) float64 {
	v := BetaSampler{Alpha: r.alpha, Beta: r.beta}.Sample(s)
	return r.lo + (r.hi-r.lo)*v
}
