package prob

// Parallel divide-and-conquer PMF evaluation: deterministic fork-join over
// the same weight-balanced tree the sequential evaluator builds.
//
// The contract is bit-identity with the sequential path. It holds because
// nothing about the tree depends on scheduling:
//
//   - the split schedule is fixed: every node makes exactly the same
//     leaf-vs-split decision as pbDC/wmDC (same cost model, same split
//     points), whatever the worker budget;
//   - each forked subtree computes into its own Workspace from a pool, so
//     no goroutine ever touches another's arena or FFT scratch, and a
//     Workspace never influences results, only allocation;
//   - every merge happens in the parent after both children finish, always
//     as convolve(left, right) in the parent's workspace: the float
//     operations and their order are those of the sequential evaluator, so
//     the merged table is the same bytes regardless of which goroutine
//     produced each operand or when it finished.
//
// The fork budget is a non-blocking token bucket: a node forks its right
// child only if a token is free, otherwise it recurses inline. Scheduling
// therefore affects only which subtrees run concurrently — never what any
// subtree computes. With workers <= 1 the entry points short-circuit to the
// sequential evaluator, so single-core callers pay no synchronization.
//
// Cancellation is cooperative: every internal node checks ctx before
// descending, and forked goroutines inherit ctx through the recursion
// (the ctxflow analyzer enforces that every goroutine launched in this
// package threads a context).

import (
	"context"
	"sync"
)

// parForkMinWeight is the smallest subtree support (PMF length) worth a
// goroutine: below it the fork/join overhead exceeds the subtree's work.
const parForkMinWeight = 1 << 10

// parWSPool holds subtree workspaces for the fork-join evaluator. Pooled
// workspaces retain their arenas and twiddle tables across calls; pooling
// affects allocation only, never results.
var parWSPool = sync.Pool{New: func() any { return NewWorkspace() }}

// forkBudget is the non-blocking token bucket bounding extra goroutines.
type forkBudget struct{ tokens chan struct{} }

// newForkBudget returns a budget allowing workers-1 concurrent forks (the
// calling goroutine is the first worker).
func newForkBudget(workers int) *forkBudget {
	extra := workers - 1
	if extra < 0 {
		extra = 0
	}
	b := &forkBudget{tokens: make(chan struct{}, extra)}
	for i := 0; i < extra; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// tryAcquire takes a token if one is free, never blocking: a saturated
// budget degrades to inline recursion instead of queueing.
func (b *forkBudget) tryAcquire() bool {
	select {
	case <-b.tokens:
		return true
	default:
		return false
	}
}

func (b *forkBudget) release() { b.tokens <- struct{}{} }

// forkResult carries a forked subtree's PMF, which lives in the (still
// borrowed) child workspace until the parent has merged it.
type forkResult struct {
	f   []float64
	err error
}

// PMFParallelWS computes the PMF with up to workers goroutines cooperating
// on the divide-and-conquer tree, into ws-owned memory. The result is
// bit-identical to PMFWS for every workers value and valid until the next
// kernel call on ws. workers <= 1 runs the sequential evaluator.
func (pb *PoissonBinomial) PMFParallelWS(ctx context.Context, ws *Workspace, workers int) ([]float64, error) {
	n := len(pb.ps)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 1 {
		return pb.PMFWS(ws), nil
	}
	ws.reset(3*(n+1) + 64)
	return ws.pbDCPar(ctx, pb.ps, 0, n, newForkBudget(workers))
}

// ProbMajorityParallelWS is ProbMajorityWS on the parallel evaluator:
// P[sum > n/2], bit-identical to the sequential value for any workers.
func (pb *PoissonBinomial) ProbMajorityParallelWS(ctx context.Context, ws *Workspace, workers int) (float64, error) {
	n := len(pb.ps)
	k := n/2 + 1
	if k > n {
		// A single-voter majority needs that voter: fall through to the
		// same clamped tail sum the sequential path takes.
		if workers > 1 {
			workers = 1
		}
	}
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return pb.ProbAtLeastWS(ws, k), nil
	}
	f, err := pb.PMFParallelWS(ctx, ws, workers)
	if err != nil {
		return 0, err
	}
	return clamp01(Sum(f[k : n+1])), nil
}

// pbDCPar is pbDC with fork-join: identical leaf decisions, split points,
// and merge order; only the execution of independent subtrees overlaps.
func (ws *Workspace) pbDCPar(ctx context.Context, ps []float64, lo, hi int, b *forkBudget) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := hi - lo
	if k < dcMinLeaf || pbSplitGain(k) <= fftMergeCost(k+1) {
		cDCDPLeaves.Inc()
		f := ws.alloc(k + 1)
		pbDPInto(f, ps[lo:hi])
		return f, nil
	}
	cDCFFTMerges.Inc()
	mid := lo + k/2
	mark := ws.off

	var fr []float64
	var rerr error
	var childWS *Workspace
	var join chan forkResult
	if k+1 >= parForkMinWeight && b.tryAcquire() {
		childWS = parWSPool.Get().(*Workspace)
		childWS.reset(3*(hi-mid+1) + 64)
		join = make(chan forkResult, 1)
		go func(ctx context.Context, cws *Workspace) {
			defer b.release()
			f, err := cws.pbDCPar(ctx, ps, mid, hi, b)
			join <- forkResult{f: f, err: err}
		}(ctx, childWS)
	}

	fl, lerr := ws.pbDCPar(ctx, ps, lo, mid, b)
	if join != nil {
		r := <-join
		fr, rerr = r.f, r.err
	} else if lerr == nil {
		fr, rerr = ws.pbDCPar(ctx, ps, mid, hi, b)
	}
	out, err := ws.mergePar(fl, fr, lerr, rerr, mark, k+1, childWS)
	return out, err
}

// mergePar performs the parent-side merge shared by both parallel
// evaluators: convolve left and right in the parent workspace, roll the
// arena back to mark, and copy the clamped result out — the same sequence
// as the sequential evaluators. The child workspace (if any) is returned to
// the pool only after its operand has been consumed.
func (ws *Workspace) mergePar(fl, fr []float64, lerr, rerr error, mark, outLen int, childWS *Workspace) ([]float64, error) {
	var out []float64
	err := lerr
	if err == nil {
		err = rerr
	}
	if err == nil {
		res := ws.convolve(fl, fr)
		ws.off = mark
		out = ws.alloc(outLen)
		copyClampNonneg(out, res)
	}
	if childWS != nil {
		parWSPool.Put(childWS)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PMFParallelWS computes the weighted-majority PMF with up to workers
// goroutines, bit-identical to PMFWS for every workers value. The result
// lives in ws memory and is valid until the next kernel call on ws.
// workers <= 1 runs the sequential evaluator.
func (wm *WeightedMajority) PMFParallelWS(ctx context.Context, ws *Workspace, workers int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 1 {
		return wm.PMFWS(ws), nil
	}
	ws.reset(3*(wm.total+1) + 64)
	pw := ws.prefixWeights(wm.voters)
	return ws.wmDCPar(ctx, wm.voters, pw, 0, len(wm.voters), newForkBudget(workers))
}

// ProbCorrectDecisionParallelWS is ProbCorrectDecisionWS on the parallel
// evaluator: P[W > total/2], bit-identical for any workers.
func (wm *WeightedMajority) ProbCorrectDecisionParallelWS(ctx context.Context, ws *Workspace, workers int) (float64, error) {
	threshold := wm.total / 2
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return wm.ProbAboveWS(ws, threshold), nil
	}
	f, err := wm.PMFParallelWS(ctx, ws, workers)
	if err != nil {
		return 0, err
	}
	if threshold >= wm.total {
		return 0, nil
	}
	return clamp01(Sum(f[threshold+1 : wm.total+1])), nil
}

// wmDCPar is wmDC with fork-join; see pbDCPar. pw is the prefix-weight
// table of the parent workspace — forked children only read it.
func (ws *Workspace) wmDCPar(ctx context.Context, voters []WeightedVoter, pw []int64, lo, hi int, b *forkBudget) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := int(pw[hi] - pw[lo])
	if hi-lo < dcMinLeaf || wmSplitGain(pw, lo, hi) <= fftMergeCost(w+1) {
		cDCDPLeaves.Inc()
		f := ws.alloc(w + 1)
		wmDPInto(f, voters[lo:hi])
		return f, nil
	}
	cDCFFTMerges.Inc()
	mid := wmSplitPoint(pw, lo, hi)
	mark := ws.off

	var fr []float64
	var rerr error
	var childWS *Workspace
	var join chan forkResult
	if w+1 >= parForkMinWeight && b.tryAcquire() {
		childWS = parWSPool.Get().(*Workspace)
		childWS.reset(3*(int(pw[hi]-pw[mid])+1) + 64)
		join = make(chan forkResult, 1)
		go func(ctx context.Context, cws *Workspace) {
			defer b.release()
			f, err := cws.wmDCPar(ctx, voters, pw, mid, hi, b)
			join <- forkResult{f: f, err: err}
		}(ctx, childWS)
	}

	fl, lerr := ws.wmDCPar(ctx, voters, pw, lo, mid, b)
	if join != nil {
		r := <-join
		fr, rerr = r.f, r.err
	} else if lerr == nil {
		fr, rerr = ws.wmDCPar(ctx, voters, pw, mid, hi, b)
	}
	return ws.mergePar(fl, fr, lerr, rerr, mark, w+1, childWS)
}
