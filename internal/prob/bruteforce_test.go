package prob

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteForceMajority enumerates all 2^m outcomes of independent weighted
// Bernoulli voters and sums the probability of a strict majority. It is the
// reference the DP engines are checked against.
func bruteForceMajority(voters []WeightedVoter) float64 {
	total := 0
	for _, v := range voters {
		total += v.Weight
	}
	var acc float64
	m := len(voters)
	for mask := 0; mask < 1<<m; mask++ {
		p := 1.0
		w := 0
		for i, v := range voters {
			if mask&(1<<i) != 0 {
				p *= v.P
				w += v.Weight
			} else {
				p *= 1 - v.P
			}
		}
		if 2*w > total {
			acc += p
		}
	}
	return acc
}

func TestWeightedMajorityMatchesBruteForce(t *testing.T) {
	tests := [][]WeightedVoter{
		{{Weight: 1, P: 0.5}},
		{{Weight: 1, P: 0.2}, {Weight: 1, P: 0.9}},
		{{Weight: 3, P: 0.4}, {Weight: 2, P: 0.7}, {Weight: 1, P: 0.1}},
		{{Weight: 2, P: 0.5}, {Weight: 2, P: 0.5}, {Weight: 1, P: 0.5}, {Weight: 4, P: 0.31}},
	}
	for _, voters := range tests {
		wm := mustWM(t, voters)
		want := bruteForceMajority(voters)
		if got := wm.ProbCorrectDecision(); math.Abs(got-want) > 1e-12 {
			t.Errorf("voters %v: DP %v vs brute force %v", voters, got, want)
		}
	}
}

func TestQuickWeightedMajorityMatchesBruteForce(t *testing.T) {
	f := func(rawW []uint8, rawP []float64) bool {
		m := min(len(rawW), len(rawP), 10)
		if m == 0 {
			return true
		}
		voters := make([]WeightedVoter, m)
		for i := 0; i < m; i++ {
			p := rawP[i]
			if math.IsNaN(p) || math.IsInf(p, 0) {
				p = 0.3
			}
			voters[i] = WeightedVoter{Weight: int(rawW[i]%5) + 1, P: math.Abs(math.Mod(p, 1))}
		}
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			return false
		}
		return math.Abs(wm.ProbCorrectDecision()-bruteForceMajority(voters)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTieRulesMatchBruteForce(t *testing.T) {
	// Brute force under each tie rule.
	ruleBF := func(voters []WeightedVoter, rule TieRule) float64 {
		total := 0
		for _, v := range voters {
			total += v.Weight
		}
		var acc float64
		for mask := 0; mask < 1<<len(voters); mask++ {
			p := 1.0
			w := 0
			for i, v := range voters {
				if mask&(1<<i) != 0 {
					p *= v.P
					w += v.Weight
				} else {
					p *= 1 - v.P
				}
			}
			switch {
			case 2*w > total:
				acc += p
			case 2*w == total:
				switch rule {
				case TiesWin:
					acc += p
				case TiesCoin:
					acc += p / 2
				}
			}
		}
		return acc
	}
	f := func(rawW []uint8, rawP []float64, ruleRaw uint8) bool {
		m := min(len(rawW), len(rawP), 8)
		if m == 0 {
			return true
		}
		voters := make([]WeightedVoter, m)
		for i := 0; i < m; i++ {
			p := rawP[i]
			if math.IsNaN(p) || math.IsInf(p, 0) {
				p = 0.6
			}
			voters[i] = WeightedVoter{Weight: int(rawW[i]%4) + 1, P: math.Abs(math.Mod(p, 1))}
		}
		rule := []TieRule{TiesLose, TiesWin, TiesCoin}[ruleRaw%3]
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			return false
		}
		return math.Abs(wm.ProbCorrectDecisionRule(rule)-ruleBF(voters, rule)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
