package prob

import "math"

// KolmogorovDistanceToNormal returns the Kolmogorov-Smirnov distance
// sup_x |F(x) - Phi(x)| between the discrete distribution given by pmf
// (mass at integer points 0..len(pmf)-1) and the normal distribution nrm,
// evaluated with the standard continuity correction (comparing at k + 1/2).
//
// This is the quantity behind Lemma 4 (the CLT for direct voting): the
// distance must vanish as n grows when competencies are bounded away from
// 0 and 1.
func KolmogorovDistanceToNormal(pmf []float64, nrm Normal) float64 {
	var (
		cdf  Accumulator
		dist float64
	)
	for k, mass := range pmf {
		cdf.Add(mass)
		d := math.Abs(cdf.Sum() - nrm.CDF(float64(k)+0.5))
		if d > dist {
			dist = d
		}
	}
	return dist
}

// TotalVariation returns the total-variation distance between two discrete
// distributions on the same support: (1/2) * sum_k |p[k] - q[k]|. Shorter
// inputs are zero-padded.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	var s Accumulator
	for k := 0; k < n; k++ {
		var pv, qv float64
		if k < len(p) {
			pv = p[k]
		}
		if k < len(q) {
			qv = q[k]
		}
		s.Add(math.Abs(pv - qv))
	}
	return s.Sum() / 2
}
