package prob

import "math"

// Accumulator is a compensated (Kahan–Babuška–Neumaier) float64 summer: it
// tracks the rounding error of every addition in a correction term and folds
// it back in at read time. Unlike naive `s += x`, the result is stable to
// the last few ulps regardless of operand magnitudes, which keeps reported
// table values independent of refactorings that merely reassociate a
// reduction. The floatacc analyzer steers all loop accumulation in this
// package and internal/recycle here (or to Summary for moments).
//
// The zero value is an empty sum, ready to use.
type Accumulator struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// Add incorporates x into the sum.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.c += (a.sum - t) + x
	} else {
		a.c += (x - t) + a.sum
	}
	a.sum = t
}

// Sum returns the compensated total.
func (a *Accumulator) Sum() float64 { return a.sum + a.c }

// Sum returns the compensated sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum()
}
