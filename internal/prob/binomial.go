package prob

import "math"

// BinomialTables holds the shared precomputation for exact Binomial(n, p)
// sampling by inverse transform: log-factorials (for the probability mass at
// the mode) and reciprocals (so the term recurrences are multiplies, not
// divides). One table set serves every n up to its capacity, so a caller
// drawing from many binomials of different sizes builds it once.
type BinomialTables struct {
	// lg[k] = log(k!), k in [0, maxN].
	lg []float64
	// inv[k] = 1/k, k in [1, maxN+1]; inv[0] is unused.
	inv []float64
}

// NewBinomialTables builds tables supporting Draw for any n <= maxN.
func NewBinomialTables(maxN int) *BinomialTables {
	if maxN < 0 {
		maxN = 0
	}
	t := &BinomialTables{
		lg:  make([]float64, maxN+1),
		inv: make([]float64, maxN+2),
	}
	for k := 1; k <= maxN; k++ {
		t.lg[k] = t.lg[k-1] + math.Log(float64(k))
	}
	for k := 1; k <= maxN+1; k++ {
		t.inv[k] = 1 / float64(k)
	}
	return t
}

// MaxN reports the largest n Draw accepts.
func (t *BinomialTables) MaxN() int { return len(t.lg) - 1 }

// Draw maps the uniform variate u in [0, 1) to a Binomial(n, p) value by
// inverting the CDF over the mode-outward enumeration m, m+1, m-1, m+2, ...
// — a fixed enumeration order, so for a fixed u the result is deterministic
// and the sampled law is exactly Binomial(n, p) (up to float rounding of the
// probability terms, the same rounding any PMF computation carries). The
// expected number of terms examined is O(sqrt(n p (1-p))): the walk starts
// at the mode and each term is one multiply-accumulate via the term-ratio
// recurrence.
//
// Draw panics if n exceeds the table capacity; p outside (0, 1) clamps to
// the degenerate values. Callers pass u from their own stream (for example
// rng.Stream.Float64), keeping this package free of generator concerns.
func (t *BinomialTables) Draw(n int, p, u float64) int {
	if n < 0 || n > t.MaxN() {
		panic("prob: BinomialTables.Draw n out of range")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	q := 1 - p
	m := int(float64(n+1) * p)
	if m > n {
		m = n
	}
	fn1 := float64(n + 1)
	pm := math.Exp(t.lg[n] - t.lg[m] - t.lg[n-m] +
		float64(m)*math.Log(p) + float64(n-m)*math.Log(q))
	acc := pm
	if u < acc {
		return m
	}
	odds := p / q
	invOdds := q / p
	// Term recurrences: pmf(k)/pmf(k-1) = ((n-k+1)/k) * odds going up, and
	// the reciprocal going down; (n-k+1) is maintained incrementally and 1/k
	// comes from the shared table, so each step is multiplies only.
	lo, hi := m, m
	plo, phi := pm, pm
	fhi := float64(m) // float64(hi), maintained incrementally
	flo := fn1 - fhi  // float64(n - lo + 1)
	for lo > 0 || hi < n {
		if hi < n {
			hi++
			fhi++
			phi *= (fn1 - fhi) * t.inv[hi] * odds
			//lint:ignore floatacc the running CDF is summed in a fixed mode-outward order, so it is deterministic; compensation would only move which final-ulp u values hit the fallback
			acc += phi
			if u < acc {
				return hi
			}
		}
		if lo > 0 {
			plo *= float64(lo) * t.inv[int(flo)] * invOdds
			lo--
			flo++
			//lint:ignore floatacc same fixed-order running CDF as above
			acc += plo
			if u < acc {
				return lo
			}
		}
	}
	// Unreachable except when u lands in the final ulps above the summed
	// mass; the mode is the deterministic fallback.
	return m
}
