// Package prob provides the probability and statistics substrate used by the
// liquid-democracy simulator: exact Poisson-binomial and weighted-majority
// vote distributions, normal approximations, concentration-bound evaluators
// (Hoeffding, Chernoff), descriptive statistics, confidence intervals, and
// samplers for competency distributions.
//
// Everything is implemented on top of the standard library only.
package prob

import (
	"errors"
	"math"
)

// ErrInvalidParameter reports a distribution parameter outside its domain.
var ErrInvalidParameter = errors.New("prob: invalid parameter")

// Normal is a normal distribution with mean Mu and standard deviation Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// CDF returns P[X <= x] for X ~ Normal.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// SF returns the survival function P[X > x].
func (n Normal) SF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// ProbInInterval returns P[a < X < b].
func (n Normal) ProbInInterval(a, b float64) float64 {
	if b <= a {
		return 0
	}
	p := n.CDF(b) - n.CDF(a)
	return clamp01(p)
}

// Quantile returns the x with CDF(x) = p using the Acklam rational
// approximation refined by one Halley step. It panics if p is outside (0, 1).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("prob: Quantile requires p in (0,1)")
	}
	return n.Mu + n.Sigma*standardQuantile(p)
}

// standardQuantile computes the standard normal inverse CDF.
func standardQuantile(p float64) float64 {
	// Coefficients from Peter Acklam's algorithm.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow = 0.02425

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step against the true CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
