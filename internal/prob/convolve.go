package prob

// Divide-and-conquer PMF evaluation. The voter set is split (weight-
// balanced), each half's PMF is computed recursively, and the halves are
// merged by convolution. With FFT merges the work is O(W log^2 W) on total
// weight W instead of the naive DP's O(n*W); the crossover to the in-place
// DP is decided locally from a cost model, so small instances run exactly
// the code they always did while large ones get the asymptotic win.
//
// The cost model counts in "DP units" (one inner-loop update of the
// quadratic DP). Splitting a segment saves the difference between its DP
// cost and its halves' DP costs, and pays one FFT merge; the segment is a
// DP leaf whenever the merge costs more than it saves. fftUnitCost is the
// measured price of one FFT butterfly-equivalent in DP units (tuned with
// BenchmarkPoissonBinomialPMF; see DESIGN.md "Performance kernels").

import "math"

const (
	// Re-tuned from 4: the paired-FMA DP leaves run closer to peak than the
	// scalar FFT butterflies, so small merges go further before the FFT
	// pays for itself (~1.7x on BenchmarkPoissonBinomialPMF at n=2000, no
	// measurable change on the weight-heavy BenchmarkWeightedMajorityDP
	// whose large merges stay FFT either way).
	fftUnitCost = 6
	dcMinLeaf   = 32
)

// fftMergeCost estimates, in DP units, the price of one convolution merge
// producing resultLen values: two transforms of the padded size plus the
// linear packing/unpacking passes.
func fftMergeCost(resultLen int) int64 {
	lg := ceilLog2(resultLen)
	m := int64(1) << lg
	return fftUnitCost * m * int64(lg)
}

// --- Poisson binomial ---

// pbDPCost is the DP cost of a k-voter Poisson-binomial segment:
// sum_{i=1..k} i updates.
func pbDPCost(k int64) int64 { return k * (k + 1) / 2 }

// PoissonBinomialDPCost returns the DP-unit cost of the exact n-voter
// Poisson-binomial table (the naive quadratic DP; the D&C evaluator only
// ever does less work). Exported so admission control in the serving layer
// can price a request in the same units the kernel cost model uses.
func PoissonBinomialDPCost(n int) int64 {
	if n <= 0 {
		return 0
	}
	return pbDPCost(int64(n))
}

// WeightedMajorityDPCost returns the DP-unit cost of exactly scoring a
// weighted-majority distribution over k sinks with total weight w: each
// sink sweeps the support, k*w updates. This is the election engine's
// per-resolution cost estimate (election.Options.ExactCostLimit bounds it),
// re-exported so callers above the engine can budget with the same model.
func WeightedMajorityDPCost(k, w int) int64 {
	if k <= 0 || w <= 0 {
		return 0
	}
	return int64(k) * int64(w)
}

// pbDC computes the PMF of ps[lo:hi] into an arena slice of length
// hi-lo+1.
func (ws *Workspace) pbDC(ps []float64, lo, hi int) []float64 {
	k := hi - lo
	if k < dcMinLeaf || pbSplitGain(k) <= fftMergeCost(k+1) {
		cDCDPLeaves.Inc()
		f := ws.alloc(k + 1)
		pbDPInto(f, ps[lo:hi])
		return f
	}
	cDCFFTMerges.Inc()
	mid := lo + k/2
	mark := ws.off
	fl := ws.pbDC(ps, lo, mid)
	fr := ws.pbDC(ps, mid, hi)
	res := ws.convolve(fl, fr)
	ws.off = mark
	out := ws.alloc(k + 1)
	copyClampNonneg(out, res)
	return out
}

// pbSplitGain is the DP work avoided by splitting a k-voter segment in
// half (the second half no longer sweeps the first half's support).
func pbSplitGain(k int) int64 {
	l := int64(k) / 2
	r := int64(k) - l
	return pbDPCost(int64(k)) - pbDPCost(l) - pbDPCost(r)
}

// pbDPInto runs the exact O(k^2) convolution DP over ps into f, which must
// have length len(ps)+1 and may hold garbage.
//
//lint:hotpath
func pbDPInto(f []float64, ps []float64) {
	zeroFloats(f)
	f[0] = 1
	// Voters are folded in two at a time: one pass with the pair's
	// convolution [a0, a1, a2] touches each f entry once instead of twice,
	// which matters because the DP is memory-bound. math.FMA is the
	// hardware fused multiply-add: one rounding instead of two,
	// deterministic across platforms (the softfloat fallback is
	// bit-identical). wmDPInto pairs and fuses the same way, so weight-1
	// majorities stay bit-identical to this Poisson-binomial path.
	reached := 0
	i := 0
	for ; i+1 < len(ps); i += 2 {
		p1, p2 := ps[i], ps[i+1]
		q1, q2 := 1-p1, 1-p2
		a0 := q1 * q2
		a1 := math.FMA(p1, q2, q1*p2)
		a2 := p1 * p2
		reached += 2
		// Iterate downward so f[k-1], f[k-2] still hold previous values.
		for k := reached; k >= 2; k-- {
			f[k] = math.FMA(f[k-2], a2, math.FMA(f[k-1], a1, f[k]*a0))
		}
		f[1] = math.FMA(f[0], a1, f[1]*a0)
		f[0] *= a0
	}
	if i < len(ps) {
		p := ps[i]
		q := 1 - p
		reached++
		for k := reached; k >= 1; k-- {
			f[k] = math.FMA(f[k-1], p, f[k]*q)
		}
		f[0] *= q
	}
}

// --- Weighted majority ---

// wmDC computes the PMF of voters[lo:hi] into an arena slice. pw holds
// prefix weights: pw[i] = sum of voters[:i] weights, so the segment's
// total weight is pw[hi]-pw[lo].
func (ws *Workspace) wmDC(voters []WeightedVoter, pw []int64, lo, hi int) []float64 {
	w := int(pw[hi] - pw[lo])
	if hi-lo < dcMinLeaf || wmSplitGain(pw, lo, hi) <= fftMergeCost(w+1) {
		cDCDPLeaves.Inc()
		f := ws.alloc(w + 1)
		wmDPInto(f, voters[lo:hi])
		return f
	}
	cDCFFTMerges.Inc()
	mid := wmSplitPoint(pw, lo, hi)
	mark := ws.off
	fl := ws.wmDC(voters, pw, lo, mid)
	fr := ws.wmDC(voters, pw, mid, hi)
	res := ws.convolve(fl, fr)
	ws.off = mark
	out := ws.alloc(w + 1)
	copyClampNonneg(out, res)
	return out
}

// wmDPCost is the naive DP cost of a segment: each voter sweeps the
// support reached so far.
func wmDPCost(pw []int64, lo, hi int) int64 {
	var c int64
	for i := lo; i < hi; i++ {
		c += pw[i+1] - pw[lo]
	}
	return c
}

func wmSplitGain(pw []int64, lo, hi int) int64 {
	mid := wmSplitPoint(pw, lo, hi)
	return wmDPCost(pw, lo, hi) - wmDPCost(pw, lo, mid) - wmDPCost(pw, mid, hi)
}

// wmSplitPoint picks the weight-balanced split index in (lo, hi): the
// smallest mid whose left weight reaches half the segment's, which keeps
// both convolution operands (and so the padded FFT size) small.
func wmSplitPoint(pw []int64, lo, hi int) int {
	target := pw[lo] + (pw[hi]-pw[lo])/2
	a, b := lo+1, hi-1
	for a < b {
		m := (a + b) / 2
		if pw[m] < target {
			a = m + 1
		} else {
			b = m
		}
	}
	return a
}

// wmDPInto runs the exact O(k*W) DP over voters into f, which must have
// length (sum of weights)+1 and may hold garbage.
//
//lint:hotpath
func wmDPInto(f []float64, voters []WeightedVoter) {
	zeroFloats(f)
	f[0] = 1
	// Consecutive voters of equal weight are folded in as a pair, exactly
	// like pbDPInto pairs adjacent voters: same coefficients, same fused
	// update, same greedy left-to-right pairing. For an all-weight-1 voter
	// set the two kernels therefore perform identical float ops in the same
	// order — the all-direct == P^D bit-equality contract in
	// internal/election depends on that, so any further kernel change must
	// be mirrored in both.
	reached := 0
	i := 0
	for i < len(voters) {
		v := voters[i]
		w := v.Weight
		if i+1 < len(voters) && voters[i+1].Weight == w {
			p1, p2 := v.P, voters[i+1].P
			q1, q2 := 1-p1, 1-p2
			a0 := q1 * q2
			a1 := math.FMA(p1, q2, q1*p2)
			a2 := p1 * p2
			reached += 2 * w
			for t := reached; t >= 2*w; t-- {
				f[t] = math.FMA(f[t-2*w], a2, math.FMA(f[t-w], a1, f[t]*a0))
			}
			for t := 2*w - 1; t >= w; t-- {
				f[t] = math.FMA(f[t-w], a1, f[t]*a0)
			}
			for t := w - 1; t >= 0; t-- {
				f[t] *= a0
			}
			i += 2
			continue
		}
		p := v.P
		q := 1 - p
		reached += w
		for t := reached; t >= w; t-- {
			f[t] = math.FMA(f[t-w], p, f[t]*q)
		}
		for t := w - 1; t >= 0; t-- {
			f[t] *= q
		}
		i++
	}
}

// prefixWeights fills ws.pw with the prefix-weight table of voters.
func (ws *Workspace) prefixWeights(voters []WeightedVoter) []int64 {
	if cap(ws.pw) < len(voters)+1 {
		ws.pw = make([]int64, len(voters)+1)
	}
	pw := ws.pw[:len(voters)+1]
	pw[0] = 0
	for i, v := range voters {
		pw[i+1] = pw[i] + int64(v.Weight)
	}
	return pw
}

// copyClampNonneg copies src into dst, clamping the tiny negative values
// FFT rounding can produce (magnitude ~1e-16) to zero so downstream code
// always sees a valid mass function.
//
//lint:hotpath
func copyClampNonneg(dst, src []float64) {
	for i, v := range src {
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}
