package prob

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the fast-convolution kernel behind the
// divide-and-conquer PMF evaluators: an iterative radix-2 FFT on
// split-complex (separate re/im) buffers with per-size cached twiddle
// tables, and a real-input linear convolution that packs both operands
// into one complex transform. Everything is deterministic: for fixed
// inputs the same sequence of float operations runs in the same order, so
// results are bit-identical across calls, goroutines, and worker counts.

// fftTables holds the twiddle factors and bit-reversal permutation for one
// transform size n = 1 << lg. Tables are immutable once built and cached
// process-wide: they are a pure function of the size, so sharing them across
// workspaces (and goroutines) loses nothing and saves every short-lived
// workspace the trigonometric rebuild.
type fftTables struct {
	re, im []float64 // re[t], im[t] = cos, sin of -2*pi*t/n for t < n/2
	rev    []int32
}

// fftCache holds one table set per power-of-two size. Readers take the
// lock-free atomic fast path; builders serialize on the mutex and publish
// the finished (immutable) table.
var fftCache struct {
	mu   sync.Mutex
	tabs [64]atomic.Pointer[fftTables]
}

// tables returns (building if needed) the twiddle tables for size 1 << lg.
func (ws *Workspace) tables(lg int) *fftTables { return fftTablesFor(lg) }

// fftTablesFor is the workspace-free table accessor: retained evaluators
// (the DeltaTree merge path) fetch tables outside their allocation-free
// kernel, so the kernel itself never touches the builder.
func fftTablesFor(lg int) *fftTables {
	if t := fftCache.tabs[lg].Load(); t != nil {
		return t
	}
	fftCache.mu.Lock()
	defer fftCache.mu.Unlock()
	if t := fftCache.tabs[lg].Load(); t != nil {
		return t
	}
	n := 1 << lg
	t := &fftTables{
		re:  make([]float64, n/2),
		im:  make([]float64, n/2),
		rev: make([]int32, n),
	}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		t.re[k] = math.Cos(ang)
		t.im[k] = math.Sin(ang)
	}
	for i := 1; i < n; i++ {
		t.rev[i] = t.rev[i>>1]>>1 | int32(i&1)<<(lg-1)
	}
	fftCache.tabs[lg].Store(t)
	return t
}

// fftCore performs an in-place forward DFT of length n = 1 << lg >= 2 on
// the split-complex vector (re, im). The inverse transform reuses the same
// kernel with the re and im slices swapped (conjugation trick); the caller
// divides by n.
//
//lint:hotpath
func fftCore(re, im []float64, t *fftTables, lg int) {
	n := 1 << lg
	rev := t.rev
	for i := 0; i < n; i++ {
		j := int(rev[i])
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Size-2 stage: the twiddle is 1, so skip the table loads.
	for base := 0; base < n; base += 2 {
		ar, ai := re[base], im[base]
		br, bi := re[base+1], im[base+1]
		re[base], im[base] = ar+br, ai+bi
		re[base+1], im[base+1] = ar-br, ai-bi
	}
	twr, twi := t.re, t.im
	// Remaining stages run fused in pairs: one pass computes a radix-2
	// stage of size m and the following stage of size 2m with all four
	// touched points held in registers. The arithmetic — each multiply and
	// add, per output — is exactly the two-pass radix-2 arithmetic, so
	// results are bit-identical; fusing only halves the loads and stores,
	// which is where the time goes on this memory-bound kernel.
	size := 4
	for ; size<<1 <= n; size <<= 2 {
		m := size
		h := m >> 1
		strideA := n / m
		strideB := strideA >> 1
		for base := 0; base < n; base += m << 1 {
			for t := 0; t < h; t++ {
				wAr, wAi := twr[t*strideA], twi[t*strideA]
				j0 := base + t
				j1 := j0 + h
				j2 := j0 + m
				j3 := j2 + h
				// Stage m, butterfly (j0, j1).
				x1r, x1i := re[j1], im[j1]
				t1r := x1r*wAr - x1i*wAi
				t1i := x1r*wAi + x1i*wAr
				u0r, u0i := re[j0], im[j0]
				a0r, a0i := u0r+t1r, u0i+t1i
				a1r, a1i := u0r-t1r, u0i-t1i
				// Stage m, butterfly (j2, j3): same in-block offset t, so
				// the same twiddle.
				x3r, x3i := re[j3], im[j3]
				t3r := x3r*wAr - x3i*wAi
				t3i := x3r*wAi + x3i*wAr
				u2r, u2i := re[j2], im[j2]
				a2r, a2i := u2r+t3r, u2i+t3i
				a3r, a3i := u2r-t3r, u2i-t3i
				// Stage 2m, butterfly (j0, j2).
				wB0r, wB0i := twr[t*strideB], twi[t*strideB]
				t2r := a2r*wB0r - a2i*wB0i
				t2i := a2r*wB0i + a2i*wB0r
				re[j0], im[j0] = a0r+t2r, a0i+t2i
				re[j2], im[j2] = a0r-t2r, a0i-t2i
				// Stage 2m, butterfly (j1, j3).
				wB1r, wB1i := twr[(t+h)*strideB], twi[(t+h)*strideB]
				t4r := a3r*wB1r - a3i*wB1i
				t4i := a3r*wB1i + a3i*wB1r
				re[j1], im[j1] = a1r+t4r, a1i+t4i
				re[j3], im[j3] = a1r-t4r, a1i-t4i
			}
		}
	}
	// Odd leftover stage (lg even): one plain radix-2 pass.
	for ; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for base := 0; base < n; base += size {
			tw := 0
			for j := base; j < base+half; j++ {
				k := j + half
				wr, wi := twr[tw], twi[tw]
				xr, xi := re[k], im[k]
				tr := xr*wr - xi*wi
				ti := xr*wi + xi*wr
				ur, ui := re[j], im[j]
				re[j], im[j] = ur+tr, ui+ti
				re[k], im[k] = ur-tr, ui-ti
				tw += stride
			}
		}
	}
}

// convDirectThreshold bounds len(a)*len(b) below which convolution is
// evaluated directly (per-output compensated sums) instead of via FFT.
const convDirectThreshold = 1024

// convolve returns the linear convolution of a and b (len(a)+len(b)-1
// values) in workspace scratch. The result is valid until the next
// convolve call on ws. Small products are evaluated directly; larger ones
// go through one packed complex FFT of both real operands and one inverse.
func (ws *Workspace) convolve(a, b []float64) []float64 {
	outLen := len(a) + len(b) - 1
	if len(a)*len(b) <= convDirectThreshold {
		ws.ensureFFT(outLen)
		out := ws.fftRe[:outLen]
		convDirect(a, b, out)
		return out
	}
	lg := ceilLog2(outLen)
	n := 1 << lg
	ws.ensureFFT(n)
	re, im := ws.fftRe[:n], ws.fftIm[:n]
	copy(re, a)
	zeroFloats(re[len(a):])
	copy(im, b)
	zeroFloats(im[len(b):])
	t := ws.tables(lg)
	fftCore(re, im, t, lg)

	// Separate the two real spectra from the packed transform and multiply
	// pointwise, using conjugate symmetry to touch each bin pair once.
	// DC and Nyquist bins of a real signal's spectrum are real.
	re[0], im[0] = re[0]*im[0], 0
	h := n / 2
	re[h], im[h] = re[h]*im[h], 0
	for k := 1; k < h; k++ {
		k2 := n - k
		zr1, zi1 := re[k], im[k]
		zr2, zi2 := re[k2], im[k2]
		ar := (zr1 + zr2) / 2
		ai := (zi1 - zi2) / 2
		br := (zi1 + zi2) / 2
		bi := (zr2 - zr1) / 2
		cr := ar*br - ai*bi
		ci := ar*bi + ai*br
		re[k], im[k] = cr, ci
		re[k2], im[k2] = cr, -ci
	}

	// Inverse DFT via the swap trick: forward-transforming (im, re) leaves
	// the unnormalized real part of the inverse in re.
	fftCore(im, re, t, lg)
	inv := 1 / float64(n)
	out := re[:outLen]
	for i := range out {
		out[i] *= inv
	}
	return out
}

// convDirect writes the convolution of a and b into out, each output cell
// as its own compensated sum.
//
//lint:hotpath
func convDirect(a, b, out []float64) {
	for k := range out {
		lo := k - len(b) + 1
		if lo < 0 {
			lo = 0
		}
		hi := k
		if hi > len(a)-1 {
			hi = len(a) - 1
		}
		var acc Accumulator
		for i := lo; i <= hi; i++ {
			acc.Add(a[i] * b[k-i])
		}
		out[k] = acc.Sum()
	}
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 1 // the FFT kernel needs length >= 2
	}
	return bits.Len(uint(n - 1))
}

// zeroFloats clears s in place.
//
//lint:hotpath
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
