package prob

import (
	"math"
	"testing"
)

// exactBinomialPMF computes C(n,k) p^k q^(n-k) independently of the tables
// under test, via math.Lgamma.
func exactBinomialPMF(n, k int, p float64) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lgN - lgK - lgNK +
		float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// TestBinomialDrawInvertsExactly sweeps a dense uniform grid through Draw
// for small n and checks the measure mapped to each outcome k matches the
// exact binomial mass: this validates the inverse transform itself, with no
// sampling noise.
func TestBinomialDrawInvertsExactly(t *testing.T) {
	tables := NewBinomialTables(64)
	const grid = 200000
	cases := []struct {
		n int
		p float64
	}{
		{1, 0.5}, {2, 0.1}, {6, 0.37}, {12, 0.85}, {40, 0.5},
	}
	for _, tc := range cases {
		counts := make([]int, tc.n+1)
		for g := 0; g < grid; g++ {
			u := (float64(g) + 0.5) / grid
			k := tables.Draw(tc.n, tc.p, u)
			if k < 0 || k > tc.n {
				t.Fatalf("n=%d p=%v u=%v: Draw = %d out of range", tc.n, tc.p, u, k)
			}
			counts[k]++
		}
		for k := 0; k <= tc.n; k++ {
			got := float64(counts[k]) / grid
			want := exactBinomialPMF(tc.n, k, tc.p)
			if math.Abs(got-want) > 2.0/grid+1e-9 {
				t.Fatalf("n=%d p=%v k=%d: grid measure %v, exact pmf %v", tc.n, tc.p, k, got, want)
			}
		}
	}
}

// TestBinomialDrawLargeNMoments checks mean and variance against np and
// npq for a large n on a uniform grid (grid moments are exact up to the
// grid resolution, again avoiding sampling noise).
func TestBinomialDrawLargeNMoments(t *testing.T) {
	const n, p = 1350, 0.52
	tables := NewBinomialTables(n)
	const grid = 100000
	var sum, sumSq float64
	for g := 0; g < grid; g++ {
		u := (float64(g) + 0.5) / grid
		k := float64(tables.Draw(n, p, u))
		sum += k
		sumSq += k * k
	}
	mean := sum / grid
	variance := sumSq/grid - mean*mean
	if want := n * p; math.Abs(mean-want) > 0.5 {
		t.Fatalf("mean %v, want %v", mean, want)
	}
	if want := n * p * (1 - p); math.Abs(variance-want)/want > 0.02 {
		t.Fatalf("variance %v, want %v", variance, want)
	}
}

// TestBinomialDrawDegenerate pins the clamped endpoints and capacity panic.
func TestBinomialDrawDegenerate(t *testing.T) {
	tables := NewBinomialTables(10)
	if got := tables.Draw(10, 0, 0.99); got != 0 {
		t.Fatalf("p=0: Draw = %d, want 0", got)
	}
	if got := tables.Draw(10, 1, 0.01); got != 10 {
		t.Fatalf("p=1: Draw = %d, want 10", got)
	}
	if got := tables.Draw(0, 0.5, 0.5); got != 0 {
		t.Fatalf("n=0: Draw = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Draw beyond table capacity did not panic")
		}
	}()
	tables.Draw(11, 0.5, 0.5)
}
