package prob

import (
	"math"
	"testing"

	"liquid/internal/rng"
)

func TestBerryEsseenBoundCertifiesPoissonBinomial(t *testing.T) {
	s := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		n := 20 + s.IntN(200)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = 0.05 + 0.9*s.Float64()
		}
		pb, err := NewPoissonBinomial(ps)
		if err != nil {
			t.Fatal(err)
		}
		exact := pb.ProbMajority()
		norm := pb.NormalApproximation()
		// P[S > n/2] = P[S >= floor(n/2)+1]; the approximation evaluates the
		// survival function at the majority threshold.
		approx := norm.SF(float64(n) / 2)
		bound := BerryEsseenBound(ps)
		if diff := math.Abs(exact - approx); diff > bound {
			t.Fatalf("n=%d: |exact-approx| = %g exceeds certified bound %g", n, diff, bound)
		}
	}
}

func TestBerryEsseenWeightedBoundCertifiesWeightedMajority(t *testing.T) {
	s := rng.New(43)
	for trial := 0; trial < 20; trial++ {
		k := 10 + s.IntN(60)
		voters := make([]WeightedVoter, k)
		weights := make([]float64, k)
		ps := make([]float64, k)
		total := 0
		for i := range voters {
			w := 1 + s.IntN(4)
			p := 0.1 + 0.8*s.Float64()
			voters[i] = WeightedVoter{Weight: w, P: p}
			weights[i] = float64(w)
			ps[i] = p
			total += w
		}
		wm, err := NewWeightedMajority(voters)
		if err != nil {
			t.Fatal(err)
		}
		exact := wm.ProbCorrectDecision()
		norm := Normal{Mu: wm.Mean(), Sigma: math.Sqrt(wm.Variance())}
		approx := norm.SF(float64(total) / 2)
		bound := BerryEsseenWeightedBound(weights, ps)
		if diff := math.Abs(exact - approx); diff > bound {
			t.Fatalf("k=%d: |exact-approx| = %g exceeds certified bound %g", k, diff, bound)
		}
	}
}

func TestBerryEsseenBoundDegenerate(t *testing.T) {
	if b := BerryEsseenBound(nil); b != 1 {
		t.Fatalf("empty bound = %g, want trivial 1", b)
	}
	if b := BerryEsseenBound([]float64{0, 1, 0, 1}); b != 1 {
		t.Fatalf("zero-variance bound = %g, want trivial 1", b)
	}
	if b := BerryEsseenBound(make([]float64, 5000)); b != 1 {
		t.Fatalf("all-zero bound = %g, want trivial 1", b)
	}
	// A large balanced electorate has a tiny certified error.
	ps := make([]float64, 4000)
	for i := range ps {
		ps[i] = 0.5
	}
	if b := BerryEsseenBound(ps); b <= 0 || b > 0.01 {
		t.Fatalf("n=4000 balanced bound = %g, want small positive", b)
	}
}

func TestDPCostHelpers(t *testing.T) {
	if c := PoissonBinomialDPCost(0); c != 0 {
		t.Fatalf("PB cost(0) = %d", c)
	}
	if c := PoissonBinomialDPCost(100); c != 5050 {
		t.Fatalf("PB cost(100) = %d, want 5050", c)
	}
	if c := WeightedMajorityDPCost(10, 50); c != 500 {
		t.Fatalf("WM cost(10,50) = %d, want 500", c)
	}
	if c := WeightedMajorityDPCost(-1, 50); c != 0 {
		t.Fatalf("WM cost(-1,50) = %d, want 0", c)
	}
}
