package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Manifest is the end-of-run record a cmd/ entry point writes next to its
// output: everything needed to attribute a result file to the code,
// configuration, and runtime behaviour that produced it. It deliberately
// contains data that flows OUT of a run only — seeds and flags go in as
// configuration, wall/CPU time and the metrics snapshot come out as
// telemetry — so committing or diffing manifests can never feed telemetry
// back into results.
type Manifest struct {
	// Schema versions the document; additive changes keep the name.
	Schema string `json:"schema"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// GitRev is the producing commit (or "unknown" outside a checkout).
	GitRev string `json:"git_rev"`
	// TelemetryEnabled records whether the binary compiled telemetry in
	// (false under -tags liquidnotelemetry).
	TelemetryEnabled bool `json:"telemetry_enabled"`
	// Seed is the run's root seed (0 when the tool has no seed notion).
	Seed uint64 `json:"seed,omitempty"`
	// Flags is the full flag set of the run, name -> rendered value.
	Flags map[string]string `json:"flags,omitempty"`
	// WallSeconds/CPUSeconds cover the whole run: wall clock as observed
	// by the entry point, CPU as user+system rusage of the process. CPU is
	// process-wide; per-experiment wall time lives in Metrics.Spans (with
	// concurrent workers per-experiment CPU is not attributable).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	CPUSeconds  float64 `json:"cpu_seconds,omitempty"`
	// Metrics is the final registry snapshot: counters (cache hit rates,
	// fault counts, message totals), gauges, histograms, and per-experiment
	// spans.
	Metrics Snapshot `json:"metrics"`
}

// ManifestSchema is the current manifest schema identifier.
const ManifestSchema = "liquid-manifest/1"

// BuildManifest assembles a manifest from the registry's current state plus
// the run configuration. WallSeconds is left to the caller (the entry point
// owns the run's clock).
func BuildManifest(reg *Registry, seed uint64, flags map[string]string) *Manifest {
	m := &Manifest{
		Schema:           ManifestSchema,
		GoVersion:        runtime.Version(),
		GitRev:           GitRev(),
		TelemetryEnabled: Enabled,
		Seed:             seed,
		Flags:            flags,
		CPUSeconds:       cpuSeconds(),
	}
	if reg != nil {
		m.Metrics = reg.Snapshot()
	}
	return m
}

// Hash returns the hex SHA-256 of the manifest's canonical JSON encoding
// (encoding/json sorts map keys, so equal manifests hash equally).
func (m *Manifest) Hash() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Manifest is a plain data struct; Marshal cannot fail on it.
		panic("telemetry: manifest marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644, truncating).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gitRevOnce caches revision discovery: manifests may be built several
// times per process (sinks, tests) and the answer cannot change mid-run.
var gitRevOnce = sync.OnceValue(findGitRev)

// GitRev returns the producing commit hash: the build info's vcs.revision
// when the binary was built with VCS stamping, otherwise `git rev-parse
// HEAD` in the working directory, otherwise "unknown".
func GitRev() string { return gitRevOnce() }

func findGitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	if rev := strings.TrimSpace(string(out)); rev != "" {
		return rev
	}
	return "unknown"
}
