package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
)

// requireEnabled skips tests that assert on recorded values, which are
// definitionally absent under -tags liquidnotelemetry.
func requireEnabled(t *testing.T) {
	t.Helper()
	if !Enabled {
		t.Skip("telemetry compiled out (liquidnotelemetry)")
	}
}

func TestCounterBasics(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	c := r.Counter("a/b")
	if got := c.Load(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("a/b") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	if c.Name() != "a/b" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	// Instrumented code must be able to call through nil without checks.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Add(1)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	s.End()
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatal("nil metric loads should be zero")
	}
	if s.Child("x") != nil || s.Path() != "" {
		t.Fatal("nil span should propagate nil")
	}
}

func TestGaugeLockFreeRead(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(math.Pi)
	if got := g.Load(); got != math.Pi {
		t.Fatalf("gauge = %v, want pi", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	h := r.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 1.5, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bucket i counts v <= bounds[i]: {0.5,1} | {1.5,10} | {11} | {1000}.
	want := []uint64{2, 2, 1, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// Re-registration with different bounds keeps the original.
	if got := r.Histogram("h", 5).Snapshot().Bounds; !reflect.DeepEqual(got, []float64{1, 10, 100}) {
		t.Fatalf("re-registration changed bounds: %v", got)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewRegistry().Histogram("bad", 2, 1)
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("m").Set(5)
	r.Histogram("q", 1).Observe(0)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("two snapshots of unchanged state differ")
	}
	if s1.Counters[0].Name != "a" || s1.Counters[1].Name != "z" {
		t.Fatalf("counters not sorted: %+v", s1.Counters)
	}
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("snapshot JSON not byte-stable")
	}
}

func TestSpanHierarchy(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	root := r.StartSpan("experiment/T2")
	child := root.Child("evaluate")
	if child.Path() != "experiment/T2/evaluate" {
		t.Fatalf("child path = %q", child.Path())
	}
	child.End()
	root.End()
	s := r.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("span records = %d, want 2", len(s.Spans))
	}
	// Children end before parents, so finish order is child first.
	if s.Spans[0].Path != "experiment/T2/evaluate" || s.Spans[1].Path != "experiment/T2" {
		t.Fatalf("span order = %+v", s.Spans)
	}
	for _, rec := range s.Spans {
		if rec.Seconds < 0 {
			t.Fatalf("negative span duration: %+v", rec)
		}
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("root")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatal("span did not round-trip through context")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatal("empty context should carry the nil span")
	}
	// Installing the nil span leaves the context untouched.
	if ctx2 := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx2) != nil {
		t.Fatal("nil span installed something")
	}
}

func TestSpanRetentionCap(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	for i := 0; i < spanRecordCap+10; i++ {
		r.StartSpan("s").End()
	}
	s := r.Snapshot()
	if len(s.Spans) != spanRecordCap {
		t.Fatalf("retained %d spans, want cap %d", len(s.Spans), spanRecordCap)
	}
	if s.SpansDropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.SpansDropped)
	}
}

func TestJSONLSink(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	r.Counter("c").Add(7)
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	if err := sink.Flush(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r.Counter("c").Add(1)
	if err := sink.Flush(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var seqs []int
	var last uint64
	for sc.Scan() {
		var rec struct {
			Seq      int      `json:"seq"`
			Snapshot Snapshot `json:"snapshot"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		seqs = append(seqs, rec.Seq)
		last = rec.Snapshot.Counters[0].Value
	}
	if !reflect.DeepEqual(seqs, []int{1, 2}) {
		t.Fatalf("seqs = %v", seqs)
	}
	if last != 8 {
		t.Fatalf("final counter in stream = %d, want 8", last)
	}
}

func TestDiscardAndMultiSink(t *testing.T) {
	if err := Discard.Flush(Snapshot{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m := MultiSink(Discard, nil, NewJSONLSink(&buf))
	if err := m.Flush(Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("MultiSink did not reach the JSONL sink")
	}
}

func TestManifestBuildAndHash(t *testing.T) {
	r := NewRegistry()
	r.Counter("election/resolution_cache_hits").Add(3)
	m := BuildManifest(r, 7, map[string]string{"scale": "1", "workers": "4"})
	if m.Schema != ManifestSchema {
		t.Fatalf("schema = %q", m.Schema)
	}
	if m.Seed != 7 || m.Flags["workers"] != "4" {
		t.Fatalf("config fields wrong: %+v", m)
	}
	if !strings.HasPrefix(m.GoVersion, "go") {
		t.Fatalf("go version = %q", m.GoVersion)
	}
	if m.GitRev == "" {
		t.Fatal("git rev empty (want hash or \"unknown\")")
	}
	if m.TelemetryEnabled != Enabled {
		t.Fatal("TelemetryEnabled does not match build")
	}
	h1, h2 := m.Hash(), m.Hash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}
	// Any field change must change the hash.
	m.Seed = 8
	if m.Hash() == h1 {
		t.Fatal("hash ignored a field change")
	}

	var buf bytes.Buffer
	m.Seed = 7
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest JSON does not round-trip: %v", err)
	}
	if back.Hash() != h1 {
		t.Fatal("round-tripped manifest hashes differently")
	}
}

func TestManifestWriteFile(t *testing.T) {
	m := BuildManifest(NewRegistry(), 1, nil)
	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ManifestSchema {
		t.Fatalf("schema = %q", back.Schema)
	}
}
