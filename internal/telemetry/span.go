package telemetry

import (
	"context"
	"time"
)

// Span measures one wall-clock interval in a hierarchy: the engine opens a
// span per scheduled experiment, and downstream layers (election
// evaluation, fault evaluation) hang children off it through the context.
// Paths are slash-joined, e.g. "experiment/T2/evaluate".
//
// A nil *Span is the valid "not tracing" value: every method no-ops on it,
// so instrumented code can call SpanFromContext(ctx).Child("x") without
// caring whether a span was installed. Spans observe wall time only inside
// this package (the walltime analyzer allowlists internal/telemetry);
// result-bearing packages never touch the clock themselves.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// SpanRecord is one finished span.
type SpanRecord struct {
	Path    string  `json:"path"`
	Seconds float64 `json:"seconds"`
}

// StartSpan opens a root span on the registry. Returns nil (the no-op
// span) when telemetry is compiled out or r is nil.
func (r *Registry) StartSpan(path string) *Span {
	if !Enabled || r == nil {
		return nil
	}
	return &Span{reg: r, path: path, start: time.Now()}
}

// Child opens a sub-span whose path extends the receiver's.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now()}
}

// Path returns the span's slash-joined path ("" for the nil span).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End finishes the span and records it on the registry. Ending the nil
// span is a no-op; ending twice records twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.reg.recordSpan(SpanRecord{Path: s.path, Seconds: time.Since(s.start).Seconds()})
}

// recordSpan appends a finished span, dropping (but counting) records past
// the retention cap.
func (r *Registry) recordSpan(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= spanRecordCap {
		r.spansDropped++
		return
	}
	r.spans = append(r.spans, rec)
}

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span, or nil (the no-op span) when
// none was installed.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
