//go:build !unix

package telemetry

// cpuSeconds is unavailable off unix; manifests report 0.
func cpuSeconds() float64 { return 0 }
