//go:build unix

package telemetry

import "syscall"

// cpuSeconds returns the process's user+system CPU time so far, or 0 when
// rusage is unavailable.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toSec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return toSec(ru.Utime) + toSec(ru.Stime)
}
