// Package telemetry is the observability layer: process-wide metrics
// (atomic counters, lock-free-read gauges, fixed-bucket histograms),
// hierarchical wall-clock spans, pluggable sinks, and the end-of-run
// manifest. Everything is stdlib-only and — by contract — write-only with
// respect to results.
//
// The write-only invariant (see DESIGN.md "Observability"): instrumented
// packages may create and update metrics, but no metric value may flow back
// into any reproduced table or experiment outcome. Counter and gauge loads,
// histogram and registry snapshots exist solely so cmd/ entry points,
// sinks, and tests can export them. The telemflow analyzer enforces this
// statically (reading methods are forbidden in result-bearing internal
// packages), and a byte-identity test diffs reproduce output with telemetry
// fully on against a binary built with the compiled-out stub
// (-tags liquidnotelemetry) to enforce it dynamically.
//
// Because instrumentation sits on hot paths (the exact-scoring kernels, the
// replication workers), every update is a single atomic op guarded by the
// compile-time Enabled constant: with -tags liquidnotelemetry the guard is
// a constant false and the compiler deletes the update entirely.
//
// Metrics live in a Registry; the package-level Default registry is what
// instrumented packages use via the NewCounter/NewGauge/NewHistogram
// get-or-create helpers (expvar-style). Registries are safe for concurrent
// use: updates are lock-free, snapshots take a short registration lock.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by d. Safe on a nil receiver (no-op), so
// instrumented code never needs nil checks.
func (c *Counter) Add(d uint64) {
	if !Enabled || c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count. Read path: telemetry export only — never
// call from a result-bearing package (enforced by the telemflow analyzer).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 with lock-free reads and writes (the
// value is stored as raw bits in one atomic word).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if !Enabled || g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the last stored value (zero if never set). Read path:
// telemetry export only (telemflow).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets chosen at registration:
// bucket i counts observations <= Bounds[i], the last bucket catches the
// rest. Observation is two atomic ops (a bucket increment and a count
// increment); there is no sum, no quantile sketch, and no resizing — the
// fixed shape is what keeps the hot path cheap and the snapshot exact.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds; implicit +Inf tail bucket
	buckets []atomic.Uint64
	count   atomic.Uint64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records v into its bucket. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if !Enabled || h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
}

// HistogramSnapshot is one histogram's exported state. Counts has one entry
// per bound plus the overflow bucket.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
}

// Snapshot exports the histogram's current counts. Read path: telemetry
// export only (telemflow).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name, Bounds: h.bounds, Counts: make([]uint64, len(h.buckets))}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	return s
}

// spanRecordCap bounds how many finished spans a registry retains; beyond
// it spans are counted but dropped, so a pathological retry loop cannot
// grow memory without bound.
const spanRecordCap = 1 << 12

// Registry holds named metrics and finished spans. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans        []SpanRecord
	spansDropped uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry instrumented packages register on.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. Bounds must be ascending; they are ignored
// when the histogram already exists (the first registration wins), so
// concurrent get-or-create calls are safe.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending: %v", name, bounds))
			}
		}
		h = &Histogram{
			name:    name,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// NewCounter returns the named counter on the Default registry
// (expvar-style get-or-create).
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge returns the named gauge on the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram returns the named histogram on the Default registry.
func NewHistogram(name string, bounds ...float64) *Histogram {
	return Default.Histogram(name, bounds...)
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time export of a registry: metrics sorted by name
// (so two snapshots of identical state marshal identically), spans in
// finish order (scheduling-dependent — telemetry, never results).
type Snapshot struct {
	Counters   []CounterValue      `json:"counters,omitempty"`
	Gauges     []GaugeValue        `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanRecord        `json:"spans,omitempty"`
	// SpansDropped counts spans discarded past the retention cap.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
}

// Counter returns the named counter's value in the snapshot, or 0 when the
// counter was never registered (including Enabled == false builds, where
// nothing ever updates). Snapshots keep counters name-sorted, so the lookup
// is a binary search.
func (s Snapshot) Counter(name string) uint64 {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value
	}
	return 0
}

// Snapshot exports the registry's current state. Read path: cmd/ entry
// points, sinks, and tests only (telemflow forbids it elsewhere).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.v.Load()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: math.Float64frombits(g.bits.Load())})
	}
	for _, h := range r.hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	s.Spans = append([]SpanRecord(nil), r.spans...)
	s.SpansDropped = r.spansDropped
	return s
}
