package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Sink consumes registry snapshots. Sinks are pull-based on purpose: the
// instrumented packages only ever write atomics, and whoever owns the run
// (a cmd/ entry point, a test) decides when to Flush a snapshot out. That
// is what keeps sinks trivially side-effect-free with respect to results —
// attaching any number of them, or none, changes no computation.
type Sink interface {
	// Flush exports one snapshot. Implementations must be safe for
	// concurrent use.
	Flush(Snapshot) error
}

// Discard is the no-op sink: Flush drops the snapshot. Running with
// Discard is the reference point for the write-only property tests —
// output with any sink set must be byte-identical to output with Discard.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Flush(Snapshot) error { return nil }

// JSONLSink appends one JSON line per flush to an underlying writer: a
// metrics stream alongside the engine's event stream (same format family as
// report.JSONLWriter, which telemetry cannot import without inverting the
// dependency between the metrics layer and the reporting layer). Each line
// is {"seq": n, "snapshot": {...}}; seq orders flushes.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	seq int
}

// NewJSONLSink wraps w in a line-per-snapshot sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// jsonlRecord is one emitted line.
type jsonlRecord struct {
	Seq      int      `json:"seq"`
	Snapshot Snapshot `json:"snapshot"`
}

// Flush writes the snapshot as one line.
func (s *JSONLSink) Flush(snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.enc.Encode(jsonlRecord{Seq: s.seq, Snapshot: snap})
}

// MultiSink fans a flush out to several sinks, stopping on the first
// error.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Flush(snap Snapshot) error {
	for _, s := range m {
		if s == nil {
			continue
		}
		if err := s.Flush(snap); err != nil {
			return err
		}
	}
	return nil
}
