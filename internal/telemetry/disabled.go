//go:build liquidnotelemetry

package telemetry

// Enabled is false under -tags liquidnotelemetry: every metric update and
// span start compiles to nothing. See enabled.go.
const Enabled = false
