package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryHammer is the race-detector workout for the registry: N
// writer goroutines updating (and get-or-creating) counters, gauges,
// histograms, and spans while M flusher goroutines concurrently snapshot
// into a JSONL sink. Run under `go test -race` (part of make test-race)
// this proves metric updates, registration, and snapshotting never race.
func TestRegistryHammer(t *testing.T) {
	requireEnabled(t)
	const (
		writers = 8
		flushes = 4
		iters   = 2000
	)
	r := NewRegistry()
	sink := MultiSink(Discard, NewJSONLSink(io.Discard))
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every writer hits one shared and one private metric of each
			// kind, so both contended updates and concurrent registration
			// get exercised.
			names := []string{"shared", string(rune('a' + w))}
			for i := 0; i < iters; i++ {
				for _, n := range names {
					r.Counter("c/" + n).Inc()
					r.Gauge("g/" + n).Set(float64(i))
					r.Histogram("h/"+n, 10, 100, 1000).Observe(float64(i))
				}
				sp := r.StartSpan("hammer")
				sp.Child("inner").End()
				sp.End()
			}
		}(w)
	}
	for f := 0; f < flushes; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				if err := sink.Flush(r.Snapshot()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	var sharedC uint64
	for _, c := range s.Counters {
		if c.Name == "c/shared" {
			sharedC = c.Value
		}
	}
	if want := uint64(writers * iters); sharedC != want {
		t.Fatalf("shared counter = %d, want %d (lost updates)", sharedC, want)
	}
	for _, h := range s.Histograms {
		if h.Name == "h/shared" && h.Count != uint64(writers*iters) {
			t.Fatalf("shared histogram count = %d, want %d", h.Count, writers*iters)
		}
	}
}
