//go:build !liquidnotelemetry

package telemetry

// Enabled reports whether telemetry updates are compiled in. The default
// build enables them; `-tags liquidnotelemetry` flips this constant to
// false, at which point every hot-path update (Counter.Add, Gauge.Set,
// Histogram.Observe, span starts) is dead code the compiler removes. The
// byte-identity test in cmd/reproduce diffs the two builds' stdout to prove
// telemetry is write-only with respect to results.
const Enabled = true
