// Package recycle implements the paper's recycle sampling model
// (Definition 6): a sequence of dependent Bernoulli-like variables
// x_1, ..., x_n where x_i either draws a fresh Bernoulli(p_i) value (with
// probability z_i) or copies the realized value of a uniformly random
// earlier vertex from a designated prefix. This captures the dependency
// structure of delegated voting: delegating "recycles" the delegate's
// Bernoulli parameter.
//
// Vertices are ordered by decreasing competency, so copying from earlier
// vertices corresponds to delegating to more competent voters.
//
// The partition complexity c (the longest copy chain the structure allows)
// controls the concentration degradation in Lemma 2:
//
//	X_n >= mu(X_n) - c * eps * n / j^{1/3}   w.p. >= 1 - e^{-Omega(j^{1/3})}.
package recycle

import (
	"errors"
	"fmt"
	"math"

	"liquid/internal/core"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// ErrInvalidGraph reports a malformed recycle sampling graph.
var ErrInvalidGraph = errors.New("recycle: invalid recycle sampling graph")

// Graph is a (j, c, n)-recycle sampling graph in interval form: vertex i
// may copy the value of a uniformly random vertex in [0, UpTo[i]);
// UpTo[i] == 0 means vertex i always draws fresh.
type Graph struct {
	// Z[i] is the probability that vertex i draws a fresh Bernoulli(P[i])
	// value instead of copying. Vertices with UpTo[i] == 0 always draw
	// fresh regardless of Z.
	Z []float64
	// P[i] is vertex i's Bernoulli parameter.
	P []float64
	// UpTo[i] is the exclusive upper bound of the copy prefix; must satisfy
	// 0 <= UpTo[i] <= i.
	UpTo []int
	// J is the declared prefix of always-fresh vertices (the j of the
	// definition), recorded for reporting.
	J int
}

// New validates and returns a recycle sampling graph.
func New(j int, z, p []float64, upTo []int) (*Graph, error) {
	n := len(p)
	if len(z) != n || len(upTo) != n {
		return nil, fmt.Errorf("%w: length mismatch z=%d p=%d upTo=%d", ErrInvalidGraph, len(z), n, len(upTo))
	}
	if j < 0 || j > n {
		return nil, fmt.Errorf("%w: j = %d outside [0, %d]", ErrInvalidGraph, j, n)
	}
	for i := 0; i < n; i++ {
		if p[i] < 0 || p[i] > 1 || math.IsNaN(p[i]) {
			return nil, fmt.Errorf("%w: p[%d] = %v", ErrInvalidGraph, i, p[i])
		}
		if z[i] < 0 || z[i] > 1 || math.IsNaN(z[i]) {
			return nil, fmt.Errorf("%w: z[%d] = %v", ErrInvalidGraph, i, z[i])
		}
		if upTo[i] < 0 || upTo[i] > i {
			return nil, fmt.Errorf("%w: upTo[%d] = %d outside [0, %d]", ErrInvalidGraph, i, upTo[i], i)
		}
		if i < j && upTo[i] != 0 {
			return nil, fmt.Errorf("%w: vertex %d < j = %d must be fresh", ErrInvalidGraph, i, j)
		}
	}
	return &Graph{
		Z:    append([]float64(nil), z...),
		P:    append([]float64(nil), p...),
		UpTo: append([]int(nil), upTo...),
		J:    j,
	}, nil
}

// NewIndependent returns the degenerate recycle graph in which every vertex
// draws fresh: an ordinary independent Bernoulli sequence.
func NewIndependent(p []float64) (*Graph, error) {
	n := len(p)
	z := make([]float64, n)
	for i := range z {
		z[i] = 1
	}
	return New(n, z, p, make([]int, n))
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.P) }

// Realize samples one realization x_1..x_n, processing vertices in
// increasing order as in the definition.
func (g *Graph) Realize(s *rng.Stream) []bool {
	n := g.N()
	x := make([]bool, n)
	for i := 0; i < n; i++ {
		if g.UpTo[i] == 0 || s.Bernoulli(g.Z[i]) {
			x[i] = s.Bernoulli(g.P[i])
		} else {
			x[i] = x[s.IntN(g.UpTo[i])]
		}
	}
	return x
}

// RealizeSum samples one realization and returns X_n = sum_i x_i.
func (g *Graph) RealizeSum(s *rng.Stream) int {
	sum := 0
	for _, v := range g.Realize(s) {
		if v {
			sum++
		}
	}
	return sum
}

// RealizePrefixSums samples one realization and returns all prefix sums
// X_1, ..., X_n (X_i = x_1 + ... + x_i), used by the Lemma 1/2 deviation
// experiments.
func (g *Graph) RealizePrefixSums(s *rng.Stream) []int {
	x := g.Realize(s)
	out := make([]int, len(x))
	sum := 0
	for i, v := range x {
		if v {
			sum++
		}
		out[i] = sum
	}
	return out
}

// Means returns the exact per-vertex expectations E[x_i], computed by the
// linear recursion E[x_i] = z_i p_i + (1 - z_i) * avg_{k < UpTo[i]} E[x_k]
// in O(n) using running prefix sums (UpTo[i] <= i guarantees availability).
func (g *Graph) Means() []float64 {
	n := g.N()
	m := make([]float64, n)
	prefSum := make([]float64, n+1) // prefSum[k] = sum of m[0..k-1]
	for i := 0; i < n; i++ {
		if g.UpTo[i] == 0 {
			m[i] = g.P[i]
		} else {
			avg := prefSum[g.UpTo[i]] / float64(g.UpTo[i])
			m[i] = g.Z[i]*g.P[i] + (1-g.Z[i])*avg
		}
		prefSum[i+1] = prefSum[i] + m[i]
	}
	return m
}

// MeanSum returns mu(X_n) = sum_i E[x_i]. It runs the Means recursion with
// a single prefix-sum array and feeds each term straight into a compensated
// accumulator, returning bit-identical values to prob.Sum(g.Means()) with
// one less O(n) allocation.
func (g *Graph) MeanSum() float64 {
	n := g.N()
	prefSum := make([]float64, n+1)
	var acc prob.Accumulator
	for i := 0; i < n; i++ {
		var m float64
		if g.UpTo[i] == 0 {
			m = g.P[i]
		} else {
			avg := prefSum[g.UpTo[i]] / float64(g.UpTo[i])
			m = g.Z[i]*g.P[i] + (1-g.Z[i])*avg
		}
		prefSum[i+1] = prefSum[i] + m
		acc.Add(m)
	}
	return acc.Sum()
}

// MeanPrefixSums returns mu(X_i) for every prefix.
func (g *Graph) MeanPrefixSums() []float64 {
	m := g.Means()
	out := make([]float64, len(m))
	var s prob.Accumulator
	for i, v := range m {
		s.Add(v)
		out[i] = s.Sum()
	}
	return out
}

// PartitionComplexity returns c: the length (in edges) of the longest
// possible copy chain. A fully independent sequence has complexity 0.
func (g *Graph) PartitionComplexity() int {
	n := g.N()
	depth := make([]int, n)
	best := 0    // max depth overall
	prefMax := 0 // max depth among vertices < current prefix bound
	// prefixMaxes[k] = max depth over vertices [0, k); maintained
	// incrementally since UpTo[i] <= i.
	prefixMaxes := make([]int, n+1)
	for i := 0; i < n; i++ {
		if g.UpTo[i] == 0 || g.Z[i] >= 1 {
			depth[i] = 0
		} else {
			depth[i] = 1 + prefixMaxes[g.UpTo[i]]
		}
		if depth[i] > best {
			best = depth[i]
		}
		if depth[i] > prefMax {
			prefMax = depth[i]
		}
		prefixMaxes[i+1] = prefMax
	}
	return best
}

// Lemma2Bound returns the Lemma 2 lower-bound threshold
// mu(X_n) - c*eps*n/j^{1/3} for the given eps; realizations should stay
// above it with probability 1 - e^{-Omega(j^{1/3})}.
func (g *Graph) Lemma2Bound(eps float64) float64 {
	j := float64(g.J)
	if j < 1 {
		j = 1
	}
	c := float64(g.PartitionComplexity())
	if c < 1 {
		c = 1
	}
	return g.MeanSum() - c*eps*float64(g.N())/math.Cbrt(j)
}

// FromCompleteDelegation builds the recycle sampling graph corresponding to
// Algorithm 1 on a complete-graph instance with approval margin alpha and
// threshold function jn (of the voter count): voters are ordered by
// decreasing competency; a voter whose approval set reaches the threshold
// copies uniformly from its approval prefix (z = 0), everyone else is
// fresh. This is the Lemma 7 correspondence.
func FromCompleteDelegation(in *core.Instance, alpha float64, threshold int) (*Graph, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha", ErrInvalidGraph)
	}
	n := in.N()
	// Descending competency with ascending-id tiebreak, built in O(n) from
	// the instance's ascending (competency, id) order: reverse it, then
	// re-reverse each equal-competency run to restore the ascending ids the
	// old stable sort produced. No sort at all on the setup path of every
	// Lemma 7 row and every A2 alpha point.
	co := in.CompetencyOrder()
	order := make([]int, n)
	for i, v := range co {
		order[n-1-i] = v
	}
	for i := 0; i < n; {
		j := i + 1
		for j < n && in.Competency(order[j]) == in.Competency(order[i]) {
			j++
		}
		for l, r := i, j-1; l < r; l, r = l+1, r-1 {
			order[l], order[r] = order[r], order[l]
		}
		i = j
	}

	p := make([]float64, n)
	z := make([]float64, n)
	upTo := make([]int, n)
	if threshold < 1 {
		threshold = 1
	}
	j := n
	for pos, v := range order {
		p[pos] = in.Competency(v)
	}
	// The approval prefix of the voter at pos: all strictly-more-competent-
	// by-alpha voters appear before pos in descending order, so its size is
	// the first k with p[k] < p[pos] + alpha. As pos advances, p[pos] + alpha
	// is non-increasing, so the cut advances monotonically: one two-pointer
	// sweep replaces a binary search per voter.
	cut := 0
	for pos := range order {
		for cut < pos && p[cut] >= p[pos]+alpha {
			cut++
		}
		if cut >= threshold {
			z[pos] = 0
			upTo[pos] = cut
			if pos < j {
				j = pos
			}
		} else {
			z[pos] = 1
			upTo[pos] = 0
		}
	}
	// The arrays above are valid by construction (p from a validated
	// instance, z in {0,1}, upTo = cut <= pos, fresh below j), so skip New's
	// re-validation and defensive copies; this runs once per Lemma 7 row and
	// per A2 alpha point.
	return &Graph{Z: z, P: p, UpTo: upTo, J: min(j, n)}, nil
}
