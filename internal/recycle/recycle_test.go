package recycle

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		j    int
		z, p []float64
		upTo []int
	}{
		{"length mismatch", 0, []float64{1}, []float64{0.5, 0.5}, []int{0, 0}},
		{"bad j", 5, []float64{1}, []float64{0.5}, []int{0}},
		{"negative j", -1, []float64{1}, []float64{0.5}, []int{0}},
		{"bad p", 0, []float64{1}, []float64{1.5}, []int{0}},
		{"bad z", 0, []float64{-0.1}, []float64{0.5}, []int{0}},
		{"upTo beyond i", 0, []float64{1, 0}, []float64{0.5, 0.5}, []int{0, 2}},
		{"copy before j", 2, []float64{0, 0}, []float64{0.5, 0.5}, []int{0, 1}},
	}
	for _, tt := range tests {
		if _, err := New(tt.j, tt.z, tt.p, tt.upTo); !errors.Is(err, ErrInvalidGraph) {
			t.Errorf("%s: err = %v", tt.name, err)
		}
	}
}

func TestIndependentMeansAndComplexity(t *testing.T) {
	p := []float64{0.2, 0.5, 0.9}
	g, err := NewIndependent(p)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Means()
	for i := range p {
		if m[i] != p[i] {
			t.Fatalf("independent mean[%d] = %v", i, m[i])
		}
	}
	if got := g.PartitionComplexity(); got != 0 {
		t.Fatalf("independent complexity = %d", got)
	}
	if math.Abs(g.MeanSum()-1.6) > 1e-12 {
		t.Fatalf("MeanSum = %v", g.MeanSum())
	}
}

func TestPureCopyMean(t *testing.T) {
	// Vertex 1 always copies vertex 0: E[x_1] = E[x_0] = p_0.
	g, err := New(1, []float64{1, 0}, []float64{0.7, 0.1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := g.Means()
	if m[1] != 0.7 {
		t.Fatalf("copy mean = %v, want 0.7", m[1])
	}
	if g.PartitionComplexity() != 1 {
		t.Fatalf("complexity = %d", g.PartitionComplexity())
	}
}

func TestChainComplexity(t *testing.T) {
	// 0 fresh; 1 copies {0}; 2 copies {0,1}; 3 copies {0,1,2}: longest
	// chain 3 -> 2 -> 1 -> 0 has 3 edges.
	z := []float64{1, 0, 0, 0}
	p := []float64{0.5, 0.5, 0.5, 0.5}
	upTo := []int{0, 1, 2, 3}
	g, err := New(1, z, p, upTo)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PartitionComplexity(); got != 3 {
		t.Fatalf("complexity = %d, want 3", got)
	}
}

func TestComplexityIgnoresFreshVertices(t *testing.T) {
	// Vertex 2 has copy edges but z = 1, so it never copies: no chain.
	g, err := New(1, []float64{1, 1, 1}, []float64{0.5, 0.5, 0.5}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PartitionComplexity(); got != 0 {
		t.Fatalf("complexity = %d, want 0", got)
	}
}

func TestRealizeMatchesMeans(t *testing.T) {
	// Mixed graph: empirical average of X_n must match MeanSum.
	n := 60
	z := make([]float64, n)
	p := make([]float64, n)
	upTo := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = 0.3 + 0.4*float64(i)/float64(n)
		if i < 10 {
			z[i] = 1
		} else {
			z[i] = 0.3
			upTo[i] = i - 5
		}
	}
	g, err := New(10, z, p, upTo)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(1)
	const trials = 40000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(g.RealizeSum(s))
	}
	got := sum / trials
	want := g.MeanSum()
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("empirical mean %v vs exact %v", got, want)
	}
}

func TestRealizePrefixSumsConsistent(t *testing.T) {
	g, err := NewIndependent([]float64{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := g.RealizePrefixSums(rng.New(2))
	want := []int{1, 1, 2, 3}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("prefix sums %v, want %v", ps, want)
		}
	}
}

func TestMeanPrefixSums(t *testing.T) {
	g, err := NewIndependent([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mp := g.MeanPrefixSums()
	if mp[0] != 0.5 || mp[1] != 1.0 {
		t.Fatalf("MeanPrefixSums = %v", mp)
	}
}

func TestLemma2BoundBelowMean(t *testing.T) {
	g, err := New(4,
		[]float64{1, 1, 1, 1, 0, 0},
		[]float64{0.6, 0.6, 0.6, 0.6, 0.2, 0.2},
		[]int{0, 0, 0, 0, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if b := g.Lemma2Bound(0.1); b >= g.MeanSum() {
		t.Fatalf("bound %v should sit below the mean %v", b, g.MeanSum())
	}
}

func TestFromCompleteDelegation(t *testing.T) {
	// 6 voters, alpha = 0.1, threshold 1. Competencies chosen so the top
	// two voters cannot delegate.
	p := []float64{0.9, 0.85, 0.6, 0.5, 0.4, 0.3}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCompleteDelegation(in, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 {
		t.Fatalf("N = %d", g.N())
	}
	// Descending order: 0.9, 0.85, 0.6, 0.5, 0.4, 0.3. Approval counts
	// (strictly >= p+0.1 among earlier): 0, 0, 2, 3, 4, 5.
	wantUpTo := []int{0, 0, 2, 3, 4, 5}
	for i, want := range wantUpTo {
		if g.UpTo[i] != want {
			t.Fatalf("UpTo = %v, want %v", g.UpTo, wantUpTo)
		}
	}
	if g.J != 2 {
		t.Fatalf("J = %d, want 2", g.J)
	}
	// All copying vertices have z = 0 (Algorithm 1 delegates surely).
	for i := 2; i < 6; i++ {
		if g.Z[i] != 0 {
			t.Fatalf("Z[%d] = %v", i, g.Z[i])
		}
	}
	// Means of delegators must exceed their own competency by >= alpha
	// (every delegate is at least alpha more competent).
	m := g.Means()
	for i := 2; i < 6; i++ {
		if m[i] < g.P[i]+0.1 {
			t.Fatalf("delegation should raise expectation: m[%d] = %v, p = %v", i, m[i], g.P[i])
		}
	}
}

func TestFromCompleteDelegationThresholdBlocks(t *testing.T) {
	p := []float64{0.9, 0.5, 0.4}
	in, err := core.NewInstance(graph.NewComplete(3), p)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 3: nobody has 3 approved voters, so everyone is fresh.
	g, err := FromCompleteDelegation(in, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.UpTo {
		if g.UpTo[i] != 0 {
			t.Fatalf("vertex %d should be fresh", i)
		}
	}
	if g.PartitionComplexity() != 0 {
		t.Fatal("complexity should be 0")
	}
}

func TestQuickMeansAreProbabilities(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		s := rng.New(seed)
		z := make([]float64, n)
		p := make([]float64, n)
		upTo := make([]int, n)
		for i := 0; i < n; i++ {
			z[i] = s.Float64()
			p[i] = s.Float64()
			if i > 0 && s.Bernoulli(0.7) {
				upTo[i] = 1 + s.IntN(i)
			}
		}
		g, err := New(0, z, p, upTo)
		if err != nil {
			return false
		}
		for _, m := range g.Means() {
			if m < -1e-12 || m > 1+1e-12 {
				return false
			}
		}
		c := g.PartitionComplexity()
		return c >= 0 && c < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
