package recycle

import (
	"testing"

	"liquid/internal/rng"
)

// realizerGraphs builds graphs exercising every vertex class: independent
// (all fresh), layered copy-only, mixed z, and degenerate p values.
func realizerGraphs(t *testing.T) []*Graph {
	t.Helper()
	s := rng.New(71)
	var gs []*Graph

	n := 400
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.2 + 0.6*s.Float64()
	}
	ind, err := NewIndependent(p)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, ind)

	// Fresh prefix then copy-only suffix.
	j := 40
	z := make([]float64, n)
	upTo := make([]int, n)
	for i := 0; i < j; i++ {
		z[i] = 1
	}
	for i := j; i < n; i++ {
		upTo[i] = j + (i-j)/2
	}
	layered, err := New(j, z, p, upTo)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, layered)

	// Mixed z in (0, 1) plus degenerate p on some vertices.
	z2 := make([]float64, n)
	p2 := append([]float64(nil), p...)
	for i := 0; i < j; i++ {
		z2[i] = 1
	}
	for i := j; i < n; i++ {
		z2[i] = 0.3 + 0.4*s.Float64()
	}
	p2[5], p2[6], p2[j+3], p2[j+4] = 0, 1, 0, 1
	mixed, err := New(j, z2, p2, upTo)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, mixed)
	return gs
}

// TestRealizerMatchesRealize pins the Realizer's draw-protocol contract:
// from identical stream states, Realizer and Graph.Realize must produce
// identical realizations AND leave their streams in identical states (the
// sentinel draw at the end detects any difference in draws consumed).
func TestRealizerMatchesRealize(t *testing.T) {
	for gi, g := range realizerGraphs(t) {
		r := g.Realizer()
		prefix := make([]int, g.N())
		for rep := 0; rep < 20; rep++ {
			seed := uint64(1000*gi + rep + 1)
			want := g.Realize(rng.New(seed))

			s := rng.New(seed)
			got := r.realize(s)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("graph %d rep %d: x[%d] = %v, want %v", gi, rep, i, got[i], want[i])
				}
			}
			// Sentinel: both streams must have consumed the same draws.
			ref := rng.New(seed)
			g.Realize(ref)
			if a, b := s.Uint64(), ref.Uint64(); a != b {
				t.Fatalf("graph %d rep %d: stream states diverged (%x vs %x): draw counts differ", gi, rep, a, b)
			}

			if got, want := r.Sum(rng.New(seed)), g.RealizeSum(rng.New(seed)); got != want {
				t.Fatalf("graph %d rep %d: Sum = %d, want %d", gi, rep, got, want)
			}
			gotPrefix := r.PrefixSumsInto(prefix, rng.New(seed))
			wantPrefix := g.RealizePrefixSums(rng.New(seed))
			for i := range wantPrefix {
				if gotPrefix[i] != wantPrefix[i] {
					t.Fatalf("graph %d rep %d: prefix[%d] = %d, want %d", gi, rep, i, gotPrefix[i], wantPrefix[i])
				}
			}
		}
	}
}

// TestSumFastDeterministicAndCalibrated pins SumFast's two contracts: a
// fixed seed reproduces the identical sum (the fast protocol is
// deterministic even though it differs from Realize's), and the sampled
// mean tracks the exact recycle mean closely enough that the 2^-32
// quantization is invisible at Monte Carlo scale.
func TestSumFastDeterministicAndCalibrated(t *testing.T) {
	for gi, g := range realizerGraphs(t) {
		r := g.Realizer()
		mu := g.MeanSum()
		const reps = 4000
		total := 0.0
		for rep := 0; rep < reps; rep++ {
			seed := uint64(5000*gi + rep + 1)
			a := r.SumFast(rng.New(seed))
			if b := r.SumFast(rng.New(seed)); a != b {
				t.Fatalf("graph %d rep %d: SumFast not deterministic: %d vs %d", gi, rep, a, b)
			}
			total += float64(a)
		}
		mean := total / reps
		// X_n is a sum of ~400 dependent indicators; its stddev is well under
		// 20, so the mean of 4000 samples sits within ~1 of mu w.h.p.
		if d := mean - mu; d > 2 || d < -2 {
			t.Fatalf("graph %d: SumFast mean %.2f far from exact mean %.2f", gi, mean, mu)
		}
	}
}

func BenchmarkRealizerSumFast(b *testing.B) {
	s := rng.New(73)
	n := 5000
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.2 + 0.6*s.Float64()
	}
	z := make([]float64, n)
	upTo := make([]int, n)
	j := n / 10
	for i := 0; i < j; i++ {
		z[i] = 1
	}
	for i := j; i < n; i++ {
		upTo[i] = j
	}
	g, err := New(j, z, p, upTo)
	if err != nil {
		b.Fatal(err)
	}
	r := g.Realizer()
	stream := rng.New(75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.SumFast(stream) < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkRealizerSum(b *testing.B) {
	s := rng.New(73)
	n := 5000
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.2 + 0.6*s.Float64()
	}
	z := make([]float64, n)
	upTo := make([]int, n)
	j := n / 10
	for i := 0; i < j; i++ {
		z[i] = 1
	}
	for i := j; i < n; i++ {
		upTo[i] = j
	}
	g, err := New(j, z, p, upTo)
	if err != nil {
		b.Fatal(err)
	}
	r := g.Realizer()
	stream := rng.New(75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Sum(stream) < 0 {
			b.Fatal("impossible")
		}
	}
}
