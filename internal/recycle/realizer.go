package recycle

import "liquid/internal/rng"

// Realizer is the batched realization kernel for one Graph: it compiles the
// per-vertex sampling decision (fresh, copy, or mixed) into a flat class
// array once and owns the realization scratch, so a replication loop pays a
// single branch-predictable pass with zero allocation per sample.
//
// Draw-protocol contract: a Realizer consumes exactly the same stream draws
// as Graph.Realize — Bernoulli's degenerate-probability shortcuts (p <= 0,
// p >= 1 consume nothing) are reproduced by the class compilation — so for
// any stream state, Realizer and Realize produce identical realizations and
// leave the stream in the identical state. TestRealizerMatchesRealize pins
// this bit-for-bit; the lemma experiments rely on it so batching cannot
// shift their sampled tables.
//
// A Realizer is NOT safe for concurrent use: it owns scratch. Each worker
// takes its own via Graph.Realizer().
type Realizer struct {
	g *Graph
	// class[i] compiles vertex i's decision rule; see the realizeClass
	// constants.
	class []uint8
	// x is the realization scratch reused across samples.
	x []bool
	// xq is SumFast's 0/1 scratch: bytes instead of bools so the kernel can
	// accumulate and select values arithmetically, with no data-dependent
	// branches for the predictor to miss on.
	xq []uint8

	// Quantized tables for SumFast: probabilities as 32.32 fixed-point
	// thresholds in [0, 2^32] (compare a uniform 32-bit word against them)
	// and copy bounds widened for the multiply-shift index reduction.
	p64  []uint64
	z64  []uint64
	up64 []uint64

	// runs compiles the class array into maximal same-kind segments so
	// SumFast dispatches once per segment instead of once per vertex, and
	// the fresh/copy segment loops unpack two decisions per generator word
	// with no half-word toggle.
	runs []runSeg
	// sumConst is the fixed contribution of the degenerate (P <= 0 or
	// P >= 1) vertices; their xq entries are prefilled at construction and
	// never rewritten, so runConst segments cost nothing per sample.
	sumConst int
}

// runSeg is one maximal segment [start, end) of vertices sharing a SumFast
// loop kind.
type runSeg struct {
	kind       uint8
	start, end int32
}

const (
	runConst uint8 = iota // degenerate fresh: prefilled, no draws
	runFresh              // Bernoulli compare, one half-word each
	runCopy               // copy index, one half-word each
	runMixed              // z-gate plus shared fresh/copy half-word
)

// quantize32 maps a probability to its 32.32 fixed-point threshold: a
// uniform u ~ U[0, 2^32) satisfies u < quantize32(p) with probability p up
// to 2^-32, and the clamp endpoints are exact (p <= 0 never, p >= 1 always).
func quantize32(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 32
	}
	return uint64(p * (1 << 32))
}

const (
	// classFresh: the vertex always draws fresh (UpTo == 0 or Z >= 1), with
	// one Bernoulli(P) draw (zero draws when P is degenerate).
	classFresh uint8 = iota
	// classFreshOne: fresh with P >= 1 — true, no draw.
	classFreshOne
	// classFreshZero: fresh with P <= 0 — false, no draw.
	classFreshZero
	// classCopy: the vertex always copies (Z <= 0, UpTo > 0): one IntN draw.
	classCopy
	// classMixed: 0 < Z < 1 with UpTo > 0: a Bernoulli(Z) draw picks fresh
	// or copy.
	classMixed
)

// Realizer compiles g into a reusable sampling kernel.
func (g *Graph) Realizer() *Realizer {
	n := g.N()
	r := &Realizer{
		g:     g,
		class: make([]uint8, n),
		x:     make([]bool, n),
		xq:    make([]uint8, n),
		p64:   make([]uint64, n),
		z64:   make([]uint64, n),
		up64:  make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		r.p64[i] = quantize32(g.P[i])
		r.z64[i] = quantize32(g.Z[i])
		r.up64[i] = uint64(g.UpTo[i])
		switch {
		case g.UpTo[i] == 0 || g.Z[i] >= 1:
			switch {
			case g.P[i] >= 1:
				r.class[i] = classFreshOne
			case g.P[i] <= 0:
				r.class[i] = classFreshZero
			default:
				r.class[i] = classFresh
			}
		case g.Z[i] <= 0:
			r.class[i] = classCopy
		default:
			r.class[i] = classMixed
		}
	}
	kindOf := func(c uint8) uint8 {
		switch c {
		case classFresh:
			return runFresh
		case classCopy:
			return runCopy
		case classMixed:
			return runMixed
		default: // classFreshOne, classFreshZero
			return runConst
		}
	}
	for i := 0; i < n; {
		k := kindOf(r.class[i])
		j := i + 1
		for j < n && kindOf(r.class[j]) == k {
			j++
		}
		r.runs = append(r.runs, runSeg{kind: k, start: int32(i), end: int32(j)})
		i = j
	}
	for i, c := range r.class {
		if c == classFreshOne {
			r.xq[i] = 1
			r.sumConst++
		}
	}
	return r
}

// realize fills r.x with one realization, drawing exactly as Graph.Realize
// would.
//
//lint:hotpath
func (r *Realizer) realize(s *rng.Stream) []bool {
	g, x := r.g, r.x
	p, z, upTo := g.P, g.Z, g.UpTo
	for i, c := range r.class {
		switch c {
		case classFresh:
			x[i] = s.Float64() < p[i]
		case classFreshOne:
			x[i] = true
		case classFreshZero:
			x[i] = false
		case classCopy:
			x[i] = x[s.IntN(upTo[i])]
		default: // classMixed
			if s.Float64() < z[i] {
				// The fresh branch re-applies Bernoulli's degenerate
				// shortcuts: P outside (0, 1) consumes no draw.
				x[i] = p[i] > 0 && (p[i] >= 1 || s.Float64() < p[i])
			} else {
				x[i] = x[s.IntN(upTo[i])]
			}
		}
	}
	return x
}

// Sum samples one realization and returns X_n, allocation-free.
//
//lint:hotpath
func (r *Realizer) Sum(s *rng.Stream) int {
	sum := 0
	for _, v := range r.realize(s) {
		if v {
			sum++
		}
	}
	return sum
}

// SumFast samples one realization and returns X_n using the quantized
// kernel: decisions consume uniform 32-bit halves of raw generator words,
// compared against the 32.32 fixed-point tables compiled at construction.
// Copy indices use the multiply-shift reduction (u * upTo) >> 32. The
// realized values flow through arithmetic, not branches: with u < 2^32 and
// threshold t <= 2^32, the borrow bit (u - t) >> 63 IS the indicator
// [u < t], so the predictor never sees a coin flip.
//
// The draw protocol is per compiled run: fresh and copy segments unpack two
// decisions per word (low half first) with an odd-length tail taking the
// low half of its own word; mixed vertices consume a z half-word and then a
// value half-word (word-paired within their segment); degenerate vertices
// consume nothing. The word spent on an odd tail or an odd mixed pairing is
// not carried into the next segment, so the protocol is a function of the
// compiled class layout alone and fully deterministic for a fixed stream
// state.
//
// Unlike Sum, SumFast is NOT draw-compatible with Graph.Realize: it has its
// own protocol, and each variate carries a quantization error of at most
// 2^-32 in probability — invisible at Monte Carlo sample counts but enough
// that switching a replication loop between Sum and SumFast reseeds its
// sampled table. Callers choose one protocol and keep it.
//
//lint:hotpath
func (r *Realizer) SumFast(s *rng.Stream) int {
	src := s.Source()
	x, p64, up64 := r.xq, r.p64, r.up64
	sum := uint64(r.sumConst)
	for _, seg := range r.runs {
		i, end := int(seg.start), int(seg.end)
		switch seg.kind {
		case runConst:
			// Prefilled at construction and counted in sumConst.
		case runFresh:
			for ; i+2 <= end; i += 2 {
				w := src.Uint64()
				v0 := ((w & 0xffffffff) - p64[i]) >> 63
				v1 := ((w >> 32) - p64[i+1]) >> 63
				x[i] = uint8(v0)
				x[i+1] = uint8(v1)
				sum += v0 + v1
			}
			if i < end {
				v := ((src.Uint64() & 0xffffffff) - p64[i]) >> 63
				x[i] = uint8(v)
				sum += v
			}
		case runCopy:
			for ; i+2 <= end; i += 2 {
				w := src.Uint64()
				// The second load may hit the slot the first store just
				// wrote (vertex i+1 may copy vertex i), so the order here
				// is load-store, load-store.
				v0 := uint64(x[((w&0xffffffff)*up64[i])>>32])
				x[i] = uint8(v0)
				v1 := uint64(x[((w>>32)*up64[i+1])>>32])
				x[i+1] = uint8(v1)
				sum += v0 + v1
			}
			if i < end {
				v := uint64(x[((src.Uint64()&0xffffffff)*up64[i])>>32])
				x[i] = uint8(v)
				sum += v
			}
		default: // runMixed
			z64 := r.z64
			var w uint64
			half := false
			for ; i < end; i++ {
				if half {
					w >>= 32
					half = false
				} else {
					w = src.Uint64()
					half = true
				}
				zb := ((w & 0xffffffff) - z64[i]) >> 63
				if half {
					w >>= 32
					half = false
				} else {
					w = src.Uint64()
					half = true
				}
				u := w & 0xffffffff
				fv := (u - p64[i]) >> 63
				cv := uint64(x[(u*up64[i])>>32])
				v := zb*fv + (1-zb)*cv
				x[i] = uint8(v)
				sum += v
			}
		}
	}
	return int(sum)
}

// PrefixSumsInto samples one realization and writes the prefix sums
// X_1..X_n into dst (which must have length >= n), returning dst[:n]. The
// values match Graph.RealizePrefixSums draw for draw.
func (r *Realizer) PrefixSumsInto(dst []int, s *rng.Stream) []int {
	x := r.realize(s)
	dst = dst[:len(x)]
	sum := 0
	for i, v := range x {
		if v {
			sum++
		}
		dst[i] = sum
	}
	return dst
}
