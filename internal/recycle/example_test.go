package recycle_test

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/recycle"
)

// Example maps a complete-graph delegation setting to its recycle sampling
// graph (the Lemma 7 correspondence) and reads off the quantities used by
// Lemma 2.
func Example() {
	p := []float64{0.9, 0.85, 0.6, 0.5, 0.4, 0.3}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		panic(err)
	}
	g, err := recycle.FromCompleteDelegation(in, 0.1, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("fresh prefix j:", g.J)
	fmt.Println("partition complexity c:", g.PartitionComplexity())
	fmt.Printf("mu(X_n) = %.3f\n", g.MeanSum())
	// Output:
	// fresh prefix j: 2
	// partition complexity c: 4
	// mu(X_n) = 5.250
}
