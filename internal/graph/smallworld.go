package graph

import (
	"fmt"

	"liquid/internal/rng"
)

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbours (k even), with each edge's
// far endpoint rewired to a uniform random vertex with probability beta.
// beta = 0 is the ring lattice, beta = 1 approaches a random graph while
// keeping minimum degree >= k/2. A standard model for social networks with
// high clustering and short paths.
func WattsStrogatz(n, k int, beta float64, s *rng.Stream) (*Graph, error) {
	switch {
	case n < 3 || k < 2 || k%2 != 0:
		return nil, fmt.Errorf("%w: WattsStrogatz(n=%d, k=%d) needs n >= 3 and even k >= 2", ErrInvalidGraph, n, k)
	case k >= n:
		return nil, fmt.Errorf("%w: WattsStrogatz needs k < n, got k=%d n=%d", ErrInvalidGraph, k, n)
	case beta < 0 || beta > 1:
		return nil, fmt.Errorf("%w: WattsStrogatz beta=%v not in [0,1]", ErrInvalidGraph, beta)
	}
	g := NewGraph(n)
	// Ring lattice: vertex v connects to v+1 .. v+k/2 (mod n).
	for v := 0; v < n; v++ {
		for off := 1; off <= k/2; off++ {
			u := (v + off) % n
			if !s.Bernoulli(beta) {
				if !g.HasEdge(v, u) {
					if err := g.AddEdge(v, u); err != nil {
						return nil, err
					}
				}
				continue
			}
			// Rewire: keep v, pick a fresh far endpoint. Skip (rather than
			// retry forever) if v is saturated.
			rewired := false
			for attempt := 0; attempt < 4*n; attempt++ {
				w := s.IntN(n)
				if w == v || g.HasEdge(v, w) {
					continue
				}
				if err := g.AddEdge(v, w); err != nil {
					return nil, err
				}
				rewired = true
				break
			}
			if !rewired && !g.HasEdge(v, u) {
				if err := g.AddEdge(v, u); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// ClusteringCoefficient returns the global clustering coefficient of t:
// 3 x triangles / open triads. Returns 0 for graphs without any wedge.
func ClusteringCoefficient(t Topology) float64 {
	n := t.N()
	var triangles, wedges int64
	for v := 0; v < n; v++ {
		nbrs := t.Neighbors(v)
		d := int64(len(nbrs))
		wedges += d * (d - 1) / 2
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if t.HasEdge(nbrs[i], nbrs[j]) {
					triangles++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	// Each triangle is counted once per corner (3 times total), and the
	// definition is 3*T / wedges with T the triangle count; since we count
	// per-corner the factor is already folded in.
	return float64(triangles) / float64(wedges)
}
