package graph

import (
	"testing"

	"liquid/internal/rng"
)

func TestDegreesStar(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	st := Degrees(g)
	if st.Min != 1 || st.Max != 4 {
		t.Fatalf("stats %+v", st)
	}
	want := 8.0 / 5
	if st.Mean != want {
		t.Fatalf("mean %v, want %v", st.Mean, want)
	}
}

func TestDegreesEmpty(t *testing.T) {
	st := Degrees(NewGraph(0))
	if st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	h := DegreeHistogram(g)
	// degree 1: 3 leaves; degree 3: center.
	if len(h) != 4 || h[1] != 3 || h[3] != 1 || h[0] != 0 || h[2] != 0 {
		t.Fatalf("histogram %v", h)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(6)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 4, 5)
	comp, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("vertices 0-2 should share a component")
	}
	if comp[3] == comp[0] || comp[3] == comp[4] {
		t.Fatal("vertex 3 should be isolated")
	}
	if comp[4] != comp[5] {
		t.Fatal("vertices 4,5 should share a component")
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(NewGraph(0)) {
		t.Fatal("empty graph counts as connected")
	}
	if !IsConnected(NewComplete(10)) {
		t.Fatal("complete graph connected")
	}
	g := NewGraph(2)
	if IsConnected(g) {
		t.Fatal("two isolated vertices are disconnected")
	}
}

func TestDegreeBoundPredicates(t *testing.T) {
	s := rng.New(11)
	g, err := RandomRegular(20, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if !MaxDegreeAtMost(g, 4) || MaxDegreeAtMost(g, 3) {
		t.Fatal("MaxDegreeAtMost wrong")
	}
	if !MinDegreeAtLeast(g, 4) || MinDegreeAtLeast(g, 5) {
		t.Fatal("MinDegreeAtLeast wrong")
	}
}
