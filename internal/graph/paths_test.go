package graph

import (
	"math"
	"testing"

	"liquid/internal/rng"
)

func TestBFSDistancesPath(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	dist := BFSDistances(g, 0)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSDistancesDisconnected(t *testing.T) {
	g := NewGraph(4)
	mustAdd(t, g, 0, 1)
	dist := BFSDistances(g, 0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable vertices should be -1: %v", dist)
	}
	// Out-of-range source: everything unreachable.
	for _, d := range BFSDistances(g, -1) {
		if d != -1 {
			t.Fatal("bad source should reach nothing")
		}
	}
}

func TestDiameterKnown(t *testing.T) {
	tests := []struct {
		name string
		make func() (*Graph, error)
		want int
	}{
		{"path5", func() (*Graph, error) { return Path(5) }, 4},
		{"cycle6", func() (*Graph, error) { return Cycle(6) }, 3},
		{"star7", func() (*Graph, error) { return Star(7) }, 2},
		{"K5", func() (*Graph, error) { return CompleteExplicit(5) }, 1},
	}
	for _, tt := range tests {
		g, err := tt.make()
		if err != nil {
			t.Fatal(err)
		}
		if got := Diameter(g); got != tt.want {
			t.Errorf("%s diameter = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestEccentricityCenterVsLeaf(t *testing.T) {
	g, err := Star(9)
	if err != nil {
		t.Fatal(err)
	}
	if Eccentricity(g, 0) != 1 {
		t.Fatal("center eccentricity should be 1")
	}
	if Eccentricity(g, 3) != 2 {
		t.Fatal("leaf eccentricity should be 2")
	}
}

func TestAveragePathLengthCompleteIsOne(t *testing.T) {
	g, err := CompleteExplicit(20)
	if err != nil {
		t.Fatal(err)
	}
	got := EstimateAveragePathLength(g, 10, rng.New(1))
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("complete graph APL = %v, want 1", got)
	}
}

func TestAveragePathLengthSmallWorldShortcut(t *testing.T) {
	// Rewiring shortens paths: the small-world effect.
	lattice, err := WattsStrogatz(300, 6, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := WattsStrogatz(300, 6, 0.2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	lAPL := EstimateAveragePathLength(lattice, 20, rng.New(3))
	rAPL := EstimateAveragePathLength(rewired, 20, rng.New(3))
	if rAPL >= lAPL {
		t.Fatalf("rewiring should shorten paths: %v -> %v", lAPL, rAPL)
	}
}

func TestAveragePathLengthEdgeCases(t *testing.T) {
	if EstimateAveragePathLength(NewGraph(1), 4, rng.New(4)) != 0 {
		t.Fatal("single vertex APL should be 0")
	}
	if EstimateAveragePathLength(NewGraph(5), 4, rng.New(5)) != 0 {
		t.Fatal("edgeless graph APL should be 0")
	}
}
