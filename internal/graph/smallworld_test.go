package graph

import (
	"errors"
	"testing"

	"liquid/internal/rng"
)

func TestWattsStrogatzRingLattice(t *testing.T) {
	// beta = 0: exact ring lattice, k-regular.
	g, err := WattsStrogatz(20, 4, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !IsRegular(g, 4) {
		t.Fatalf("ring lattice should be 4-regular: %+v", Degrees(g))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(0, 19) || !g.HasEdge(0, 18) {
		t.Fatal("ring lattice edges missing")
	}
	if !IsConnected(g) {
		t.Fatal("ring lattice should be connected")
	}
}

func TestWattsStrogatzRewiring(t *testing.T) {
	g0, err := WattsStrogatz(200, 6, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := WattsStrogatz(200, 6, 0.5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Edge count is preserved by rewiring (up to skipped saturations).
	if g1.M() < g0.M()-10 || g1.M() > g0.M() {
		t.Fatalf("edge counts: lattice %d, rewired %d", g0.M(), g1.M())
	}
	// Rewiring destroys clustering.
	c0 := ClusteringCoefficient(g0)
	c1 := ClusteringCoefficient(g1)
	if c1 >= c0 {
		t.Fatalf("rewiring should reduce clustering: %v -> %v", c0, c1)
	}
	if c0 < 0.4 {
		t.Fatalf("ring lattice k=6 clustering should be ~0.6, got %v", c0)
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	s := rng.New(3)
	tests := []struct {
		n, k int
		beta float64
	}{
		{2, 2, 0.1},   // n too small
		{10, 3, 0.1},  // odd k
		{10, 0, 0.1},  // k too small
		{10, 10, 0.1}, // k >= n
		{10, 4, -0.1}, // bad beta
		{10, 4, 1.5},  // bad beta
	}
	for _, tt := range tests {
		if _, err := WattsStrogatz(tt.n, tt.k, tt.beta, s); !errors.Is(err, ErrInvalidGraph) {
			t.Errorf("WattsStrogatz(%d,%d,%v): err = %v", tt.n, tt.k, tt.beta, err)
		}
	}
}

func TestClusteringCoefficientKnown(t *testing.T) {
	// Triangle: clustering 1.
	tri, err := Cycle(3)
	if err != nil {
		t.Fatal(err)
	}
	if c := ClusteringCoefficient(tri); c != 1 {
		t.Fatalf("triangle clustering = %v", c)
	}
	// Star: no triangles.
	star, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if c := ClusteringCoefficient(star); c != 0 {
		t.Fatalf("star clustering = %v", c)
	}
	// Complete graph K5: clustering 1.
	k5, err := CompleteExplicit(5)
	if err != nil {
		t.Fatal(err)
	}
	if c := ClusteringCoefficient(k5); c != 1 {
		t.Fatalf("K5 clustering = %v", c)
	}
	// Empty graph: defined as 0.
	if c := ClusteringCoefficient(NewGraph(4)); c != 0 {
		t.Fatalf("empty clustering = %v", c)
	}
}
