package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Fatal("edges should be undirected")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := NewGraph(3)
	tests := []struct {
		u, v int
	}{
		{0, 0},  // self loop
		{-1, 1}, // out of range
		{0, 3},  // out of range
	}
	for _, tt := range tests {
		if err := g.AddEdge(tt.u, tt.v); !errors.Is(err, ErrInvalidGraph) {
			t.Errorf("AddEdge(%d,%d): err = %v, want ErrInvalidGraph", tt.u, tt.v, err)
		}
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); !errors.Is(err, ErrInvalidGraph) {
		t.Errorf("duplicate edge: err = %v", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(5)
	for _, v := range []int{4, 1, 3} {
		if err := g.AddEdge(2, v); err != nil {
			t.Fatal(err)
		}
	}
	nbrs := g.Neighbors(2)
	want := []int{1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nbrs, want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := NewGraph(4)
	mustAdd(t, g, 3, 0)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 0, 1)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func mustAdd(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestNewGraphFromEdges(t *testing.T) {
	g, err := NewGraphFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	if _, err := NewGraphFromEdges(3, [][2]int{{0, 1}, {0, 1}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestCompleteTopology(t *testing.T) {
	c := NewComplete(5)
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	for v := 0; v < 5; v++ {
		if c.Degree(v) != 4 {
			t.Fatalf("Degree(%d) = %d", v, c.Degree(v))
		}
		nbrs := c.Neighbors(v)
		if len(nbrs) != 4 {
			t.Fatalf("Neighbors(%d) = %v", v, nbrs)
		}
		for _, u := range nbrs {
			if u == v {
				t.Fatal("self in neighbors")
			}
		}
	}
	if c.HasEdge(2, 2) {
		t.Fatal("self edge in complete graph")
	}
	if !c.HasEdge(0, 4) {
		t.Fatal("missing edge in complete graph")
	}
	if c.HasEdge(0, 5) || c.HasEdge(-1, 2) {
		t.Fatal("out-of-range edge reported")
	}
}

func TestCompleteEmptyDegree(t *testing.T) {
	c := NewComplete(0)
	if c.N() != 0 {
		t.Fatal("empty complete graph")
	}
}

func TestCompleteMatchesExplicit(t *testing.T) {
	imp := NewComplete(6)
	exp, err := CompleteExplicit(6)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		if imp.Degree(u) != exp.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for v := 0; v < 6; v++ {
			if imp.HasEdge(u, v) != exp.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
}

func TestQuickHandshakeLemma(t *testing.T) {
	// Sum of degrees equals twice the number of edges for arbitrary edge
	// sets.
	f := func(nRaw uint8, pairs [][2]uint8) bool {
		n := int(nRaw%20) + 2
		g := NewGraph(n)
		for _, p := range pairs {
			u, v := int(p[0])%n, int(p[1])%n
			_ = g.AddEdge(u, v) // errors (dups/self-loops) are fine to skip
		}
		total := 0
		for v := 0; v < n; v++ {
			total += g.Degree(v)
		}
		return total == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
