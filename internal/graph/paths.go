package graph

import (
	"liquid/internal/rng"
)

// BFSDistances returns the hop distance from src to every vertex
// (-1 for unreachable vertices).
func BFSDistances(t Topology, src int) []int {
	n := t.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range t.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Eccentricity returns the greatest distance from src to any reachable
// vertex.
func Eccentricity(t Topology, src int) int {
	ecc := 0
	for _, d := range BFSDistances(t, src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter of t (the maximum eccentricity over
// all vertices, ignoring unreachable pairs). Cost is O(n * (n + m)); use
// EstimateAveragePathLength for large graphs.
func Diameter(t Topology) int {
	d := 0
	for v := 0; v < t.N(); v++ {
		if e := Eccentricity(t, v); e > d {
			d = e
		}
	}
	return d
}

// EstimateAveragePathLength estimates the mean hop distance between
// reachable vertex pairs by running BFS from `samples` random sources.
// Returns 0 for graphs with fewer than 2 vertices.
func EstimateAveragePathLength(t Topology, samples int, s *rng.Stream) float64 {
	n := t.N()
	if n < 2 {
		return 0
	}
	if samples <= 0 {
		samples = 16
	}
	if samples > n {
		samples = n
	}
	var (
		sum   float64
		pairs int
	)
	for _, src := range s.SampleWithoutReplacement(n, samples) {
		for u, d := range BFSDistances(t, src) {
			if u != src && d > 0 {
				sum += float64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}
