package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := Star(7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v after round trip", e)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n\n3 2\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed %d/%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", ""},
		{"garbage", "hello world\n"},
		{"edge count mismatch", "3 5\n0 1\n"},
		{"out of range", "2 1\n0 5\n"},
		{"self loop", "3 1\n1 1\n"},
		{"negative header", "-3 0\n"},
	}
	for _, tt := range tests {
		if _, err := ReadEdgeList(strings.NewReader(tt.in)); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}
