package graph

import (
	"fmt"
	"slices"

	"liquid/internal/rng"
)

// Star returns the star graph: vertex 0 is the center, vertices 1..n-1 are
// leaves. This is the Figure 1 topology. It returns an error for n < 1.
func Star(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: star needs n >= 1, got %d", ErrInvalidGraph, n)
	}
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(0, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Cycle returns the n-cycle. It returns an error for n < 3.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: cycle needs n >= 3, got %d", ErrInvalidGraph, n)
	}
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		if err := g.AddEdge(v, (v+1)%n); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Path returns the path graph on n vertices. It returns an error for n < 1.
func Path(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: path needs n >= 1, got %d", ErrInvalidGraph, n)
	}
	g := NewGraph(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns the rows x cols king-free 4-neighbor grid graph.
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: grid needs positive dimensions", ErrInvalidGraph)
	}
	g := NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// ErdosRenyi returns a G(n, p) random graph.
func ErdosRenyi(n int, p float64, s *rng.Stream) (*Graph, error) {
	if n < 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: ErdosRenyi(n=%d, p=%v)", ErrInvalidGraph, n, p)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if s.Bernoulli(p) {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomRegular returns a random d-regular simple graph on n vertices using
// the pairing (configuration) model with edge-swap repair: d copies of each
// vertex are paired uniformly, then self-loops and multi-edges are removed
// by swapping their endpoints with uniformly chosen good edges. This is the
// standard practical generator for d << n. n*d must be even and d < n.
func RandomRegular(n, d int, s *rng.Stream) (*Graph, error) {
	switch {
	case n < 0 || d < 0:
		return nil, fmt.Errorf("%w: RandomRegular(n=%d, d=%d)", ErrInvalidGraph, n, d)
	case d >= n && n > 0:
		return nil, fmt.Errorf("%w: degree %d requires at least %d vertices", ErrInvalidGraph, d, d+1)
	case n*d%2 != 0:
		return nil, fmt.Errorf("%w: n*d = %d must be even", ErrInvalidGraph, n*d)
	}
	if d == 0 || n == 0 {
		return NewGraph(n), nil
	}

	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := pairingWithRepair(n, d, s); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: pairing model failed to produce a simple %d-regular graph on %d vertices", ErrInvalidGraph, d, n)
}

// pairingWithRepair runs one configuration-model draw followed by endpoint
// swaps that eliminate self-loops and duplicate edges.
func pairingWithRepair(n, d int, s *rng.Stream) (*Graph, bool) {
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	s.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type edge struct{ u, v int }
	canon := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}

	m := len(stubs) / 2
	edges := make([][2]int, m)
	count := make(map[edge]int, m)
	for i := 0; i < m; i++ {
		u, v := stubs[2*i], stubs[2*i+1]
		edges[i] = [2]int{u, v}
		count[canon(u, v)]++
	}
	isBad := func(u, v int) bool {
		return u == v || count[canon(u, v)] > 1
	}
	// badAfter reports whether adding edge {a,b} would create a loop or a
	// duplicate, given current multiplicities.
	badAfter := func(a, b int) bool {
		return a == b || count[canon(a, b)] >= 1
	}
	var bad []int
	for i, e := range edges {
		if isBad(e[0], e[1]) {
			bad = append(bad, i)
		}
	}

	// Swap endpoints of bad edges with random edges until clean. Each
	// successful swap strictly reduces (loops + excess multiplicity) in
	// expectation; cap the work to avoid pathological spins.
	budget := 200 * (len(bad) + 1) * (d + 1)
	for len(bad) > 0 && budget > 0 {
		budget--
		bi := bad[len(bad)-1]
		u, v := edges[bi][0], edges[bi][1]
		if !isBad(u, v) { // repaired as a side effect of an earlier swap
			bad = bad[:len(bad)-1]
			continue
		}
		oi := s.IntN(m)
		if oi == bi {
			continue
		}
		x, y := edges[oi][0], edges[oi][1]
		// Propose rewiring {u,v},{x,y} -> {u,x},{v,y}.
		if u == x || v == y || badAfter(u, x) || badAfter(v, y) {
			continue
		}
		count[canon(u, v)]--
		count[canon(x, y)]--
		count[canon(u, x)]++
		count[canon(v, y)]++
		edges[bi] = [2]int{u, x}
		edges[oi] = [2]int{v, y}
		if !isBad(u, x) {
			bad = bad[:len(bad)-1]
		}
		if isBad(v, y) {
			bad = append(bad, oi)
		}
	}
	if len(bad) > 0 {
		return nil, false
	}

	g := NewGraph(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, false
		}
	}
	return g, true
}

// BarabasiAlbert returns a preferential-attachment graph: it starts from a
// star on m+1 vertices and attaches each later vertex to m distinct existing
// vertices chosen proportionally to their degree. This is the real-world
// network model the paper's discussion proposes auditing (Section 6).
func BarabasiAlbert(n, m int, s *rng.Stream) (*Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("%w: BarabasiAlbert(n=%d, m=%d) requires n >= m+1, m >= 1", ErrInvalidGraph, n, m)
	}
	g := NewGraph(n)
	// Repeated-endpoints list: vertex v appears deg(v) times, which makes
	// degree-proportional sampling O(1).
	targets := make([]int, 0, 2*m*n)
	for v := 1; v <= m; v++ {
		if err := g.AddEdge(0, v); err != nil {
			return nil, err
		}
		targets = append(targets, 0, v)
	}
	// chosen is a slice, not a set: map iteration order is randomized per
	// run, and the order edges enter targets feeds back into the sampling,
	// so a map here makes the whole graph non-reproducible for a fixed seed.
	chosen := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			u := targets[s.IntN(len(targets))]
			if u == v || slices.Contains(chosen, u) {
				continue
			}
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			if err := g.AddEdge(v, u); err != nil {
				return nil, err
			}
			targets = append(targets, v, u)
		}
	}
	return g, nil
}

// Community returns a planted-partition graph: n vertices split evenly into
// k communities, with intra-community edge probability pIn and
// inter-community probability pOut. A stand-in for clustered social
// networks.
func Community(n, k int, pIn, pOut float64, s *rng.Stream) (*Graph, error) {
	if n < 0 || k < 1 || pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("%w: Community(n=%d, k=%d, pIn=%v, pOut=%v)", ErrInvalidGraph, n, k, pIn, pOut)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u%k == v%k {
				p = pIn
			}
			if s.Bernoulli(p) {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomBoundedDegree returns a random graph in which every vertex has
// degree at most maxDeg: it attempts `attempts` uniformly random edges and
// keeps those that do not violate the bound or simplicity. Used for the
// paper's Delta <= k experiments (Theorem 4).
func RandomBoundedDegree(n, maxDeg, attempts int, s *rng.Stream) (*Graph, error) {
	if n < 0 || maxDeg < 0 || attempts < 0 {
		return nil, fmt.Errorf("%w: RandomBoundedDegree(n=%d, maxDeg=%d, attempts=%d)", ErrInvalidGraph, n, maxDeg, attempts)
	}
	g := NewGraph(n)
	if n < 2 || maxDeg == 0 {
		return g, nil
	}
	for i := 0; i < attempts; i++ {
		u := s.IntN(n)
		v := s.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// CompleteExplicit materializes K_n as an explicit Graph. Intended for small
// n in tests; use NewComplete for large instances.
func CompleteExplicit(n int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative n", ErrInvalidGraph)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
