// Package graph provides the voting-graph substrate: an undirected graph
// type, the generators behind the paper's graph restrictions (complete,
// random d-regular, bounded degree, bounded minimum degree) plus the
// real-world stand-ins named in the paper's discussion (Barabási–Albert,
// community graphs), and structural metrics.
//
// Two representations implement Topology: Graph stores explicit adjacency
// lists; Complete is an O(1)-memory implicit complete graph so that K_n
// experiments scale to large n without materializing n^2 edges.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvalidGraph reports malformed construction input.
var ErrInvalidGraph = errors.New("graph: invalid graph")

// Topology is a read-only undirected graph on vertices [0, N).
type Topology interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the number of neighbors of vertex v.
	Degree(v int) int
	// Neighbors returns the neighbors of v in ascending order. Callers must
	// not modify the returned slice; implicit topologies may allocate.
	Neighbors(v int) []int
	// HasEdge reports whether {u, v} is an edge. Self-loops never exist.
	HasEdge(u, v int) bool
}

// Graph is an explicit undirected simple graph with sorted adjacency lists.
type Graph struct {
	adj [][]int
	m   int // number of edges
}

var _ Topology = (*Graph)(nil)

// NewGraph returns an empty graph on n vertices. It panics if n < 0.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int, n)}
}

// NewGraphFromEdges builds a graph on n vertices from an edge list.
// Duplicate edges are rejected; self-loops and out-of-range endpoints are
// rejected.
func NewGraphFromEdges(n int, edges [][2]int) (*Graph, error) {
	g := NewGraph(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N implements Topology.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}, keeping adjacency sorted.
// It returns an error for self-loops, duplicate edges, or endpoints outside
// [0, N).
func (g *Graph) AddEdge(u, v int) error {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("%w: edge (%d,%d) out of range [0,%d)", ErrInvalidGraph, u, v, n)
	}
	if u == v {
		return fmt.Errorf("%w: self-loop at %d", ErrInvalidGraph, u)
	}
	if g.hasEdgeSorted(u, v) {
		return fmt.Errorf("%w: duplicate edge (%d,%d)", ErrInvalidGraph, u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	return nil
}

// Degree implements Topology.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors implements Topology. The returned slice aliases internal state
// and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge implements Topology.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) || u == v {
		return false
	}
	return g.hasEdgeSorted(u, v)
}

func (g *Graph) hasEdgeSorted(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

func insertSorted(a []int, v int) []int {
	i := sort.SearchInts(a, v)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	return a
}

// Edges returns all edges as (u, v) pairs with u < v, in lexicographic
// order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Complete is the implicit complete graph K_n.
type Complete struct {
	n int
}

var _ Topology = Complete{}

// NewComplete returns K_n. It panics if n < 0.
func NewComplete(n int) Complete {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return Complete{n: n}
}

// N implements Topology.
func (c Complete) N() int { return c.n }

// Degree implements Topology.
func (c Complete) Degree(v int) int {
	if c.n == 0 {
		return 0
	}
	return c.n - 1
}

// Neighbors implements Topology. It allocates a fresh slice of n-1 vertices;
// prefer Degree/HasEdge in hot paths.
func (c Complete) Neighbors(v int) []int {
	out := make([]int, 0, c.n-1)
	for u := 0; u < c.n; u++ {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// HasEdge implements Topology.
func (c Complete) HasEdge(u, v int) bool {
	return u != v && u >= 0 && v >= 0 && u < c.n && v < c.n
}
