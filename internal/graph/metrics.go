package graph

// DegreeStats summarizes the degree sequence of a topology.
type DegreeStats struct {
	Min  int
	Max  int
	Mean float64
}

// Degrees computes the degree statistics of t. For an empty graph all
// fields are zero.
func Degrees(t Topology) DegreeStats {
	n := t.N()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: t.Degree(0), Max: t.Degree(0)}
	total := 0
	for v := 0; v < n; v++ {
		d := t.Degree(v)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(n)
	return st
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func DegreeHistogram(t Topology) []int {
	n := t.N()
	maxD := 0
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = t.Degree(v)
		if degs[v] > maxD {
			maxD = degs[v]
		}
	}
	counts := make([]int, maxD+1)
	for _, d := range degs {
		counts[d]++
	}
	return counts
}

// ConnectedComponents returns, for each vertex, the id of its component
// (ids are 0-based in order of discovery) and the number of components.
func ConnectedComponents(t Topology) (comp []int, count int) {
	n := t.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range t.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether t is connected. The empty graph counts as
// connected.
func IsConnected(t Topology) bool {
	if t.N() == 0 {
		return true
	}
	_, c := ConnectedComponents(t)
	return c == 1
}

// IsRegular reports whether every vertex has degree d.
func IsRegular(t Topology, d int) bool {
	for v := 0; v < t.N(); v++ {
		if t.Degree(v) != d {
			return false
		}
	}
	return true
}

// MaxDegreeAtMost reports whether the maximum degree is at most k (the
// paper's restriction Delta <= k).
func MaxDegreeAtMost(t Topology, k int) bool {
	for v := 0; v < t.N(); v++ {
		if t.Degree(v) > k {
			return false
		}
	}
	return true
}

// MinDegreeAtLeast reports whether the minimum degree is at least k (the
// paper's restriction delta >= k).
func MinDegreeAtLeast(t Topology, k int) bool {
	for v := 0; v < t.N(); v++ {
		if t.Degree(v) < k {
			return false
		}
	}
	return true
}
