package graph

import (
	"math"

	"liquid/internal/rng"
)

// SpectralGapEstimate estimates the spectral gap 1 - |lambda_2| of the
// self-loop-augmented random walk on t: the walk matrix is
// P = D~^{-1}(A + I) with D~ = deg + 1, whose symmetrization
// S = D~^{-1/2}(A + I)D~^{-1/2} has top eigenvalue 1 with eigenvector
// proportional to sqrt(deg + 1). The gap controls mixing (and push-sum
// convergence): expanders have constant gap, rings have gap Theta(1/n^2).
//
// The estimate runs power iteration on S deflated against the known top
// eigenvector. Returns 0 for graphs with fewer than 2 vertices.
func SpectralGapEstimate(t Topology, iterations int, s *rng.Stream) float64 {
	n := t.N()
	if n < 2 {
		return 0
	}
	if iterations <= 0 {
		iterations = 200
	}

	// Normalized top eigenvector phi_i = sqrt(deg_i + 1).
	phi := make([]float64, n)
	sqrtD := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		sqrtD[v] = math.Sqrt(float64(t.Degree(v)) + 1)
		phi[v] = sqrtD[v]
		norm += phi[v] * phi[v]
	}
	norm = math.Sqrt(norm)
	for v := range phi {
		phi[v] /= norm
	}

	x := make([]float64, n)
	for v := range x {
		x[v] = s.NormFloat64()
	}
	deflate := func(vec []float64) {
		var dot float64
		for v := range vec {
			dot += vec[v] * phi[v]
		}
		for v := range vec {
			vec[v] -= dot * phi[v]
		}
	}
	normalize := func(vec []float64) float64 {
		var nn float64
		for _, v := range vec {
			nn += v * v
		}
		nn = math.Sqrt(nn)
		if nn == 0 {
			return 0
		}
		for i := range vec {
			vec[i] /= nn
		}
		return nn
	}
	deflate(x)
	if normalize(x) == 0 {
		return 1 // no second direction survives deflation
	}

	// (Sx)_u = x_u/(deg_u+1) + sum_{v ~ u} x_v / (sqrtD_u * sqrtD_v).
	y := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iterations; it++ {
		for u := 0; u < n; u++ {
			acc := x[u] / (sqrtD[u] * sqrtD[u])
			for _, v := range t.Neighbors(u) {
				acc += x[v] / (sqrtD[u] * sqrtD[v])
			}
			y[u] = acc
		}
		copy(x, y)
		deflate(x)
		lambda = normalize(x)
		if lambda == 0 {
			return 1
		}
	}
	gap := 1 - lambda
	if gap < 0 {
		gap = 0
	}
	if gap > 1 {
		gap = 1
	}
	return gap
}
