package graph

import (
	"math"
	"testing"

	"liquid/internal/rng"
)

func TestSpectralGapCompleteIsLarge(t *testing.T) {
	g, err := CompleteExplicit(30)
	if err != nil {
		t.Fatal(err)
	}
	gap := SpectralGapEstimate(g, 300, rng.New(1))
	// For K_n with self loops, S = J/n: lambda_2 = 0 exactly, gap = 1.
	if gap < 0.95 {
		t.Fatalf("complete graph gap = %v, want ~1", gap)
	}
}

func TestSpectralGapRingIsTiny(t *testing.T) {
	g, err := Cycle(100)
	if err != nil {
		t.Fatal(err)
	}
	gap := SpectralGapEstimate(g, 500, rng.New(2))
	// Ring gap is Theta(1/n^2): tiny.
	if gap > 0.05 {
		t.Fatalf("cycle gap = %v, want tiny", gap)
	}
	if gap <= 0 {
		t.Fatalf("cycle gap = %v, want positive", gap)
	}
}

func TestSpectralGapExpanderBeatsRing(t *testing.T) {
	s := rng.New(3)
	ring, err := Cycle(200)
	if err != nil {
		t.Fatal(err)
	}
	expander, err := RandomRegular(200, 8, s)
	if err != nil {
		t.Fatal(err)
	}
	gRing := SpectralGapEstimate(ring, 400, rng.New(4))
	gExp := SpectralGapEstimate(expander, 400, rng.New(5))
	if gExp <= 5*gRing {
		t.Fatalf("expander gap %v should dwarf ring gap %v", gExp, gRing)
	}
}

func TestSpectralGapBounds(t *testing.T) {
	if SpectralGapEstimate(NewGraph(1), 10, rng.New(6)) != 0 {
		t.Fatal("single vertex gap should be 0")
	}
	// Disconnected graph: lambda_2 = 1 (a second stationary direction), so
	// the gap should be ~0.
	g := NewGraph(10)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 2, 3)
	gap := SpectralGapEstimate(g, 300, rng.New(7))
	if gap > 0.05 {
		t.Fatalf("disconnected gap = %v, want ~0", gap)
	}
}

func TestSpectralGapSmallWorldRewiringHelps(t *testing.T) {
	lattice, err := WattsStrogatz(200, 6, 0, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := WattsStrogatz(200, 6, 0.3, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	gL := SpectralGapEstimate(lattice, 400, rng.New(9))
	gR := SpectralGapEstimate(rewired, 400, rng.New(10))
	if gR <= gL {
		t.Fatalf("rewiring should open the gap: %v -> %v", gL, gR)
	}
	if math.IsNaN(gL) || math.IsNaN(gR) {
		t.Fatal("NaN gap")
	}
}
