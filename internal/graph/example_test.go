package graph_test

import (
	"fmt"

	"liquid/internal/graph"
	"liquid/internal/rng"
)

// Example builds the paper's graph classes and inspects the restrictions.
func Example() {
	s := rng.New(1)
	regular, err := graph.RandomRegular(100, 6, s)
	if err != nil {
		panic(err)
	}
	fmt.Println("6-regular:", graph.IsRegular(regular, 6))
	fmt.Println("Δ ≤ 6:", graph.MaxDegreeAtMost(regular, 6))
	fmt.Println("δ ≥ 6:", graph.MinDegreeAtLeast(regular, 6))
	kn := graph.NewComplete(1000000) // implicit: O(1) memory
	fmt.Println("K_n degree:", kn.Degree(0))
	// Output:
	// 6-regular: true
	// Δ ≤ 6: true
	// δ ≥ 6: true
	// K_n degree: 999999
}

// ExampleWattsStrogatz shows the small-world effect: rewiring collapses
// path lengths while retaining most clustering.
func ExampleWattsStrogatz() {
	lattice, err := graph.WattsStrogatz(300, 6, 0, rng.New(2))
	if err != nil {
		panic(err)
	}
	rewired, err := graph.WattsStrogatz(300, 6, 0.1, rng.New(2))
	if err != nil {
		panic(err)
	}
	l0 := graph.EstimateAveragePathLength(lattice, 30, rng.New(3))
	l1 := graph.EstimateAveragePathLength(rewired, 30, rng.New(3))
	fmt.Println("paths shorter after rewiring:", l1 < l0/2)
	// Output:
	// paths shorter after rewiring: true
}
