package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"liquid/internal/rng"
)

func TestStar(t *testing.T) {
	g, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 5 {
		t.Fatalf("center degree %d", g.Degree(0))
	}
	for v := 1; v < 6; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree %d", v, g.Degree(v))
		}
	}
	if _, err := Star(0); !errors.Is(err, ErrInvalidGraph) {
		t.Fatal("Star(0) should fail")
	}
	if g, err := Star(1); err != nil || g.M() != 0 {
		t.Fatal("Star(1) should be a single vertex")
	}
}

func TestCycleAndPath(t *testing.T) {
	c, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if !IsRegular(c, 2) || c.M() != 5 {
		t.Fatal("cycle should be 2-regular with n edges")
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) should fail")
	}

	p, err := Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != 3 || p.Degree(0) != 1 || p.Degree(1) != 2 {
		t.Fatal("bad path shape")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Edge count: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
	if g.M() != 17 {
		t.Fatalf("M = %d", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("grid should be connected")
	}
	if _, err := Grid(0, 5); err == nil {
		t.Fatal("Grid(0,5) should fail")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	s := rng.New(1)
	empty, err := ErdosRenyi(10, 0, s)
	if err != nil || empty.M() != 0 {
		t.Fatal("p=0 should yield empty graph")
	}
	full, err := ErdosRenyi(10, 1, s)
	if err != nil || full.M() != 45 {
		t.Fatalf("p=1 should yield complete graph, M = %d", full.M())
	}
	if _, err := ErdosRenyi(10, 1.5, s); err == nil {
		t.Fatal("invalid p accepted")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	s := rng.New(2)
	g, err := ErdosRenyi(200, 0.1, s)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 * 199.0
	st := Degrees(g)
	if st.Mean < want*0.8 || st.Mean > want*1.2 {
		t.Fatalf("mean degree %v, want ~%v", st.Mean, want)
	}
}

func TestRandomRegular(t *testing.T) {
	s := rng.New(3)
	for _, tt := range []struct{ n, d int }{{10, 3}, {50, 4}, {101, 6}, {8, 7}} {
		g, err := RandomRegular(tt.n, tt.d, s)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tt.n, tt.d, err)
		}
		if !IsRegular(g, tt.d) {
			t.Fatalf("RandomRegular(%d,%d) not regular: %+v", tt.n, tt.d, Degrees(g))
		}
	}
}

func TestRandomRegularRejections(t *testing.T) {
	s := rng.New(4)
	for _, tt := range []struct{ n, d int }{{5, 3}, {4, 4}, {3, -1}} {
		if _, err := RandomRegular(tt.n, tt.d, s); !errors.Is(err, ErrInvalidGraph) {
			t.Errorf("RandomRegular(%d,%d) should fail", tt.n, tt.d)
		}
	}
	if g, err := RandomRegular(7, 0, s); err != nil || g.M() != 0 {
		t.Error("0-regular graph should be empty")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	s := rng.New(5)
	g, err := BarabasiAlbert(300, 3, s)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
	// Initial star has m edges; each of the n-m-1 later vertices adds m.
	wantM := 3 + 3*(300-4)
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if !IsConnected(g) {
		t.Fatal("BA graph should be connected")
	}
	// Preferential attachment should produce a heavy hub.
	if Degrees(g).Max < 10 {
		t.Fatalf("expected a hub, max degree %d", Degrees(g).Max)
	}
	if _, err := BarabasiAlbert(3, 3, s); err == nil {
		t.Fatal("n <= m accepted")
	}
}

func TestCommunity(t *testing.T) {
	s := rng.New(6)
	g, err := Community(120, 3, 0.5, 0.01, s)
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if e[0]%3 == e[1]%3 {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter {
		t.Fatalf("communities not denser inside: intra=%d inter=%d", intra, inter)
	}
	if _, err := Community(10, 0, 0.5, 0.1, s); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	s := rng.New(7)
	g, err := RandomBoundedDegree(100, 5, 5000, s)
	if err != nil {
		t.Fatal(err)
	}
	if !MaxDegreeAtMost(g, 5) {
		t.Fatalf("degree bound violated: %+v", Degrees(g))
	}
	if g.M() == 0 {
		t.Fatal("expected some edges")
	}
	if _, err := RandomBoundedDegree(-1, 5, 10, s); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestQuickRandomRegularIsRegular(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		d := int(dRaw%4) + 1 // 1..4
		n := int(nRaw%30) + d + 1
		if n*d%2 != 0 {
			n++
		}
		g, err := RandomRegular(n, d, rng.New(seed))
		if err != nil {
			return false
		}
		return IsRegular(g, d)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
