package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes g in a plain text format: a header line "n m"
// followed by one "u v" line per edge with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	var (
		g       *Graph
		edges   int
		wantM   int
		gotHead bool
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("%w: bad line %q", ErrInvalidGraph, line)
		}
		if !gotHead {
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("%w: bad header %q", ErrInvalidGraph, line)
			}
			g = NewGraph(a)
			wantM = b
			gotHead = true
			continue
		}
		if err := g.AddEdge(a, b); err != nil {
			return nil, err
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !gotHead {
		return nil, fmt.Errorf("%w: missing header", ErrInvalidGraph)
	}
	if edges != wantM {
		return nil, fmt.Errorf("%w: header declares %d edges, found %d", ErrInvalidGraph, wantM, edges)
	}
	return g, nil
}
