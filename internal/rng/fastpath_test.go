package rng

import (
	"math/rand/v2"
	"testing"
)

// TestStreamMatchesRandV2 pins the fast-path contract: the hand-rolled
// Uint64/Float64/IntN/Bernoulli conversions on the concrete PCG must
// reproduce math/rand/v2's draws bit-for-bit, in arbitrary interleavings.
// If a Go release changes a rand/v2 conversion, this test fails and the
// fast path must be updated in lockstep — silently diverging would reseed
// every experiment in the repository.
func TestStreamMatchesRandV2(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := New(seed)
		s0 := SplitMix64(seed)
		ref := rand.New(rand.NewPCG(s0, SplitMix64(s0)))
		ns := []int{1, 2, 3, 7, 10, 64, 1000, 1 << 20, (1 << 62) + 12345}
		for i := 0; i < 4000; i++ {
			switch i % 5 {
			case 0:
				if got, want := s.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, got, want)
				}
			case 1:
				if got, want := s.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 2:
				n := ns[i%len(ns)]
				if got, want := s.IntN(n), ref.IntN(n); got != want {
					t.Fatalf("seed %d draw %d: IntN(%d) = %d, want %d", seed, i, n, got, want)
				}
			case 3:
				p := float64(i%98+1) / 99 // strictly inside (0, 1): one draw
				if got, want := s.Bernoulli(p), ref.Float64() < p; got != want {
					t.Fatalf("seed %d draw %d: Bernoulli(%v) = %v, want %v", seed, i, p, got, want)
				}
			case 4:
				// Interface-path draws (NormFloat64 goes through rand.Rand)
				// must stay coherent with fast-path draws on the shared state.
				if got, want := s.NormFloat64(), ref.NormFloat64(); got != want {
					t.Fatalf("seed %d draw %d: NormFloat64 = %v, want %v", seed, i, got, want)
				}
			}
		}
	}
}

// TestSourceSharesState pins that Source draws advance the same state the
// Stream methods read: a word drawn from the Source is a word the Stream
// never re-issues.
func TestSourceSharesState(t *testing.T) {
	a, b := New(99), New(99)
	_ = a.Source().Uint64()
	if got, want := a.Uint64(), func() uint64 { b.Uint64(); return b.Uint64() }(); got != want {
		t.Fatalf("Source draw did not advance the shared state: got %d, want %d", got, want)
	}
}
