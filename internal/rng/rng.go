// Package rng provides deterministic, splittable random number streams.
//
// Every experiment in this repository is driven by a single 64-bit seed.
// Independent substreams are derived from (seed, label) pairs using
// SplitMix64, so parallel replications draw from non-overlapping streams
// regardless of scheduling order. The underlying generator is PCG
// (math/rand/v2), which is fast and statistically strong for simulation.
package rng

import (
	"math/bits"
	"math/rand/v2"
)

// Stream is a deterministic random stream. The zero value is not usable;
// construct streams with New or Derive.
type Stream struct {
	rand *rand.Rand
	// pcg is the same generator s.rand wraps, held concretely so hot draws
	// (Uint64, Float64, IntN, Bernoulli) skip the rand.Source interface
	// dispatch. Both handles advance one shared state, so fast draws and
	// rand.Rand draws (Perm, NormFloat64, ...) interleave coherently.
	pcg  *rand.PCG
	seed uint64
}

// Source is the concrete generator behind a Stream. Batched kernels that
// cannot afford a call per variate take a *Source via Stream.Source and
// draw raw 64-bit words directly; everything else should stay on the
// Stream methods. The alias keeps math/rand/v2 an implementation detail of
// this package (the seedflow analyzer bans importing it anywhere else).
type Source = rand.PCG

// New returns a stream seeded from seed. Two streams built from the same
// seed produce identical outputs.
func New(seed uint64) *Stream {
	s0 := SplitMix64(seed)
	s1 := SplitMix64(s0)
	pcg := rand.NewPCG(s0, s1)
	return &Stream{
		rand: rand.New(pcg),
		pcg:  pcg,
		seed: seed,
	}
}

// Source returns the stream's concrete generator. Drawing from it advances
// the same state as the Stream methods; a kernel may mix Source draws with
// Stream draws and remain deterministic for a fixed call sequence.
func (s *Stream) Source() *Source { return s.pcg }

// Seed reports the seed this stream was constructed with.
func (s *Stream) Seed() uint64 { return s.seed }

// Derive returns a new stream that is statistically independent of s and of
// any stream derived with a different label. Deriving does not consume
// randomness from s, so the order of Derive calls relative to draws does not
// matter.
func (s *Stream) Derive(label uint64) *Stream {
	return New(mix(s.seed, label))
}

// DeriveString derives a substream from a string label. Useful for naming
// experiment components ("graph", "votes", ...).
func (s *Stream) DeriveString(label string) *Stream {
	return s.Derive(fnv64(label))
}

// Derive derives a sub-seed from a root seed and an ordered list of string
// labels. It is the canonical way to give every experiment, sweep point, and
// trial its own independent stream: seeds derived with different label paths
// are statistically independent, regardless of how numerically close the
// roots or how similar the labels are.
//
// Derivation is hierarchical: labels fold left one at a time, so
//
//	Derive(root, "exp", "trial=3") == Derive(Derive(root, "exp"), "trial=3")
//
// and with no labels Derive returns root unchanged. This lets a scheduler
// derive a per-experiment root once and hand it down, while leaf code derives
// per-trial seeds from it — the result is identical to deriving the full path
// in one call, so the seed a trial sees never depends on scheduling order.
//
// The mixing function (SplitMix64 over a FNV-64 label hash) is part of the
// package's compatibility surface: changing it silently reseeds every
// experiment. TestDeriveGolden pins it.
func Derive(root uint64, labels ...string) uint64 {
	h := root
	for _, label := range labels {
		h = mix(h, fnv64(label))
	}
	return h
}

// fnv64 hashes a label with FNV-64a-style folding.
func fnv64(label string) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211 // FNV-64 prime
	}
	return h
}

// The hot draw methods below reimplement the corresponding math/rand/v2
// conversions on the concrete generator, bit-for-bit (TestStreamMatchesRandV2
// pins the equivalence): rand.Rand reaches the PCG through a rand.Source
// interface, and the dispatch is measurable in draw-bound kernels.

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 { return s.pcg.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	// Identical to math/rand/v2: exactly 1<<53 float64s in [0, 1).
	return float64(s.pcg.Uint64()<<11>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("invalid argument to IntN")
	}
	un := uint64(n)
	if un&(un-1) == 0 { // power of two: mask, as rand/v2 does
		return int(s.pcg.Uint64() & (un - 1))
	}
	// Lemire's unbiased multiply-shift reduction, drawing again on the
	// biased low-word region — the same algorithm (and therefore the same
	// draw sequence) as math/rand/v2's uint64n.
	hi, lo := bits.Mul64(s.pcg.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.pcg.Uint64(), un)
		}
	}
	return int(hi)
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped: p <= 0 always yields false and p >= 1 always yields true.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rand.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Stream) ExpFloat64() float64 { return s.rand.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rand.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rand.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). It panics if k > n or k < 0. The result is not sorted.
//
// For small k relative to n it uses rejection from a set; otherwise it uses a
// partial Fisher-Yates shuffle.
func (s *Stream) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Rejection sampling is expected O(k) when k << n and avoids the O(n)
	// allocation of a full index slice.
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.rand.IntN(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.rand.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// SplitMix64 advances the SplitMix64 generator once from state x and returns
// the output. It is used for seed derivation because it is a bijective,
// well-mixed function on 64-bit integers.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mix combines a seed and a label into a new seed.
func mix(seed, label uint64) uint64 {
	return SplitMix64(SplitMix64(seed) ^ SplitMix64(label^0xD1B54A32D192ED03))
}
