package rng

import (
	"fmt"
	"math/bits"
	"testing"
)

// TestDeriveGolden pins the exact derivation outputs. These values are part
// of the package's compatibility surface: every experiment seed in the
// repository flows through Derive, so changing the mixing function silently
// reseeds the whole reproduction suite. Update these constants only with a
// deliberate, documented reseeding.
func TestDeriveGolden(t *testing.T) {
	golden := []struct {
		root   uint64
		labels []string
		want   uint64
	}{
		{1, []string{"experiment"}, 0x478893f896d80d5e},
		{1, []string{"experiment", "trial=0"}, 0x3993aa825f66ea9e},
		{1, []string{"experiment", "trial=1"}, 0x2c379c05071245b5},
		{42, []string{"T2", "n=1000", "spg"}, 0xe7410b3a15ec1383},
		{0, []string{""}, 0x77f233a39f2b1f1b},
		{0xDEADBEEF, []string{"A2", "alpha=0.05"}, 0x8170b9cbab07645e},
	}
	for _, g := range golden {
		if got := Derive(g.root, g.labels...); got != g.want {
			t.Errorf("Derive(%d, %q) = %#x, want %#x (derivation scheme changed!)",
				g.root, g.labels, got, g.want)
		}
	}
}

func TestDeriveNoLabelsIsIdentity(t *testing.T) {
	for _, root := range []uint64{0, 1, 42, ^uint64(0)} {
		if got := Derive(root); got != root {
			t.Fatalf("Derive(%d) = %d, want identity", root, got)
		}
	}
}

func TestDeriveHierarchical(t *testing.T) {
	// Folding labels one at a time must equal deriving the full path at
	// once: this is what lets a scheduler derive a per-experiment root and
	// hand it down without changing any leaf seed.
	root := uint64(7)
	full := Derive(root, "T3", "n=500", "rep=12")
	step := Derive(Derive(Derive(root, "T3"), "n=500"), "rep=12")
	if full != step {
		t.Fatalf("hierarchical derivation mismatch: %#x vs %#x", full, step)
	}
}

func TestDeriveMatchesDeriveString(t *testing.T) {
	// New(Derive(seed, label)) and New(seed).DeriveString(label) must be the
	// same stream, so code can move between the two forms freely.
	a := New(Derive(99, "votes"))
	b := New(99).DeriveString("votes")
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("package-level Derive diverged from Stream.DeriveString")
		}
	}
}

// TestDeriveAvalanche checks label sensitivity: changing one character of
// one label should flip about half of the 64 output bits on average.
func TestDeriveAvalanche(t *testing.T) {
	const trials = 2000
	totalFlipped := 0
	for i := 0; i < trials; i++ {
		root := uint64(i) * 0x9E3779B97F4A7C15
		a := Derive(root, "sweep", fmt.Sprintf("alpha=%d", i))
		b := Derive(root, "sweep", fmt.Sprintf("alphb=%d", i)) // one char changed
		totalFlipped += bits.OnesCount64(a ^ b)
	}
	mean := float64(totalFlipped) / trials
	// A well-mixed 64-bit function flips 32 bits on average with a per-trial
	// standard deviation of 4; over 2000 trials the mean is tightly
	// concentrated. [30, 34] is a ~22-sigma band.
	if mean < 30 || mean > 34 {
		t.Fatalf("avalanche mean bit flips = %.2f, want ~32", mean)
	}
}

// TestDeriveNoCollisions checks that 10k (label, index) pairs — the shape of
// every sweep in internal/experiment — give pairwise-distinct seeds. This is
// the regression guard for the old cfg.Seed+i*17 / cfg.Seed^n arithmetic,
// which collided across sweep points for small values.
func TestDeriveNoCollisions(t *testing.T) {
	seen := make(map[uint64][2]string, 10000)
	labels := []string{"trial", "alpha", "n", "rep", "graph", "votes", "duel", "sweep", "issue", "round"}
	for _, label := range labels {
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("%s=%d", label, i)
			v := Derive(1, label, key)
			if prev, dup := seen[v]; dup {
				t.Fatalf("seed collision: (%s,%s) and (%s,%s) both derive %#x",
					label, key, prev[0], prev[1], v)
			}
			seen[v] = [2]string{label, key}
		}
	}
	if len(seen) != 10000 {
		t.Fatalf("expected 10000 distinct seeds, got %d", len(seen))
	}
}

// TestDeriveSmallValuesDistinct targets the exact collision class the old
// arithmetic had: Seed+a and Seed+b coincide whenever the offsets collide,
// and Seed^n vs Seed^(n<<1) coincide at n=0. Derived seeds must differ for
// every pair of nearby roots and labels.
func TestDeriveSmallValuesDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for root := uint64(0); root < 8; root++ {
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("root=%d,i=%d", root, i)
			v := Derive(root, fmt.Sprintf("i=%d", i))
			if prev, dup := seen[v]; dup {
				t.Fatalf("collision between %s and %s", key, prev)
			}
			seen[v] = key
		}
	}
}
