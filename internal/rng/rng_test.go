package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d equal draws", same)
	}
}

func TestDeriveIsIndependentOfDrawOrder(t *testing.T) {
	a := New(7)
	_ = a.Uint64() // consume some randomness first
	_ = a.Uint64()
	da := a.Derive(3)

	b := New(7)
	db := b.Derive(3) // derive before any draws

	for i := 0; i < 100; i++ {
		if da.Uint64() != db.Uint64() {
			t.Fatal("Derive must not depend on parent draw position")
		}
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	s := New(9)
	a := s.Derive(1)
	b := s.Derive(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("substreams with distinct labels should differ")
	}
}

func TestDeriveStringStable(t *testing.T) {
	a := New(5).DeriveString("graph")
	b := New(5).DeriveString("graph")
	c := New(5).DeriveString("votes")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same string label must give same stream")
	}
	if New(5).DeriveString("graph").Uint64() == c.Uint64() {
		t.Fatal("different string labels should give different streams")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(13)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(17)
	const n = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	// 5-sigma band for a binomial proportion.
	tol := 5 * math.Sqrt(p*(1-p)/n)
	if math.Abs(got-p) > tol {
		t.Fatalf("Bernoulli(%v) frequency %v outside tolerance %v", p, got, tol)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	s := New(19)
	tests := []struct {
		n, k int
	}{
		{10, 0},
		{10, 1},
		{10, 10},
		{100, 3},   // rejection path
		{100, 50},  // shuffle path
		{1000, 10}, // rejection path
	}
	for _, tt := range tests {
		got := s.SampleWithoutReplacement(tt.n, tt.k)
		if len(got) != tt.k {
			t.Fatalf("n=%d k=%d: got %d samples", tt.n, tt.k, len(got))
		}
		seen := make(map[int]bool, tt.k)
		for _, v := range got {
			if v < 0 || v >= tt.n {
				t.Fatalf("n=%d k=%d: sample %d out of range", tt.n, tt.k, v)
			}
			if seen[v] {
				t.Fatalf("n=%d k=%d: duplicate sample %d", tt.n, tt.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element of [0,5) should appear in a 2-subset with probability 2/5.
	s := New(23)
	const trials = 50000
	counts := make([]int, 5)
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleWithoutReplacement(5, 2) {
			counts[v]++
		}
	}
	want := 2.0 / 5.0
	for v, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("element %d frequency %v, want ~%v", v, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	p := s.Perm(100)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm result is not a permutation at %d: %d", i, v)
		}
	}
}

func TestSplitMix64Properties(t *testing.T) {
	// SplitMix64 must be deterministic and must not have trivial fixed points
	// on small inputs.
	if SplitMix64(0) != SplitMix64(0) {
		t.Fatal("SplitMix64 not deterministic")
	}
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 1000; x++ {
		v := SplitMix64(x)
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: SplitMix64(%d) == SplitMix64(%d)", x, prev)
		}
		seen[v] = x
	}
}

func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, label uint64) bool {
		a := New(seed).Derive(label)
		b := New(seed).Derive(label)
		return a.Uint64() == b.Uint64() && a.Float64() == b.Float64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSampleBounds(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		got := New(seed).SampleWithoutReplacement(n, k)
		if len(got) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
