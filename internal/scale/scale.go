// Package scale is the million-voter tier: electorates described by a small
// generator spec and streamed in fixed-size chunks, so a 10^6–10^7-voter
// instance is evaluated end to end without any worker ever holding the full
// graph. A StreamInstance derives every voter's draws as a pure function of
// (seed, voter index) — SplitMix64 lanes, the same derivation primitive as
// internal/rng — which makes chunk generation stateless: any chunk can be
// produced independently, in any order, by any worker, with the competency
// stream invariant to how the index range is chunked.
//
// Delegation is chunk-local by construction: a voter either votes directly
// or delegates to an earlier voter in its own chunk. That is the modeling
// choice that makes resolution exactly chunk-decomposable — each chunk folds
// to a canonical (weight, p) sink multiset independently (fold.go), and the
// folds merge associatively — while still exhibiting the max-weight blowup
// pathology the scale experiments measure (Gölz et al., "The Fluid Mechanics
// of Liquid Democracy"): as the delegation fraction grows, chains pile
// weight onto few sinks.
//
// StreamInstance implements prob.ChunkedSeq, so the direct-vote distribution
// feeds prob.LadderMajority without materialising; the resolved weighted
// majority goes through the fold in fold.go and prob.CertifyMajority.
package scale

import (
	"fmt"

	"liquid/internal/rng"
)

// defaultChunkSize is the chunk width when Spec.ChunkSize is zero: large
// enough that per-chunk overheads vanish, small enough that a worker's
// resident state stays in cache (~128 KiB of competencies).
const defaultChunkSize = 1 << 14

// Per-voter derivation lanes: each voter's base word is split into
// independent draws by XORing a lane salt before the final SplitMix64 round.
// Arbitrary odd 64-bit constants; changing them reseeds every streamed
// electorate (TestStreamGolden pins the derivation). The instance root
// itself comes from rng.Derive(seed, "scale/stream"), so streamed
// electorates live in their own label namespace alongside every other
// seed-derived stream.
const (
	laneCompetency = 0xA076D05E9F1B3C47
	laneDelegate   = 0xC2B2AE3D27D4EB4F
	laneTarget     = 0x165667B19E3779F9
)

// Spec describes a streamed electorate. The zero values of ChunkSize, Low,
// and High select the defaults documented per field.
type Spec struct {
	// N is the electorate size (required, >= 1).
	N int
	// ChunkSize is the streaming chunk width (default 1<<14). It is part of
	// the instance definition: the chunk-local delegation topology depends
	// on it (competencies do not).
	ChunkSize int
	// Seed roots every voter's derived draws; equal specs generate
	// identical electorates.
	Seed uint64
	// Low and High bound the uniform competency range [Low, High). Both
	// zero selects [0.25, 0.75).
	Low, High float64
	// DelegateFrac is the probability that a voter (other than the first of
	// its chunk) delegates to an earlier voter in its chunk, in [0, 1].
	DelegateFrac float64
}

func (sp Spec) withDefaults() Spec {
	if sp.ChunkSize <= 0 {
		sp.ChunkSize = defaultChunkSize
	}
	if sp.Low == 0 && sp.High == 0 {
		sp.Low, sp.High = 0.25, 0.75
	}
	return sp
}

// StreamInstance is a streamed electorate: a validated Spec plus its derived
// root word. It is immutable and safe for concurrent use from any number of
// goroutines — chunk generation reads only the spec.
type StreamInstance struct {
	spec Spec
	base uint64
}

// New validates spec and returns the streamed instance.
func New(spec Spec) (*StreamInstance, error) {
	spec = spec.withDefaults()
	if spec.N < 1 {
		return nil, fmt.Errorf("scale: spec.N = %d, want >= 1", spec.N)
	}
	if !(spec.Low >= 0 && spec.High <= 1 && spec.Low <= spec.High) {
		return nil, fmt.Errorf("scale: competency range [%v, %v) not within [0,1]", spec.Low, spec.High)
	}
	if !(spec.DelegateFrac >= 0 && spec.DelegateFrac <= 1) {
		return nil, fmt.Errorf("scale: DelegateFrac = %v not in [0,1]", spec.DelegateFrac)
	}
	return &StreamInstance{spec: spec, base: rng.Derive(spec.Seed, "scale/stream")}, nil
}

// Spec returns the (defaulted) spec the instance was built from.
func (s *StreamInstance) Spec() Spec { return s.spec }

// Len returns the electorate size. Part of prob.ChunkedSeq.
func (s *StreamInstance) Len() int { return s.spec.N }

// NumChunks returns the number of chunks covering [0, Len). Part of
// prob.ChunkedSeq.
func (s *StreamInstance) NumChunks() int {
	return (s.spec.N + s.spec.ChunkSize - 1) / s.spec.ChunkSize
}

// ChunkBounds returns chunk c's half-open voter index range [lo, hi).
func (s *StreamInstance) ChunkBounds(c int) (lo, hi int) {
	lo = c * s.spec.ChunkSize
	hi = lo + s.spec.ChunkSize
	if hi > s.spec.N {
		hi = s.spec.N
	}
	return lo, hi
}

// AppendChunk appends chunk c's competencies to dst. Part of
// prob.ChunkedSeq: this is the direct-vote distribution's streamed form.
func (s *StreamInstance) AppendChunk(dst []float64, c int) []float64 {
	lo, hi := s.ChunkBounds(c)
	for i := lo; i < hi; i++ {
		dst = append(dst, s.Competency(i))
	}
	return dst
}

// word derives voter i's draw for a lane: a pure function of (seed, i, lane),
// so any worker can generate any voter without shared state, and the value
// is invariant to chunk layout.
func (s *StreamInstance) word(i int, lane uint64) uint64 {
	return rng.SplitMix64(rng.SplitMix64(s.base+uint64(i)*0x9E3779B97F4A7C15) ^ lane)
}

// unit maps a 64-bit word to [0, 1) with the same 53-bit conversion as
// rng.Stream.Float64.
func unit(w uint64) float64 {
	return float64(w<<11>>11) / (1 << 53)
}

// Competency returns voter i's competency: uniform in [Low, High), derived
// from (Seed, i) alone.
func (s *StreamInstance) Competency(i int) float64 {
	return s.spec.Low + (s.spec.High-s.spec.Low)*unit(s.word(i, laneCompetency))
}

// delegates reports whether voter i (at position pos within its chunk)
// delegates. The first voter of a chunk never does, so every chunk has at
// least one sink.
func (s *StreamInstance) delegates(i, pos int) bool {
	if pos == 0 || s.spec.DelegateFrac <= 0 {
		return false
	}
	return unit(s.word(i, laneDelegate)) < s.spec.DelegateFrac
}

// targetPos returns the chunk-local position voter i delegates to: uniform
// over the pos earlier voters of its chunk. Delegating strictly backwards
// makes every chain acyclic and resolvable in one forward pass.
func (s *StreamInstance) targetPos(i, pos int) int {
	return int(s.word(i, laneTarget) % uint64(pos))
}
