package scale

import (
	"context"
	"math"
	"sync"
	"testing"
)

// TestHammerStreamConcurrent is the race hammer for the streamed instance:
// one shared StreamInstance iterated and evaluated from many goroutines at
// once, with every result held to the single-threaded reference bit for bit.
// Run under `go test -race` (the `make check` race stage) this proves the
// instance really is immutable shared state and the parallel fold really
// does confine mutation to per-worker scratch.
func TestHammerStreamConcurrent(t *testing.T) {
	s := mustNew(t, Spec{N: 60_000, ChunkSize: 1024, Seed: 17, DelegateFrac: 0.55})
	ref, err := EvaluateMajority(context.Background(), s, 1)
	if err != nil {
		t.Fatal(err)
	}
	refStream := make([]float64, 0, s.Len())
	for c := 0; c < s.NumChunks(); c++ {
		refStream = s.AppendChunk(refStream, c)
	}

	workerCounts := []int{1, 4, 16}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines run the parallel fold at rotating worker
			// counts; half stream every chunk through a private buffer.
			if g%2 == 0 {
				res, err := EvaluateMajority(context.Background(), s, workerCounts[(g/2)%len(workerCounts)])
				if err != nil {
					t.Error(err)
					return
				}
				if math.Float64bits(res.Interval.Point) != math.Float64bits(ref.Interval.Point) ||
					math.Float64bits(res.Interval.HalfWidth) != math.Float64bits(ref.Interval.HalfWidth) ||
					res.Stats != ref.Stats {
					t.Errorf("goroutine %d: fold diverged from reference", g)
				}
				return
			}
			var buf []float64
			for c := 0; c < s.NumChunks(); c++ {
				buf = s.AppendChunk(buf[:0], c)
				lo, hi := s.ChunkBounds(c)
				for i := range buf {
					if math.Float64bits(buf[i]) != math.Float64bits(refStream[lo+i]) {
						t.Errorf("goroutine %d: chunk %d value %d diverged", g, c, i)
						return
					}
				}
				if len(buf) != hi-lo {
					t.Errorf("goroutine %d: chunk %d yielded %d values, want %d", g, c, len(buf), hi-lo)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
