package scale

import (
	"context"
	"math"
	"testing"

	"liquid/internal/prob"
	"liquid/internal/rng"
)

func mustNew(t testing.TB, spec Spec) *StreamInstance {
	t.Helper()
	s, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamGolden pins the per-voter derivation: streamed electorates are
// part of experiment reproducibility, so the (seed, index) → competency map
// must never drift. Regenerating these constants is a breaking change to
// every S-experiment table.
func TestStreamGolden(t *testing.T) {
	s := mustNew(t, Spec{N: 1000, ChunkSize: 128, Seed: 42, DelegateFrac: 0.5})
	want := []struct {
		i int
		p float64
	}{
		{0, 0.5987751347308683},
		{1, 0.46495428849096337},
		{127, 0.50427357302720188},
		{128, 0.26395530048876836},
		{999, 0.635700928236828},
	}
	for _, w := range want {
		if got := s.Competency(w.i); got != w.p {
			t.Errorf("Competency(%d) = %.17g, want %.17g", w.i, got, w.p)
		}
	}
}

// TestStreamChunkLayoutInvariance checks the generator contract: the
// competency stream is a pure function of (seed, index), so re-chunking the
// same electorate yields the identical concatenated stream. (The delegation
// topology is deliberately chunk-local and so depends on ChunkSize — that is
// why ChunkSize is part of the instance definition.)
func TestStreamChunkLayoutInvariance(t *testing.T) {
	collect := func(chunk int) []float64 {
		s := mustNew(t, Spec{N: 5000, ChunkSize: chunk, Seed: 7})
		var all []float64
		for c := 0; c < s.NumChunks(); c++ {
			all = s.AppendChunk(all, c)
		}
		return all
	}
	a, b := collect(64), collect(4096)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("competency %d differs across chunk layouts: %v != %v", i, a[i], b[i])
		}
	}
}

// TestSpecValidation rejects malformed specs.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{N: 0},
		{N: 10, Low: -0.1, High: 0.5},
		{N: 10, Low: 0.5, High: 1.5},
		{N: 10, Low: 0.8, High: 0.2},
		{N: 10, DelegateFrac: 1.5},
		{N: 10, DelegateFrac: -0.5},
	}
	for _, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%+v) accepted", spec)
		}
	}
	if s := mustNew(t, Spec{N: 10}); s.Spec().ChunkSize != defaultChunkSize || s.Spec().High != 0.75 {
		t.Errorf("defaults not applied: %+v", s.Spec())
	}
}

// TestFoldStructure checks the resolved fold's structural invariants across
// delegation fractions: weight conservation (every vote lands on exactly one
// sink), sink/delegator partition, canonical multiset ordering, and that the
// fold totals agree with the per-chunk sink multisets they summarise.
func TestFoldStructure(t *testing.T) {
	for _, frac := range []float64{0, 0.3, 0.8, 1} {
		s := mustNew(t, Spec{N: 3000, ChunkSize: 256, Seed: 11, DelegateFrac: frac})
		f := NewFold()
		var agg FoldStats
		voterTotal := 0
		maxW := 0
		for c := 0; c < s.NumChunks(); c++ {
			sinks, st := f.ChunkSinks(s, c)
			if len(sinks) != st.Sinks {
				t.Fatalf("frac %v chunk %d: %d sinks reported, %d returned", frac, c, st.Sinks, len(sinks))
			}
			wsum := 0
			for i, v := range sinks {
				wsum += v.Weight
				if v.Weight > maxW {
					maxW = v.Weight
				}
				if i > 0 && sinks[i-1].Weight > v.Weight {
					t.Fatalf("frac %v chunk %d: sinks not weight-sorted at %d", frac, c, i)
				}
			}
			lo, hi := s.ChunkBounds(c)
			if wsum != hi-lo {
				t.Fatalf("frac %v chunk %d: weight %d not conserved (chunk size %d)", frac, c, wsum, hi-lo)
			}
			agg.Merge(st)
			voterTotal += hi - lo
		}
		if agg.WeightSum != int64(voterTotal) || voterTotal != 3000 {
			t.Fatalf("frac %v: WeightSum %d, folded %d voters", frac, agg.WeightSum, voterTotal)
		}
		if agg.Sinks+agg.Delegators != 3000 {
			t.Fatalf("frac %v: sinks %d + delegators %d != n", frac, agg.Sinks, agg.Delegators)
		}
		if agg.MaxWeight != maxW {
			t.Fatalf("frac %v: MaxWeight %d, observed %d", frac, agg.MaxWeight, maxW)
		}
		if frac == 0 && (agg.Delegators != 0 || agg.MaxWeight != 1 || agg.LongestChain != 0) {
			t.Fatalf("frac 0 resolved to %+v, want all-direct", agg)
		}
		if frac == 1 && agg.Sinks != s.NumChunks() {
			// Only the forced first voter of each chunk can be a sink.
			t.Fatalf("frac 1: %d sinks, want %d", agg.Sinks, s.NumChunks())
		}
	}
}

// TestEvaluateMajorityContainsExact holds the streamed certified evaluation
// to the exact weighted-majority DP at a size where the latter is feasible:
// the interval from the chunk-folded sufficient statistics must contain the
// exact tail mass of the fully materialised resolved electorate.
func TestEvaluateMajorityContainsExact(t *testing.T) {
	for _, frac := range []float64{0, 0.4, 0.9} {
		s := mustNew(t, Spec{N: 400, ChunkSize: 64, Seed: rng.Derive(5, "scale", "exact"), DelegateFrac: frac, Low: 0.35, High: 0.7})
		f := NewFold()
		var voters []prob.WeightedVoter
		for c := 0; c < s.NumChunks(); c++ {
			sinks, _ := f.ChunkSinks(s, c)
			voters = append(voters, sinks...) // copy out: sinks alias fold scratch
		}
		wm, err := prob.NewWeightedMajority(voters)
		if err != nil {
			t.Fatal(err)
		}
		pmf := wm.PMFNaive()
		exact := prob.Sum(pmf[wm.TotalWeight()/2+1:])
		res, err := EvaluateMajority(context.Background(), s, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Interval.Contains(exact) {
			t.Errorf("frac %v: interval [%v, %v] (±%v) does not contain exact %v",
				frac, res.Interval.Lo(), res.Interval.Hi(), res.Interval.HalfWidth, exact)
		}
		if res.Sum.N() != int64(res.Stats.Sinks) {
			t.Errorf("frac %v: %d stat terms for %d sinks", frac, res.Sum.N(), res.Stats.Sinks)
		}
	}
}

// TestEvaluateMajorityWorkerBitIdentity pins the parallel fold's determinism
// contract: partials merge in chunk index order, so every worker count
// produces the identical bytes.
func TestEvaluateMajorityWorkerBitIdentity(t *testing.T) {
	s := mustNew(t, Spec{N: 50_000, ChunkSize: 2048, Seed: 99, DelegateFrac: 0.6})
	var ref *MajorityResult
	for _, workers := range []int{1, 4, 16} {
		res, err := EvaluateMajority(context.Background(), s, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if math.Float64bits(res.Interval.Point) != math.Float64bits(ref.Interval.Point) ||
			math.Float64bits(res.Interval.HalfWidth) != math.Float64bits(ref.Interval.HalfWidth) ||
			math.Float64bits(res.Sum.Mean()) != math.Float64bits(ref.Sum.Mean()) ||
			math.Float64bits(res.Sum.Variance()) != math.Float64bits(ref.Sum.Variance()) ||
			res.Stats != ref.Stats {
			t.Fatalf("workers=%d diverges: %+v != %+v", workers, res, ref)
		}
	}
}

// TestMillionVoterEndToEnd is the acceptance check from the scale-tier issue:
// a 10^6-voter electorate evaluates end to end — the resolved weighted
// majority through the chunk fold, the direct vote through prob.Ladder — with
// certified half-widths inside the requested error budget, while no step ever
// materialises more than chunk-sized state per worker.
func TestMillionVoterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("million-voter pass in -short mode")
	}
	const budget = 1e-3
	s := mustNew(t, Spec{N: 1_000_000, Seed: 2026, DelegateFrac: 0.5, Low: 0.3, High: 0.6})
	res, err := EvaluateMajority(context.Background(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval.HalfWidth > budget {
		t.Fatalf("mechanism half-width %v over budget %v", res.Interval.HalfWidth, budget)
	}
	if res.Stats.WeightSum != 1_000_000 {
		t.Fatalf("weight not conserved: %d", res.Stats.WeightSum)
	}
	ci, err := prob.LadderMajority(context.Background(), s, prob.LadderOptions{ErrorBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if ci.Tier != prob.TierNormal {
		t.Fatalf("ladder escalated to %v for a budgeted million-voter query", ci.Tier)
	}
	if ci.HalfWidth > budget {
		t.Fatalf("direct half-width %v over budget %v", ci.HalfWidth, budget)
	}
}

// TestEvaluateMajorityCancellation: a cancelled context aborts the fold.
func TestEvaluateMajorityCancellation(t *testing.T) {
	s := mustNew(t, Spec{N: 100_000, ChunkSize: 1024, Seed: 3, DelegateFrac: 0.2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := EvaluateMajority(ctx, s, workers); err == nil {
			t.Fatalf("workers=%d: cancelled fold returned nil error", workers)
		}
	}
}
