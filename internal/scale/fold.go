package scale

import (
	"context"
	"sort"
	"sync"

	"liquid/internal/prob"
)

// FoldStats are the structural totals of a resolved (sub-)electorate. All
// fields are integer sums or maxes, so merging partials is exactly
// associative and commutative — any merge order gives the same totals.
type FoldStats struct {
	// Sinks counts voters that vote directly (delegation-graph sinks).
	Sinks int
	// Delegators counts voters whose vote flows to another voter.
	Delegators int
	// MaxWeight is the largest resolved sink weight — the quantity whose
	// blowup at scale the S1 experiment measures.
	MaxWeight int
	// LongestChain is the longest delegation chain length.
	LongestChain int
	// WeightSum is the total resolved weight; conservation demands it equal
	// the number of voters folded.
	WeightSum int64
}

// Merge folds o into f.
func (f *FoldStats) Merge(o FoldStats) {
	f.Sinks += o.Sinks
	f.Delegators += o.Delegators
	if o.MaxWeight > f.MaxWeight {
		f.MaxWeight = o.MaxWeight
	}
	if o.LongestChain > f.LongestChain {
		f.LongestChain = o.LongestChain
	}
	f.WeightSum += o.WeightSum
}

// Fold is one worker's chunk-resolution scratch: buffers sized to a chunk,
// reused across every chunk the worker folds, so resolving a 10^6-voter
// electorate holds only ChunkSize-voter state per worker. Not safe for
// concurrent use; give each goroutine its own Fold.
type Fold struct {
	ws     *prob.Workspace
	sink   []int32
	depth  []int32
	weight []int32
	ps     []float64
	voters []prob.WeightedVoter
}

// NewFold returns an empty fold scratch.
func NewFold() *Fold {
	return &Fold{ws: prob.NewWorkspace()}
}

func (f *Fold) grow(k int) {
	if cap(f.sink) < k {
		f.sink = make([]int32, k)
		f.depth = make([]int32, k)
		f.weight = make([]int32, k)
		f.ps = make([]float64, k)
	}
	f.sink = f.sink[:k]
	f.depth = f.depth[:k]
	f.weight = f.weight[:k]
	f.ps = f.ps[:k]
}

// ChunkSinks resolves chunk c's delegations in one forward pass (delegation
// is strictly backwards within the chunk, so every voter's sink is known by
// the time it is visited) and returns the resolved sink multiset in the
// canonical (weight, p) order the kernel caches key on: ascending p, then the
// workspace counting sort ascending by weight. The returned slice aliases
// fold scratch and is invalidated by the next call on f.
func (f *Fold) ChunkSinks(s *StreamInstance, c int) ([]prob.WeightedVoter, FoldStats) {
	lo, hi := s.ChunkBounds(c)
	k := hi - lo
	f.grow(k)
	st := FoldStats{WeightSum: int64(k)}
	for pos := 0; pos < k; pos++ {
		i := lo + pos
		f.ps[pos] = s.Competency(i)
		f.weight[pos] = 0
		if !s.delegates(i, pos) {
			f.sink[pos] = int32(pos)
			f.depth[pos] = 0
			continue
		}
		t := s.targetPos(i, pos)
		f.sink[pos] = f.sink[t]
		f.depth[pos] = f.depth[t] + 1
		st.Delegators++
		if d := int(f.depth[pos]); d > st.LongestChain {
			st.LongestChain = d
		}
	}
	for pos := 0; pos < k; pos++ {
		f.weight[f.sink[pos]]++
	}
	voters := f.voters[:0]
	for pos := 0; pos < k; pos++ {
		if f.sink[pos] != int32(pos) {
			continue
		}
		w := int(f.weight[pos])
		st.Sinks++
		if w > st.MaxWeight {
			st.MaxWeight = w
		}
		voters = append(voters, prob.WeightedVoter{Weight: w, P: f.ps[pos]})
	}
	f.voters = voters
	sort.Slice(voters, func(a, b int) bool { return voters[a].P < voters[b].P })
	return f.ws.SortVotersByWeight(voters, st.MaxWeight), st
}

// ChunkStats resolves chunk c and folds its sink multiset into the ladder's
// sufficient statistics. Terms are added in the canonical multiset order, so
// the partial is a pure function of (spec, c) — the determinism the parallel
// fold's ordered merge relies on.
func (f *Fold) ChunkStats(s *StreamInstance, c int) (prob.SumStats, FoldStats) {
	sinks, st := f.ChunkSinks(s, c)
	var sum prob.SumStats
	for _, v := range sinks {
		sum.Add(float64(v.Weight), v.P)
	}
	return sum, st
}

// MajorityResult is a streamed electorate's certified weighted-majority
// evaluation: the interval for P[W > n/2], the structural fold totals, and
// the sufficient statistics they were certified from.
type MajorityResult struct {
	Interval prob.CertifiedInterval
	Stats    FoldStats
	Sum      prob.SumStats
}

// EvaluateMajority resolves every chunk of s, folds the resolved sink
// multisets into sufficient statistics, and certifies the mechanism's
// correct-majority probability P[W > n/2] via prob.CertifyMajority. Up to
// `workers` goroutines fold chunks concurrently, each holding one chunk of
// state; partials merge in chunk index order, so the result is bit-identical
// for every worker count.
func EvaluateMajority(ctx context.Context, s *StreamInstance, workers int) (*MajorityResult, error) {
	nc := s.NumChunks()
	if workers < 1 {
		workers = 1
	}
	if workers > nc {
		workers = nc
	}
	sums := make([]prob.SumStats, nc)
	folds := make([]FoldStats, nc)
	if workers == 1 {
		f := NewFold()
		for c := 0; c < nc; c++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sums[c], folds[c] = f.ChunkStats(s, c)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One fold scratch per worker; chunk results land in
				// chunk-indexed slots, so scheduling cannot reorder anything.
				f := NewFold()
				for c := range work {
					if ctx.Err() != nil {
						continue
					}
					sums[c], folds[c] = f.ChunkStats(s, c)
				}
			}()
		}
	feed:
		for c := 0; c < nc; c++ {
			select {
			case <-ctx.Done():
				break feed
			case work <- c:
			}
		}
		close(work)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	res := &MajorityResult{}
	for c := 0; c < nc; c++ {
		res.Sum.Merge(&sums[c])
		res.Stats.Merge(folds[c])
	}
	res.Interval = prob.CertifyMajority(&res.Sum, float64(s.Len()/2))
	return res, nil
}
