// Package history models where approval sets come from in practice: voters
// observe each other's track records on past issues with known outcomes and
// approve neighbours whose observed accuracy exceeds their own by the
// margin alpha. As the history grows, estimated approvals converge to the
// true approval sets J(i) of the paper's model; with short histories,
// mechanisms run on noisy approvals, and the library measures how much gain
// that costs.
package history

import (
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// ErrInvalidHistory reports invalid track-record parameters.
var ErrInvalidHistory = errors.New("history: invalid track record")

// TrackRecord holds each voter's score on past binary issues with known
// ground truth. Two observation models share the type:
//
//   - uniform participation (Simulate): every voter observed on all T
//     issues; Counts is nil and accuracies smooth over T.
//   - partial participation (NewTrackRecord + ObserveIssue): voters
//     observed on per-voter Counts of issues, so one issue touches only
//     its participants — the sparse-delta regime the incremental
//     evaluation path (Replay) feeds through Plan.ApplyDelta.
type TrackRecord struct {
	T      int
	Scores []int
	// Counts is the per-voter observation count under partial
	// participation, nil under the uniform model.
	Counts []int
}

// NewTrackRecord returns an empty partial-participation record over n
// voters (all accuracies start at the Laplace prior 1/2).
func NewTrackRecord(n int) *TrackRecord {
	return &TrackRecord{Scores: make([]int, n), Counts: make([]int, n)}
}

// ObserveIssue simulates one issue observed by participants only: each
// participant is correct with its true competency, and only participants'
// accuracies change. Returns the participants whose observation count
// moved (the input slice), for callers that turn the issue into
// competency deltas.
func (tr *TrackRecord) ObserveIssue(in *core.Instance, participants []int, s *rng.Stream) error {
	if tr.Counts == nil {
		return fmt.Errorf("%w: ObserveIssue needs a partial-participation record (NewTrackRecord)", ErrInvalidHistory)
	}
	if len(tr.Scores) != in.N() {
		return fmt.Errorf("%w: %d scores for %d voters", ErrInvalidHistory, len(tr.Scores), in.N())
	}
	for _, v := range participants {
		if v < 0 || v >= in.N() {
			return fmt.Errorf("%w: participant %d out of range", ErrInvalidHistory, v)
		}
		tr.Counts[v]++
		if s.Bernoulli(in.Competency(v)) {
			tr.Scores[v]++
		}
	}
	tr.T++
	return nil
}

// Simulate draws a track record: on each of t issues every voter is
// independently correct with its competency.
func Simulate(in *core.Instance, t int, s *rng.Stream) (*TrackRecord, error) {
	if t < 1 {
		return nil, fmt.Errorf("%w: history length %d", ErrInvalidHistory, t)
	}
	tr := &TrackRecord{T: t, Scores: make([]int, in.N())}
	for issue := 0; issue < t; issue++ {
		for v := 0; v < in.N(); v++ {
			if s.Bernoulli(in.Competency(v)) {
				tr.Scores[v]++
			}
		}
	}
	return tr, nil
}

// Accuracy returns voter v's observed accuracy with Laplace (add-one)
// smoothing, keeping estimates strictly inside (0, 1). Under partial
// participation the denominator is v's own observation count, so an issue
// v did not participate in leaves v's accuracy untouched — that locality
// is what makes per-issue competency deltas sparse.
func (tr *TrackRecord) Accuracy(v int) float64 {
	if tr.Counts != nil {
		return (float64(tr.Scores[v]) + 1) / (float64(tr.Counts[v]) + 2)
	}
	return (float64(tr.Scores[v]) + 1) / (float64(tr.T) + 2)
}

// Approves reports whether voter i would approve voter j at margin alpha
// based on observed accuracies.
func (tr *TrackRecord) Approves(i, j int, alpha float64) bool {
	return tr.Accuracy(j) >= tr.Accuracy(i)+alpha
}

// SurrogateInstance builds an instance over the same topology whose
// competencies are the observed (smoothed) accuracies. Running a mechanism
// on the surrogate realizes delegation decisions based purely on observable
// information; the resulting delegation graph is then scored against the
// true instance.
func (tr *TrackRecord) SurrogateInstance(in *core.Instance) (*core.Instance, error) {
	if len(tr.Scores) != in.N() {
		return nil, fmt.Errorf("%w: %d scores for %d voters", ErrInvalidHistory, len(tr.Scores), in.N())
	}
	p := make([]float64, in.N())
	for v := range p {
		p[v] = tr.Accuracy(v)
	}
	return core.NewInstance(in.Topology(), p)
}

// MisdelegationRate reports the fraction of delegation edges in d whose
// target is NOT truly approved at margin alpha under the real competencies
// — delegation mistakes induced by the noisy history. Returns 0 when
// nothing is delegated.
func MisdelegationRate(in *core.Instance, d *core.DelegationGraph, alpha float64) float64 {
	total, wrong := 0, 0
	for i, j := range d.Delegate {
		if j == core.NoDelegate {
			continue
		}
		total++
		if !in.Approves(i, j, alpha) {
			wrong++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}
