package history_test

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/history"
	"liquid/internal/rng"
)

// Example estimates approval sets from an observed track record instead of
// assuming known competencies.
func Example() {
	p := []float64{0.2, 0.5, 0.9}
	in, err := core.NewInstance(graph.NewComplete(3), p)
	if err != nil {
		panic(err)
	}
	tr, err := history.Simulate(in, 1000, rng.New(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("v0 approves v2 (margin 0.2):", tr.Approves(0, 2, 0.2))
	fmt.Println("v2 approves v0 (margin 0.2):", tr.Approves(2, 0, 0.2))
	// Output:
	// v0 approves v2 (margin 0.2): true
	// v2 approves v0 (margin 0.2): false
}
