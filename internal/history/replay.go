package history

// Replay is the evolving-history experiment driver: an election sequence
// in which voters accumulate track records issue by issue, the surrogate
// (observed-accuracy) instance drifts a few competencies per period, and
// mechanisms are re-evaluated against the drifting surrogate. The
// surrogate plan advances through election.Plan.ApplyDelta — one sparse
// competency-delta batch per period — so a T-period replay pays one plan
// construction plus T incremental patches, while remaining bit-identical
// to rebuilding the plan from scratch every period (the R4 experiment
// re-verifies this per period using each step's EvalSeed and
// Competencies snapshot).

import (
	"context"
	"fmt"
	"strconv"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// ReplayOptions configures an election-sequence replay.
type ReplayOptions struct {
	// Periods is the number of recorded election periods (default 10).
	Periods int
	// IssuesPerPeriod is the number of observed issues between elections
	// (default 4).
	IssuesPerPeriod int
	// Participation is each voter's per-issue participation probability
	// (default 0.5).
	Participation float64
	// Alpha is the approval margin used for misdelegation accounting.
	Alpha float64
	// Replications and Workers configure the per-period mechanism
	// evaluation (defaults follow election.Options).
	Replications int
	Workers      int
}

func (o ReplayOptions) withDefaults() (ReplayOptions, error) {
	if o.Periods <= 0 {
		o.Periods = 10
	}
	if o.IssuesPerPeriod <= 0 {
		o.IssuesPerPeriod = 4
	}
	if o.Participation == 0 {
		o.Participation = 0.5
	}
	if o.Participation < 0 || o.Participation > 1 {
		return o, fmt.Errorf("%w: participation %v not in [0,1]", ErrInvalidHistory, o.Participation)
	}
	if o.Alpha < 0 {
		return o, fmt.Errorf("%w: negative alpha %v", ErrInvalidHistory, o.Alpha)
	}
	return o, nil
}

// ReplayStep records one period of a replay.
type ReplayStep struct {
	// Period is the step index (0-based).
	Period int
	// SurrogatePD and SurrogatePM are the mechanism evaluation against
	// the period's surrogate instance (exact P^D, replicated P^M).
	SurrogatePD float64
	SurrogatePM float64
	// TruthPM scores one surrogate-informed delegation profile against
	// the TRUE competencies, exactly.
	TruthPM float64
	// Misdelegation is the fraction of that profile's delegation edges
	// not truly approved at Alpha.
	Misdelegation float64
	// EvalSeed is the seed the period's evaluation used; together with
	// Competencies it lets a verifier rebuild the period from scratch.
	EvalSeed     uint64
	Competencies []float64
}

// Replay runs an election sequence over a growing partial-participation
// history. Per period: IssuesPerPeriod issues are observed (each voter
// participating with probability Participation), the surrogate plan is
// advanced by the period's sparse competency deltas via ApplyDelta, the
// mechanism is evaluated on the surrogate (SurrogatePD/PM), and one
// realized delegation profile is scored against the true instance through
// a retained Scenario (TruthPM, Misdelegation).
//
// All randomness derives from seed. Results are bit-identical for every
// Workers value (the exact scoring paths are worker-independent, and all
// draws come from per-purpose derived streams). Cancelling ctx aborts
// between periods with ctx's error.
func Replay(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts ReplayOptions, seed uint64) ([]ReplayStep, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := in.N()
	tr := NewTrackRecord(n)
	surrogate, err := tr.SurrogateInstance(in)
	if err != nil {
		return nil, err
	}
	planOpts := election.Options{Replications: opts.Replications, Workers: opts.Workers}
	plan, err := election.NewPlan(surrogate, planOpts)
	if err != nil {
		return nil, err
	}
	truthPlan, err := election.NewPlan(in, planOpts)
	if err != nil {
		return nil, err
	}
	truthSc, err := election.NewScenario(truthPlan, core.NewDelegationGraph(n))
	if err != nil {
		return nil, err
	}

	root := rng.New(seed)
	obs := root.DeriveString("observe")
	participants := make([]int, 0, n)
	touched := make([]bool, n)
	steps := make([]ReplayStep, 0, opts.Periods)
	for period := 0; period < opts.Periods; period++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Observe the period's issues; remember who participated at all.
		for i := range touched {
			touched[i] = false
		}
		for issue := 0; issue < opts.IssuesPerPeriod; issue++ {
			participants = participants[:0]
			for v := 0; v < n; v++ {
				if obs.Bernoulli(opts.Participation) {
					participants = append(participants, v)
					touched[v] = true
				}
			}
			if err := tr.ObserveIssue(in, participants, obs); err != nil {
				return nil, err
			}
		}
		// Advance the surrogate plan by the period's sparse deltas.
		var deltas []election.Delta
		for v := 0; v < n; v++ {
			if touched[v] {
				deltas = append(deltas, election.Delta{Kind: election.DeltaCompetency, Voter: v, P: tr.Accuracy(v)})
			}
		}
		if len(deltas) > 0 {
			if plan, err = plan.ApplyDelta(deltas...); err != nil {
				return nil, err
			}
		}

		evalSeed := rng.Derive(seed, "replay-eval", strconv.Itoa(period))
		results, err := election.EvaluateSweep(ctx, plan, []election.SweepPoint{{Mechanism: mech, Seed: evalSeed}})
		if err != nil {
			return nil, err
		}

		// One realized surrogate-informed profile, scored against truth.
		mechStream := rng.New(rng.Derive(seed, "replay-mech", strconv.Itoa(period)))
		d, err := mech.Apply(plan.Instance(), mechStream)
		if err != nil {
			return nil, err
		}
		if err := truthSc.SetDelegation(d); err != nil {
			return nil, err
		}
		truthPM, err := truthSc.Score()
		if err != nil {
			return nil, err
		}

		steps = append(steps, ReplayStep{
			Period:        period,
			SurrogatePD:   results[0].PD,
			SurrogatePM:   results[0].PM,
			TruthPM:       truthPM,
			Misdelegation: MisdelegationRate(in, d, opts.Alpha),
			EvalSeed:      evalSeed,
			Competencies:  plan.Instance().Competencies(),
		})
	}
	return steps, nil
}
