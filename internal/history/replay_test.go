package history

import (
	"context"
	"errors"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func replayInstance(t *testing.T, n int, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	return mustInstance(t, graph.NewComplete(n), p)
}

func TestObserveIssueValidation(t *testing.T) {
	in := replayInstance(t, 4, 1)
	uniform := &TrackRecord{T: 3, Scores: make([]int, 4)}
	if err := uniform.ObserveIssue(in, []int{0}, rng.New(1)); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("uniform record accepted ObserveIssue: %v", err)
	}
	tr := NewTrackRecord(3)
	if err := tr.ObserveIssue(in, []int{0}, rng.New(1)); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("size mismatch accepted: %v", err)
	}
	tr = NewTrackRecord(4)
	if err := tr.ObserveIssue(in, []int{4}, rng.New(1)); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("out-of-range participant accepted: %v", err)
	}
}

// TestObserveIssueLocality is the sparsity property the delta path relies
// on: an issue only moves its participants' accuracies.
func TestObserveIssueLocality(t *testing.T) {
	in := replayInstance(t, 6, 2)
	tr := NewTrackRecord(6)
	for v := 0; v < 6; v++ {
		if got := tr.Accuracy(v); got != 0.5 {
			t.Fatalf("prior accuracy = %v", got)
		}
	}
	s := rng.New(3)
	if err := tr.ObserveIssue(in, []int{1, 4}, s); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		touched := v == 1 || v == 4
		if (tr.Accuracy(v) != 0.5) != touched {
			t.Fatalf("voter %d: accuracy %v, touched=%v", v, tr.Accuracy(v), touched)
		}
		wantCount := 0
		if touched {
			wantCount = 1
		}
		if tr.Counts[v] != wantCount {
			t.Fatalf("voter %d: count %d", v, tr.Counts[v])
		}
	}
	if tr.T != 1 {
		t.Fatalf("T = %d", tr.T)
	}
}

func TestReplayValidation(t *testing.T) {
	in := replayInstance(t, 5, 1)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	if _, err := Replay(context.Background(), in, mech, ReplayOptions{Participation: -0.1}, 1); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Replay(context.Background(), in, mech, ReplayOptions{Alpha: -1}, 1); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("err = %v", err)
	}
}

// cancelAfterMech cancels a context during its k-th Apply call, which
// lands between periods of a Replay — a deterministic mid-sequence
// cancellation regardless of worker count.
type cancelAfterMech struct {
	inner  mechanism.Mechanism
	cancel context.CancelFunc
	after  int
	calls  int
}

func (m *cancelAfterMech) Name() string { return m.inner.Name() }

func (m *cancelAfterMech) Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error) {
	m.calls++
	if m.calls == m.after {
		m.cancel()
	}
	return m.inner.Apply(in, s)
}

func TestReplayCancellation(t *testing.T) {
	in := replayInstance(t, 10, 4)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Replay(ctx, in, mech, ReplayOptions{Periods: 3}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	// Mid-sequence: the second period's mechanism call cancels, so the
	// third period's top-of-loop check aborts the run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cm := &cancelAfterMech{inner: mech, cancel: cancel2, after: 2}
	steps, err := Replay(ctx2, in, cm, ReplayOptions{Periods: 6, Workers: 1, Replications: 4}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sequence: err = %v", err)
	}
	if steps != nil {
		t.Fatalf("cancelled replay returned %d steps", len(steps))
	}
	if cm.calls != 2 {
		t.Fatalf("mechanism ran %d times after cancellation", cm.calls)
	}
}

// TestReplayDeterministicAcrossWorkers is the reproducibility gate for the
// incremental replay path: the full step sequence must be bit-identical
// for every worker count.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	in := replayInstance(t, 24, 6)
	mech := mechanism.ApprovalThreshold{Alpha: 0.04}
	var base []ReplayStep
	for _, workers := range []int{1, 4, 16} {
		steps, err := Replay(context.Background(), in, mech,
			ReplayOptions{Periods: 6, IssuesPerPeriod: 3, Participation: 0.4, Alpha: 0.04, Replications: 8, Workers: workers}, 17)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = steps
			continue
		}
		if len(steps) != len(base) {
			t.Fatalf("workers=%d: %d steps vs %d", workers, len(steps), len(base))
		}
		for i := range steps {
			a, b := base[i], steps[i]
			if math.Float64bits(a.SurrogatePD) != math.Float64bits(b.SurrogatePD) ||
				math.Float64bits(a.SurrogatePM) != math.Float64bits(b.SurrogatePM) ||
				math.Float64bits(a.TruthPM) != math.Float64bits(b.TruthPM) ||
				math.Float64bits(a.Misdelegation) != math.Float64bits(b.Misdelegation) ||
				a.EvalSeed != b.EvalSeed {
				t.Fatalf("workers=%d period %d: steps differ: %+v vs %+v", workers, i, a, b)
			}
			for v := range a.Competencies {
				if math.Float64bits(a.Competencies[v]) != math.Float64bits(b.Competencies[v]) {
					t.Fatalf("workers=%d period %d: competency %d differs", workers, i, v)
				}
			}
		}
	}
}

// TestReplaySurrogateMatchesFreshPlan re-runs each period's evaluation on
// a from-scratch plan built from the step's Competencies snapshot and
// EvalSeed; the delta-chained plan must agree bit-for-bit.
func TestReplaySurrogateMatchesFreshPlan(t *testing.T) {
	in := replayInstance(t, 20, 8)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	opts := ReplayOptions{Periods: 5, IssuesPerPeriod: 2, Participation: 0.5, Alpha: 0.05, Replications: 8, Workers: 2}
	steps, err := Replay(context.Background(), in, mech, opts, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		fresh, err := core.NewInstance(in.Topology(), st.Competencies)
		if err != nil {
			t.Fatalf("period %d: %v", st.Period, err)
		}
		plan, err := election.NewPlan(fresh, election.Options{Replications: opts.Replications, Workers: opts.Workers})
		if err != nil {
			t.Fatalf("period %d: %v", st.Period, err)
		}
		results, err := election.EvaluateSweep(context.Background(), plan,
			[]election.SweepPoint{{Mechanism: mech, Seed: st.EvalSeed}})
		if err != nil {
			t.Fatalf("period %d: %v", st.Period, err)
		}
		if math.Float64bits(results[0].PD) != math.Float64bits(st.SurrogatePD) {
			t.Fatalf("period %d: chained PD %v != fresh %v", st.Period, st.SurrogatePD, results[0].PD)
		}
		if math.Float64bits(results[0].PM) != math.Float64bits(st.SurrogatePM) {
			t.Fatalf("period %d: chained PM %v != fresh %v", st.Period, st.SurrogatePM, results[0].PM)
		}
	}
}

// TestReplayLearns: with enough observation the surrogate tracks truth, so
// misdelegation should end no higher than it started on average.
func TestReplayLearns(t *testing.T) {
	in := replayInstance(t, 30, 12)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	steps, err := Replay(context.Background(), in, mech,
		ReplayOptions{Periods: 12, IssuesPerPeriod: 8, Participation: 0.8, Alpha: 0.05, Replications: 8, Workers: 2}, 31)
	if err != nil {
		t.Fatal(err)
	}
	first, last := steps[0], steps[len(steps)-1]
	if last.Misdelegation > first.Misdelegation+0.25 {
		t.Fatalf("misdelegation rose sharply: %v -> %v", first.Misdelegation, last.Misdelegation)
	}
	if last.TruthPM <= 0 || last.TruthPM >= 1 {
		t.Fatalf("TruthPM out of range: %v", last.TruthPM)
	}
}
