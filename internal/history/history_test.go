package history

import (
	"errors"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func mustInstance(t *testing.T, top graph.Topology, p []float64) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSimulateValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.2, 0.5, 0.8})
	if _, err := Simulate(in, 0, rng.New(1)); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("err = %v", err)
	}
}

func TestScoresTrackCompetency(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.1, 0.5, 0.9})
	tr, err := Simulate(in, 2000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		got := float64(tr.Scores[v]) / float64(tr.T)
		if math.Abs(got-in.Competency(v)) > 0.05 {
			t.Fatalf("voter %d observed accuracy %v, competency %v", v, got, in.Competency(v))
		}
	}
}

func TestAccuracySmoothing(t *testing.T) {
	tr := &TrackRecord{T: 2, Scores: []int{0, 2}}
	if got := tr.Accuracy(0); got != 0.25 {
		t.Fatalf("Accuracy(0) = %v, want 0.25", got)
	}
	if got := tr.Accuracy(1); got != 0.75 {
		t.Fatalf("Accuracy(1) = %v, want 0.75", got)
	}
}

func TestApprovesFromRecord(t *testing.T) {
	tr := &TrackRecord{T: 10, Scores: []int{2, 8}}
	if !tr.Approves(0, 1, 0.2) {
		t.Fatal("strong record should be approved")
	}
	if tr.Approves(1, 0, 0.2) {
		t.Fatal("weak record approved")
	}
}

func TestSurrogateInstance(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), []float64{0.2, 0.4, 0.6, 0.8})
	tr, err := Simulate(in, 500, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sur, err := tr.SurrogateInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if sur.N() != 4 {
		t.Fatalf("N = %d", sur.N())
	}
	for v := 0; v < 4; v++ {
		if p := sur.Competency(v); p <= 0 || p >= 1 {
			t.Fatalf("surrogate competency %v not in (0,1)", p)
		}
		if math.Abs(sur.Competency(v)-in.Competency(v)) > 0.1 {
			t.Fatalf("surrogate %v far from truth %v at t=500", sur.Competency(v), in.Competency(v))
		}
	}
	// Size mismatch is rejected.
	other := mustInstance(t, graph.NewComplete(2), []float64{0.5, 0.5})
	if _, err := tr.SurrogateInstance(other); !errors.Is(err, ErrInvalidHistory) {
		t.Fatalf("err = %v", err)
	}
}

func TestMisdelegationRate(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.2, 0.5, 0.8})
	d := core.NewDelegationGraph(3)
	if MisdelegationRate(in, d, 0.1) != 0 {
		t.Fatal("empty delegation should have rate 0")
	}
	// 0 -> 2 is truly approved; 2 -> 0 is not.
	if err := d.SetDelegate(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDelegate(2, 0); err != nil {
		t.Fatal(err)
	}
	if got := MisdelegationRate(in, d, 0.1); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
}

func TestLongHistoryConvergesToTrueApprovals(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(10), []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.95})
	tr, err := Simulate(in, 20000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// With a long history and a margin well below the competency gaps,
	// estimated approvals should match true approvals for clearly separated
	// pairs (gap >= 2*alpha).
	const alpha = 0.04
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i == j {
				continue
			}
			gap := in.Competency(j) - in.Competency(i)
			switch {
			case gap >= 2*alpha:
				if !tr.Approves(i, j, alpha) {
					t.Fatalf("long history missed clear approval %d->%d (gap %v)", i, j, gap)
				}
			case gap <= 0:
				if tr.Approves(i, j, alpha) {
					t.Fatalf("long history approved downward %d->%d", i, j)
				}
			}
		}
	}
}
