package popmodel_test

import (
	"context"
	"fmt"

	"liquid/internal/mechanism"
	"liquid/internal/popmodel"
	"liquid/internal/prob"
)

// Example evaluates probabilistic positive gain over a competency
// distribution (the Halpern et al. setting the paper's Section 6 bridges
// to).
func Example() {
	pop := popmodel.Population{
		Competency: prob.UniformSampler{Lo: 0.30, Hi: 0.49},
	}
	v, err := popmodel.Evaluate(context.Background(), pop, mechanism.ApprovalThreshold{Alpha: 0.05}, popmodel.EvaluateOptions{
		N:            201,
		Instances:    6,
		Replications: 8,
		Seed:         11,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("instances with positive gain:", v.FracPositive == 1)
	fmt.Println("no instance shows nontrivial harm:", v.FracHarmful == 0)
	// Output:
	// instances with positive gain: true
	// no instance shows nontrivial harm: true
}
