// Package popmodel implements the probabilistic-competency setting the
// paper's Section 6 proposes as the bridge to Halpern et al.: instead of a
// fixed competency vector, each instance draws competencies from a
// distribution, and the desiderata become probabilistic — positive gain and
// do-no-harm must hold with high probability over the instance draw.
package popmodel

import (
	"context"
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// ErrInvalidPopulation reports a malformed population model.
var ErrInvalidPopulation = errors.New("popmodel: invalid population")

// TopologyBuilder produces a topology for n voters.
type TopologyBuilder func(n int, s *rng.Stream) (graph.Topology, error)

// CompleteTopology is the K_n builder (the Halpern et al. setting).
func CompleteTopology(n int, _ *rng.Stream) (graph.Topology, error) {
	return graph.NewComplete(n), nil
}

// Population describes a distribution over problem instances: a topology
// family plus a competency distribution.
type Population struct {
	// Topology builds the voting graph; nil means complete.
	Topology TopologyBuilder
	// Competency samples one voter's competency; required.
	Competency prob.Sampler
}

// Sample draws one instance of size n.
func (pop Population) Sample(n int, s *rng.Stream) (*core.Instance, error) {
	if pop.Competency == nil {
		return nil, fmt.Errorf("%w: nil competency sampler", ErrInvalidPopulation)
	}
	build := pop.Topology
	if build == nil {
		build = CompleteTopology
	}
	top, err := build(n, s.DeriveString("topology"))
	if err != nil {
		return nil, err
	}
	comp := s.DeriveString("competency")
	p := make([]float64, top.N())
	for i := range p {
		v := pop.Competency.Sample(comp)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		p[i] = v
	}
	return core.NewInstance(top, p)
}

// Verdict summarizes a mechanism's behaviour over the instance
// distribution: the probabilistic analogues of positive gain and do no
// harm.
type Verdict struct {
	Mechanism string
	N         int
	Instances int

	// MeanGain is the average gain over instance draws; Gains holds every
	// per-instance gain.
	MeanGain float64
	Gains    []float64
	// FracPositive is the fraction of instances with strictly positive
	// gain; FracHarmful the fraction with loss exceeding HarmEps.
	FracPositive float64
	FracHarmful  float64
	HarmEps      float64
	// WorstLoss is the largest observed loss (0 if none).
	WorstLoss float64
}

// EvaluateOptions configures a population evaluation.
type EvaluateOptions struct {
	// N is the instance size. Required.
	N int
	// Instances is the number of instance draws (default 20).
	Instances int
	// HarmEps is the loss threshold counted as harm (default 0.01).
	HarmEps float64
	// Replications per instance for the election engine (default 16).
	Replications int
	// Seed drives all randomness.
	Seed uint64
}

// Evaluate measures the probabilistic positive-gain / do-no-harm behaviour
// of mech over the population. Cancelling ctx aborts the instance loop with
// ctx's error.
func Evaluate(ctx context.Context, pop Population, mech mechanism.Mechanism, opts EvaluateOptions) (*Verdict, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("%w: instance size %d", ErrInvalidPopulation, opts.N)
	}
	if opts.Instances <= 0 {
		opts.Instances = 20
	}
	if opts.HarmEps <= 0 {
		opts.HarmEps = 0.01
	}
	if opts.Replications <= 0 {
		opts.Replications = 16
	}

	root := rng.New(opts.Seed)
	v := &Verdict{
		Mechanism: mech.Name(),
		N:         opts.N,
		Instances: opts.Instances,
		HarmEps:   opts.HarmEps,
		Gains:     make([]float64, 0, opts.Instances),
	}
	positive, harmful := 0, 0
	for i := 0; i < opts.Instances; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		in, err := pop.Sample(opts.N, root.Derive(uint64(i)+1))
		if err != nil {
			return nil, err
		}
		res, err := election.EvaluateMechanism(ctx, in, mech, election.Options{
			Replications: opts.Replications,
			Seed:         rng.Derive(opts.Seed, fmt.Sprintf("instance=%d", i)),
		})
		if err != nil {
			return nil, err
		}
		v.Gains = append(v.Gains, res.Gain)
		v.MeanGain += res.Gain
		if res.Gain > 0 {
			positive++
		}
		if loss := -res.Gain; loss > opts.HarmEps {
			harmful++
		}
		if loss := -res.Gain; loss > v.WorstLoss {
			v.WorstLoss = loss
		}
	}
	v.MeanGain /= float64(opts.Instances)
	v.FracPositive = float64(positive) / float64(opts.Instances)
	v.FracHarmful = float64(harmful) / float64(opts.Instances)
	return v, nil
}
