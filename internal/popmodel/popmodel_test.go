package popmodel

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

func TestSampleValidation(t *testing.T) {
	if _, err := (Population{}).Sample(10, rng.New(1)); !errors.Is(err, ErrInvalidPopulation) {
		t.Fatalf("err = %v", err)
	}
}

func TestSampleDefaultsToComplete(t *testing.T) {
	pop := Population{Competency: prob.UniformSampler{Lo: 0.3, Hi: 0.7}}
	in, err := pop.Sample(12, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 12 {
		t.Fatalf("N = %d", in.N())
	}
	if _, ok := in.Topology().(graph.Complete); !ok {
		t.Fatal("default topology should be complete")
	}
	for i := 0; i < 12; i++ {
		p := in.Competency(i)
		if p < 0.3 || p > 0.7 {
			t.Fatalf("competency %v out of sampler range", p)
		}
	}
}

func TestSampleClampsCompetencies(t *testing.T) {
	pop := Population{Competency: prob.ConstantSampler{Value: 1.5}}
	in, err := pop.Sample(3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if in.Competency(0) != 1 {
		t.Fatalf("competency %v, want clamped 1", in.Competency(0))
	}
}

func TestSampleCustomTopology(t *testing.T) {
	pop := Population{
		Topology: func(n int, s *rng.Stream) (graph.Topology, error) {
			return graph.RandomRegular(n, 4, s)
		},
		Competency: prob.UniformSampler{Lo: 0.4, Hi: 0.6},
	}
	in, err := pop.Sample(20, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsRegular(in.Topology(), 4) {
		t.Fatal("custom topology not used")
	}
}

func TestSampleDeterministic(t *testing.T) {
	pop := Population{Competency: prob.UniformSampler{Lo: 0, Hi: 1}}
	a, err := pop.Sample(10, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pop.Sample(10, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.Competency(i) != b.Competency(i) {
			t.Fatal("sampling must be deterministic in the stream")
		}
	}
}

func TestEvaluateProbabilisticGain(t *testing.T) {
	// Competencies centred below 1/2: delegation should gain on (almost)
	// every instance draw.
	pop := Population{Competency: prob.UniformSampler{Lo: 0.30, Hi: 0.49}}
	v, err := Evaluate(context.Background(), pop, mechanism.ApprovalThreshold{Alpha: 0.05}, EvaluateOptions{
		N: 201, Instances: 8, Replications: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Instances != 8 || len(v.Gains) != 8 {
		t.Fatalf("verdict %+v", v)
	}
	if v.MeanGain <= 0 {
		t.Fatalf("mean gain %v", v.MeanGain)
	}
	if v.FracPositive < 0.9 {
		t.Fatalf("FracPositive = %v", v.FracPositive)
	}
	if v.FracHarmful > 0 {
		t.Fatalf("FracHarmful = %v", v.FracHarmful)
	}
}

func TestEvaluateDirectNeverHarmsOrGains(t *testing.T) {
	pop := Population{Competency: prob.UniformSampler{Lo: 0.4, Hi: 0.6}}
	v, err := Evaluate(context.Background(), pop, mechanism.Direct{}, EvaluateOptions{
		N: 101, Instances: 5, Replications: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.MeanGain != 0 || v.FracPositive != 0 || v.FracHarmful != 0 || v.WorstLoss != 0 {
		t.Fatalf("direct verdict %+v", v)
	}
}

func TestEvaluateValidation(t *testing.T) {
	pop := Population{Competency: prob.UniformSampler{Lo: 0.4, Hi: 0.6}}
	if _, err := Evaluate(context.Background(), pop, mechanism.Direct{}, EvaluateOptions{N: 0}); !errors.Is(err, ErrInvalidPopulation) {
		t.Fatalf("err = %v", err)
	}
}
