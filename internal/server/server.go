package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/engine"
	"liquid/internal/fault"
	"liquid/internal/prob"
	"liquid/internal/telemetry"
)

// Config tunes the serving stack. The zero value serves with the defaults
// documented per field.
type Config struct {
	// MaxBody caps request bodies in bytes (default 1 MiB).
	MaxBody int64
	// Shards is the worker-pool width (default GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's queue (default 64). The admission
	// controller's global queue bound is Shards*QueueDepth.
	QueueDepth int
	// MaxCost bounds the DP-unit cost of admitted-but-unfinished work
	// (default 1 << 28). See EstimateCost.
	MaxCost int64
	// CostRate calibrates the degradation ladder: DP units the exact engine
	// is assumed to process per second (default 50e6, deliberately
	// conservative so the ladder degrades early rather than blowing a
	// deadline late).
	CostRate float64
	// DefaultDeadline applies when a request names none (default 5s);
	// MaxDeadline clamps what a request may ask for (default 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the hint sent with 429/503 sheds (default 1s).
	RetryAfter time.Duration
	// Retries bounds transient-failure retries per request (default 2);
	// Backoff's zero value uses the engine defaults (100ms doubling to 2s).
	Retries int
	Backoff engine.Backoff
	// ExactCostLimit is forwarded to election.Options (default 1 << 23);
	// Replications likewise (default 64). Workers bounds the per-request
	// evaluation parallelism (default 1: the serving layer's parallelism is
	// across requests, not within them).
	ExactCostLimit int64
	Replications   int
	Workers        int
	// ChaosHook, when set, runs before each task executes (shard index and
	// the shard's task sequence number). Errors are returned as the task's
	// result; panics exercise the recovery path. Test-only.
	ChaosHook func(shard int, seq uint64) error
}

func (c Config) withDefaults() Config {
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxCost <= 0 {
		c.MaxCost = 1 << 28
	}
	if c.CostRate <= 0 {
		c.CostRate = 50e6
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.ExactCostLimit <= 0 {
		c.ExactCostLimit = 1 << 23
	}
	if c.Replications <= 0 {
		c.Replications = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Stats is the server's request accounting. Every request the listener
// delivered lands in exactly one bucket:
//
//	Received == Malformed + Shed + Completed + Failed + Expired
//
// at any quiescent point. Load generators check the same identity from the
// outside.
type Stats struct {
	Received  uint64 `json:"received"`
	Malformed uint64 `json:"malformed"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Expired   uint64 `json:"expired"`
}

// Server is the election-evaluation daemon: handlers, admission control,
// and the worker pool. Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg  Config
	adm  *admission
	pool *pool
	mux  *http.ServeMux
	seq  atomic.Uint64

	// drainMu guards submission against Close: submitters hold it shared,
	// Close exclusively.
	drainMu  sync.RWMutex
	draining bool

	received  atomic.Uint64
	malformed atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	expired   atomic.Uint64

	hLatency      *telemetry.Histogram
	cRequests     *telemetry.Counter
	cWhatIfDeltas *telemetry.Counter

	scenarios *scenarioCache
}

// New builds a Server and starts its worker shards.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:           cfg,
		adm:           newAdmission(cfg.Shards*cfg.QueueDepth, cfg.MaxCost),
		pool:          newPool(cfg.Shards, cfg.QueueDepth, cfg.Retries, cfg.Backoff, cfg.ChaosHook),
		mux:           http.NewServeMux(),
		hLatency:      telemetry.NewHistogram("server/latency_seconds", 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10),
		cRequests:     telemetry.NewCounter("server/requests"),
		cWhatIfDeltas: telemetry.NewCounter("server/whatif_deltas"),
		scenarios:     newScenarioCache(),
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/whatif", s.handleWhatIf)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool: in-flight and queued tasks finish (their
// deadlines still apply), new requests are shed with 503, and the workers
// exit. Safe to call once.
func (s *Server) Close() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.pool.close()
}

// Stats returns the current request accounting.
func (s *Server) Stats() Stats {
	return Stats{
		Received:  s.received.Load(),
		Malformed: s.malformed.Load(),
		Shed:      s.adm.shed.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Expired:   s.expired.Load(),
	}
}

// PointResult is one sweep point of an evaluate response: an
// election.Result (or fault.ElectionResult) without the cache-traffic
// telemetry fields, which depend on goroutine scheduling and would break
// the bit-identity contract with offline evaluation.
type PointResult struct {
	Mechanism string  `json:"mechanism"`
	Alpha     float64 `json:"alpha"`
	N         int     `json:"n"`
	PM        float64 `json:"pm"`
	PMStdErr  float64 `json:"pm_stderr"`
	PD        float64 `json:"pd"`
	Gain      float64 `json:"gain"`
	GainLo    float64 `json:"gain_lo,omitempty"`
	GainHi    float64 `json:"gain_hi,omitempty"`

	MeanDelegators   float64 `json:"mean_delegators"`
	MeanSinks        float64 `json:"mean_sinks"`
	MeanMaxWeight    float64 `json:"mean_max_weight"`
	MaxMaxWeight     int     `json:"max_max_weight"`
	MeanLongestChain float64 `json:"mean_longest_chain"`

	// Fault-evaluation extras (requests with a fault block).
	Policy          string  `json:"policy,omitempty"`
	MeanDown        float64 `json:"mean_down,omitempty"`
	MeanLost        float64 `json:"mean_lost,omitempty"`
	MeanFellBack    float64 `json:"mean_fell_back,omitempty"`
	MeanRedelegated float64 `json:"mean_redelegated,omitempty"`

	// ErrorBound is the certified Berry–Esseen bound on |reported − exact|
	// for approximate results (see election.ApproxResult).
	ErrorBound float64 `json:"error_bound,omitempty"`

	// PDTier names the approximation-ladder tier that produced PD: the cost
	// model's kernel tier ("exact" or "fft") on the exact rung, "normal" on
	// the approximate rung. Empty for fault evaluations, whose PD comes from
	// the fault engine's own replication loop.
	PDTier string `json:"pd_tier,omitempty"`
}

// EvaluateResponse is the /v1/evaluate reply: one result per alpha point,
// flagged when the degradation ladder substituted the certified normal
// approximation for the exact engine.
type EvaluateResponse struct {
	Results     []PointResult `json:"results"`
	Approximate bool          `json:"approximate,omitempty"`
}

// WhatIfResponse is the /v1/whatif reply: one explicit delegation profile
// scored against its instance. For delta requests every field describes
// the post-delta election, and DeltasApplied echoes the edit count.
type WhatIfResponse struct {
	PM            float64 `json:"pm"`
	PD            float64 `json:"pd"`
	Gain          float64 `json:"gain"`
	Sinks         int     `json:"sinks"`
	MaxWeight     int     `json:"max_weight"`
	TotalWeight   int     `json:"total_weight"`
	Delegators    int     `json:"delegators"`
	LongestChain  int     `json:"longest_chain"`
	DeltasApplied int     `json:"deltas_applied,omitempty"`
	Approximate   bool    `json:"approximate,omitempty"`
	ErrorBound    float64 `json:"error_bound,omitempty"`

	// Ladder fields (requests with an error_budget): the approximation-ladder
	// tier that produced each probability and its certified half-width, so a
	// client can machine-check |reported − exact| <= half-width.
	PDTier      string  `json:"pd_tier,omitempty"`
	PDHalfWidth float64 `json:"pd_half_width,omitempty"`
	PMTier      string  `json:"pm_tier,omitempty"`
	PMHalfWidth float64 `json:"pm_half_width,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The request context is unused on purpose: liveness has no evaluation
	// to cancel. Forwarding r keeps the handler honest under ctxflow rule 4.
	_ = r.Context()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	_ = r.Context()
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleEvaluate serves /v1/evaluate: decode and validate, derive the
// request deadline, admit or shed, then run the degradation ladder on a
// worker shard.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.received.Add(1)
	s.cRequests.Inc()
	defer func() { s.hLatency.Observe(time.Since(start).Seconds()) }()

	body, aerr := s.readBody(w, r.Body)
	if aerr != nil {
		s.malformed.Add(1)
		writeError(w, aerr)
		return
	}
	parsed, aerr := ParseEvaluateRequest(body)
	if aerr != nil {
		s.malformed.Add(1)
		writeError(w, aerr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(parsed.Req.DeadlineMS))
	defer cancel()

	reps := parsed.Req.Replications
	if reps == 0 {
		reps = s.cfg.Replications
	}
	cost := int64(len(parsed.Alphas)) * EstimateCost(parsed.Instance.N(), reps, s.cfg.ExactCostLimit)

	var resp *EvaluateResponse
	s.dispatch(ctx, w, cost, func(ctx context.Context) error {
		var err error
		resp, err = s.evaluate(ctx, parsed, reps, cost)
		return err
	}, func() { writeJSON(w, http.StatusOK, resp) })
}

// handleWhatIf serves /v1/whatif.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.received.Add(1)
	s.cRequests.Inc()
	defer func() { s.hLatency.Observe(time.Since(start).Seconds()) }()

	body, aerr := s.readBody(w, r.Body)
	if aerr != nil {
		s.malformed.Add(1)
		writeError(w, aerr)
		return
	}
	parsed, aerr := ParseWhatIfRequest(body)
	if aerr != nil {
		s.malformed.Add(1)
		writeError(w, aerr)
		return
	}
	// Cycles are a property of the request, not of evaluation: resolve the
	// post-delta profile once up front so a cyclic profile is a typed 400,
	// before admission. With no deltas this is the base profile itself.
	res, err := parsed.FinalGraph.Resolve()
	if err != nil {
		s.malformed.Add(1)
		writeError(w, badRequest(CodeBadRequest, "resolving delegations: %v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(parsed.Req.DeadlineMS))
	defer cancel()

	// Delta requests get their own admission cost class: patching a
	// retained scenario is far cheaper than a from-scratch evaluation, and
	// pricing it honestly is what lets the daemon admit a deeper what-if
	// stream at the same cost budget.
	cost := EstimateCost(parsed.Instance.N(), 1, s.cfg.ExactCostLimit)
	if len(parsed.Deltas) > 0 {
		s.cWhatIfDeltas.Inc()
		cost = EstimateWhatIfDeltaCost(parsed.FinalInstance.N(), len(parsed.Deltas), s.cfg.ExactCostLimit)
	}
	if parsed.Req.ErrorBudget > 0 {
		// Budgeted requests are scored through the approximation ladder, and
		// admission prices them at the ladder's cost — the admission-visible
		// form of the scale tier's win.
		cost = EstimateLadderCost(parsed.FinalInstance.N(), parsed.Req.ErrorBudget)
	}
	var resp *WhatIfResponse
	s.dispatch(ctx, w, cost, func(ctx context.Context) error {
		var err error
		resp, err = s.whatIf(ctx, parsed, res, cost)
		return err
	}, func() { writeJSON(w, http.StatusOK, resp) })
}

// readBody drains the capped request body.
func (s *Server) readBody(w http.ResponseWriter, rc io.ReadCloser) ([]byte, *Error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, rc, s.cfg.MaxBody))
	if err != nil {
		if aerr := maxBytesError(err); aerr != nil {
			return nil, aerr
		}
		return nil, badRequest(CodeBadRequest, "reading body: %v", err)
	}
	return body, nil
}

// deadline resolves a request's deadline_ms against the server bounds.
func (s *Server) deadline(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// dispatch pushes fn through admission and the worker pool, accounts the
// outcome, and writes the response: ok on success, a typed error
// otherwise. It returns by ctx's deadline no matter what the workers do.
func (s *Server) dispatch(ctx context.Context, w http.ResponseWriter, cost int64, fn func(context.Context) error, ok func()) {
	// The task's reservation is released by the worker (via task.release)
	// once it finishes or skips the task — not when this handler returns,
	// because an abandoned task still occupies its shard.
	t := s.newTask(ctx, cost, fn)
	if status, admitted := s.admitAndSubmit(t, cost); !admitted {
		s.shedResponse(w, status)
		return
	}
	select {
	case err := <-t.done:
		s.writeOutcome(w, err, ok)
	case <-ctx.Done():
		s.expired.Add(1)
		writeError(w, &Error{Code: CodeDeadlineExceeded, Message: "deadline expired before evaluation completed", Status: http.StatusGatewayTimeout})
	}
}

// admitAndSubmit applies the admission gate and queues the task, all under
// the drain lock so Close cannot close a shard channel between the two
// steps. On refusal it returns the shed status: 503 while draining, 429
// otherwise.
func (s *Server) admitAndSubmit(t *task, cost int64) (status int, admitted bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		s.adm.shed.Add(1)
		s.adm.cShed.Inc()
		return http.StatusServiceUnavailable, false
	}
	if !s.adm.admit(cost) {
		return http.StatusTooManyRequests, false
	}
	if !s.pool.submit(s.seq.Add(1), t) {
		s.adm.release(cost)
		s.adm.shed.Add(1)
		s.adm.cShed.Inc()
		return http.StatusTooManyRequests, false
	}
	return 0, true
}

// newTask wraps fn with the admission release.
func (s *Server) newTask(ctx context.Context, cost int64, fn func(context.Context) error) *task {
	return &task{
		ctx:     ctx,
		run:     fn,
		release: func() { s.adm.release(cost) },
		done:    make(chan error, 1),
	}
}

// writeOutcome classifies a finished task's error and writes the response.
func (s *Server) writeOutcome(w http.ResponseWriter, err error, ok func()) {
	switch {
	case err == nil:
		s.completed.Add(1)
		ok()
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.expired.Add(1)
		writeError(w, &Error{Code: CodeDeadlineExceeded, Message: "deadline expired during evaluation", Status: http.StatusGatewayTimeout})
	default:
		s.failed.Add(1)
		if aerr, okErr := err.(*Error); okErr {
			writeError(w, aerr)
		} else {
			writeError(w, &Error{Code: CodeInternal, Message: err.Error(), Status: http.StatusInternalServerError})
		}
	}
}

func (s *Server) shedResponse(w http.ResponseWriter, status int) {
	w.Header().Set("Retry-After", itoa(int(s.cfg.RetryAfter.Round(time.Second)/time.Second)))
	writeError(w, &Error{Code: CodeShed, Message: "admission budget exhausted; retry later", Status: status})
}

// evaluate runs the degradation ladder for one evaluate request on a
// worker shard. Rungs: exact sweep when the deadline budget affords its
// DP-unit cost at the calibrated rate; otherwise the certified normal
// approximation; otherwise (no budget at all) the deadline error.
func (s *Server) evaluate(ctx context.Context, parsed *ParsedEvaluate, reps int, cost int64) (*EvaluateResponse, error) {
	opts := election.Options{
		Replications:   reps,
		ExactCostLimit: s.cfg.ExactCostLimit,
		Workers:        s.cfg.Workers,
		Seed:           parsed.Req.Seed,
	}
	budget := s.budget(ctx)
	if budget <= 0 {
		return nil, context.DeadlineExceeded
	}
	if parsed.Req.Fault != nil {
		// Fault evaluation has no approximate rung: the fault engine's
		// replications are the quantity of interest, so it runs exact and
		// lets the deadline cancel it if the budget was optimistic.
		return s.evaluateFault(ctx, parsed, opts)
	}
	if s.affords(cost, budget) {
		plan, err := election.NewPlan(parsed.Instance, opts)
		if err != nil {
			return nil, err
		}
		plan.PrewarmApproval(parsed.Alphas...)
		points := make([]election.SweepPoint, len(parsed.Mechanisms))
		for i, mech := range parsed.Mechanisms {
			points[i] = election.SweepPoint{Mechanism: mech, Seed: parsed.Req.Seed, Replications: reps}
		}
		results, err := election.EvaluateSweep(ctx, plan, points)
		if err != nil {
			return nil, err
		}
		resp := &EvaluateResponse{}
		for i, res := range results {
			resp.Results = append(resp.Results, exactPoint(res, parsed.Alphas[i]))
		}
		return resp, nil
	}
	// Approximate rung: mechanism realizations stay exact (same RNG
	// discipline), scoring drops to the certified normal approximation.
	resp := &EvaluateResponse{Approximate: true}
	for i, mech := range parsed.Mechanisms {
		res, err := election.EvaluateMechanismApprox(ctx, parsed.Instance, mech, opts)
		if err != nil {
			return nil, err
		}
		pt := exactPoint(&res.Result, parsed.Alphas[i])
		pt.ErrorBound = res.ErrorBound
		pt.PDTier = prob.TierNormal.String()
		resp.Results = append(resp.Results, pt)
	}
	return resp, nil
}

// evaluateFault routes a fault-block request through the fault engine,
// sharing the score cache across the sweep's points.
func (s *Server) evaluateFault(ctx context.Context, parsed *ParsedEvaluate, opts election.Options) (*EvaluateResponse, error) {
	f := parsed.Req.Fault
	points := make([]fault.SweepPoint, len(parsed.Mechanisms))
	for i, mech := range parsed.Mechanisms {
		points[i] = fault.SweepPoint{Mechanism: mech, Opts: fault.ElectionOptions{
			Options:     opts,
			DownRate:    f.DownRate,
			AbstainRate: f.AbstainRate,
			Policy:      parsed.Policy,
			Alpha:       f.Alpha,
		}}
	}
	results, err := fault.EvaluateSweep(ctx, parsed.Instance, points)
	if err != nil {
		return nil, err
	}
	resp := &EvaluateResponse{}
	for i, res := range results {
		resp.Results = append(resp.Results, PointResult{
			Mechanism:       res.Mechanism,
			Alpha:           parsed.Alphas[i],
			N:               res.N,
			PM:              res.PM,
			PMStdErr:        res.PMStdErr,
			PD:              res.PD,
			Gain:            res.Gain,
			Policy:          res.Policy.String(),
			MeanDown:        res.MeanDown,
			MeanLost:        res.MeanLost,
			MeanFellBack:    res.MeanFellBack,
			MeanRedelegated: res.MeanRedelegated,
		})
	}
	return resp, nil
}

// whatIf scores one explicit delegation profile: exact when the budget
// affords it, else the certified normal approximation. Delta requests
// route the exact rung through the retained-scenario cache; every rung
// scores the post-delta election, and the delta rung's answers are
// bit-identical to the from-scratch exact path on the same election.
func (s *Server) whatIf(ctx context.Context, parsed *ParsedWhatIf, res *core.Resolution, cost int64) (*WhatIfResponse, error) {
	budget := s.budget(ctx)
	if budget <= 0 {
		return nil, context.DeadlineExceeded
	}
	in := parsed.FinalInstance
	resp := &WhatIfResponse{
		Sinks:         len(res.Sinks),
		MaxWeight:     res.MaxWeight,
		TotalWeight:   res.TotalWeight,
		Delegators:    res.Delegators,
		LongestChain:  res.LongestChain,
		DeltasApplied: len(parsed.Deltas),
	}
	exactOK := in.N() <= 4096 && s.affords(cost, budget)
	switch {
	case parsed.Req.ErrorBudget > 0:
		// Budgeted rung: score through the certified approximation ladder.
		// This takes priority over the retained-scenario path — the ladder
		// works from the post-delta election directly.
		if err := s.whatIfLadder(ctx, parsed, res, resp, budget, exactOK); err != nil {
			return nil, err
		}
	case exactOK && len(parsed.Deltas) > 0:
		pm, pd, err := s.scenarios.score(parsed, s.cfg.ExactCostLimit)
		if err != nil {
			return nil, err
		}
		resp.PM, resp.PD = pm, pd
	case exactOK:
		pm, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		pd, err := election.DirectProbabilityExact(in)
		if err != nil {
			return nil, err
		}
		resp.PM, resp.PD = pm, pd
	default:
		pm, pmBound := election.ApproximateResolution(in, res)
		pd := election.DirectNormalApproximation(in).SF(float64(in.N()) / 2)
		pdBound := prob.BerryEsseenBound(in.Competencies())
		resp.PM, resp.PD = pm, pd
		resp.Approximate = true
		resp.ErrorBound = pmBound + pdBound
	}
	resp.Gain = resp.PM - resp.PD
	return resp, nil
}

// whatIfLadder is the budgeted what-if rung: P^D through prob.LadderMajority
// with a cost budget derived from the remaining deadline at the calibrated
// rate, P^M certified from the resolved sink statistics and escalated to the
// exact weighted DP only when the analytic certificate misses the budget and
// the deadline affords exact. The response carries each probability's tier
// and certified half-width; a half-width above the requested budget means
// the budget was infeasible within the deadline, reported honestly rather
// than rejected — the interval is still rigorous.
func (s *Server) whatIfLadder(ctx context.Context, parsed *ParsedWhatIf, res *core.Resolution, resp *WhatIfResponse, budget time.Duration, exactOK bool) error {
	in := parsed.FinalInstance
	eb := parsed.Req.ErrorBudget
	pd, err := prob.LadderMajority(ctx, prob.SliceSeq{PS: in.Competencies()}, prob.LadderOptions{
		ErrorBudget: eb,
		CostBudget:  int64(0.8 * budget.Seconds() * s.cfg.CostRate),
		Workers:     s.cfg.Workers,
	})
	if err != nil && !errors.Is(err, prob.ErrBudgetInfeasible) {
		return err
	}
	var st prob.SumStats
	for _, sk := range res.Sinks {
		st.Add(float64(res.Weight[sk]), in.Competency(sk))
	}
	pm := prob.CertifyMajority(&st, float64(res.TotalWeight/2))
	if pm.HalfWidth > eb && exactOK {
		point, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return err
		}
		pm = prob.CertifiedInterval{Point: point, HalfWidth: 0, Tier: prob.TierExact}
	}
	resp.PM, resp.PD = pm.Point, pd.Point
	resp.PMTier, resp.PMHalfWidth = pm.Tier.String(), pm.HalfWidth
	resp.PDTier, resp.PDHalfWidth = pd.Tier.String(), pd.HalfWidth
	resp.Approximate = pm.Tier != prob.TierExact || pd.Tier != prob.TierExact
	return nil
}

// budget is the wall-clock time remaining before ctx's deadline.
func (s *Server) budget(ctx context.Context) time.Duration {
	deadline, ok := ctx.Deadline()
	if !ok {
		return s.cfg.MaxDeadline
	}
	return time.Until(deadline)
}

// affords reports whether a DP-unit cost fits a time budget at the
// calibrated rate, with a 20% safety margin for everything the cost model
// does not see (encode, queueing noise, allocator).
func (s *Server) affords(cost int64, budget time.Duration) bool {
	return float64(cost)/s.cfg.CostRate <= 0.8*budget.Seconds()
}

// exactPoint projects an election.Result onto the wire form, dropping the
// scheduling-dependent cache-traffic fields.
func exactPoint(res *election.Result, alpha float64) PointResult {
	return PointResult{
		Mechanism:        res.Mechanism,
		Alpha:            alpha,
		N:                res.N,
		PM:               res.PM,
		PMStdErr:         res.PMStdErr,
		PD:               res.PD,
		Gain:             res.Gain,
		GainLo:           res.GainLo,
		GainHi:           res.GainHi,
		MeanDelegators:   res.MeanDelegators,
		MeanSinks:        res.MeanSinks,
		MeanMaxWeight:    res.MeanMaxWeight,
		MaxMaxWeight:     res.MaxMaxWeight,
		MeanLongestChain: res.MeanLongestChain,
		PDTier:           prob.ClassifyExactTier(res.N).String(),
	}
}

// writeJSON writes v as the response body. encoding/json's shortest
// round-trip float form makes the bytes deterministic, which is what lets
// clients diff completed responses against offline evaluation.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
	_, _ = w.Write([]byte{'\n'})
}

type errorEnvelope struct {
	Error *Error `json:"error"`
}

func writeError(w http.ResponseWriter, aerr *Error) {
	writeJSON(w, aerr.Status, errorEnvelope{Error: aerr})
}

// itoa renders the Retry-After seconds, clamping to at least 1.
func itoa(v int) string {
	if v <= 0 {
		return "1"
	}
	return strconv.Itoa(v)
}
