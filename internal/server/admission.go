package server

// Admission control. Every request carries a DP-unit cost estimate from the
// same cost model the election engine uses to pick exact vs Monte-Carlo
// scoring (prob.PoissonBinomialDPCost / prob.WeightedMajorityDPCost), and
// the controller sheds with 429 + Retry-After once either the queue depth
// or the admitted-but-unfinished cost would exceed its budget. The
// controller keeps its own atomics for the admit/shed decision — telemetry
// is write-only by contract (the telemflow analyzer forbids reading it back
// here), so the gauges mirror these values rather than being them.

import (
	"sync/atomic"

	"liquid/internal/prob"
	"liquid/internal/telemetry"
)

// EstimateCost returns the admission cost of evaluating one sweep point on
// an n-voter instance in DP units: the one-off exact P^D table plus, per
// replication, the worst-case weighted-majority DP (all n voters sink into
// n units of weight), saturated at exactLimit because the engine switches
// that replication to Monte-Carlo sampling beyond it.
func EstimateCost(n, replications int, exactLimit int64) int64 {
	perRep := prob.WeightedMajorityDPCost(n, n)
	if perRep > exactLimit {
		perRep = exactLimit
	}
	return prob.PoissonBinomialDPCost(n) + int64(replications)*perRep
}

// EstimateWhatIfDeltaCost prices a delta what-if against an n-voter
// post-delta election: resolving the profile is O(n), and each delta plus
// the final rebase patches the retained trees at the root-path merge cost
// of one leaf update. Saturated at the explicit-profile cost — a delta
// request never out-prices the from-scratch evaluation it replaces, which
// is exactly the admission-visible form of the incremental win.
func EstimateWhatIfDeltaCost(n, deltas int, exactLimit int64) int64 {
	cost := int64(n) + int64(deltas+1)*prob.DeltaUpdateCost(n)
	if full := EstimateCost(n, 1, exactLimit); cost > full {
		cost = full
	}
	return cost
}

// EstimateLadderCost prices a what-if scored through the certified
// approximation ladder: resolving the profile is O(n), and the ladder itself
// costs prob.LadderCostEstimate — O(n) for a budgeted large query the normal
// tier can certify, plus the kernel-tier cost where escalation is plausible.
// This is what lets the daemon admit million-voter budgeted queries that the
// exact-DP price would shed.
func EstimateLadderCost(n int, errorBudget float64) int64 {
	return int64(n) + prob.LadderCostEstimate(n, errorBudget)
}

// admission is the bounded-queue, bounded-cost gate in front of the worker
// shards.
type admission struct {
	maxQueue int64
	maxCost  int64

	queued atomic.Int64 // admitted, not yet finished
	cost   atomic.Int64 // DP-unit cost of admitted, not-yet-finished work
	shed   atomic.Uint64

	gQueue *telemetry.Gauge
	gCost  *telemetry.Gauge
	cShed  *telemetry.Counter
}

func newAdmission(maxQueue int, maxCost int64) *admission {
	return &admission{
		maxQueue: int64(maxQueue),
		maxCost:  int64(maxCost),
		gQueue:   telemetry.NewGauge("server/queue_depth"),
		gCost:    telemetry.NewGauge("server/inflight_cost"),
		cShed:    telemetry.NewCounter("server/shed"),
	}
}

// admit reserves a queue slot and cost units, or reports a shed. The
// reservation is optimistic (add, check, undo): two racing admits can both
// briefly exceed the budget by one request, which errs on the side of
// shedding — the budget is a shed threshold, not a hard resource bound.
func (a *admission) admit(cost int64) bool {
	if q := a.queued.Add(1); q > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		a.cShed.Inc()
		return false
	}
	// The first admission always fits: a single request costlier than the
	// whole budget must still be servable, or the budget silently caps n.
	if c := a.cost.Add(cost); c > a.maxCost && c != cost {
		a.cost.Add(-cost)
		a.queued.Add(-1)
		a.shed.Add(1)
		a.cShed.Inc()
		return false
	}
	a.mirror()
	return true
}

// release returns an admitted request's reservation.
func (a *admission) release(cost int64) {
	a.cost.Add(-cost)
	a.queued.Add(-1)
	a.mirror()
}

// mirror copies the controller's state onto the write-only telemetry
// gauges.
func (a *admission) mirror() {
	a.gQueue.Set(float64(a.queued.Load()))
	a.gCost.Set(float64(a.cost.Load()))
}
