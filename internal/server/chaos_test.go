package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/engine"
	"liquid/internal/experiment"
	"liquid/internal/fault"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
	"liquid/internal/server"
)

// TestChaos drives the daemon at twice its admission budget while a fault
// plan crashes and partitions the worker shards, and asserts the three
// serving invariants:
//
//  1. no request outlives its deadline beyond a drain grace,
//  2. the client-observed outcome counts match the server's accounting
//     exactly, and their sum is exactly the number of requests sent,
//  3. every completed exact response is bit-identical to offline
//     evaluation of the same request.
func TestChaos(t *testing.T) {
	const (
		shards     = 4
		queueDepth = 2
		n          = 30
		requests   = 60 // budget is shards*queueDepth = 8 concurrent
		deadline   = 5 * time.Second
		grace      = 3 * time.Second
	)

	in, instJSON := testInstance(t, n)

	// The chaos schedule comes from the fault package's own sampler: shards
	// stand in for nodes, the worker's task sequence (mod the crash window)
	// for rounds. A "crashed" shard panics on the task — exercising the
	// typed-500 recovery — and a cut between a shard and its neighbor
	// surfaces as a transient error, exercising the retry/backoff path.
	plan, err := fault.SamplePlan(shards, fault.PlanParams{
		CrashRate:     0.5,
		CrashWindow:   30,
		PartitionSize: 2,
		PartitionFrom: 5,
		PartitionHeal: 20,
	}, rng.New(99).DeriveString("chaos"))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, server.Config{
		Shards:     shards,
		QueueDepth: queueDepth,
		Workers:    1,
		Retries:    2,
		Backoff:    engine.Backoff{Initial: time.Millisecond, Cap: 4 * time.Millisecond},
		ChaosHook: func(shard int, seq uint64) error {
			round := int(seq % 30)
			if plan.Crashed(shard, round) {
				panic(fmt.Sprintf("chaos: shard %d crashed at round %d", shard, round))
			}
			if plan.Cut(shard, (shard+1)%shards, round) {
				return fmt.Errorf("%w: chaos partition at shard %d round %d", experiment.ErrTransient, shard, round)
			}
			return nil
		},
	})

	// Whatif requests all carry the same profile; precompute the expected
	// exact body once.
	delegations := make([]int, n)
	for i := range delegations {
		if i < 10 {
			delegations[i] = n - 1
		} else {
			delegations[i] = -1
		}
	}
	delegJSON, err := json.Marshal(delegations)
	if err != nil {
		t.Fatal(err)
	}
	wantWhatIf := offlineWhatIf(t, in, delegations)

	type outcome struct {
		kind    string // evaluate | fault | whatif | malformed
		seed    int
		status  int
		body    []byte
		elapsed time.Duration
		err     error
	}
	results := make([]outcome, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		seed := 1000 + i
		var kind, body string
		switch i % 5 {
		case 0, 1:
			kind = "evaluate"
			body = fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "approval-threshold", "alpha": 0.1}, "seed": %d, "replications": 8, "deadline_ms": %d}`,
				instJSON, seed, deadline.Milliseconds())
		case 2:
			kind = "fault"
			body = fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "greedy-best", "alpha": 0.05}, "seed": %d, "replications": 8, "deadline_ms": %d, "fault": {"policy": "fallback-to-direct", "down_rate": 0.2}}`,
				instJSON, seed, deadline.Milliseconds())
		case 3:
			kind = "whatif"
			body = fmt.Sprintf(`{"instance": %s, "delegations": %s, "deadline_ms": %d}`,
				instJSON, delegJSON, deadline.Milliseconds())
		default:
			kind = "malformed"
			body = fmt.Sprintf(`{"instance": {"n": %d}, "mech`, i)
		}
		path := "/v1/evaluate"
		if kind == "whatif" {
			path = "/v1/whatif"
		}
		wg.Add(1)
		go func(i int, kind, path, body string, seed int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				results[i] = outcome{kind: kind, seed: seed, err: err, elapsed: time.Since(start)}
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = outcome{kind: kind, seed: seed, status: resp.StatusCode, body: data, elapsed: time.Since(start), err: err}
		}(i, kind, path, body, seed)
	}
	wg.Wait()

	// Invariant 1: the deadline held for every request.
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d (%s): transport error %v", i, r.kind, r.err)
		}
		if r.elapsed > deadline+grace {
			t.Errorf("request %d (%s) took %v, past deadline %v + grace %v", i, r.kind, r.elapsed, deadline, grace)
		}
	}

	// Invariant 2: client-side outcome counts equal the server's accounting
	// exactly, and the taxonomy is exhaustive.
	var got server.Stats
	for i, r := range results {
		got.Received++
		switch r.status {
		case http.StatusOK:
			got.Completed++
		case http.StatusBadRequest:
			got.Malformed++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			got.Shed++
		case http.StatusInternalServerError:
			got.Failed++
		case http.StatusGatewayTimeout:
			got.Expired++
		default:
			t.Fatalf("request %d (%s): unclassifiable status %d: %s", i, r.kind, r.status, r.body)
		}
	}
	if st := srv.Stats(); st != got {
		t.Fatalf("server accounting %+v != client-observed %+v", st, got)
	}
	if total := got.Malformed + got.Shed + got.Completed + got.Failed + got.Expired; total != requests {
		t.Fatalf("outcomes sum to %d, want %d sent", total, requests)
	}
	t.Logf("chaos outcomes: %+v", got)

	// Invariant 3: completed responses are bit-identical to offline
	// evaluation of the same request.
	for i, r := range results {
		if r.status != http.StatusOK {
			continue
		}
		var want []byte
		switch r.kind {
		case "evaluate":
			want = offlineEvaluate(t, in, r.seed)
		case "fault":
			want = offlineFault(t, in, r.seed)
		case "whatif":
			want = wantWhatIf
		}
		if !bytes.Equal(r.body, want) {
			t.Errorf("request %d (%s, seed %d) differs from offline evaluation:\n got: %s\nwant: %s",
				i, r.kind, r.seed, r.body, want)
		}
	}
}

// offlineEvaluate reproduces the exact /v1/evaluate response bytes for the
// chaos test's plain-evaluate request shape.
func offlineEvaluate(t *testing.T, in *core.Instance, seed int) []byte {
	t.Helper()
	res, err := election.EvaluateMechanism(t.Context(), in, mechanism.ApprovalThreshold{Alpha: 0.1}, election.Options{
		Replications: 8, Seed: uint64(seed), Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return marshalLine(t, server.EvaluateResponse{Results: []server.PointResult{{
		Mechanism: res.Mechanism, Alpha: 0.1, N: res.N,
		PM: res.PM, PMStdErr: res.PMStdErr, PD: res.PD,
		Gain: res.Gain, GainLo: res.GainLo, GainHi: res.GainHi,
		MeanDelegators: res.MeanDelegators, MeanSinks: res.MeanSinks,
		MeanMaxWeight: res.MeanMaxWeight, MaxMaxWeight: res.MaxMaxWeight,
		MeanLongestChain: res.MeanLongestChain,
		PDTier:           "exact",
	}}})
}

// offlineFault reproduces the exact fault-block response bytes.
func offlineFault(t *testing.T, in *core.Instance, seed int) []byte {
	t.Helper()
	results, err := fault.EvaluateSweep(t.Context(), in, []fault.SweepPoint{{
		Mechanism: mechanism.GreedyBest{Alpha: 0.05},
		Opts: fault.ElectionOptions{
			Options:  election.Options{Replications: 8, Seed: uint64(seed), Workers: 1},
			DownRate: 0.2,
			Policy:   fault.FallbackToDirect,
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	return marshalLine(t, server.EvaluateResponse{Results: []server.PointResult{{
		Mechanism: res.Mechanism, Alpha: 0.05, N: res.N,
		PM: res.PM, PMStdErr: res.PMStdErr, PD: res.PD, Gain: res.Gain,
		Policy:   res.Policy.String(),
		MeanDown: res.MeanDown, MeanLost: res.MeanLost,
		MeanFellBack: res.MeanFellBack, MeanRedelegated: res.MeanRedelegated,
	}}})
}

// offlineWhatIf reproduces the exact /v1/whatif response bytes.
func offlineWhatIf(t *testing.T, in *core.Instance, delegations []int) []byte {
	t.Helper()
	d := core.NewDelegationGraph(in.N())
	for v, to := range delegations {
		if to == core.NoDelegate {
			continue
		}
		if err := d.SetDelegate(v, to); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	return marshalLine(t, server.WhatIfResponse{
		PM: pm, PD: pd, Gain: pm - pd,
		Sinks: len(res.Sinks), MaxWeight: res.MaxWeight, TotalWeight: res.TotalWeight,
		Delegators: res.Delegators, LongestChain: res.LongestChain,
	})
}

func marshalLine(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestChaosDrain closes the server mid-load and asserts the drain is
// clean: already-admitted work completes or expires, late arrivals shed
// with 503, and the accounting identity still holds.
func TestChaosDrain(t *testing.T) {
	_, instJSON := testInstance(t, 10)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s := server.New(server.Config{
		Shards:     2,
		QueueDepth: 2,
		ChaosHook: func(int, uint64) error {
			started <- struct{}{}
			<-release
			return nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}, "deadline_ms": 5000}`, instJSON)
	inflight := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err != nil {
				inflight <- -1
				return
			}
			resp.Body.Close()
			inflight <- resp.StatusCode
		}()
	}
	<-started
	<-started

	// Close concurrently: it blocks until the workers drain, which they
	// cannot until released.
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()

	// Draining begins immediately even while Close blocks on the pool. A
	// probe racing ahead of the draining flag can be admitted and queued
	// behind the blocked workers, so probes carry a short deadline: they
	// expire (504) or shed on a full queue (429) until the flag lands and
	// they shed with 503.
	probe := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}, "deadline_ms": 50}`, instJSON)
	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(probe))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("server never started shedding 503 after Close")
		case <-time.After(5 * time.Millisecond):
		}
	}

	close(release)
	for i := 0; i < 2; i++ {
		if status := <-inflight; status != http.StatusOK {
			t.Fatalf("in-flight request finished %d, want 200 across drain", status)
		}
	}
	<-closed

	st := s.Stats()
	if st.Completed != 2 {
		t.Fatalf("stats = %+v, want the 2 admitted requests completed", st)
	}
	if st.Received != st.Malformed+st.Shed+st.Completed+st.Failed+st.Expired {
		t.Fatalf("accounting identity broken: %+v", st)
	}
}
