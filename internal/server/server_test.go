package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/engine"
	"liquid/internal/experiment"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/server"
	"liquid/internal/telemetry"
)

// newTestServer boots a Server behind httptest and registers teardown.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

func errorCode(t *testing.T, data []byte) string {
	t.Helper()
	var env struct {
		Error *server.Error `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil {
		t.Fatalf("not an error envelope: %s", data)
	}
	return env.Error.Code
}

func testInstance(t *testing.T, n int) (*core.Instance, string) {
	t.Helper()
	ps := make([]float64, n)
	spec := make([]string, n)
	for i := range ps {
		ps[i] = 0.4 + 0.5*float64(i)/float64(n)
		spec[i] = fmt.Sprintf("%g", ps[i])
	}
	in, err := core.NewInstance(graph.NewComplete(n), ps)
	if err != nil {
		t.Fatal(err)
	}
	return in, fmt.Sprintf(`{"n": %d, "complete": true, "p": [%s]}`, n, strings.Join(spec, ","))
}

// TestEvaluateBitIdenticalToOffline is the serving layer's core contract: a
// completed exact response carries byte-for-byte the same numbers as the
// offline evaluator with the same seed and options.
func TestEvaluateBitIdenticalToOffline(t *testing.T) {
	in, instJSON := testInstance(t, 25)
	_, ts := newTestServer(t, server.Config{})

	alphas := []float64{0, 0.05, 0.1}
	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "approval-threshold"}, "alphas": [0, 0.05, 0.1], "seed": 7, "replications": 16}`, instJSON)
	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}

	expected := server.EvaluateResponse{}
	for _, a := range alphas {
		res, err := election.EvaluateMechanism(t.Context(), in, mechanism.ApprovalThreshold{Alpha: a}, election.Options{
			Replications: 16, Seed: 7, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		expected.Results = append(expected.Results, server.PointResult{
			Mechanism: res.Mechanism, Alpha: a, N: res.N,
			PM: res.PM, PMStdErr: res.PMStdErr, PD: res.PD,
			Gain: res.Gain, GainLo: res.GainLo, GainHi: res.GainHi,
			MeanDelegators: res.MeanDelegators, MeanSinks: res.MeanSinks,
			MeanMaxWeight: res.MeanMaxWeight, MaxMaxWeight: res.MaxMaxWeight,
			MeanLongestChain: res.MeanLongestChain,
			PDTier:           "exact",
		})
	}
	want, err := json.Marshal(expected)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(data, want) {
		t.Fatalf("response differs from offline evaluation:\n got: %s\nwant: %s", data, want)
	}
}

// TestEvaluateApproximateDegradation starves the cost rate so the ladder
// drops to the certified normal approximation.
func TestEvaluateApproximateDegradation(t *testing.T) {
	in, instJSON := testInstance(t, 25)
	_, ts := newTestServer(t, server.Config{CostRate: 0.001})

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "approval-threshold", "alpha": 0.1}, "seed": 3, "replications": 8}`, instJSON)
	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var got server.EvaluateResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Approximate {
		t.Fatal("response not flagged approximate")
	}
	if len(got.Results) != 1 || got.Results[0].ErrorBound <= 0 || got.Results[0].ErrorBound > 1 {
		t.Fatalf("results = %+v, want one point with a certified bound in (0,1]", got.Results)
	}

	// The numbers must match the offline approximate evaluator exactly.
	res, err := election.EvaluateMechanismApprox(t.Context(), in, mechanism.ApprovalThreshold{Alpha: 0.1}, election.Options{
		Replications: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].PM != res.PM || got.Results[0].PD != res.PD || got.Results[0].ErrorBound != res.ErrorBound {
		t.Fatalf("approximate point %+v differs from offline %+v", got.Results[0], res)
	}
}

// TestEvaluateDeadline asserts a request never hangs past its deadline:
// with a worker stuck in a slow task, the handler answers 504 on time.
func TestEvaluateDeadline(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	srv, ts := newTestServer(t, server.Config{
		Shards: 1,
		ChaosHook: func(int, uint64) error {
			time.Sleep(600 * time.Millisecond)
			return nil
		},
	})

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}, "deadline_ms": 100}`, instJSON)
	start := time.Now()
	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if code := errorCode(t, data); code != server.CodeDeadlineExceeded {
		t.Fatalf("code = %s", code)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("handler held the request %v past a 100ms deadline", elapsed)
	}
	if st := srv.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v, want Expired = 1", st)
	}
}

// TestShedding fills the single shard and asserts the 429 + Retry-After
// path and its accounting.
func TestShedding(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	srv, ts := newTestServer(t, server.Config{
		Shards:     1,
		QueueDepth: 1,
		ChaosHook: func(int, uint64) error {
			running <- struct{}{}
			<-release
			return nil
		},
	})

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}, "deadline_ms": 5000}`, instJSON)
	firstDone := make(chan int)
	go func() {
		resp, _ := post(t, ts.URL, "/v1/evaluate", body)
		firstDone <- resp.StatusCode
	}()
	<-running // the worker is now occupied and the queue+cost budget is held

	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if code := errorCode(t, data); code != server.CodeShed {
		t.Fatalf("code = %s", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("first request status = %d", status)
	}
	st := srv.Stats()
	if st.Received != 2 || st.Completed != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want received 2 = completed 1 + shed 1", st)
	}
}

// TestPanicIsTyped500 exercises the worker's recovery path.
func TestPanicIsTyped500(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	srv, ts := newTestServer(t, server.Config{
		Shards:    1,
		ChaosHook: func(int, uint64) error { panic("chaos: injected crash") },
	})

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}}`, instJSON)
	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if code := errorCode(t, data); code != server.CodeInternalPanic {
		t.Fatalf("code = %s", code)
	}
	if st := srv.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v, want Failed = 1", st)
	}
}

// TestTransientRetry asserts the worker retries transient failures on the
// engine backoff and the request still completes.
func TestTransientRetry(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	var attempts atomic.Int32
	srv, ts := newTestServer(t, server.Config{
		Shards:  1,
		Retries: 3,
		Backoff: engine.Backoff{Initial: time.Millisecond, Cap: 2 * time.Millisecond},
		ChaosHook: func(int, uint64) error {
			if attempts.Add(1) <= 2 {
				return fmt.Errorf("%w: simulated exhaustion", experiment.ErrTransient)
			}
			return nil
		},
	})

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}}`, instJSON)
	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if st := srv.Stats(); st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMalformedAccounting covers the typed 400s end to end, including the
// MaxBytesReader cap.
func TestMalformedAccounting(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{MaxBody: 256})

	resp, data := post(t, ts.URL, "/v1/evaluate", `{]`)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, data) != server.CodeBadJSON {
		t.Fatalf("garbage: status %d, body %s", resp.StatusCode, data)
	}

	big := fmt.Sprintf(`{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "alphas": [%s]}`,
		strings.Repeat("0.1,", 200)+"0.1")
	resp, data = post(t, ts.URL, "/v1/evaluate", big)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, data) != server.CodeBodyTooLarge {
		t.Fatalf("oversized: status %d, body %s", resp.StatusCode, data)
	}

	if st := srv.Stats(); st.Received != 2 || st.Malformed != 2 {
		t.Fatalf("stats = %+v, want 2 received = 2 malformed", st)
	}
}

// TestWhatIfExact compares the what-if scoring against the exact kernels.
func TestWhatIfExact(t *testing.T) {
	in, instJSON := testInstance(t, 9)
	_, ts := newTestServer(t, server.Config{})

	// Voters 0..3 delegate to 8 (the most competent); the rest vote direct.
	body := fmt.Sprintf(`{"instance": %s, "delegations": [8, 8, 8, 8, -1, -1, -1, -1, -1]}`, instJSON)
	resp, data := post(t, ts.URL, "/v1/whatif", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var got server.WhatIfResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Approximate {
		t.Fatal("small exact what-if flagged approximate")
	}

	d := core.NewDelegationGraph(9)
	for v := 0; v < 4; v++ {
		if err := d.SetDelegate(v, 8); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.PM != pm || got.PD != pd || got.Gain != pm-pd {
		t.Fatalf("whatif = %+v, want pm %v pd %v", got, pm, pd)
	}
	if got.Sinks != 5 || got.MaxWeight != 5 || got.TotalWeight != 9 || got.Delegators != 4 {
		t.Fatalf("structure = %+v", got)
	}
}

// TestWhatIfLadderExactEscalation posts a budgeted what-if whose tiny error
// budget forces the ladder off the normal tier: both probabilities must come
// back exact (tier "exact", half-width 0), with P^M bit-identical to the
// offline exact kernel on the same resolution.
func TestWhatIfLadderExactEscalation(t *testing.T) {
	in, instJSON := testInstance(t, 64)
	_, ts := newTestServer(t, server.Config{})

	delegations := make([]string, 64)
	for i := range delegations {
		delegations[i] = "-1"
		if i < 10 {
			delegations[i] = "63"
		}
	}
	body := fmt.Sprintf(`{"instance": %s, "delegations": [%s], "error_budget": 1e-9}`,
		instJSON, strings.Join(delegations, ","))
	resp, data := post(t, ts.URL, "/v1/whatif", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var got server.WhatIfResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.PDTier != "exact" || got.PDHalfWidth != 0 || got.PMTier != "exact" || got.PMHalfWidth != 0 {
		t.Fatalf("tiers = %+v, want exact/exact with zero half-widths", got)
	}
	if got.Approximate {
		t.Fatal("exact-tier budgeted what-if flagged approximate")
	}

	d := core.NewDelegationGraph(64)
	for v := 0; v < 10; v++ {
		if err := d.SetDelegate(v, 63); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.PM != pm {
		t.Fatalf("pm = %v, offline exact %v", got.PM, pm)
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	// The ladder's exact DP folds competencies in sorted order, so the last
	// few ulps may differ from the unsorted offline DP; the values must
	// still agree to certified-exact precision.
	if diff := got.PD - pd; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("pd = %v, offline exact %v", got.PD, pd)
	}
	if got.Gain != got.PM-got.PD {
		t.Fatalf("gain = %v, want pm-pd", got.Gain)
	}
}

// TestWhatIfLadderNormalTier posts a budgeted what-if big enough that the
// normal tier certifies within budget: the daemon must answer with tier
// "normal" and a half-width inside the requested budget, flagged
// approximate, without ever paying for a kernel evaluation.
func TestWhatIfLadderNormalTier(t *testing.T) {
	_, instJSON := testInstance(t, 8192)
	_, ts := newTestServer(t, server.Config{})

	delegations := make([]string, 8192)
	for i := range delegations {
		delegations[i] = "-1"
	}
	body := fmt.Sprintf(`{"instance": %s, "delegations": [%s], "error_budget": 1e-3}`,
		instJSON, strings.Join(delegations, ","))
	resp, data := post(t, ts.URL, "/v1/whatif", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var got server.WhatIfResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.PDTier != "normal" || got.PMTier != "normal" {
		t.Fatalf("tiers = %s/%s, want normal/normal", got.PDTier, got.PMTier)
	}
	if got.PDHalfWidth > 1e-3 || got.PMHalfWidth > 1e-3 {
		t.Fatalf("half-widths %v/%v over the 1e-3 budget", got.PDHalfWidth, got.PMHalfWidth)
	}
	if !got.Approximate {
		t.Fatal("normal-tier response not flagged approximate")
	}
	if got.PM != got.PD {
		// All-direct profile: the two sums are the same distribution.
		t.Fatalf("pm = %v, pd = %v on an all-direct profile", got.PM, got.PD)
	}
}

// TestWhatIfBadErrorBudget asserts malformed budgets are typed 400s.
func TestWhatIfBadErrorBudget(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	_, ts := newTestServer(t, server.Config{})
	for _, budget := range []string{"-0.5", "1.5", "NaN"} {
		body := fmt.Sprintf(`{"instance": %s, "delegations": [-1, -1, -1, -1, -1], "error_budget": %s}`, instJSON, budget)
		resp, data := post(t, ts.URL, "/v1/whatif", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("error_budget %s: status = %d: %s", budget, resp.StatusCode, data)
		}
	}
}

// TestWhatIfCycleIsTyped400 asserts cyclic profiles are rejected before
// admission.
func TestWhatIfCycleIsTyped400(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	body := `{"instance": {"n": 2, "complete": true, "p": [0.5, 0.5]}, "delegations": [1, 0]}`
	resp, data := post(t, ts.URL, "/v1/whatif", body)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, data) != server.CodeBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if st := srv.Stats(); st.Malformed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDrainSheds503 asserts a draining server refuses work instead of
// accepting requests it may never finish.
func TestDrainSheds503(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Close()

	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}}`, instJSON)
	resp, data := post(t, ts.URL, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusServiceUnavailable || errorCode(t, data) != server.CodeShed {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHealthAndStats(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %v %v", resp, err)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st != srv.Stats() {
		t.Fatalf("statsz %+v != Stats() %+v", st, srv.Stats())
	}
}

// TestLatencyTelemetryIsWritten asserts the serving metrics reach the
// default registry (read here, at the test boundary, where reads are
// legal).
func TestLatencyTelemetryIsWritten(t *testing.T) {
	_, instJSON := testInstance(t, 5)
	_, ts := newTestServer(t, server.Config{})
	before := telemetry.Default.Snapshot().Counter("server/requests")
	body := fmt.Sprintf(`{"instance": %s, "mechanism": {"name": "direct"}}`, instJSON)
	if resp, data := post(t, ts.URL, "/v1/evaluate", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	after := telemetry.Default.Snapshot().Counter("server/requests")
	if after != before+1 {
		t.Fatalf("server/requests went %d -> %d, want +1", before, after)
	}
}

// deltaBody renders a what-if body with a delta list (raw JSON for the
// deltas so tests control exactly what goes on the wire).
func deltaBody(instJSON string, delegations string, deltasJSON string) string {
	return fmt.Sprintf(`{"instance": %s, "delegations": %s, "deltas": %s}`, instJSON, delegations, deltasJSON)
}

// offlineWhatIfDelta recomputes a delta what-if response from scratch:
// apply the deltas offline, resolve, and score with the exact kernels —
// a path that shares no retained state with the daemon.
func offlineWhatIfDelta(t *testing.T, in *core.Instance, delegations []int, deltas []election.Delta) server.WhatIfResponse {
	t.Helper()
	d := core.NewDelegationGraph(in.N())
	for i, j := range delegations {
		if j == core.NoDelegate {
			continue
		}
		if err := d.SetDelegate(i, j); err != nil {
			t.Fatal(err)
		}
	}
	fin, fd, err := election.PreviewDeltas(in, d, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fd.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := election.ResolutionProbabilityExact(fin, res)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := election.DirectProbabilityExact(fin)
	if err != nil {
		t.Fatal(err)
	}
	return server.WhatIfResponse{
		PM: pm, PD: pd, Gain: pm - pd,
		Sinks: len(res.Sinks), MaxWeight: res.MaxWeight, TotalWeight: res.TotalWeight,
		Delegators: res.Delegators, LongestChain: res.LongestChain,
		DeltasApplied: len(deltas),
	}
}

// postWhatIfDelta posts a delta what-if and requires the response bytes to
// equal the offline recomputation exactly.
func postWhatIfDelta(t *testing.T, url string, in *core.Instance, instJSON, delegations, deltasJSON string, baseDeleg []int, deltas []election.Delta) {
	t.Helper()
	resp, data := post(t, url, "/v1/whatif", deltaBody(instJSON, delegations, deltasJSON))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	want, err := json.Marshal(offlineWhatIfDelta(t, in, baseDeleg, deltas))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(data, want) {
		t.Fatalf("delta what-if differs from offline evaluation:\n got: %s\nwant: %s", data, want)
	}
}

// TestWhatIfDeltaBitIdentical is the delta endpoint's core contract: a
// served delta response is byte-identical to applying the deltas and
// scoring from scratch offline — including on repeats (retained-scenario
// reuse) and across different edits of the same base (rebase after
// mutation).
func TestWhatIfDeltaBitIdentical(t *testing.T) {
	in, instJSON := testInstance(t, 9)
	_, ts := newTestServer(t, server.Config{})
	delegations := `[8, 8, -1, -1, -1, -1, -1, -1, -1]`
	baseDeleg := []int{8, 8, -1, -1, -1, -1, -1, -1, -1}

	// Repoint-only probe, twice: the second hits the retained scenario.
	repoints := `[{"kind": "repoint", "voter": 2, "target": 8}, {"kind": "repoint", "voter": 0, "target": -1}]`
	repointDeltas := []election.Delta{
		{Kind: election.DeltaRepoint, Voter: 2, Target: 8},
		{Kind: election.DeltaRepoint, Voter: 0, Target: core.NoDelegate},
	}
	postWhatIfDelta(t, ts.URL, in, instJSON, delegations, repoints, baseDeleg, repointDeltas)
	postWhatIfDelta(t, ts.URL, in, instJSON, delegations, repoints, baseDeleg, repointDeltas)

	// A different edit of the same base: the retained scenario must rebase
	// off the previous probe's profile, not accumulate it.
	other := `[{"kind": "repoint", "voter": 5, "target": 8}]`
	otherDeltas := []election.Delta{{Kind: election.DeltaRepoint, Voter: 5, Target: 8}}
	postWhatIfDelta(t, ts.URL, in, instJSON, delegations, other, baseDeleg, otherDeltas)

	// Instance-level deltas (throwaway-scenario path): competency change,
	// voter add with an initial delegation, voter removal with id remap.
	structural := `[{"kind": "competency", "voter": 3, "p": 0.9},
		{"kind": "add-voter", "p": 0.7, "target": 8},
		{"kind": "remove-voter", "voter": 1},
		{"kind": "repoint", "voter": 4, "target": 7}]`
	structuralDeltas := []election.Delta{
		{Kind: election.DeltaCompetency, Voter: 3, P: 0.9},
		{Kind: election.DeltaAddVoter, P: 0.7, Target: 8},
		{Kind: election.DeltaRemoveVoter, Voter: 1},
		{Kind: election.DeltaRepoint, Voter: 4, Target: 7},
	}
	postWhatIfDelta(t, ts.URL, in, instJSON, delegations, structural, baseDeleg, structuralDeltas)

	// The retained scenario must have stayed pinned to the base election
	// through the structural probe.
	postWhatIfDelta(t, ts.URL, in, instJSON, delegations, repoints, baseDeleg, repointDeltas)
}

// TestWhatIfDeltaExplicitGraph exercises the edge-edit kinds, which only
// exist on explicit topologies.
func TestWhatIfDeltaExplicitGraph(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	instJSON := `{"n": 4, "edges": [[0,1],[1,2],[2,3]], "p": [0.55, 0.6, 0.65, 0.7]}`
	g, err := graph.NewGraphFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(g, []float64{0.55, 0.6, 0.65, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	delegations := `[1, -1, -1, -1]`
	deltasJSON := `[{"kind": "add-edge", "voter": 0, "target": 3},
		{"kind": "remove-edge", "voter": 1, "target": 2},
		{"kind": "add-voter", "p": 0.8, "edges": [0, 3]}]`
	deltas := []election.Delta{
		{Kind: election.DeltaAddEdge, Voter: 0, Target: 3},
		{Kind: election.DeltaRemoveEdge, Voter: 1, Target: 2},
		{Kind: election.DeltaAddVoter, P: 0.8, Target: core.NoDelegate, Edges: []int{0, 3}},
	}
	postWhatIfDelta(t, ts.URL, in, instJSON, delegations, deltasJSON, []int{1, -1, -1, -1}, deltas)
}

// TestWhatIfDeltaRejections asserts every malformed delta is a typed 400
// counted as malformed — workers never see a delta list that does not
// apply cleanly, so the accounting identity cannot leak through deltas.
func TestWhatIfDeltaRejections(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	_, instJSON := testInstance(t, 4)
	delegations := `[-1, -1, -1, -1]`
	cases := []struct {
		name, deltas, code string
	}{
		{"unknown kind", `[{"kind": "teleport", "voter": 0}]`, server.CodeBadDelta},
		{"edge without target", `[{"kind": "add-edge", "voter": 0}]`, server.CodeBadDelta},
		{"competency out of range", `[{"kind": "competency", "voter": 0, "p": 1.5}]`, server.CodeBadCompetency},
		{"repoint out of range", `[{"kind": "repoint", "voter": 9, "target": 0}]`, server.CodeBadDelta},
		{"remove out of range", `[{"kind": "remove-voter", "voter": 7}]`, server.CodeBadDelta},
		{"edge edit on complete", `[{"kind": "add-edge", "voter": 0, "target": 1}]`, server.CodeBadDelta},
		{"add-voter edges on complete", `[{"kind": "add-voter", "p": 0.5, "edges": [0]}]`, server.CodeBadDelta},
	}
	for _, tc := range cases {
		resp, data := post(t, ts.URL, "/v1/whatif", deltaBody(instJSON, delegations, tc.deltas))
		if resp.StatusCode != http.StatusBadRequest || errorCode(t, data) != tc.code {
			t.Errorf("%s: status %d code %s, want 400 %s (%s)", tc.name, resp.StatusCode, errorCode(t, data), tc.code, data)
		}
	}
	// A delta list that creates a cycle is rejected at the post-delta
	// resolve, same typed 400 as a cyclic base profile.
	resp, data := post(t, ts.URL, "/v1/whatif", deltaBody(instJSON, `[1, -1, -1, -1]`,
		`[{"kind": "repoint", "voter": 1, "target": 0}]`))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, data) != server.CodeBadRequest {
		t.Fatalf("post-delta cycle: status %d: %s", resp.StatusCode, data)
	}
	want := uint64(len(cases) + 1)
	if st := srv.Stats(); st.Malformed != want || st.Received != want {
		t.Fatalf("stats = %+v, want %d received = malformed", st, want)
	}
}
