package server

// The shard-per-core worker pool. Each shard owns one goroutine and one
// bounded channel; a request is hashed onto a shard by arrival sequence, so
// a single slow evaluation delays only its shard's queue, not the whole
// server. Workers recover panics into typed 500 errors (one poisoned
// request cannot take a shard down) and retry transient failures on the
// engine's capped-doubling backoff — the same machinery (engine.Backoff,
// experiment.ErrTransient) the batch scheduler uses.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"

	"liquid/internal/engine"
	"liquid/internal/experiment"
)

// task is one admitted request waiting for a shard.
type task struct {
	ctx context.Context
	run func(ctx context.Context) error
	// release returns the task's admission reservation; the worker calls it
	// exactly once, when the task finishes or is skipped — not when the
	// handler gives up, because an abandoned task still occupies its shard.
	release func()
	// done receives exactly one completion error (buffered: the handler may
	// have given up on the deadline and stopped listening).
	done chan error
}

// pool is the shard-per-core worker set.
type pool struct {
	shards []chan *task
	wg     sync.WaitGroup
	// chaos, when set, is invoked before each task runs (test-only fault
	// injection; see Config.ChaosHook).
	chaos func(shard int, seq uint64) error
	// retries bounds transient-failure retries per task.
	retries int
	backoff engine.Backoff
}

func newPool(shards, queueDepth, retries int, backoff engine.Backoff, chaos func(int, uint64) error) *pool {
	p := &pool{
		shards:  make([]chan *task, shards),
		chaos:   chaos,
		retries: retries,
		backoff: backoff,
	}
	for i := range p.shards {
		p.shards[i] = make(chan *task, queueDepth)
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// submit queues t on its sequence's shard, reporting false if the shard's
// queue is full (the caller sheds).
func (p *pool) submit(seq uint64, t *task) bool {
	select {
	case p.shards[seq%uint64(len(p.shards))] <- t:
		return true
	default:
		return false
	}
}

// close drains the shards: no new submissions are accepted by the caller,
// queued tasks still run (their contexts decide how far they get), and the
// workers exit.
func (p *pool) close() {
	for _, ch := range p.shards {
		close(ch)
	}
	p.wg.Wait()
}

func (p *pool) worker(shard int) {
	defer p.wg.Done()
	var seq uint64
	for t := range p.shards[shard] {
		err := p.execute(shard, seq, t)
		if t.release != nil {
			t.release()
		}
		t.done <- err
		seq++
	}
}

// execute runs one task with panic isolation and transient-failure retries.
func (p *pool) execute(shard int, seq uint64, t *task) error {
	// A task whose deadline already passed while queued is not worth
	// starting; the handler has counted it expired.
	if err := t.ctx.Err(); err != nil {
		return err
	}
	backoff := p.backoff
	for attempt := 0; ; attempt++ {
		err := p.runOnce(shard, seq, t)
		if err == nil || attempt >= p.retries || !errors.Is(err, experiment.ErrTransient) {
			return err
		}
		if t.ctx.Err() != nil || backoff.Wait(t.ctx) != nil {
			// Cancelled mid-backoff: surface the context error, not the
			// transient one — the client's deadline is what actually ended
			// the request.
			return t.ctx.Err()
		}
	}
}

// runOnce executes the task body once, converting panics into typed 500s.
func (p *pool) runOnce(shard int, seq uint64, t *task) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &Error{
				Code:    CodeInternalPanic,
				Message: fmt.Sprintf("shard %d recovered a panic: %v\n%s", shard, v, debug.Stack()),
				Status:  http.StatusInternalServerError,
			}
		}
	}()
	if p.chaos != nil {
		if err := p.chaos(shard, seq); err != nil {
			return err
		}
	}
	return t.run(t.ctx)
}
