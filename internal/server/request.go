// Package server is the serving layer: a stdlib-only net/http JSON API in
// front of the election engines. It owns the robustness stack the batch
// binaries never needed — request validation, per-request deadlines
// propagated as contexts into the engines' cancellation paths, a bounded
// admission queue with cost-aware load shedding, shard-per-core workers
// with panic isolation, and a graceful-degradation ladder that trades the
// exact DP for the certified normal approximation when a deadline budget
// cannot afford exact (see DESIGN.md §14).
//
// Accounting invariant: every request the listener delivers is counted in
// exactly one of {malformed, shed, completed, failed, expired}, so
// received == malformed + shed + completed + failed + expired holds at
// every quiescent point. Load generators verify it from the outside
// (sent == sum of their per-status counts).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/fault"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
)

// Error is the typed error payload of every non-2xx response:
// {"error": {"code": "...", "message": "..."}}. Codes are schema-stable;
// messages are human-readable and may change.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Status is the HTTP status to send. Not serialized; the status line
	// already carries it.
	Status int `json:"-"`
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Typed request-rejection codes (all HTTP 400 unless noted).
const (
	// CodeBadJSON: the body is not syntactically valid JSON for the schema.
	CodeBadJSON = "bad_json"
	// CodeBodyTooLarge: the body exceeded the server's byte cap.
	CodeBodyTooLarge = "body_too_large"
	// CodeBadCompetency: a competency is NaN, ±Inf, or outside [0,1].
	CodeBadCompetency = "bad_competency"
	// CodeBadAlpha: an approval margin is NaN, ±Inf, or outside [0,1].
	CodeBadAlpha = "bad_alpha"
	// CodeDuplicateEdge: the edge list repeats an undirected edge.
	CodeDuplicateEdge = "duplicate_edge"
	// CodeBadEdge: an edge is a self-loop or has an endpoint out of range.
	CodeBadEdge = "bad_edge"
	// CodeBadMechanism: unknown mechanism name.
	CodeBadMechanism = "bad_mechanism"
	// CodeBadDelta: a what-if delta is malformed or inapplicable to the
	// instance it would mutate.
	CodeBadDelta = "bad_delta"
	// CodeBadRequest: any other structural rejection.
	CodeBadRequest = "bad_request"
	// CodeShed (429): the admission controller refused the request.
	CodeShed = "shed"
	// CodeDeadlineExceeded (504): the deadline expired before a rung of the
	// degradation ladder could complete.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeInternalPanic (500): a worker recovered a panic evaluating the
	// request.
	CodeInternalPanic = "internal_panic"
	// CodeInternal (500): any other evaluation failure.
	CodeInternal = "internal"
)

func badRequest(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), Status: http.StatusBadRequest}
}

// maxVoters caps instance size at decode time: beyond this the cost model
// would shed the request anyway, and the cap keeps a hostile body from
// allocating gigabytes before admission control ever sees it.
const maxVoters = 1 << 20

// InstanceSpec is the wire form of a problem instance; it matches the
// on-disk schema of core.WriteInstance ({"n", "complete", "edges", "p"}).
type InstanceSpec struct {
	N        int       `json:"n"`
	Complete bool      `json:"complete,omitempty"`
	Edges    [][2]int  `json:"edges,omitempty"`
	P        []float64 `json:"p"`
}

// MechanismSpec names a delegation mechanism. Alpha is the approval margin
// for the mechanisms that take one; the evaluate endpoint's Alphas sweep
// overrides it per point.
type MechanismSpec struct {
	Name  string  `json:"name"`
	Alpha float64 `json:"alpha,omitempty"`
}

// FaultSpec routes the evaluation through fault.EvaluateUnderFaults:
// sink-unavailability and abstention faults repaired by a recovery policy.
type FaultSpec struct {
	DownRate    float64 `json:"down_rate,omitempty"`
	AbstainRate float64 `json:"abstain_rate,omitempty"`
	Policy      string  `json:"policy"`
	Alpha       float64 `json:"alpha,omitempty"`
}

// EvaluateRequest is the /v1/evaluate body: one instance, one mechanism,
// swept over approval margins. Alphas empty means a single point at
// Mechanism.Alpha.
type EvaluateRequest struct {
	Instance     InstanceSpec  `json:"instance"`
	Mechanism    MechanismSpec `json:"mechanism"`
	Alphas       []float64     `json:"alphas,omitempty"`
	Seed         uint64        `json:"seed"`
	Replications int           `json:"replications,omitempty"`
	// DeadlineMS overrides the server's default per-request deadline,
	// clamped to the server's maximum.
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
	Fault      *FaultSpec `json:"fault,omitempty"`
}

// WhatIfRequest is the /v1/whatif body: an explicit delegation profile to
// score against an instance. Delegations has one entry per voter: the
// delegate's index, or -1 for a direct vote. Deltas, when present, are
// incremental edits applied in order on top of the base (instance,
// delegations) pair; the response scores the post-delta election, and the
// daemon serves repeated deltas against the same base through a retained
// evaluation scenario instead of re-evaluating from scratch.
type WhatIfRequest struct {
	Instance    InstanceSpec `json:"instance"`
	Delegations []int        `json:"delegations"`
	Deltas      []DeltaSpec  `json:"deltas,omitempty"`
	DeadlineMS  int64        `json:"deadline_ms,omitempty"`
	// ErrorBudget, when positive, routes scoring through the certified
	// approximation ladder (prob.LadderMajority): the response carries the
	// selected tier and certified half-width per probability, and admission
	// prices the request at the ladder's cost estimate instead of the exact
	// DP's. Zero keeps the classic exact-or-normal degradation rungs.
	ErrorBudget float64 `json:"error_budget,omitempty"`
}

// DeltaSpec is the wire form of one incremental edit. Kind names an
// election.DeltaKind: "competency" (voter, p), "repoint" (voter, target),
// "add-voter" (p, edges on explicit graphs, optional target for an
// initial delegation), "remove-voter" (voter), "add-edge"/"remove-edge"
// (voter, target). Target is a pointer so that an omitted field is
// distinguishable from voter 0: omitted means a direct vote for repoint
// and add-voter, and is rejected for the edge kinds.
type DeltaSpec struct {
	Kind   string  `json:"kind"`
	Voter  int     `json:"voter,omitempty"`
	Target *int    `json:"target,omitempty"`
	P      float64 `json:"p,omitempty"`
	Edges  []int   `json:"edges,omitempty"`
}

// maxDeltas caps the delta list per request; the retained-scenario win is
// for short edit lists, and an unbounded list is just a slow full rebuild.
const maxDeltas = 256

// parseDelta maps one wire delta onto the election type, with the typed
// validation the election layer cannot phrase as an *Error.
func parseDelta(i int, spec *DeltaSpec) (election.Delta, *Error) {
	target := core.NoDelegate
	if spec.Target != nil {
		target = *spec.Target
	}
	d := election.Delta{Voter: spec.Voter, Target: target, P: spec.P, Edges: spec.Edges}
	switch spec.Kind {
	case "competency":
		d.Kind = election.DeltaCompetency
	case "repoint":
		d.Kind = election.DeltaRepoint
	case "add-voter":
		d.Kind = election.DeltaAddVoter
	case "remove-voter":
		d.Kind = election.DeltaRemoveVoter
	case "add-edge", "remove-edge":
		if spec.Target == nil {
			return election.Delta{}, badRequest(CodeBadDelta, "deltas[%d]: %s requires a target", i, spec.Kind)
		}
		d.Kind = election.DeltaAddEdge
		if spec.Kind == "remove-edge" {
			d.Kind = election.DeltaRemoveEdge
		}
	default:
		return election.Delta{}, badRequest(CodeBadDelta, "deltas[%d]: unknown kind %q", i, spec.Kind)
	}
	if d.Kind == election.DeltaCompetency || d.Kind == election.DeltaAddVoter {
		if math.IsNaN(spec.P) || math.IsInf(spec.P, 0) || spec.P < 0 || spec.P > 1 {
			return election.Delta{}, badRequest(CodeBadCompetency, "deltas[%d]: p = %v not in [0,1]", i, spec.P)
		}
	}
	return d, nil
}

// decodeStrict unmarshals body into dst with unknown fields rejected,
// mapping the error taxonomy onto the typed codes.
func decodeStrict(body []byte, dst any) *Error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest(CodeBadJSON, "decoding request: %v", err)
	}
	// Trailing garbage after the document is a malformed request, not a
	// second message.
	if dec.More() {
		return badRequest(CodeBadJSON, "trailing data after JSON document")
	}
	return nil
}

// validateInstance checks the spec and builds the immutable instance.
// Competency and edge validation happens here, before graph/core see the
// data, so every rejection carries its typed code.
func validateInstance(spec *InstanceSpec) (*core.Instance, *Error) {
	if spec.N <= 0 {
		return nil, badRequest(CodeBadRequest, "instance.n = %d, want > 0", spec.N)
	}
	if spec.N > maxVoters {
		return nil, badRequest(CodeBadRequest, "instance.n = %d exceeds the maximum %d", spec.N, maxVoters)
	}
	if len(spec.P) != spec.N {
		return nil, badRequest(CodeBadRequest, "instance.p has %d entries for n = %d", len(spec.P), spec.N)
	}
	for i, p := range spec.P {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			return nil, badRequest(CodeBadCompetency, "instance.p[%d] = %v not in [0,1]", i, p)
		}
	}
	var top graph.Topology
	if spec.Complete {
		if len(spec.Edges) > 0 {
			return nil, badRequest(CodeBadRequest, "instance.complete with explicit edges")
		}
		top = graph.NewComplete(spec.N)
	} else {
		seen := make(map[[2]int]bool, len(spec.Edges))
		for _, e := range spec.Edges {
			u, v := e[0], e[1]
			if u < 0 || u >= spec.N || v < 0 || v >= spec.N {
				return nil, badRequest(CodeBadEdge, "edge (%d,%d) out of range [0,%d)", u, v, spec.N)
			}
			if u == v {
				return nil, badRequest(CodeBadEdge, "self-loop at voter %d", u)
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				return nil, badRequest(CodeDuplicateEdge, "duplicate edge (%d,%d)", u, v)
			}
			seen[[2]int{u, v}] = true
		}
		g, err := graph.NewGraphFromEdges(spec.N, spec.Edges)
		if err != nil {
			return nil, badRequest(CodeBadEdge, "building topology: %v", err)
		}
		top = g
	}
	in, err := core.NewInstance(top, spec.P)
	if err != nil {
		return nil, badRequest(CodeBadCompetency, "building instance: %v", err)
	}
	return in, nil
}

func validAlpha(a float64) bool {
	return !math.IsNaN(a) && !math.IsInf(a, 0) && a >= 0 && a <= 1
}

// buildMechanism resolves a mechanism name and margin to a concrete
// mechanism value.
func buildMechanism(name string, alpha float64) (mechanism.Mechanism, *Error) {
	switch name {
	case "direct":
		return mechanism.Direct{}, nil
	case "approval-threshold":
		return mechanism.ApprovalThreshold{Alpha: alpha}, nil
	case "greedy-best":
		return mechanism.GreedyBest{Alpha: alpha}, nil
	case "half-neighborhood":
		return mechanism.HalfNeighborhood{Alpha: alpha}, nil
	default:
		return nil, badRequest(CodeBadMechanism, "unknown mechanism %q", name)
	}
}

// parsePolicy resolves a recovery-policy name.
func parsePolicy(name string) (fault.Policy, *Error) {
	switch name {
	case "lose-weight":
		return fault.LoseWeight, nil
	case "fallback-to-direct":
		return fault.FallbackToDirect, nil
	case "redelegate":
		return fault.Redelegate, nil
	default:
		return 0, badRequest(CodeBadRequest, "unknown recovery policy %q", name)
	}
}

// ParsedEvaluate is a validated evaluate request: the instance, one
// mechanism per sweep point, and the engine options the handler will use.
type ParsedEvaluate struct {
	Req        *EvaluateRequest
	Instance   *core.Instance
	Alphas     []float64
	Mechanisms []mechanism.Mechanism
	Policy     fault.Policy
}

// ParseEvaluateRequest decodes and validates an evaluate body. It is the
// whole decode path — the HTTP handler adds only the byte cap — so the fuzz
// target exercises exactly what production traffic hits.
func ParseEvaluateRequest(body []byte) (*ParsedEvaluate, *Error) {
	var req EvaluateRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, aerr
	}
	in, aerr := validateInstance(&req.Instance)
	if aerr != nil {
		return nil, aerr
	}
	if req.Replications < 0 {
		return nil, badRequest(CodeBadRequest, "replications = %d, want >= 0", req.Replications)
	}
	if req.Replications > 1<<16 {
		return nil, badRequest(CodeBadRequest, "replications = %d exceeds the maximum %d", req.Replications, 1<<16)
	}
	if req.DeadlineMS < 0 {
		return nil, badRequest(CodeBadRequest, "deadline_ms = %d, want >= 0", req.DeadlineMS)
	}
	alphas := req.Alphas
	if len(alphas) == 0 {
		alphas = []float64{req.Mechanism.Alpha}
	}
	if len(alphas) > 256 {
		return nil, badRequest(CodeBadRequest, "alpha sweep of %d points exceeds the maximum 256", len(alphas))
	}
	parsed := &ParsedEvaluate{Req: &req, Instance: in, Alphas: alphas}
	for _, a := range alphas {
		if !validAlpha(a) {
			return nil, badRequest(CodeBadAlpha, "alpha = %v not in [0,1]", a)
		}
		mech, aerr := buildMechanism(req.Mechanism.Name, a)
		if aerr != nil {
			return nil, aerr
		}
		parsed.Mechanisms = append(parsed.Mechanisms, mech)
	}
	if f := req.Fault; f != nil {
		if math.IsNaN(f.DownRate) || f.DownRate < 0 || f.DownRate >= 1 {
			return nil, badRequest(CodeBadRequest, "fault.down_rate = %v not in [0,1)", f.DownRate)
		}
		if math.IsNaN(f.AbstainRate) || f.AbstainRate < 0 || f.AbstainRate >= 1 {
			return nil, badRequest(CodeBadRequest, "fault.abstain_rate = %v not in [0,1)", f.AbstainRate)
		}
		if !validAlpha(f.Alpha) {
			return nil, badRequest(CodeBadAlpha, "fault.alpha = %v not in [0,1]", f.Alpha)
		}
		policy, aerr := parsePolicy(f.Policy)
		if aerr != nil {
			return nil, aerr
		}
		parsed.Policy = policy
	}
	return parsed, nil
}

// ParsedWhatIf is a validated what-if request. FinalInstance/FinalGraph
// are the post-delta election (aliases of Instance/Graph when the request
// carries no deltas), computed at parse time so every structurally invalid
// delta is a typed 400 before admission — the worker only ever sees delta
// lists that apply cleanly.
type ParsedWhatIf struct {
	Req      *WhatIfRequest
	Instance *core.Instance
	Graph    *core.DelegationGraph

	Deltas        []election.Delta
	FinalInstance *core.Instance
	FinalGraph    *core.DelegationGraph
}

// ParseWhatIfRequest decodes and validates a what-if body.
func ParseWhatIfRequest(body []byte) (*ParsedWhatIf, *Error) {
	var req WhatIfRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, aerr
	}
	in, aerr := validateInstance(&req.Instance)
	if aerr != nil {
		return nil, aerr
	}
	if req.DeadlineMS < 0 {
		return nil, badRequest(CodeBadRequest, "deadline_ms = %d, want >= 0", req.DeadlineMS)
	}
	if math.IsNaN(req.ErrorBudget) || req.ErrorBudget < 0 || req.ErrorBudget > 1 {
		return nil, badRequest(CodeBadRequest, "error_budget = %v not in [0,1]", req.ErrorBudget)
	}
	n := in.N()
	if len(req.Delegations) != n {
		return nil, badRequest(CodeBadRequest, "delegations has %d entries for n = %d", len(req.Delegations), n)
	}
	d := core.NewDelegationGraph(n)
	for i, j := range req.Delegations {
		if j == core.NoDelegate {
			continue
		}
		if err := d.SetDelegate(i, j); err != nil {
			return nil, badRequest(CodeBadRequest, "delegations[%d]: %v", i, err)
		}
	}
	parsed := &ParsedWhatIf{Req: &req, Instance: in, Graph: d, FinalInstance: in, FinalGraph: d}
	if len(req.Deltas) == 0 {
		return parsed, nil
	}
	if len(req.Deltas) > maxDeltas {
		return nil, badRequest(CodeBadRequest, "deltas has %d entries, maximum %d", len(req.Deltas), maxDeltas)
	}
	deltas := make([]election.Delta, len(req.Deltas))
	for i := range req.Deltas {
		dl, aerr := parseDelta(i, &req.Deltas[i])
		if aerr != nil {
			return nil, aerr
		}
		deltas[i] = dl
	}
	fin, fd, err := election.PreviewDeltas(in, d, deltas...)
	if err != nil {
		return nil, badRequest(CodeBadDelta, "applying deltas: %v", err)
	}
	if fin.N() > maxVoters {
		return nil, badRequest(CodeBadRequest, "deltas grow the instance to %d voters, maximum %d", fin.N(), maxVoters)
	}
	parsed.Deltas = deltas
	parsed.FinalInstance, parsed.FinalGraph = fin, fd
	return parsed, nil
}

// maxBytesError maps the MaxBytesReader rejection to its typed code.
func maxBytesError(err error) *Error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return badRequest(CodeBodyTooLarge, "request body exceeds %d bytes", mbe.Limit)
	}
	return nil
}
