package server

import (
	"encoding/json"
	"math"
	"testing"
)

func validEvaluateBody() string {
	return `{
		"instance": {"n": 5, "complete": true, "p": [0.6, 0.6, 0.7, 0.5, 0.8]},
		"mechanism": {"name": "approval-threshold", "alpha": 0.1},
		"alphas": [0, 0.05, 0.1],
		"seed": 7,
		"replications": 8
	}`
}

func TestParseEvaluateRequestValid(t *testing.T) {
	parsed, aerr := ParseEvaluateRequest([]byte(validEvaluateBody()))
	if aerr != nil {
		t.Fatalf("ParseEvaluateRequest: %v", aerr)
	}
	if parsed.Instance.N() != 5 {
		t.Fatalf("n = %d", parsed.Instance.N())
	}
	if len(parsed.Mechanisms) != 3 || len(parsed.Alphas) != 3 {
		t.Fatalf("mechanisms = %d, alphas = %d, want 3 each", len(parsed.Mechanisms), len(parsed.Alphas))
	}
	if parsed.Req.Seed != 7 || parsed.Req.Replications != 8 {
		t.Fatalf("seed/replications = %d/%d", parsed.Req.Seed, parsed.Req.Replications)
	}
}

func TestParseEvaluateRequestRejections(t *testing.T) {
	cases := []struct {
		name, body, code string
	}{
		{"garbage", `{]`, CodeBadJSON},
		{"unknown field", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "bogus": 1}`, CodeBadJSON},
		{"trailing data", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}} {"again": true}`, CodeBadJSON},
		{"competency below zero", `{"instance": {"n": 1, "p": [-0.5]}, "mechanism": {"name": "direct"}}`, CodeBadCompetency},
		{"competency above one", `{"instance": {"n": 1, "p": [1.5]}, "mechanism": {"name": "direct"}}`, CodeBadCompetency},
		{"alpha above one", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "approval-threshold"}, "alphas": [1.5]}`, CodeBadAlpha},
		{"alpha negative", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "approval-threshold", "alpha": -0.1}}`, CodeBadAlpha},
		{"duplicate edge", `{"instance": {"n": 3, "edges": [[0,1],[1,0]], "p": [0.5,0.5,0.5]}, "mechanism": {"name": "direct"}}`, CodeDuplicateEdge},
		{"self loop", `{"instance": {"n": 3, "edges": [[1,1]], "p": [0.5,0.5,0.5]}, "mechanism": {"name": "direct"}}`, CodeBadEdge},
		{"edge out of range", `{"instance": {"n": 3, "edges": [[0,7]], "p": [0.5,0.5,0.5]}, "mechanism": {"name": "direct"}}`, CodeBadEdge},
		{"unknown mechanism", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "telepathy"}}`, CodeBadMechanism},
		{"zero voters", `{"instance": {"n": 0, "p": []}, "mechanism": {"name": "direct"}}`, CodeBadRequest},
		{"p length mismatch", `{"instance": {"n": 2, "p": [0.5]}, "mechanism": {"name": "direct"}}`, CodeBadRequest},
		{"complete with edges", `{"instance": {"n": 2, "complete": true, "edges": [[0,1]], "p": [0.5,0.5]}, "mechanism": {"name": "direct"}}`, CodeBadRequest},
		{"negative replications", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "replications": -1}`, CodeBadRequest},
		{"negative deadline", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "deadline_ms": -5}`, CodeBadRequest},
		{"unknown policy", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "fault": {"policy": "wish"}}`, CodeBadRequest},
		{"down rate one", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "fault": {"policy": "lose-weight", "down_rate": 1}}`, CodeBadRequest},
		{"fault alpha", `{"instance": {"n": 1, "p": [0.5]}, "mechanism": {"name": "direct"}, "fault": {"policy": "redelegate", "alpha": 2}}`, CodeBadAlpha},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parsed, aerr := ParseEvaluateRequest([]byte(tc.body))
			if aerr == nil {
				t.Fatalf("accepted: %+v", parsed)
			}
			if aerr.Code != tc.code {
				t.Fatalf("code = %s (%s), want %s", aerr.Code, aerr.Message, tc.code)
			}
			if aerr.Status != 400 {
				t.Fatalf("status = %d, want 400", aerr.Status)
			}
		})
	}
}

// NaN and Inf cannot ride in as JSON literals, but the validator is also
// the guard for programmatic construction (and for any future binary
// decoding), so it must reject them directly.
func TestValidateInstanceNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		spec := &InstanceSpec{N: 1, Complete: false, P: []float64{bad}}
		if _, aerr := validateInstance(spec); aerr == nil || aerr.Code != CodeBadCompetency {
			t.Fatalf("p = %v accepted (err %v)", bad, aerr)
		}
	}
	if validAlpha(math.NaN()) || validAlpha(math.Inf(1)) {
		t.Fatal("non-finite alpha accepted")
	}
}

func TestParseWhatIfRequest(t *testing.T) {
	body := `{
		"instance": {"n": 3, "complete": true, "p": [0.5, 0.6, 0.9]},
		"delegations": [2, 2, -1]
	}`
	parsed, aerr := ParseWhatIfRequest([]byte(body))
	if aerr != nil {
		t.Fatalf("ParseWhatIfRequest: %v", aerr)
	}
	if got := parsed.Graph.Delegate; got[0] != 2 || got[1] != 2 || got[2] != -1 {
		t.Fatalf("delegations = %v", got)
	}

	for _, tc := range []struct{ name, body, code string }{
		{"length mismatch", `{"instance": {"n": 3, "complete": true, "p": [0.5,0.5,0.5]}, "delegations": [1]}`, CodeBadRequest},
		{"self delegation", `{"instance": {"n": 2, "complete": true, "p": [0.5,0.5]}, "delegations": [0, -1]}`, CodeBadRequest},
		{"out of range", `{"instance": {"n": 2, "complete": true, "p": [0.5,0.5]}, "delegations": [5, -1]}`, CodeBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, aerr := ParseWhatIfRequest([]byte(tc.body)); aerr == nil || aerr.Code != tc.code {
				t.Fatalf("err = %v, want code %s", aerr, tc.code)
			}
		})
	}
}

// FuzzDecodeEvaluateRequest is the decode-hardening fuzz target: whatever
// the bytes, the parser must not panic, and anything it accepts must
// satisfy the invariants the handlers rely on.
func FuzzDecodeEvaluateRequest(f *testing.F) {
	f.Add([]byte(validEvaluateBody()))
	f.Add([]byte(`{"instance": {"n": 3, "edges": [[0,1],[1,2]], "p": [0.1,0.2,0.3]}, "mechanism": {"name": "half-neighborhood", "alpha": 0.2}, "seed": 1}`))
	f.Add([]byte(`{"instance": {"n": 1, "p": [1e999]}, "mechanism": {"name": "direct"}}`))
	f.Add([]byte(`{"instance": {"n": 2, "edges": [[0,1],[0,1]], "p": [0.5,0.5]}, "mechanism": {"name": "greedy-best"}}`))
	f.Add([]byte(`{"instance": {"n": -1, "p": []}, "mechanism": {"name": "direct"}, "fault": {"policy": "redelegate"}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		parsed, aerr := ParseEvaluateRequest(body)
		if aerr != nil {
			if parsed != nil {
				t.Fatal("error with non-nil result")
			}
			if aerr.Code == "" || aerr.Status != 400 {
				t.Fatalf("malformed rejection: %+v", aerr)
			}
			return
		}
		if parsed.Instance == nil || parsed.Instance.N() <= 0 || parsed.Instance.N() > maxVoters {
			t.Fatalf("accepted instance out of bounds: %+v", parsed.Instance)
		}
		if len(parsed.Mechanisms) != len(parsed.Alphas) || len(parsed.Mechanisms) == 0 {
			t.Fatalf("mechanisms/alphas mismatch: %d vs %d", len(parsed.Mechanisms), len(parsed.Alphas))
		}
		for _, a := range parsed.Alphas {
			if !validAlpha(a) {
				t.Fatalf("accepted alpha %v", a)
			}
		}
		for _, p := range parsed.Instance.Competencies() {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("accepted competency %v", p)
			}
		}
		// Accepted requests must re-encode: the handlers marshal responses
		// that embed request-derived values.
		if _, err := json.Marshal(parsed.Req); err != nil {
			t.Fatalf("re-encoding accepted request: %v", err)
		}
	})
}
