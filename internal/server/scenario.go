package server

// The retained-scenario cache behind the delta what-if path. Delta
// traffic is "one base election, many small edits": a client pins a base
// (instance, delegations) pair and probes variations — re-pointed
// delegations, a changed competency, a joined or departed voter. Scoring
// each probe from scratch costs the full exact DP; an election.Scenario
// retains the divide-and-conquer convolution tree between probes and
// patches only what the edit touched, so the cache keys scenarios by the
// base election's content and rebases the retained scenario onto the base
// profile before each probe.
//
// Sharing discipline: entries are content-addressed (the key hashes n,
// the topology, the competency bits, and the base delegations), so two
// requests that name the same base byte-for-byte share one entry, and the
// per-entry mutex serializes them — a Scenario is single-threaded scratch
// by contract. Requests whose deltas mutate the instance itself would
// advance the retained scenario's plan away from the cached base, so they
// run on a throwaway scenario that still shares the cached plan's score
// cache (its values are instance-independent). Bit-identity is preserved
// throughout: Scenario.Score/PD equal ResolutionProbabilityExact/
// DirectProbabilityExact on the post-delta election, so a cached, patched
// answer is byte-identical to a cold one — which is what lets liquidload
// -verify diff served delta responses against offline evaluation.

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/telemetry"
)

// scenarioCacheMaxEntries bounds the cache; eviction is wholesale, like
// the election package's P^D memo — load spread across many distinct
// bases degrades to miss-and-rebuild, never unbounded growth.
const scenarioCacheMaxEntries = 8

// scenarioCache content-addresses retained evaluation scenarios.
type scenarioCache struct {
	mu      sync.Mutex
	entries map[[32]byte]*scenarioEntry

	cHits   *telemetry.Counter
	cMisses *telemetry.Counter
}

// scenarioEntry is one base election's retained state. mu serializes
// every evaluation against the entry; base is the entry's own copy of the
// base profile, the rebase target before each probe.
type scenarioEntry struct {
	mu   sync.Mutex
	plan *election.Plan
	base *core.DelegationGraph
	sc   *election.Scenario
}

func newScenarioCache() *scenarioCache {
	return &scenarioCache{
		entries: make(map[[32]byte]*scenarioEntry),
		cHits:   telemetry.NewCounter("server/scenario_cache_hits"),
		cMisses: telemetry.NewCounter("server/scenario_cache_misses"),
	}
}

// scenarioKey hashes the base election's content: two requests agree on a
// key iff they describe the same voters, topology, competency bits, and
// base delegations.
func scenarioKey(in *core.Instance, d *core.DelegationGraph) [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeInt(in.N())
	switch top := in.Topology().(type) {
	case graph.Complete:
		writeInt(-1)
	case *graph.Graph:
		edges := top.Edges()
		writeInt(len(edges))
		for _, e := range edges {
			writeInt(e[0])
			writeInt(e[1])
		}
	default:
		writeInt(-2)
	}
	for _, p := range in.Competencies() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
		h.Write(buf[:])
	}
	for _, t := range d.Delegate {
		writeInt(t)
	}
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// acquire returns the entry for a base election, creating it on miss.
func (c *scenarioCache) acquire(in *core.Instance, d *core.DelegationGraph) *scenarioEntry {
	k := scenarioKey(in, d)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.cHits.Inc()
		return e
	}
	c.cMisses.Inc()
	if len(c.entries) >= scenarioCacheMaxEntries {
		clear(c.entries)
	}
	e := &scenarioEntry{}
	c.entries[k] = e
	return e
}

// score evaluates one delta what-if exactly: P^M and P^D of the
// post-delta election, bit-identical to from-scratch exact scoring.
func (c *scenarioCache) score(parsed *ParsedWhatIf, exactLimit int64) (pm, pd float64, err error) {
	entry := c.acquire(parsed.Instance, parsed.Graph)
	entry.mu.Lock()
	defer entry.mu.Unlock()
	if entry.sc == nil {
		// First sight of this base: pin a plan and a retained scenario.
		// Workers 1 and a single replication — the serving layer's
		// parallelism is across requests, and scenario scoring is exact.
		plan, perr := election.NewPlan(parsed.Instance, election.Options{Replications: 1, ExactCostLimit: exactLimit, Workers: 1})
		if perr != nil {
			return 0, 0, perr
		}
		sc, serr := election.NewScenario(plan, parsed.Graph)
		if serr != nil {
			return 0, 0, serr
		}
		entry.plan = plan
		entry.base = &core.DelegationGraph{Delegate: append([]int(nil), parsed.Graph.Delegate...)}
		entry.sc = sc
	}
	sc := entry.sc
	if instanceLevel(parsed.Deltas) {
		// Structural deltas would advance the retained scenario's plan away
		// from the cached base; a throwaway scenario keeps the entry clean
		// while still sharing the cached plan's score cache.
		if sc, err = election.NewScenario(entry.plan, entry.base); err != nil {
			return 0, 0, err
		}
	} else {
		// Rebase the retained scenario onto the base profile; its tree
		// diffs the next Score against whatever the previous probe left
		// behind, so nearby probes patch rather than rebuild.
		if err = sc.SetDelegation(entry.base); err != nil {
			return 0, 0, err
		}
	}
	if err = sc.ApplyDelta(parsed.Deltas...); err != nil {
		return 0, 0, err
	}
	if pm, err = sc.Score(); err != nil {
		return 0, 0, err
	}
	if pd, err = sc.PD(); err != nil {
		return 0, 0, err
	}
	return pm, pd, nil
}

// instanceLevel reports whether any delta mutates the instance itself
// (rather than only the delegation profile).
func instanceLevel(deltas []election.Delta) bool {
	for _, d := range deltas {
		if d.Kind != election.DeltaRepoint {
			return true
		}
	}
	return false
}
