package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tab := NewTable("Demo", "n", "gain")
	tab.AddRow("10", "0.1234")
	tab.AddRow("10000", "-0.0001")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Header and rows must align at the same columns.
	if !strings.HasPrefix(lines[1], "n    ") {
		t.Fatalf("header misaligned: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Fatalf("separator missing: %q", lines[2])
	}
}

func TestAddRowPadding(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("1")
	tab.AddRow("1", "2", "3", "4")
	if len(tab.Rows[0]) != 3 || tab.Rows[0][1] != "" {
		t.Fatalf("short row not padded: %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 3 {
		t.Fatalf("long row not truncated: %v", tab.Rows[1])
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Itoa(42) != "42" {
		t.Error("Itoa")
	}
	if F(0.5) != "0.5000" {
		t.Errorf("F = %q", F(0.5))
	}
	if F2(1.005) == "" {
		t.Error("F2 empty")
	}
	if G(0.000125) != "0.000125" {
		t.Errorf("G = %q", G(0.000125))
	}
	if Interval(0.1, 0.2) != "[0.1000, 0.2000]" {
		t.Errorf("Interval = %q", Interval(0.1, 0.2))
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := NewTable("MD", "a", "b")
	tab.AddRow("1", "x|y")
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**MD**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
