// Package report renders experiment results as aligned text tables and CSV,
// mirroring how the paper's results would be tabulated.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled rectangular result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// are truncated to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Itoa formats an int cell.
func Itoa(v int) string { return strconv.Itoa(v) }

// F formats a float cell with 4 decimal places.
func F(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// F2 formats a float cell with 2 decimal places.
func F2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// G formats a float cell compactly.
func G(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// Interval formats a [lo, hi] confidence interval cell.
func Interval(lo, hi float64) string {
	return "[" + F(lo) + ", " + F(hi) + "]"
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table,
// preceded by the title as a bold line when present.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeMDRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeMDRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeMDRow(sep)
	for _, row := range t.Rows {
		writeMDRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
