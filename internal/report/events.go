package report

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLWriter appends one compact JSON object per line to an underlying
// writer. It is safe for concurrent use, so a parallel scheduler can stream
// events from several workers into one file. The value type is deliberately
// generic: report cannot import the engine's event type without a cycle, and
// any JSON-marshalable record works.
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLWriter wraps w in a line-per-record JSON writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Write marshals v and appends it as one line.
func (j *JSONLWriter) Write(v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(v)
}
