// Package engine schedules experiments onto a bounded worker pool with
// deterministic, order-independent results.
//
// Every experiment derives all of its randomness from Config.Seed via
// rng.Derive, never from scheduling order, so running the registry with one
// worker or sixteen produces byte-identical outcomes; the engine only decides
// *when* each experiment runs. Cancellation is cooperative: cancelling the
// context passed to Run stops the scheduler from feeding new experiments and
// aborts in-flight replication loops through the context plumbed into the
// election and localsim layers.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"liquid/internal/experiment"
	"liquid/internal/telemetry"
)

// EventKind labels a scheduler event.
type EventKind string

// The event kinds emitted by a Runner, in the order they can occur for one
// experiment. SuiteFinished is emitted exactly once, after all workers drain.
const (
	ExperimentStarted EventKind = "experiment_started"
	// ExperimentRetried reports a transient failure about to be retried
	// (the experiment returned an error wrapping experiment.ErrTransient
	// and attempts remain).
	ExperimentRetried EventKind = "experiment_retried"
	// ExperimentPanicked reports a panic recovered from an experiment; the
	// experiment still finishes (with a *PanicError), the suite continues.
	ExperimentPanicked EventKind = "experiment_panicked"
	ExperimentFinished EventKind = "experiment_finished"
	CheckFailed        EventKind = "check_failed"
	SuiteFinished      EventKind = "suite_finished"
)

// PanicError is a panic recovered from an experiment run, preserving the
// panic value and the goroutine stack. It surfaces as the experiment's
// result error so one broken experiment cannot take down the whole suite.
type PanicError struct {
	// ID is the experiment that panicked.
	ID string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment %s panicked: %v", e.ID, e.Value)
}

// Event is one typed scheduler notification. Seq orders events as emitted;
// with several workers the interleaving across experiments is
// non-deterministic even though the results are not.
type Event struct {
	Kind EventKind `json:"kind"`
	Seq  int       `json:"seq"`

	// ID/Title identify the experiment (empty on SuiteFinished).
	ID    string `json:"id,omitempty"`
	Title string `json:"title,omitempty"`

	// Check/Detail describe a failed check (CheckFailed), or the truncated
	// stack of a recovered panic (ExperimentPanicked).
	Check  string `json:"check,omitempty"`
	Detail string `json:"detail,omitempty"`

	// Err is the run error, if any (ExperimentRetried, ExperimentPanicked,
	// ExperimentFinished, SuiteFinished).
	Err string `json:"err,omitempty"`

	// Attempt is the failed attempt number (ExperimentRetried only).
	Attempt int `json:"attempt,omitempty"`

	// ElapsedSeconds, Replications, Checks and Failed summarize a finished
	// experiment; on SuiteFinished, ElapsedSeconds covers the whole suite and
	// Failed counts failed experiments.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	Replications   int     `json:"replications,omitempty"`
	Checks         int     `json:"checks,omitempty"`
	Failed         int     `json:"failed,omitempty"`

	// Experiments and Workers describe the suite (SuiteFinished only).
	Experiments int `json:"experiments,omitempty"`
	Workers     int `json:"workers,omitempty"`
}

// Options configures a Runner.
type Options struct {
	// Workers bounds how many experiments run concurrently. 0 means one per
	// CPU core (the worker count never changes results, only wall clock).
	Workers int
	// FailFast stops scheduling new experiments after the first one that
	// errors or fails a check; experiments already in flight finish.
	FailFast bool
	// Timeout bounds each experiment's run (0 = none). A timed-out
	// experiment reports context.DeadlineExceeded as its error.
	Timeout time.Duration
	// Retries is how many times an experiment whose error wraps
	// experiment.ErrTransient is re-attempted (0 = never). Panics and
	// permanent errors are never retried.
	Retries int
	// RetryBackoff is the wait before the first retry; it doubles per
	// attempt, capped at RetryBackoffCap. Zero means 100ms.
	RetryBackoff time.Duration
	// RetryBackoffCap caps the doubling backoff. Zero means 2s.
	RetryBackoffCap time.Duration
	// Events, when non-nil, receives every scheduler event. Calls are
	// serialized; the callback must not block for long.
	Events func(Event)
	// Telemetry is the registry the runner records spans and counters on
	// (one span per scheduled experiment, retry/panic counters). Nil means
	// telemetry.Default. Telemetry is write-only with respect to results:
	// attaching a registry, or none, never changes a Result.
	Telemetry *telemetry.Registry
}

// Result pairs a definition with its outcome. Exactly one of Outcome/Err is
// meaningful unless the experiment was never scheduled, in which case
// Skipped is true and both are zero.
type Result struct {
	Def     experiment.Definition
	Outcome *experiment.Outcome
	Err     error
	Skipped bool
}

// Failed reports whether the result should count as a failure: a run error
// or at least one failed check. Skipped results are not failures.
func (r Result) Failed() bool {
	if r.Skipped {
		return false
	}
	return r.Err != nil || (r.Outcome != nil && len(r.Outcome.Failed()) > 0)
}

// Runner executes experiment definitions on a worker pool.
type Runner struct {
	opts Options

	mu  sync.Mutex
	seq int
}

// New creates a Runner. A zero Options value gives a full-width,
// run-everything, silent runner.
func New(opts Options) *Runner {
	return &Runner{opts: opts}
}

// registry returns the telemetry registry in use (Default unless
// overridden in Options).
func (r *Runner) registry() *telemetry.Registry {
	if r.opts.Telemetry != nil {
		return r.opts.Telemetry
	}
	return telemetry.Default
}

func (r *Runner) emit(ev Event) {
	if r.opts.Events == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	events := r.opts.Events
	events(ev)
	r.mu.Unlock()
}

// Run executes defs on the pool and returns one Result per definition, in
// input order regardless of completion order. The returned error is ctx's
// error when the run was cancelled or nil otherwise; per-experiment failures
// are reported in the results, not the error.
func (r *Runner) Run(ctx context.Context, defs []experiment.Definition, cfg experiment.Config) ([]Result, error) {
	start := time.Now()
	results := make([]Result, len(defs))
	for i, def := range defs {
		results[i] = Result{Def: def, Skipped: true}
	}

	workers := r.opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(defs) {
		workers = len(defs)
	}
	// Nested-parallelism budget: each pooled experiment runs election
	// evaluations that parallelise internally (replication workers plus the
	// fork-join D&C kernels), so an unconstrained inner width would
	// oversubscribe cores by a factor of the pool width. Split the cores
	// across the pool unless the caller pinned the inner width explicitly.
	// Purely a scheduling decision: evaluation results are invariant under
	// worker counts, so the budget can never change an outcome.
	if cfg.Workers == 0 && workers > 0 {
		cfg.Workers = max(1, defaultWorkers()/workers)
	}

	// stop is closed at most once, when FailFast trips.
	stop := make(chan struct{})
	var stopOnce sync.Once
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = r.runOne(ctx, defs[i], cfg)
				if r.opts.FailFast && results[i].Failed() {
					stopOnce.Do(func() { close(stop) })
				}
			}
		}()
	}

feed:
	for i := range defs {
		select {
		case <-ctx.Done():
			break feed
		case <-stop:
			break feed
		case work <- i:
		}
	}
	close(work)
	wg.Wait()

	failed := 0
	for _, res := range results {
		if res.Failed() {
			failed++
		}
	}
	suite := Event{
		Kind:           SuiteFinished,
		ElapsedSeconds: time.Since(start).Seconds(),
		Experiments:    len(defs),
		Workers:        workers,
		Failed:         failed,
	}
	if err := ctx.Err(); err != nil {
		suite.Err = err.Error()
		r.emit(suite)
		return results, err
	}
	r.emit(suite)
	return results, nil
}

// runOne executes a single definition, emitting its lifecycle events.
// Transient errors are retried with capped exponential backoff; panics are
// recovered into a *PanicError and never retried.
func (r *Runner) runOne(ctx context.Context, def experiment.Definition, cfg experiment.Config) Result {
	r.emit(Event{Kind: ExperimentStarted, ID: def.ID, Title: def.Title})
	// Timing lives here, not in the experiment layer: outcomes carry only
	// reproducible data, and elapsed time is engine telemetry. The measured
	// span covers retries and backoff waits — it is "how long the slot was
	// busy", which is the number the progress display wants.
	start := time.Now()
	// One telemetry span per scheduled task, installed in the context so
	// downstream layers (election, fault evaluation) can hang child spans
	// off it. Same coverage as `start`: retries and backoff included.
	reg := r.registry()
	reg.Counter("engine/experiments_started").Inc()
	sp := reg.StartSpan("experiment/" + def.ID)
	defer sp.End()
	runCtx := telemetry.ContextWithSpan(ctx, sp)
	if r.opts.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, r.opts.Timeout)
		defer cancel()
	}
	backoff := Backoff{Initial: r.opts.RetryBackoff, Cap: r.opts.RetryBackoffCap}
	var out *experiment.Outcome
	var err error
	for attempt := 1; ; attempt++ {
		out, err = r.runAttempt(runCtx, def, cfg)
		if err == nil || !errors.Is(err, experiment.ErrTransient) ||
			attempt > r.opts.Retries || runCtx.Err() != nil {
			break
		}
		reg.Counter("engine/experiment_retries").Inc()
		r.emit(Event{Kind: ExperimentRetried, ID: def.ID, Title: def.Title, Err: err.Error(), Attempt: attempt})
		// A cancelled wait falls through to the loop condition, which exits
		// on runCtx.Err() exactly as the pre-Backoff code did.
		_ = backoff.Wait(runCtx)
	}
	res := Result{Def: def, Outcome: out, Err: err}
	reg.Histogram("engine/experiment_seconds", 0.01, 0.1, 1, 10, 60, 600).
		Observe(time.Since(start).Seconds())
	if res.Failed() {
		reg.Counter("engine/experiments_failed").Inc()
	}
	ev := Event{Kind: ExperimentFinished, ID: def.ID, Title: def.Title}
	if err != nil {
		ev.Err = err.Error()
		r.emit(ev)
		return res
	}
	ev.ElapsedSeconds = time.Since(start).Seconds()
	ev.Replications = out.Replications
	ev.Checks = len(out.Checks)
	for _, c := range out.Checks {
		if !c.Passed {
			ev.Failed++
		}
	}
	r.emit(ev)
	for _, c := range out.Checks {
		if !c.Passed {
			r.emit(Event{Kind: CheckFailed, ID: def.ID, Check: c.Name, Detail: c.Detail})
		}
	}
	return res
}

// panicStackLimit bounds how much of a recovered stack lands in the event
// stream (the full stack stays on the PanicError).
const panicStackLimit = 2048

// runAttempt executes one attempt of a definition, converting panics into
// a *PanicError and an ExperimentPanicked event instead of crashing the
// worker pool.
func (r *Runner) runAttempt(ctx context.Context, def experiment.Definition, cfg experiment.Config) (out *experiment.Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			r.registry().Counter("engine/experiment_panics").Inc()
			pe := &PanicError{ID: def.ID, Value: v, Stack: debug.Stack()}
			out, err = nil, pe
			stack := string(pe.Stack)
			if len(stack) > panicStackLimit {
				stack = stack[:panicStackLimit] + "\n... (truncated)"
			}
			r.emit(Event{Kind: ExperimentPanicked, ID: def.ID, Title: def.Title, Err: pe.Error(), Detail: stack})
		}
	}()
	return experiment.RunDefinition(ctx, def, cfg)
}
