package engine

import (
	"context"
	"time"
)

// Backoff is the engine's capped-doubling retry schedule, factored out so
// the serving layer's transient-failure retries pace themselves exactly
// like the experiment runner's: first wait Initial, double per attempt,
// never exceed Cap. The zero value uses the runner's historical defaults
// (100ms doubling to 2s). Not safe for concurrent use; each retry loop
// owns its own Backoff.
type Backoff struct {
	// Initial is the first wait; 0 means 100ms.
	Initial time.Duration
	// Cap bounds the doubling; 0 means 2s.
	Cap time.Duration

	cur time.Duration
}

// Next returns the wait before the upcoming retry and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.Initial
		if b.cur <= 0 {
			b.cur = 100 * time.Millisecond
		}
	}
	d := b.cur
	limit := b.Cap
	if limit <= 0 {
		limit = 2 * time.Second
	}
	b.cur *= 2
	if b.cur > limit {
		b.cur = limit
	}
	return d
}

// Reset restarts the schedule from Initial.
func (b *Backoff) Reset() { b.cur = 0 }

// Wait sleeps for the schedule's next interval, returning early (with
// ctx's error) when the context is cancelled first. A nil error means the
// full wait elapsed and the caller should retry.
func (b *Backoff) Wait(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
