package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// defaultWorkers is one worker per CPU core.
func defaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// Tee fans one event out to several consumers, in order.
func Tee(sinks ...func(Event)) func(Event) {
	return func(ev Event) {
		for _, s := range sinks {
			if s != nil {
				s(ev)
			}
		}
	}
}

// Progress returns an event consumer that writes a human-readable line per
// event to w. It is safe for use as Options.Events with any worker count.
func Progress(w io.Writer) func(Event) {
	var mu sync.Mutex
	done := 0
	return func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case ExperimentStarted:
			fmt.Fprintf(w, "start %-4s %s\n", ev.ID, ev.Title)
		case ExperimentRetried:
			fmt.Fprintf(w, "retry %-4s attempt %d failed: %s\n", ev.ID, ev.Attempt, ev.Err)
		case ExperimentPanicked:
			fmt.Fprintf(w, "panic %-4s %s\n", ev.ID, ev.Err)
		case ExperimentFinished:
			done++
			switch {
			case ev.Err != "":
				fmt.Fprintf(w, "error %-4s %s\n", ev.ID, ev.Err)
			case ev.Failed > 0:
				fmt.Fprintf(w, "FAIL  %-4s %d/%d checks failed (%.2fs)\n",
					ev.ID, ev.Failed, ev.Checks, ev.ElapsedSeconds)
			default:
				fmt.Fprintf(w, "ok    %-4s %d checks (%.2fs, %d reps, %d done)\n",
					ev.ID, ev.Checks, ev.ElapsedSeconds, ev.Replications, done)
			}
		case CheckFailed:
			fmt.Fprintf(w, "      %-4s check failed: %s (%s)\n", ev.ID, ev.Check, ev.Detail)
		case SuiteFinished:
			if ev.Err != "" {
				fmt.Fprintf(w, "suite cancelled after %.2fs: %s\n", ev.ElapsedSeconds, ev.Err)
			} else {
				fmt.Fprintf(w, "suite done: %d experiments, %d failed, %d workers, %.2fs\n",
					ev.Experiments, ev.Failed, ev.Workers, ev.ElapsedSeconds)
			}
		}
	}
}
