package engine

import (
	"context"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Cap: 35 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		35 * time.Millisecond, // 40ms capped
		35 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next()[%d] = %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset, Next() = %v, want 10ms", got)
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("zero-value first wait = %v, want 100ms", got)
	}
	for i := 0; i < 10; i++ {
		if got := b.Next(); got > 2*time.Second {
			t.Fatalf("wait %v exceeded default 2s cap", got)
		}
	}
}

func TestBackoffWaitCancelled(t *testing.T) {
	b := Backoff{Initial: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Wait(ctx); err == nil {
		t.Fatal("Wait on a cancelled context should return its error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled Wait blocked")
	}
}

func TestBackoffWaitElapses(t *testing.T) {
	b := Backoff{Initial: time.Millisecond, Cap: time.Millisecond}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait = %v, want nil after the interval", err)
	}
}
