package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"liquid/internal/experiment"
)

// fastSubset picks registry experiments that are quick at Scale 0.25 but
// still exercise the parallel election engine underneath.
func fastSubset(t *testing.T, ids ...string) []experiment.Definition {
	t.Helper()
	defs := make([]experiment.Definition, 0, len(ids))
	for _, id := range ids {
		def, err := experiment.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		defs = append(defs, def)
	}
	return defs
}

// outcomes extracts the outcome from each result. Outcomes carry no
// wall-clock fields (timing is engine telemetry only), so they can be
// compared structurally as-is.
func outcomes(results []Result) []*experiment.Outcome {
	outs := make([]*experiment.Outcome, len(results))
	for i, r := range results {
		outs[i] = r.Outcome
	}
	return outs
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the same
// seed must give deep-equal outcomes whether experiments run sequentially or
// on a wide pool, because no randomness depends on scheduling order.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	defs := fastSubset(t, "F2", "A5", "L4", "V1", "X6", "A3")
	cfg := experiment.Config{Seed: 99, Scale: 0.25}

	var baseline []*experiment.Outcome
	for _, workers := range []int{1, 4, 16} {
		results, err := New(Options{Workers: workers}).Run(context.Background(), defs, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, r := range results {
			if r.Err != nil || r.Skipped {
				t.Fatalf("workers=%d: %s err=%v skipped=%v", workers, r.Def.ID, r.Err, r.Skipped)
			}
		}
		outs := outcomes(results)
		if baseline == nil {
			baseline = outs
			continue
		}
		if !reflect.DeepEqual(baseline, outs) {
			t.Fatalf("workers=%d produced different outcomes than workers=1", workers)
		}
	}
}

// TestRunResultsInInputOrder checks that results come back indexed by input
// position even when completion order differs.
func TestRunResultsInInputOrder(t *testing.T) {
	defs := []experiment.Definition{
		stubDef("SLOW", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			time.Sleep(30 * time.Millisecond)
			return &experiment.Outcome{Tables: nil}, nil
		}),
		stubDef("FAST", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			return &experiment.Outcome{Tables: nil}, nil
		}),
	}
	results, err := New(Options{Workers: 2}).Run(context.Background(), defs, experiment.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Def.ID != "SLOW" || results[1].Def.ID != "FAST" {
		t.Fatalf("results out of order: %s, %s", results[0].Def.ID, results[1].Def.ID)
	}
}

func stubDef(id string, run func(context.Context, experiment.Config) (*experiment.Outcome, error)) experiment.Definition {
	return experiment.Definition{ID: id, Title: id, Run: run}
}

// TestRunCancellationPromptAndLeakFree cancels a suite mid-run: Run must
// return ctx's error well under 500ms and leave no worker goroutines behind.
func TestRunCancellationPromptAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan struct{}, 16)
	var defs []experiment.Definition
	for i := 0; i < 12; i++ {
		defs = append(defs, stubDef(fmt.Sprintf("HANG%d", i),
			func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				// A cooperative replication loop: spin until cancelled.
				for {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					time.Sleep(time.Millisecond)
				}
			}))
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := New(Options{Workers: 4}).Run(ctx, defs, experiment.Config{Seed: 1})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("Run did not return within 500ms of cancellation")
	}

	// Workers must all be gone; allow the runtime a moment to reap.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunCancellationRealExperiment drives cancellation through the real
// registry: the context is plumbed down into election sampling loops.
func TestRunCancellationRealExperiment(t *testing.T) {
	defs := fastSubset(t, "T2") // replication-heavy: exercises election ctx plumbing
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := New(Options{Workers: 2}).Run(ctx, defs, experiment.Config{Seed: 1, Scale: 0.25})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !results[0].Skipped {
		t.Fatal("pre-cancelled run should skip scheduling")
	}
}

// TestFailFastStopsScheduling runs a failing experiment first with one
// worker: everything after the failure must be skipped, and without
// FailFast everything runs.
func TestFailFastStopsScheduling(t *testing.T) {
	var ran atomic.Int32
	mk := func(id string, fail bool) experiment.Definition {
		return stubDef(id, func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			ran.Add(1)
			out := &experiment.Outcome{}
			if fail {
				out.Checks = []experiment.Check{{Name: "shape", Passed: false, Detail: "wrong"}}
			}
			return out, nil
		})
	}
	defs := []experiment.Definition{mk("OK1", false), mk("BAD", true), mk("OK2", false), mk("OK3", false)}

	results, err := New(Options{Workers: 1, FailFast: true}).Run(context.Background(), defs, experiment.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d experiments, want 2 (OK1 and BAD)", got)
	}
	if !results[1].Failed() {
		t.Fatal("BAD should report failure")
	}
	if !results[2].Skipped || !results[3].Skipped {
		t.Fatalf("later experiments should be skipped: %+v %+v", results[2], results[3])
	}

	ran.Store(0)
	if _, err := New(Options{Workers: 1}).Run(context.Background(), defs, experiment.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("without FailFast ran %d, want 4", got)
	}
}

// TestPerExperimentTimeout bounds a hanging experiment.
func TestPerExperimentTimeout(t *testing.T) {
	defs := []experiment.Definition{stubDef("HANG",
		func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		})}
	results, err := New(Options{Workers: 1, Timeout: 20 * time.Millisecond}).
		Run(context.Background(), defs, experiment.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", results[0].Err)
	}
}

// TestEventStream checks the emitted event sequence for one pass: started
// and finished per experiment, check_failed for failing checks, one
// suite_finished, and strictly increasing Seq.
func TestEventStream(t *testing.T) {
	var events []Event
	opts := Options{Workers: 1, Events: func(ev Event) { events = append(events, ev) }}
	defs := []experiment.Definition{
		stubDef("GOOD", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			return &experiment.Outcome{Replications: 7,
				Checks: []experiment.Check{{Name: "fine", Passed: true}}}, nil
		}),
		stubDef("BADCHECK", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			return &experiment.Outcome{Checks: []experiment.Check{
				{Name: "broken", Passed: false, Detail: "off by one"}}}, nil
		}),
		stubDef("ERR", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			return nil, errors.New("boom")
		}),
	}
	if _, err := New(opts).Run(context.Background(), defs, experiment.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	for i, ev := range events {
		kinds = append(kinds, string(ev.Kind))
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	want := []string{
		"experiment_started", "experiment_finished",
		"experiment_started", "experiment_finished", "check_failed",
		"experiment_started", "experiment_finished",
		"suite_finished",
	}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	if events[1].Replications != 7 || events[1].Checks != 1 {
		t.Fatalf("finished event = %+v", events[1])
	}
	if events[4].Check != "broken" || events[4].Detail != "off by one" {
		t.Fatalf("check_failed event = %+v", events[4])
	}
	if events[6].Err == "" {
		t.Fatalf("error run should carry Err: %+v", events[6])
	}
	last := events[len(events)-1]
	if last.Experiments != 3 || last.Failed != 2 || last.Workers != 1 {
		t.Fatalf("suite_finished = %+v", last)
	}
}

// TestPanicRecovery is the hardening contract: a deliberately panicking
// experiment surfaces as a typed *PanicError and an experiment_panicked
// event, while the rest of the suite completes and flushes normally.
func TestPanicRecovery(t *testing.T) {
	var events []Event
	opts := Options{Workers: 1, Events: func(ev Event) { events = append(events, ev) }}
	defs := []experiment.Definition{
		stubDef("OK1", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			return &experiment.Outcome{Checks: []experiment.Check{{Name: "fine", Passed: true}}}, nil
		}),
		stubDef("BOOM", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			panic("deliberate test panic")
		}),
		stubDef("OK2", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
			return &experiment.Outcome{Checks: []experiment.Check{{Name: "fine", Passed: true}}}, nil
		}),
	}
	results, err := New(opts).Run(context.Background(), defs, experiment.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !results[1].Failed() {
		t.Fatal("panicking experiment must count as failed")
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", results[1].Err, results[1].Err)
	}
	if pe.ID != "BOOM" || pe.Value != "deliberate test panic" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	for _, i := range []int{0, 2} {
		if results[i].Failed() || results[i].Skipped {
			t.Fatalf("experiment %s should have completed cleanly: %+v", results[i].Def.ID, results[i])
		}
	}
	var panicked, finishedAfter, suite bool
	for _, ev := range events {
		switch {
		case ev.Kind == ExperimentPanicked && ev.ID == "BOOM":
			panicked = true
			if ev.Err == "" || ev.Detail == "" {
				t.Fatalf("panicked event missing err/stack: %+v", ev)
			}
		case ev.Kind == ExperimentFinished && ev.ID == "OK2":
			finishedAfter = true
		case ev.Kind == SuiteFinished:
			suite = true
			if ev.Failed != 1 {
				t.Fatalf("suite_finished Failed = %d, want 1", ev.Failed)
			}
		}
	}
	if !panicked || !finishedAfter || !suite {
		t.Fatalf("missing events: panicked=%v finishedAfter=%v suite=%v", panicked, finishedAfter, suite)
	}
}

// TestTransientRetry checks the bounded-retry contract: transient errors
// are retried with backoff up to the budget, permanent errors are not.
func TestTransientRetry(t *testing.T) {
	var attempts atomic.Int32
	flaky := stubDef("FLAKY", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("%w: simulated resource exhaustion", experiment.ErrTransient)
		}
		return &experiment.Outcome{Checks: []experiment.Check{{Name: "fine", Passed: true}}}, nil
	})

	var retries []Event
	opts := Options{Workers: 1, Retries: 3, RetryBackoff: time.Millisecond, RetryBackoffCap: 2 * time.Millisecond,
		Events: func(ev Event) {
			if ev.Kind == ExperimentRetried {
				retries = append(retries, ev)
			}
		}}
	results, err := New(opts).Run(context.Background(), []experiment.Definition{flaky}, experiment.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Failed() {
		t.Fatalf("flaky experiment should recover: %v", results[0].Err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("ran %d attempts, want 3", attempts.Load())
	}
	if len(retries) != 2 || retries[0].Attempt != 1 || retries[1].Attempt != 2 {
		t.Fatalf("retry events = %+v", retries)
	}

	// Exhausted budget: the transient error is returned as the result.
	attempts.Store(-10)
	results, err = New(Options{Workers: 1, Retries: 1, RetryBackoff: time.Millisecond}).
		Run(context.Background(), []experiment.Definition{flaky}, experiment.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, experiment.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient after exhausted retries", results[0].Err)
	}

	// Permanent errors are never retried, even with budget available.
	var permRuns atomic.Int32
	perm := stubDef("PERM", func(ctx context.Context, cfg experiment.Config) (*experiment.Outcome, error) {
		permRuns.Add(1)
		return nil, errors.New("permanent")
	})
	if _, err := New(Options{Workers: 1, Retries: 5, RetryBackoff: time.Millisecond}).
		Run(context.Background(), []experiment.Definition{perm}, experiment.Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if permRuns.Load() != 1 {
		t.Fatalf("permanent error ran %d times, want 1", permRuns.Load())
	}
}

// TestProgressWriter smoke-tests the human-readable consumer.
func TestProgressWriter(t *testing.T) {
	var sb strings.Builder
	p := Progress(&sb)
	p(Event{Kind: ExperimentStarted, ID: "T2", Title: "Theorem 2"})
	p(Event{Kind: ExperimentRetried, ID: "T2", Attempt: 1, Err: "transient"})
	p(Event{Kind: ExperimentPanicked, ID: "T2", Err: "experiment T2 panicked: boom"})
	p(Event{Kind: ExperimentFinished, ID: "T2", Checks: 4, ElapsedSeconds: 0.5, Replications: 32})
	p(Event{Kind: CheckFailed, ID: "T2", Check: "gain", Detail: "0.001"})
	p(Event{Kind: SuiteFinished, Experiments: 1, Workers: 2, ElapsedSeconds: 0.5})
	out := sb.String()
	for _, frag := range []string{"start T2", "retry T2", "panic T2", "ok    T2", "check failed: gain", "suite done"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("progress output missing %q:\n%s", frag, out)
		}
	}
}
