package election

import (
	"context"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// Comparison is the result of a paired evaluation of two mechanisms on the
// same instance using common random numbers: per replication both
// mechanisms draw from the same stream, so the per-replication difference
// estimates P^A - P^B with far less variance than two independent runs.
type Comparison struct {
	A, B string
	N    int

	// MeanDiff is the mean of the per-replication P^A - P^B differences;
	// DiffLo/DiffHi bound it at 95% confidence.
	MeanDiff float64
	DiffLo   float64
	DiffHi   float64
	// AWins / BWins / Ties count replications by the sign of the
	// difference (ties within 1e-12).
	AWins, BWins, Ties int
}

// Winner returns "A", "B", or "tie" depending on whether the confidence
// interval excludes zero.
func (c *Comparison) Winner() string {
	switch {
	case c.DiffLo > 0:
		return "A"
	case c.DiffHi < 0:
		return "B"
	default:
		return "tie"
	}
}

// CompareMechanisms evaluates mechA against mechB on the instance with
// paired replications. Each realization is scored exactly when the DP is
// affordable, like EvaluateMechanism. Cancelling ctx aborts the replication
// loop with ctx's error.
func CompareMechanisms(ctx context.Context, in *core.Instance, mechA, mechB mechanism.Mechanism, opts Options) (*Comparison, error) {
	opts = opts.withDefaults()
	if in.N() == 0 {
		return nil, ErrNoVoters
	}
	root := rng.New(opts.Seed)

	score := func(mech mechanism.Mechanism, s *rng.Stream) (float64, error) {
		d, err := mech.Apply(in, s.DeriveString("mechanism"))
		if err != nil {
			return 0, err
		}
		res, err := d.Resolve()
		if err != nil {
			return 0, err
		}
		if resolutionCost(res) <= opts.ExactCostLimit {
			return ResolutionProbabilityExact(in, res)
		}
		return ResolutionProbabilityMC(ctx, in, res, opts.VoteSamples, s.DeriveString("votes"))
	}

	cmp := &Comparison{A: mechA.Name(), B: mechB.Name(), N: in.N()}
	var diffs prob.Summary
	for r := 0; r < opts.Replications; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := root.Derive(uint64(r) + 1)
		// Common random numbers: both mechanisms consume the SAME stream
		// state, so shared randomness (e.g. the same random delegate
		// choices where both would delegate) cancels out of the difference.
		pa, err := score(mechA, s)
		if err != nil {
			return nil, fmt.Errorf("mechanism %q: %w", mechA.Name(), err)
		}
		pb, err := score(mechB, s)
		if err != nil {
			return nil, fmt.Errorf("mechanism %q: %w", mechB.Name(), err)
		}
		d := pa - pb
		diffs.Add(d)
		switch {
		case d > 1e-12:
			cmp.AWins++
		case d < -1e-12:
			cmp.BWins++
		default:
			cmp.Ties++
		}
	}
	cmp.MeanDiff = diffs.Mean()
	cmp.DiffLo, cmp.DiffHi = diffs.MeanCI(0.95)
	return cmp, nil
}
