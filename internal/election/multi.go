package election

import (
	"context"
	"fmt"
	"sort"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// MultiDelegationProbability estimates, by Monte Carlo, the probability
// that the Section 6 multi-delegate weighted-majority scheme decides
// correctly: each voter's effective vote is the majority of its delegates'
// effective votes (its own Bernoulli draw breaks ties and is used by
// direct voters), and the final decision is the simple majority of all
// effective votes.
//
// Because voters only consult strictly more competent delegates (alpha >
// 0), the consultation graph is acyclic and effective votes are computed
// in one pass over voters in descending competency order.
func MultiDelegationProbability(ctx context.Context, in *core.Instance, md *mechanism.MultiDelegation, samples int, s *rng.Stream) (float64, error) {
	n := in.N()
	if n == 0 {
		return 0, ErrNoVoters
	}
	if md.N() != n {
		return 0, fmt.Errorf("election: multi-delegation over %d voters, instance has %d", md.N(), n)
	}
	if samples <= 0 {
		samples = 2000
	}

	// Order voters so that every delegate precedes its consulter. Delegates
	// are strictly more competent, so descending competency order works;
	// verify the DAG property as we go to reject adversarial inputs.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Competency(order[a]) > in.Competency(order[b])
	})
	pos := make([]int, n)
	for idx, v := range order {
		pos[v] = idx
	}
	for v, ds := range md.Delegates {
		if md.Weights != nil && md.Weights[v] != nil && len(md.Weights[v]) != len(ds) {
			return 0, fmt.Errorf("%w: voter %d has %d weights for %d delegates", core.ErrInvalidDelegation, v, len(md.Weights[v]), len(ds))
		}
		for _, j := range ds {
			if j < 0 || j >= n || j == v {
				return 0, fmt.Errorf("%w: voter %d consults %d", core.ErrInvalidDelegation, v, j)
			}
			if pos[j] >= pos[v] {
				return 0, fmt.Errorf("%w: voter %d consults non-predecessor %d", core.ErrCyclicDelegation, v, j)
			}
		}
	}

	votes := make([]bool, n)
	wins := 0
	for t := 0; t < samples; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		correct := 0
		for _, v := range order {
			own := s.Bernoulli(in.Competency(v))
			ds := md.Delegates[v]
			if len(ds) == 0 {
				votes[v] = own
			} else {
				var yes, total float64
				for k, j := range ds {
					w := 1.0
					if md.Weights != nil && md.Weights[v] != nil {
						w = md.Weights[v][k]
					}
					//lint:ignore floatacc delegate fan-ins are tiny (a handful of weights); compensating would perturb sampled values for no stability gain
					total += w
					if votes[j] {
						//lint:ignore floatacc same tiny fan-in as total above
						yes += w
					}
				}
				switch {
				case 2*yes > total:
					votes[v] = true
				case 2*yes < total:
					votes[v] = false
				default:
					votes[v] = own
				}
			}
			if votes[v] {
				correct++
			}
		}
		if 2*correct > n {
			wins++
		}
	}
	return float64(wins) / float64(samples), nil
}

// EvaluateMultiMechanism estimates the gain of a multi-delegate mechanism,
// averaging over both mechanism randomness and vote randomness. Cancelling
// ctx aborts the replication loop with ctx's error.
func EvaluateMultiMechanism(ctx context.Context, in *core.Instance, mech mechanism.MultiMechanism, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if in.N() == 0 {
		return nil, ErrNoVoters
	}
	root := rng.New(opts.Seed)
	pd, err := DirectProbability(ctx, in, opts.VoteSamples*4, root.DeriveString("direct"))
	if err != nil {
		return nil, err
	}
	res := &Result{Mechanism: mech.Name(), N: in.N(), PD: pd}
	var pmSum prob.Summary
	var delegators prob.Accumulator
	for r := 0; r < opts.Replications; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := root.Derive(uint64(r) + 1)
		md, err := mech.ApplyMulti(in, s.DeriveString("mechanism"))
		if err != nil {
			return nil, err
		}
		pm, err := MultiDelegationProbability(ctx, in, md, opts.VoteSamples, s.DeriveString("votes"))
		if err != nil {
			return nil, err
		}
		pmSum.Add(pm)
		delegators.Add(float64(md.NumDelegators()))
	}
	res.MeanDelegators = delegators.Sum() / float64(opts.Replications)
	res.PM = pmSum.Mean()
	res.PMStdErr = pmSum.StdErr()
	res.Gain = res.PM - pd
	lo, hi := pmSum.MeanCI(0.95)
	res.GainLo = lo - pd
	res.GainHi = hi - pd
	return res, nil
}
