package election

import (
	"context"
	"math"
	"sync"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// hammerResultEqual compares the result-bearing fields bit for bit. The
// cache-traffic telemetry fields are excluded by contract: they depend on
// scheduling and sharing, never on correctness.
func hammerResultEqual(a, b *Result) bool {
	return math.Float64bits(a.PD) == math.Float64bits(b.PD) &&
		math.Float64bits(a.PM) == math.Float64bits(b.PM) &&
		math.Float64bits(a.PMStdErr) == math.Float64bits(b.PMStdErr) &&
		math.Float64bits(a.Gain) == math.Float64bits(b.Gain) &&
		math.Float64bits(a.MeanMaxWeight) == math.Float64bits(b.MeanMaxWeight) &&
		math.Float64bits(a.MeanSinks) == math.Float64bits(b.MeanSinks) &&
		a.MaxMaxWeight == b.MaxMaxWeight
}

// TestHammerSharedPlanParallelSweep is the race hammer for the
// parallel-by-default plan path: concurrent sweeps over shared plans at
// worker budgets 1/4/16, with cache-disabled points so every evaluation
// recomputes the exact P^D through the fork-join D&C evaluator rather than
// hitting a memo. Every result must match the sequential single-plan
// reference bit for bit — the §13 invariant the cost-model worker routing
// must preserve. Run under `go test -race` in the `make check` race stage.
func TestHammerSharedPlanParallelSweep(t *testing.T) {
	const n = 2500 // above the D&C crossover, so the P^D root actually forks
	s := rng.New(rng.Derive(5, "election", "hammer"))
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = 0.3 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), ps)
	if err != nil {
		t.Fatal(err)
	}
	points := []SweepPoint{
		{Mechanism: mechanism.ApprovalThreshold{Alpha: 0.05}, Seed: 101, DisableResolutionCache: true},
		{Mechanism: mechanism.ApprovalThreshold{Alpha: 0.1}, Seed: 202, DisableResolutionCache: true},
	}

	refPlan, err := NewPlan(in, Options{Replications: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refs, err := EvaluateSweep(context.Background(), refPlan, points)
	if err != nil {
		t.Fatal(err)
	}

	plans := make([]*Plan, 0, 3)
	for _, workers := range []int{1, 4, 16} {
		plan, err := NewPlan(in, Options{Replications: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, plan)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Two goroutines per shared plan, sweeping concurrently.
			results, err := EvaluateSweep(context.Background(), plans[g%len(plans)], points)
			if err != nil {
				t.Error(err)
				return
			}
			for i, res := range results {
				if !hammerResultEqual(res, refs[i]) {
					t.Errorf("goroutine %d (workers %d) point %d diverged: PD %v PM %v vs reference PD %v PM %v",
						g, []int{1, 4, 16}[g%len(plans)], i, res.PD, res.PM, refs[i].PD, refs[i].PM)
				}
			}
		}(g)
	}
	wg.Wait()
}
