package election

// This file holds the memoized exact-scoring layer. Mechanisms are random,
// but across replications they keep producing the same resolved outcomes
// up to sink relabelling: the exact score of a resolution depends only on
// the multiset of (weight, competency) pairs over its sinks, not on which
// voter carries which weight. ScoreCache exploits that by keying on the
// canonical sorted multiset, so repeated realizations cost one sort and
// one map probe instead of a full weighted-majority DP.
// DirectProbabilityExact gets the same treatment one level up: P^D depends
// only on the instance, so sweeps that evaluate many mechanisms on one
// instance run the Poisson-binomial DP once.
//
// Determinism contract (see DESIGN.md "Performance kernels"): the canonical
// voter ordering is applied on every exact scoring path, cached or not, so
// toggling the caches can never change a reported value — a cached score is
// the bit-identical float the DP would recompute. Hit/miss counts, by
// contrast, depend on goroutine scheduling (two workers can miss the same
// key concurrently) and are exposed as telemetry only; they must never be
// rendered into reproduced tables.

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"liquid/internal/core"
	"liquid/internal/prob"
	"liquid/internal/telemetry"
)

// wsPool hands workspaces to the entry points whose callers do not thread
// their own (ResolutionProbabilityExact, DirectProbabilityExact). Pooling
// affects allocation only, never results.
var wsPool = sync.Pool{New: func() any { return prob.NewWorkspace() }}

// rvPool pools delegation resolvers for the replication workers, for the
// same reason: resolver scratch never influences Resolution values.
var rvPool = sync.Pool{New: func() any { return new(core.Resolver) }}

// scoreCacheMaxEntries bounds one ScoreCache's memory. When the bound is
// hit the map is dropped wholesale: eviction order would otherwise depend
// on insertion order, i.e. on scheduling, and a cold restart is cheap
// because every entry is recomputable.
const scoreCacheMaxEntries = 1 << 15

// ScoreCache memoizes exact resolution scores by canonical voter multiset.
// It is safe for concurrent use; EvaluateMechanism shares one across its
// replication workers. Values are pure functions of their keys, so lookups
// compute outside the lock and a duplicated concurrent compute is harmless.
type ScoreCache struct {
	mu sync.Mutex
	m  map[string]float64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewScoreCache returns an empty cache.
func NewScoreCache() *ScoreCache {
	return &ScoreCache{m: make(map[string]float64)}
}

// Stats returns the cache's lifetime hit and miss counts. Telemetry only:
// the split varies with scheduling under concurrent use.
func (c *ScoreCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized scores.
func (c *ScoreCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Package-level cache telemetry, aggregated across all ScoreCaches and the
// direct-probability cache, registered on the telemetry.Default registry
// (this replaced the old package-local atomics + ReadKernelStats API).
// Entry points read the counts from the registry — cmd/reproduce prints a
// snapshot to stderr — but nothing in this package ever reads them back:
// telemetry is write-only with respect to results (telemflow analyzer).
var (
	cResolutionHits   = telemetry.NewCounter("election/resolution_cache_hits")
	cResolutionMisses = telemetry.NewCounter("election/resolution_cache_misses")
	cDirectHits       = telemetry.NewCounter("election/direct_cache_hits")
	cDirectMisses     = telemetry.NewCounter("election/direct_cache_misses")
)

// resolutionVoters builds the canonical voter multiset of a resolution in
// ws scratch: zero-weight sinks are dropped and the rest sorted by
// (weight, p). Canonicalization runs on every exact path — cached or not —
// both so the cache key is a function of the multiset rather than of sink
// discovery order, and so cached and uncached scores sum the same DP in
// the same order and stay bit-identical.
//
// The ordering is produced without a comparison sort: scanning the
// instance's competency order yields p-ascending sinks, and a stable
// counting sort on weight then groups them into the canonical (weight, p)
// sequence in O(n + maxWeight).
func resolutionVoters(in *core.Instance, res *core.Resolution, ws *prob.Workspace) []prob.WeightedVoter {
	voters := ws.VoterBuffer(len(res.Sinks))
	if len(res.Weight) < in.N() {
		// Synthetic all-abstained resolutions may omit the weight vector.
		return voters
	}
	for _, v := range in.CompetencyOrder() {
		if w := res.Weight[v]; w > 0 { // zero is possible with zero initial token weight
			voters = append(voters, prob.WeightedVoter{Weight: w, P: in.Competency(v)})
		}
	}
	return ws.SortVotersByWeight(voters, res.MaxWeight)
}

// resolutionKey encodes the canonical multiset into ws's key buffer:
// 12 bytes per voter, weight then the exact bits of p. Equal keys imply
// equal multisets (competencies are validated non-NaN), so a hit returns
// exactly what the DP would.
func resolutionKey(ws *prob.Workspace, voters []prob.WeightedVoter) []byte {
	b := ws.KeyBuffer(12 * len(voters))
	for _, v := range voters {
		b = binary.LittleEndian.AppendUint32(b, uint32(v.Weight))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.P))
	}
	return b
}

// scoreVoterSet runs the exact weighted-majority DP over the canonical
// voters using ws for scratch.
func scoreVoterSet(ws *prob.Workspace, voters []prob.WeightedVoter) (float64, error) {
	wm, err := ws.WeightedMajority(voters)
	if err != nil {
		return 0, fmt.Errorf("delegation probability: %w", err)
	}
	return wm.ProbCorrectDecisionWS(ws), nil
}

// ResolutionProbabilityExactWS is ResolutionProbabilityExact with
// caller-provided scratch: once ws is warm the call allocates nothing.
func ResolutionProbabilityExactWS(in *core.Instance, res *core.Resolution, ws *prob.Workspace) (float64, error) {
	return ResolutionProbabilityExactCached(in, res, ws, nil)
}

// ResolutionProbabilityExactCached scores a resolution exactly, consulting
// cache first (nil disables memoization without changing any value). The
// DP runs outside the cache lock; the key bytes live in ws and are copied
// only on insertion.
func ResolutionProbabilityExactCached(in *core.Instance, res *core.Resolution, ws *prob.Workspace, cache *ScoreCache) (float64, error) {
	if in.N() == 0 {
		return 0, ErrNoVoters
	}
	voters := resolutionVoters(in, res, ws)
	if len(voters) == 0 {
		// Everyone abstained: no correct strict majority is possible.
		return 0, nil
	}
	if cache == nil {
		return scoreVoterSet(ws, voters)
	}
	key := resolutionKey(ws, voters)
	cache.mu.Lock()
	v, ok := cache.m[string(key)]
	cache.mu.Unlock()
	if ok {
		cache.hits.Add(1)
		cResolutionHits.Inc()
		return v, nil
	}
	cache.misses.Add(1)
	cResolutionMisses.Inc()
	// The DP reads only ws's arena/FFT scratch, never the key buffer, so
	// key stays valid across the call.
	v, err := scoreVoterSet(ws, voters)
	if err != nil {
		return 0, err
	}
	cache.mu.Lock()
	if len(cache.m) >= scoreCacheMaxEntries {
		cache.m = make(map[string]float64)
	}
	cache.m[string(key)] = v
	cache.mu.Unlock()
	return v, nil
}

// pdCacheMaxEntries bounds the direct-probability cache; see
// scoreCacheMaxEntries for the drop-all eviction rationale.
const pdCacheMaxEntries = 256

// pdCache memoizes DirectProbabilityExact by instance identity.
// core.Instance is immutable after construction, so the pointer is a sound
// key, and the exact branch involves no randomness, so a cached P^D is
// valid for every caller. Sweeps that score many mechanisms on one
// instance run the O(n^2) Poisson-binomial DP once.
var pdCache = struct {
	mu sync.Mutex
	m  map[*core.Instance]float64
}{m: make(map[*core.Instance]float64)}

// pdCacheGet looks up the memoized exact P^D of in.
func pdCacheGet(in *core.Instance) (float64, bool) {
	pdCache.mu.Lock()
	v, ok := pdCache.m[in]
	pdCache.mu.Unlock()
	return v, ok
}

// pdCachePut memoizes the exact P^D of in, dropping the whole map at the
// size bound (see scoreCacheMaxEntries for why eviction is all-or-nothing).
func pdCachePut(in *core.Instance, v float64) {
	pdCache.mu.Lock()
	if len(pdCache.m) >= pdCacheMaxEntries {
		pdCache.m = make(map[*core.Instance]float64)
	}
	pdCache.m[in] = v
	pdCache.mu.Unlock()
}

// directProbabilityCached is the memoized body of DirectProbabilityExact.
// Competencies are sorted ascending before the DP: direct voting is the
// all-weight-1 resolution, and scoring it in the same canonical order as
// resolutionVoters keeps P^M of an everyone-votes-directly delegation
// bit-identical to P^D (tests and do-no-harm checks rely on the equality).
func directProbabilityCached(in *core.Instance) (float64, error) {
	if v, ok := pdCacheGet(in); ok {
		cDirectHits.Inc()
		return v, nil
	}
	cDirectMisses.Inc()
	ws := wsPool.Get().(*prob.Workspace)
	defer wsPool.Put(ws)
	ps := in.Competencies()
	sort.Float64s(ps)
	pb, err := ws.PoissonBinomial(ps)
	if err != nil {
		return 0, fmt.Errorf("direct probability: %w", err)
	}
	v := pb.ProbMajorityWS(ws)
	pdCachePut(in, v)
	return v, nil
}

// directProbabilityExactFresh computes the exact P^D with no memoization at
// either level — the uncached reference the DisableResolutionCache contract
// promises — running the majority tail on the fork-join D&C evaluator. The
// fork budget is cost-model-chosen (prob.ParallelWorkerBudget capped at
// workers): 1 when the D&C root stays a DP leaf, so small tables skip the
// fork-join machinery, and roughly one worker per forkable subtree for large
// n, so the tree is parallel by default. Bit-identical to the sequential
// kernel for every budget. The canonical ascending sort matches
// directProbabilityCached, so fresh and memoized values are the same bytes.
func directProbabilityExactFresh(ctx context.Context, in *core.Instance, workers int) (float64, error) {
	ws := wsPool.Get().(*prob.Workspace)
	defer wsPool.Put(ws)
	ps := in.Competencies()
	sort.Float64s(ps)
	pb, err := ws.PoissonBinomial(ps)
	if err != nil {
		return 0, fmt.Errorf("direct probability: %w", err)
	}
	return pb.ProbMajorityParallelWS(ctx, ws, prob.ParallelWorkerBudget(len(ps), workers))
}
