package election

import (
	"context"
	"io"
	"sync"
	"testing"

	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
	"liquid/internal/telemetry"
)

// resultBearing strips a Result down to the fields that are allowed to
// appear in reproduced tables: everything except the scheduling-dependent
// cache-traffic telemetry.
func resultBearing(r *Result) Result {
	c := *r
	c.ResolutionCacheHits = 0
	c.ResolutionCacheMisses = 0
	return c
}

// TestTelemetrySinksWriteOnly is the property test behind the telemflow
// invariant: an evaluation running while sinks aggressively drain the
// Default registry produces bit-identical results to one running with
// telemetry.Discard (i.e. nobody flushing). Since every replication's
// randomness comes from streams derived off the seed, equality here also
// proves telemetry consumed zero extra RNG draws — one stolen draw would
// shift every subsequent replication and change PM.
func TestTelemetrySinksWriteOnly(t *testing.T) {
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	for _, seed := range []uint64{3, 17, 91} {
		in := mustInstance(t, graph.NewComplete(151), randComps(151, 0.3, 0.49, seed))
		opts := Options{Replications: 24, Seed: seed, Workers: 4}

		quiet, err := EvaluateMechanism(context.Background(), in, mech, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Re-run with a flusher goroutine hammering snapshots into a JSONL
		// sink for the whole evaluation. The pull-based sink design means
		// this can observe the run but must not perturb it.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink := telemetry.MultiSink(telemetry.Discard, telemetry.NewJSONLSink(io.Discard))
			for {
				select {
				case <-stop:
					return
				default:
					if err := sink.Flush(telemetry.Default.Snapshot()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		flushed, err := EvaluateMechanism(context.Background(), in, mech, opts)
		close(stop)
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}

		if resultBearing(quiet) != resultBearing(flushed) {
			t.Fatalf("seed %d: concurrent sink flushing changed results:\nquiet:   %+v\nflushed: %+v",
				seed, quiet, flushed)
		}
	}
}

// TestTelemetryZeroExtraDraws pins the RNG-stream side directly: deriving
// the same child stream before and after heavy telemetry activity yields
// the same values, because the telemetry layer never touches an rng.Stream
// (it has no API that accepts one).
func TestTelemetryZeroExtraDraws(t *testing.T) {
	root := rng.New(42)
	before := root.DeriveString("probe").Uint64()

	reg := telemetry.NewRegistry()
	for i := 0; i < 1000; i++ {
		reg.Counter("noise").Inc()
		reg.Gauge("g").Set(float64(i))
		reg.Histogram("h", 1, 10).Observe(float64(i))
		sp := reg.StartSpan("s")
		sp.End()
	}
	_ = reg.Snapshot()

	after := rng.New(42).DeriveString("probe").Uint64()
	if before != after {
		t.Fatalf("telemetry activity perturbed derived stream: %d != %d", before, after)
	}
}

// TestScoreCacheTelemetryRace is the -race workout for the cache + metrics
// combination: many goroutines scoring through one shared ScoreCache (each
// with its own workspace, per the ownership rules) while a flusher
// snapshots the Default registry — the exact shape EvaluateMechanism's
// replication pool produces under cmd/reproduce's -metrics flag.
func TestScoreCacheTelemetryRace(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(101), randComps(101, 0.3, 0.49, 7))
	d, err := (mechanism.ApprovalThreshold{Alpha: 0.05}).Apply(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewScoreCache()
	const workers = 8
	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = telemetry.Default.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := prob.NewWorkspace()
			for i := 0; i < 50; i++ {
				got, err := ResolutionProbabilityExactCached(in, res, ws, cache)
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("cached score %v != %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flusher.Wait()
}
