package election

import (
	"context"
	"errors"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
)

func TestExactMechanismDirectEqualsPoissonBinomial(t *testing.T) {
	p := []float64{0.3, 0.8, 0.55, 0.62, 0.41}
	in := mustInstance(t, graph.NewComplete(5), p)
	got, err := ExactMechanismProbability(in, mechanism.Direct{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("exact direct %v vs Poisson binomial %v", got, want)
	}
}

func TestExactMechanismMatchesSampling(t *testing.T) {
	// Small instance, full enumeration vs many sampled replications.
	p := []float64{0.25, 0.45, 0.5, 0.65, 0.7, 0.9}
	expTop, err := graph.CompleteExplicit(6)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, expTop, p)
	mech := mechanism.ApprovalThreshold{Alpha: 0.1}

	exact, err := ExactMechanismProbability(in, mech, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := EvaluateMechanism(context.Background(), in, mech, Options{Replications: 3000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-sampled.PM) > 0.01 {
		t.Fatalf("enumeration %v vs sampling %v", exact, sampled.PM)
	}
}

func TestExactMechanismMatchesSamplingProbabilistic(t *testing.T) {
	p := []float64{0.3, 0.5, 0.7, 0.85}
	in := mustInstance(t, graph.NewComplete(4), p)
	mech := mechanism.ProbabilisticDelegation{Alpha: 0.05, Q: 0.6}

	exact, err := ExactMechanismProbability(in, mech, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := EvaluateMechanism(context.Background(), in, mech, Options{Replications: 4000, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-sampled.PM) > 0.01 {
		t.Fatalf("enumeration %v vs sampling %v", exact, sampled.PM)
	}
}

func TestExactMechanismGreedyDictator(t *testing.T) {
	// Star with a dominant center: greedy is deterministic, the exact
	// probability must equal the center's competency.
	top, err := graph.Star(7)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.7, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	in := mustInstance(t, top, p)
	got, err := ExactMechanismProbability(in, mechanism.GreedyBest{Alpha: 0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("greedy star P^M = %v, want 0.7", got)
	}
}

func TestExactMechanismTooManyOutcomes(t *testing.T) {
	// 30 voters on K_30 with tiny alpha: choice sets are huge.
	p := make([]float64, 30)
	for i := range p {
		p[i] = float64(i) / 40
	}
	in := mustInstance(t, graph.NewComplete(30), p)
	_, err := ExactMechanismProbability(in, mechanism.ApprovalThreshold{Alpha: 0.01}, 1000)
	if !errors.Is(err, ErrTooManyOutcomes) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactMechanismEmptyInstance(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(0), nil)
	if _, err := ExactMechanismProbability(in, mechanism.Direct{}, 0); !errors.Is(err, ErrNoVoters) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistributionsSumToOne(t *testing.T) {
	p := []float64{0.2, 0.4, 0.6, 0.8}
	in := mustInstance(t, graph.NewComplete(4), p)
	mechs := []mechanism.DistributionMechanism{
		mechanism.Direct{},
		mechanism.ApprovalThreshold{Alpha: 0.05},
		mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(2)},
		mechanism.HalfNeighborhood{Alpha: 0.05},
		mechanism.GreedyBest{Alpha: 0.05},
		mechanism.ProbabilisticDelegation{Alpha: 0.05, Q: 0.3},
		mechanism.ProbabilisticDelegation{Alpha: 0.05, Q: 0},
		mechanism.ProbabilisticDelegation{Alpha: 0.05, Q: 1},
	}
	for _, m := range mechs {
		for v := 0; v < 4; v++ {
			dist, err := m.DelegateDistribution(in, v)
			if err != nil {
				t.Fatalf("%s voter %d: %v", m.Name(), v, err)
			}
			var sum float64
			for _, c := range dist {
				if c.P < 0 || c.P > 1 {
					t.Fatalf("%s voter %d: probability %v", m.Name(), v, c.P)
				}
				if c.Delegate != core.NoDelegate && !in.Approves(v, c.Delegate, 0.05) {
					t.Fatalf("%s voter %d: unapproved delegate %d", m.Name(), v, c.Delegate)
				}
				sum += c.P
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("%s voter %d: distribution sums to %v", m.Name(), v, sum)
			}
		}
	}
}
