package election

import (
	"context"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

// freshEquivalent rebuilds the derived plan's instance from scratch — the
// plan a caller with no delta machinery would construct — for bit-identity
// comparison. The fresh instance is a distinct pointer, so it shares no
// P^D memo with the derived chain.
func freshEquivalent(t *testing.T, p *Plan) *Plan {
	t.Helper()
	in := mustInstance(t, p.Instance().Topology(), p.Instance().Competencies())
	fresh, err := NewPlan(in, p.opts)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return fresh
}

// requirePlanEquivalence sweeps both plans over the same points and
// demands bit-identical results, including a cache-disabled point that
// recomputes every DP from scratch.
func requirePlanEquivalence(t *testing.T, label string, derived *Plan, points []SweepPoint) {
	t.Helper()
	fresh := freshEquivalent(t, derived)
	ctx := context.Background()
	got, err := EvaluateSweep(ctx, derived, points)
	if err != nil {
		t.Fatalf("%s: derived sweep: %v", label, err)
	}
	want, err := EvaluateSweep(ctx, fresh, points)
	if err != nil {
		t.Fatalf("%s: fresh sweep: %v", label, err)
	}
	for i := range got {
		sameResult(t, label, got[i], want[i])
	}
}

func deltaSweepPoints(seed uint64) []SweepPoint {
	pts := sweepPoints(seed)
	// A cache-disabled point recomputes P^D and every resolution score
	// from scratch; if the patched memo ever diverged from the true value
	// it would disagree with the cached points' PD.
	pts = append(pts, SweepPoint{Mechanism: pts[0].Mechanism, Seed: pts[0].Seed, DisableResolutionCache: true})
	return pts
}

func TestApplyDeltaCompetencyChain(t *testing.T) {
	s := rng.New(90)
	in := randomInstance(t, 60, 0.3, 0.9, s)
	plan, err := NewPlan(in, Options{Replications: 8, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	for step := 0; step < 8; step++ {
		v := int(s.IntN(plan.Instance().N()))
		plan, err = plan.ApplyDelta(Delta{Kind: DeltaCompetency, Voter: v, P: 0.3 + 0.6*s.Float64()})
		if err != nil {
			t.Fatalf("step %d: ApplyDelta: %v", step, err)
		}
		requirePlanEquivalence(t, "competency chain", plan, deltaSweepPoints(uint64(step)))
	}
	// A competency change relocates the voter inside the sorted sequence,
	// so the diff window spans old and new rank — short moves patch, long
	// moves legitimately cross the rebuild threshold.
	st := plan.DeltaTreeStats()
	if st.Patches == 0 {
		t.Fatalf("chain of single-voter deltas never patched, stats %+v", st)
	}
	// The first ApplyDelta seeds the tree (a build); the remaining seven
	// patch or rebuild it.
	if st.Builds != 1 || st.Patches+st.Rebuilds != 7 {
		t.Fatalf("expected 1 build + 7 updates, stats %+v", st)
	}
}

// TestApplyDeltaChainWithoutReads drives a delta chain that never reads
// P^D between steps: the deferred refresh must collapse the whole chain
// into a single tree settle at the final read, and the settled value must
// still be bit-identical to a from-scratch plan.
func TestApplyDeltaChainWithoutReads(t *testing.T) {
	s := rng.New(93)
	in := randomInstance(t, 60, 0.3, 0.9, s)
	plan, err := NewPlan(in, Options{Replications: 8, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	for step := 0; step < 8; step++ {
		v := int(s.IntN(plan.Instance().N()))
		plan, err = plan.ApplyDelta(Delta{Kind: DeltaCompetency, Voter: v, P: 0.3 + 0.6*s.Float64()})
		if err != nil {
			t.Fatalf("step %d: ApplyDelta: %v", step, err)
		}
	}
	// No evaluation has happened yet, so the chain is still unsettled: the
	// base plan had no tree to move, and no step forced one into existence.
	if st := plan.DeltaTreeStats(); st.Builds+st.Patches+st.Rebuilds != 0 {
		t.Fatalf("unread chain already touched the tree, stats %+v", st)
	}
	requirePlanEquivalence(t, "unread chain", plan, deltaSweepPoints(9))
	// The single read settles the whole 8-delta chain with one build.
	if st := plan.DeltaTreeStats(); st.Builds != 1 || st.Patches+st.Rebuilds != 0 {
		t.Fatalf("expected one deferred build and no per-step updates, stats %+v", st)
	}
}

func TestApplyDeltaVotersAndEdges(t *testing.T) {
	s := rng.New(91)
	// Explicit graph so edge deltas are exercised too.
	g, err := graph.NewGraphFromEdges(20, [][2]int{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if s.Float64() < 0.3 {
				if err := g.AddEdge(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	p := make([]float64, 20)
	for i := range p {
		p[i] = 0.3 + 0.6*s.Float64()
	}
	plan, err := NewPlan(mustInstance(t, g, p), Options{Replications: 8, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	steps := []Delta{
		{Kind: DeltaAddVoter, P: 0.7, Edges: []int{0, 3, 5}},
		{Kind: DeltaAddEdge, Voter: 1, Target: 2},
		{Kind: DeltaRemoveVoter, Voter: 4},
		{Kind: DeltaCompetency, Voter: 0, P: 0.55},
	}
	// Find an existing edge to remove.
	top := plan.Instance().Topology().(*graph.Graph)
	if es := top.Edges(); len(es) > 0 {
		steps = append(steps, Delta{Kind: DeltaRemoveEdge, Voter: es[0][0], Target: es[0][1]})
	}
	for i, d := range steps {
		plan, err = plan.ApplyDelta(d)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, d.Kind, err)
		}
		requirePlanEquivalence(t, d.Kind.String(), plan, deltaSweepPoints(uint64(100+i)))
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	s := rng.New(92)
	in := randomInstance(t, 10, 0.3, 0.9, s)
	plan, err := NewPlan(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Delta{
		{Kind: DeltaRepoint, Voter: 0, Target: 1},      // plan has no profile
		{Kind: DeltaCompetency, Voter: 99, P: 0.5},     // out of range
		{Kind: DeltaCompetency, Voter: 0, P: 1.5},      // invalid p
		{Kind: DeltaAddVoter, P: 0.5, Edges: []int{1}}, // edges on complete topology
		{Kind: DeltaAddEdge, Voter: 0, Target: 1},      // complete topology
		{Kind: DeltaRemoveVoter, Voter: -1},            // out of range
		{Kind: DeltaKind(0)},                           // unknown kind
	}
	for i, d := range cases {
		if _, err := plan.ApplyDelta(d); err == nil {
			t.Fatalf("case %d (%s): expected error", i, d.Kind)
		}
	}
}

// randomAcyclicDelegation delegates each voter, with probability frac, to
// a random higher-id neighbor — higher id means no cycles by construction.
func randomAcyclicDelegation(t *testing.T, in *core.Instance, frac float64, s *rng.Stream) *core.DelegationGraph {
	t.Helper()
	d := core.NewDelegationGraph(in.N())
	for i := 0; i < in.N()-1; i++ {
		if s.Float64() < frac {
			j := i + 1 + int(s.IntN(in.N()-i-1))
			if in.Topology().HasEdge(i, j) {
				if err := d.SetDelegate(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return d
}

// requireScenarioMatchesScratch scores the scenario and compares against
// the transient exact path on the same instance and profile.
func requireScenarioMatchesScratch(t *testing.T, label string, sc *Scenario) {
	t.Helper()
	got, err := sc.Score()
	if err != nil {
		t.Fatalf("%s: Score: %v", label, err)
	}
	res, err := sc.Delegation().Resolve()
	if err != nil {
		t.Fatalf("%s: Resolve: %v", label, err)
	}
	want, err := ResolutionProbabilityExact(sc.Plan().Instance(), res)
	if err != nil {
		t.Fatalf("%s: ResolutionProbabilityExact: %v", label, err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: Score %v != from-scratch %v", label, got, want)
	}
}

func TestScenarioRepointSequence(t *testing.T) {
	s := rng.New(93)
	in := randomInstance(t, 120, 0.3, 0.9, s)
	plan, err := NewPlan(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := randomAcyclicDelegation(t, in, 0.5, s)
	sc, err := NewScenario(plan, d)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	requireScenarioMatchesScratch(t, "initial", sc)
	for step := 0; step < 40; step++ {
		i := int(s.IntN(in.N() - 1))
		var target int
		if s.Float64() < 0.3 {
			target = core.NoDelegate
		} else {
			target = i + 1 + int(s.IntN(in.N()-i-1))
		}
		if err := sc.ApplyDelta(Delta{Kind: DeltaRepoint, Voter: i, Target: target}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		requireScenarioMatchesScratch(t, "repoint", sc)
	}
	if st := sc.TreeStats(); st.Patches == 0 {
		t.Fatalf("repoint sequence never patched the retained tree: %+v", st)
	}
	// PD through the scenario's own tree must match the transient exact
	// evaluator.
	got, err := sc.PD()
	if err != nil {
		t.Fatalf("PD: %v", err)
	}
	want, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("scenario PD %v != DirectProbabilityExact %v", got, want)
	}
}

func TestScenarioMixedDeltas(t *testing.T) {
	s := rng.New(94)
	in := randomInstance(t, 40, 0.3, 0.9, s)
	plan, err := NewPlan(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(plan, randomAcyclicDelegation(t, in, 0.6, s))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		n := sc.Plan().Instance().N()
		var d Delta
		switch s.IntN(4) {
		case 0:
			d = Delta{Kind: DeltaRepoint, Voter: int(s.IntN(n)), Target: core.NoDelegate}
		case 1:
			d = Delta{Kind: DeltaCompetency, Voter: int(s.IntN(n)), P: 0.3 + 0.6*s.Float64()}
		case 2:
			d = Delta{Kind: DeltaAddVoter, P: 0.3 + 0.6*s.Float64(), Target: core.NoDelegate}
		default:
			if n <= 3 {
				continue
			}
			d = Delta{Kind: DeltaRemoveVoter, Voter: int(s.IntN(n))}
		}
		if err := sc.ApplyDelta(d); err != nil {
			t.Fatalf("step %d (%s): %v", step, d.Kind, err)
		}
		requireScenarioMatchesScratch(t, d.Kind.String(), sc)
	}
	// The plan chain advanced through instance deltas; it must still be
	// sweep-equivalent to a fresh plan.
	requirePlanEquivalence(t, "scenario plan chain", sc.Plan(), deltaSweepPoints(5))
}

func TestScenarioFailedDeltaLeavesStateIntact(t *testing.T) {
	s := rng.New(95)
	in := randomInstance(t, 12, 0.3, 0.9, s)
	plan, err := NewPlan(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(plan, randomAcyclicDelegation(t, in, 0.5, s))
	if err != nil {
		t.Fatal(err)
	}
	before, err := sc.Score()
	if err != nil {
		t.Fatal(err)
	}
	beforeDelegate := append([]int(nil), sc.Delegation().Delegate...)
	// Second delta invalid: the whole batch must be rejected atomically.
	err = sc.ApplyDelta(
		Delta{Kind: DeltaRepoint, Voter: 0, Target: 1},
		Delta{Kind: DeltaCompetency, Voter: 0, P: 2},
	)
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	after, err := sc.Score()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(before) != math.Float64bits(after) {
		t.Fatalf("failed batch changed the score: %v -> %v", before, after)
	}
	for i, want := range beforeDelegate {
		if sc.Delegation().Delegate[i] != want {
			t.Fatalf("failed batch left a partial repoint behind at voter %d", i)
		}
	}
}

// FuzzDeltaEquivalence drives a random instance through a random delta
// sequence and demands, at every step, bit-identity between the
// incremental path (Scenario + plan chain) and from-scratch evaluation of
// the mutated state. This is the correctness gate for the whole
// incremental engine, wired into make-check's fuzz-smoke stage.
func FuzzDeltaEquivalence(f *testing.F) {
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{12, 0, 200, 100, 3, 50, 1, 9, 9, 2, 2, 2, 0, 255, 63, 17})
	f.Add([]byte{20, 255, 254, 253, 0, 1, 2, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		n := 3 + int(data[0]%16)
		data = data[1:]
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		// Competencies on a coarse byte grid: every value is exact in
		// float64 and never -0, and collisions exercise the tie-break
		// paths.
		pOf := func(b byte) float64 { return float64(b) / 255 }
		p := make([]float64, n)
		for i := range p {
			p[i] = pOf(next())
		}
		in, err := core.NewInstance(graph.NewComplete(n), p)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		plan, err := NewPlan(in, Options{})
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		d := core.NewDelegationGraph(n)
		sc, err := NewScenario(plan, d)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		for len(data) > 0 {
			nCur := sc.Plan().Instance().N()
			op := next()
			var delta Delta
			switch op % 4 {
			case 0: // competency
				delta = Delta{Kind: DeltaCompetency, Voter: int(next()) % nCur, P: pOf(next())}
			case 1: // repoint: target by id order, higher id only (acyclic)
				v := int(next()) % nCur
				tgt := int(next()) % nCur
				if tgt <= v {
					delta = Delta{Kind: DeltaRepoint, Voter: v, Target: core.NoDelegate}
				} else {
					delta = Delta{Kind: DeltaRepoint, Voter: v, Target: tgt}
				}
			case 2: // add voter
				if nCur >= 24 {
					continue
				}
				delta = Delta{Kind: DeltaAddVoter, P: pOf(next()), Target: core.NoDelegate}
			default: // remove voter
				if nCur <= 3 {
					continue
				}
				delta = Delta{Kind: DeltaRemoveVoter, Voter: int(next()) % nCur}
			}
			if err := sc.ApplyDelta(delta); err != nil {
				t.Fatalf("ApplyDelta(%s): %v", delta.Kind, err)
			}
			// P^M: incremental score vs transient exact path.
			got, err := sc.Score()
			if err != nil {
				t.Fatalf("Score: %v", err)
			}
			res, err := sc.Delegation().Resolve()
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			want, err := ResolutionProbabilityExact(sc.Plan().Instance(), res)
			if err != nil {
				t.Fatalf("ResolutionProbabilityExact: %v", err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: incremental P^M %v (bits %x) != from-scratch %v (bits %x)",
					delta.Kind, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			// P^D: the plan chain's patched memo vs a fresh instance.
			inCur := sc.Plan().Instance()
			fresh, err := core.NewInstance(inCur.Topology(), inCur.Competencies())
			if err != nil {
				t.Fatalf("fresh NewInstance: %v", err)
			}
			gotPD, err := sc.PD()
			if err != nil {
				t.Fatalf("PD: %v", err)
			}
			wantPD, err := DirectProbabilityExact(fresh)
			if err != nil {
				t.Fatalf("DirectProbabilityExact: %v", err)
			}
			if math.Float64bits(gotPD) != math.Float64bits(wantPD) {
				t.Fatalf("%s: incremental P^D %v != from-scratch %v", delta.Kind, gotPD, wantPD)
			}
		}
	})
}

// TestPreviewDeltasMatchesScenario pins the serving-layer dry run to the
// evaluation path: PreviewDeltas must land on exactly the instance and
// profile a Scenario reaches through the same deltas, without mutating
// its inputs — it is what lets the daemon reject bad delta lists (and
// resolve post-delta cycles) before paying for admission.
func TestPreviewDeltasMatchesScenario(t *testing.T) {
	s := rng.New(96)
	in := randomInstance(t, 20, 0.3, 0.9, s)
	d0 := randomAcyclicDelegation(t, in, 0.5, s)
	beforeP := append([]float64(nil), in.Competencies()...)
	beforeD := append([]int(nil), d0.Delegate...)
	deltas := []Delta{
		{Kind: DeltaRepoint, Voter: 3, Target: core.NoDelegate},
		{Kind: DeltaCompetency, Voter: 5, P: 0.77},
		{Kind: DeltaAddVoter, P: 0.6, Target: 2},
		{Kind: DeltaRemoveVoter, Voter: 1},
	}
	fin, fd, err := PreviewDeltas(in, d0, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(plan, d0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.ApplyDelta(deltas...); err != nil {
		t.Fatal(err)
	}
	want := sc.Plan().Instance()
	if fin.N() != want.N() {
		t.Fatalf("preview n = %d, scenario n = %d", fin.N(), want.N())
	}
	for v, p := range fin.Competencies() {
		if math.Float64bits(p) != math.Float64bits(want.Competency(v)) {
			t.Fatalf("voter %d: preview p %v, scenario p %v", v, p, want.Competency(v))
		}
	}
	for v, tgt := range fd.Delegate {
		if tgt != sc.Delegation().Delegate[v] {
			t.Fatalf("voter %d: preview target %d, scenario target %d", v, tgt, sc.Delegation().Delegate[v])
		}
	}
	// The inputs must be untouched, on success and on failure alike.
	if _, _, err := PreviewDeltas(in, d0, Delta{Kind: DeltaRemoveVoter, Voter: 99}); err == nil {
		t.Fatal("out-of-range remove-voter previewed cleanly")
	}
	if _, _, err := PreviewDeltas(in, d0, Delta{Kind: DeltaRepoint, Voter: 0, Target: 99}); err == nil {
		t.Fatal("out-of-range repoint previewed cleanly")
	}
	for v, p := range in.Competencies() {
		if math.Float64bits(p) != math.Float64bits(beforeP[v]) {
			t.Fatalf("PreviewDeltas mutated the instance at voter %d", v)
		}
	}
	for v, tgt := range d0.Delegate {
		if tgt != beforeD[v] {
			t.Fatalf("PreviewDeltas mutated the profile at voter %d", v)
		}
	}
}
