package election

import (
	"context"
	"errors"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func TestMultiDelegationAllDirectEqualsDirect(t *testing.T) {
	p := []float64{0.4, 0.6, 0.7, 0.3, 0.55}
	in := mustInstance(t, graph.NewComplete(5), p)
	md := &mechanism.MultiDelegation{Delegates: make([][]int, 5)}
	got, err := MultiDelegationProbability(context.Background(), in, md, 200000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("all-direct multi %v vs direct %v", got, want)
	}
}

func TestMultiDelegationSingleDelegateMatchesChain(t *testing.T) {
	// Voter 0 consults only voter 2: its vote is a copy of voter 2's. That
	// is exactly the single-delegate weight-2 situation.
	p := []float64{0.2, 0.6, 0.9}
	in := mustInstance(t, graph.NewComplete(3), p)
	md := &mechanism.MultiDelegation{Delegates: [][]int{{2}, nil, nil}}
	got, err := MultiDelegationProbability(context.Background(), in, md, 300000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}

	d := core.NewDelegationGraph(3)
	if err := d.SetDelegate(0, 2); err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("multi single-delegate %v vs chain %v", got, want)
	}
}

func TestMultiDelegationRejectsCycles(t *testing.T) {
	p := []float64{0.5, 0.5}
	in := mustInstance(t, graph.NewComplete(2), p)
	md := &mechanism.MultiDelegation{Delegates: [][]int{{1}, {0}}}
	if _, err := MultiDelegationProbability(context.Background(), in, md, 100, rng.New(3)); !errors.Is(err, core.ErrCyclicDelegation) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiDelegationRejectsBadIndices(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(2), []float64{0.4, 0.6})
	for _, ds := range [][][]int{
		{{5}, nil},
		{{0}, nil}, // self
	} {
		md := &mechanism.MultiDelegation{Delegates: ds}
		if _, err := MultiDelegationProbability(context.Background(), in, md, 100, rng.New(4)); err == nil {
			t.Fatalf("delegates %v accepted", ds)
		}
	}
}

func TestMultiDelegationSizeMismatch(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.4, 0.5, 0.6})
	md := &mechanism.MultiDelegation{Delegates: make([][]int, 2)}
	if _, err := MultiDelegationProbability(context.Background(), in, md, 100, rng.New(5)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestEvaluateMultiMechanismGain(t *testing.T) {
	const n = 151
	s := rng.New(6)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.35*s.Float64()
	}
	in := mustInstance(t, graph.NewComplete(n), p)
	res, err := EvaluateMultiMechanism(context.Background(), in, mechanism.MultiDelegate{Alpha: 0.05, K: 3}, Options{
		Replications: 8, VoteSamples: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain <= 0 {
		t.Fatalf("multi-delegate gain = %v (PM=%v PD=%v)", res.Gain, res.PM, res.PD)
	}
	if res.MeanDelegators == 0 {
		t.Fatal("expected delegators")
	}
}

func TestEvaluateMultiMechanismEmpty(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(0), nil)
	if _, err := EvaluateMultiMechanism(context.Background(), in, mechanism.MultiDelegate{Alpha: 0.1, K: 2}, Options{}); !errors.Is(err, ErrNoVoters) {
		t.Fatalf("err = %v", err)
	}
}

func TestWeightedMultiDominantDelegate(t *testing.T) {
	// Voter 0 consults delegates {1, 2} with weights {10, 1}: its vote is a
	// copy of voter 1's (weight 10 always wins). Compare with the exact
	// chain equivalent.
	p := []float64{0.2, 0.9, 0.3}
	in := mustInstance(t, graph.NewComplete(3), p)
	md := &mechanism.MultiDelegation{
		Delegates: [][]int{{1, 2}, nil, nil},
		Weights:   [][]float64{{10, 1}, nil, nil},
	}
	got, err := MultiDelegationProbability(context.Background(), in, md, 300000, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDelegationGraph(3)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("dominant-weight multi %v vs chain %v", got, want)
	}
}

func TestWeightedMultiWeightLengthMismatch(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.2, 0.5, 0.9})
	md := &mechanism.MultiDelegation{
		Delegates: [][]int{{1, 2}, nil, nil},
		Weights:   [][]float64{{1}, nil, nil},
	}
	if _, err := MultiDelegationProbability(context.Background(), in, md, 100, rng.New(22)); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

func TestEvaluateWeightedMultiMechanism(t *testing.T) {
	const n = 101
	s := rng.New(23)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.19*s.Float64()
	}
	in := mustInstance(t, graph.NewComplete(n), p)
	res, err := EvaluateMultiMechanism(context.Background(), in, mechanism.WeightedMultiDelegate{
		Alpha: 0.05, K: 3, Weights: mechanism.HarmonicWeights,
	}, Options{Replications: 6, VoteSamples: 1500, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain <= 0 {
		t.Fatalf("weighted multi-delegate gain = %v", res.Gain)
	}
}
