package election

import (
	"context"
	"testing"

	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
	"liquid/internal/telemetry"
)

func randComps(n int, lo, hi float64, seed uint64) []float64 {
	s := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*s.Float64()
	}
	return out
}

// TestResolutionCacheBitIdentical pins the determinism contract of the
// score cache: enabling or disabling it changes no Result value, because
// both paths score the same canonical voter multiset.
func TestResolutionCacheBitIdentical(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(201), randComps(201, 0.3, 0.49, 11))
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	base := Options{Replications: 24, Seed: 7, Workers: 1}
	cached, err := EvaluateMechanism(context.Background(), in, mech, base)
	if err != nil {
		t.Fatal(err)
	}
	off := base
	off.DisableResolutionCache = true
	plain, err := EvaluateMechanism(context.Background(), in, mech, off)
	if err != nil {
		t.Fatal(err)
	}
	if cached.PM != plain.PM || cached.PD != plain.PD || cached.Gain != plain.Gain ||
		cached.PMStdErr != plain.PMStdErr || cached.MeanSinks != plain.MeanSinks {
		t.Fatalf("cache changed results: with %+v, without %+v", cached, plain)
	}
	if plain.ResolutionCacheHits != 0 || plain.ResolutionCacheMisses != 0 {
		t.Fatalf("disabled cache reported traffic: %d hits, %d misses",
			plain.ResolutionCacheHits, plain.ResolutionCacheMisses)
	}
}

// TestResolutionCacheWorkerInvariance runs the same evaluation at 1 and 8
// workers with the shared cache on; results must be bit-identical. Under
// `go test -race` this also exercises the cache's concurrent paths.
func TestResolutionCacheWorkerInvariance(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(151), randComps(151, 0.3, 0.49, 23))
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	var ref *Result
	for _, workers := range []int{1, 8} {
		res, err := EvaluateMechanism(context.Background(), in, mech, Options{
			Replications: 32, Seed: 9, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.PM != ref.PM || res.PD != ref.PD || res.Gain != ref.Gain ||
			res.PMStdErr != ref.PMStdErr || res.MeanMaxWeight != ref.MeanMaxWeight {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, res, ref)
		}
	}
}

// TestResolutionCacheAccounting checks the telemetry on a single worker,
// where the hit/miss split is deterministic: a deterministic mechanism
// resolves to the same multiset every replication, so the first scoring
// misses and every later one hits.
func TestResolutionCacheAccounting(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(101), randComps(101, 0.3, 0.49, 31))
	const reps = 16
	res, err := EvaluateMechanism(context.Background(), in, mechanism.Direct{}, Options{
		Replications: reps, Seed: 3, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolutionCacheMisses != 1 || res.ResolutionCacheHits != reps-1 {
		t.Fatalf("direct mechanism: %d misses, %d hits; want 1 and %d",
			res.ResolutionCacheMisses, res.ResolutionCacheHits, reps-1)
	}
}

// TestScoreCacheSharedAcrossCallers exercises ScoreCache directly: the
// same resolution scored through two workspaces returns identical values
// and hits on the second probe.
func TestScoreCacheSharedAcrossCallers(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(51), randComps(51, 0.3, 0.49, 41))
	d, err := (mechanism.ApprovalThreshold{Alpha: 0.05}).Apply(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache()
	for i := 0; i < 3; i++ {
		ws := prob.NewWorkspace()
		got, err := ResolutionProbabilityExactCached(in, res, ws, cache)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("probe %d: cached %v != uncached %v", i, got, want)
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("stats: %d hits, %d misses; want 2 and 1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", cache.Len())
	}
}

// TestDirectCacheStability: repeated P^D queries on one instance return
// the identical float and the process-wide telemetry records the hits.
func TestDirectCacheStability(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(301), randComps(301, 0.3, 0.49, 53))
	first, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	// Cache traffic is registered on the telemetry.Default registry; reading
	// it from a test is fine (telemflow scopes non-test files only).
	before := telemetry.NewCounter("election/direct_cache_hits").Load()
	for i := 0; i < 4; i++ {
		again, err := DirectProbabilityExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("query %d: P^D %v != %v", i, again, first)
		}
	}
	after := telemetry.NewCounter("election/direct_cache_hits").Load()
	if telemetry.Enabled && after < before+4 {
		t.Fatalf("direct hits %d -> %d, want at least +4", before, after)
	}
}

// TestDirectMatchesAllDirectResolution pins the canonicalization contract:
// scoring the everyone-votes-directly delegation through the resolution
// path equals P^D bit-for-bit.
func TestDirectMatchesAllDirectResolution(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(257), randComps(257, 0.2, 0.8, 61))
	d, err := mechanism.Direct{}.Apply(in, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if pm != pd {
		t.Fatalf("all-direct P^M %v != P^D %v", pm, pd)
	}
}
