// Package election computes the probability that a (delegated) vote decides
// correctly: P^M(G) and P^D(G) from the paper, and the gain
// gain(M, G) = P^M(G) - P^D(G).
//
// Two engines are provided and composed automatically:
//
//   - an exact engine: the weighted-majority distribution of the sinks is
//     computed by dynamic programming (package prob), so the only sampling
//     error left is over the mechanism's own randomness;
//   - a Monte-Carlo engine for instances where the DP is too large.
package election

import (
	"context"
	"errors"
	"math"
	"runtime"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// ErrNoVoters reports an election over an empty electorate.
var ErrNoVoters = errors.New("election: no voters")

// Options configures gain estimation.
type Options struct {
	// Replications is the number of mechanism realizations to average over.
	// Defaults to 64.
	Replications int
	// VoteSamples is the number of vote draws used when a realization is
	// scored by Monte Carlo instead of the exact DP. Defaults to 2000.
	VoteSamples int
	// ExactCostLimit bounds the DP cost (#sinks x total weight) above which
	// a realization is scored by Monte Carlo. Defaults to 1 << 23.
	ExactCostLimit int64
	// Workers bounds parallelism. Defaults to GOMAXPROCS.
	Workers int
	// Seed drives all randomness. Two runs with equal options are
	// bit-identical.
	Seed uint64
	// DisableResolutionCache turns off every memoized pure value on the
	// evaluation path: the resolution-score cache AND the exact-P^D memos
	// (both the Plan's and the process-wide instance cache). Results are
	// bit-identical either way — every exact path scores the canonical
	// sorted voter multiset — so the knob exists only for benchmarking the
	// kernels and for the equivalence tests proving that claim.
	//
	// Semantics under sweeps: the flag is consulted per sweep point, on
	// every evaluation. A point with DisableResolutionCache set recomputes
	// all exact DPs from scratch even when the plan (or an earlier point,
	// or an earlier EvaluateMechanism call on the same instance) already
	// memoized them, and contributes nothing to the shared caches.
	DisableResolutionCache bool
}

func (o Options) withDefaults() Options {
	if o.Replications <= 0 {
		o.Replications = 64
	}
	if o.VoteSamples <= 0 {
		o.VoteSamples = 2000
	}
	if o.ExactCostLimit <= 0 {
		o.ExactCostLimit = 1 << 23
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result summarizes a mechanism evaluation on one instance.
type Result struct {
	Mechanism string
	N         int

	// PM is the estimated probability that the mechanism decides correctly,
	// averaged over mechanism randomness; PMStdErr is its standard error.
	PM       float64
	PMStdErr float64
	// PD is the probability that direct voting decides correctly.
	PD float64
	// Gain = PM - PD; GainLo/GainHi bound it at 95% confidence (mechanism
	// randomness only; PD is exact or tightly estimated).
	Gain   float64
	GainLo float64
	GainHi float64

	// Structural averages over realizations.
	MeanDelegators   float64
	MeanSinks        float64
	MeanMaxWeight    float64
	MaxMaxWeight     int
	MeanLongestChain float64

	// ResolutionCacheHits/Misses report the evaluation's score-cache
	// traffic. Telemetry only: the split depends on goroutine scheduling,
	// so it must never appear in reproduced tables.
	ResolutionCacheHits   uint64
	ResolutionCacheMisses uint64
}

// DirectProbability returns P^D(G) for the instance: the probability that a
// strict majority of independent direct votes is correct. Exact for
// n <= 4096, Monte Carlo (with the given stream and samples) above.
// Cancelling ctx aborts the sampling loop with ctx's error.
func DirectProbability(ctx context.Context, in *core.Instance, samples int, s *rng.Stream) (float64, error) {
	n := in.N()
	if n == 0 {
		return 0, ErrNoVoters
	}
	if n <= 4096 {
		return DirectProbabilityExact(in)
	}
	if samples <= 0 {
		samples = 2000
	}
	p := in.Competencies()
	wins := 0
	for t := 0; t < samples; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		correct := 0
		for _, pi := range p {
			if s.Bernoulli(pi) {
				correct++
			}
		}
		if 2*correct > n {
			wins++
		}
	}
	return float64(wins) / float64(samples), nil
}

// DirectProbabilityExact returns the exact P^D(G) via the Poisson-binomial
// DP. Cost is O(n^2) the first time; repeat calls on the same instance hit
// a process-wide cache (sound because instances are immutable and the
// exact branch is seed-free; see cache.go).
func DirectProbabilityExact(in *core.Instance) (float64, error) {
	if in.N() == 0 {
		return 0, ErrNoVoters
	}
	return directProbabilityCached(in)
}

// DirectNormalApproximation returns the Lemma 4 normal approximation of the
// direct-vote total.
func DirectNormalApproximation(in *core.Instance) prob.Normal {
	var mu, v prob.Accumulator
	for _, p := range in.Competencies() {
		mu.Add(p)
		v.Add(p * (1 - p))
	}
	return prob.Normal{Mu: mu.Sum(), Sigma: math.Sqrt(v.Sum())}
}

// ResolutionProbabilityExact returns the exact probability that the
// resolved delegation outcome decides correctly. Scratch comes from an
// internal pool; callers on a hot path should thread their own workspace
// via ResolutionProbabilityExactWS or ResolutionProbabilityExactCached.
func ResolutionProbabilityExact(in *core.Instance, res *core.Resolution) (float64, error) {
	ws := wsPool.Get().(*prob.Workspace)
	v, err := ResolutionProbabilityExactCached(in, res, ws, nil)
	wsPool.Put(ws)
	return v, err
}

// ResolutionProbabilityMC estimates the same probability by sampling sink
// votes. Cancelling ctx aborts the sampling loop with ctx's error.
func ResolutionProbabilityMC(ctx context.Context, in *core.Instance, res *core.Resolution, samples int, s *rng.Stream) (float64, error) {
	if in.N() == 0 {
		return 0, ErrNoVoters
	}
	if samples <= 0 {
		samples = 2000
	}
	if len(res.Sinks) == 0 {
		return 0, nil
	}
	wins := 0
	for t := 0; t < samples; t++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		correct := 0
		for _, sk := range res.Sinks {
			if s.Bernoulli(in.Competency(sk)) {
				correct += res.Weight[sk]
			}
		}
		if 2*correct > res.TotalWeight {
			wins++
		}
	}
	return float64(wins) / float64(samples), nil
}

// resolutionCost is the DP cost estimate used to pick an engine.
func resolutionCost(res *core.Resolution) int64 {
	return int64(len(res.Sinks)) * int64(res.TotalWeight)
}

// repOut is the per-replication result of one mechanism realization.
type repOut struct {
	pm           float64
	delegators   int
	sinks        int
	maxWeight    int
	longestChain int
	err          error
}

// evaluateReplication scores one mechanism realization on its own stream.
// ws and rv are the worker's private scratch; cache (optional) memoizes
// exact scores across replications and is shared by all workers.
func evaluateReplication(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts Options, s *rng.Stream, ws *prob.Workspace, rv *core.Resolver, cache *ScoreCache) repOut {
	if err := ctx.Err(); err != nil {
		return repOut{err: err}
	}
	d, err := mech.Apply(in, s.DeriveString("mechanism"))
	if err != nil {
		return repOut{err: err}
	}
	res, err := rv.Resolve(d)
	if err != nil {
		return repOut{err: err}
	}
	var pm float64
	if resolutionCost(res) <= opts.ExactCostLimit {
		pm, err = ResolutionProbabilityExactCached(in, res, ws, cache)
	} else {
		pm, err = ResolutionProbabilityMC(ctx, in, res, opts.VoteSamples, s.DeriveString("votes"))
	}
	if err != nil {
		return repOut{err: err}
	}
	return repOut{
		pm:           pm,
		delegators:   res.Delegators,
		sinks:        len(res.Sinks),
		maxWeight:    res.MaxWeight,
		longestChain: res.LongestChain,
	}
}

// EvaluateMechanism estimates P^M, P^D, and the gain of mech on in.
// Replications run in parallel on independent RNG streams; results are
// deterministic for a fixed Options.Seed regardless of Workers. Cancelling
// ctx stops scheduling new replications and aborts in-flight sampling loops,
// returning ctx's error.
//
// It is a one-point sweep over a fresh Plan (see plan.go): callers that
// evaluate many mechanisms or margins on the same instance should build
// the Plan once and use EvaluateSweep, which shares the per-instance state
// this wrapper rebuilds on every call.
func EvaluateMechanism(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts Options) (*Result, error) {
	plan, err := NewPlan(in, opts)
	if err != nil {
		return nil, err
	}
	results, err := EvaluateSweep(ctx, plan, []SweepPoint{{
		Mechanism:              mech,
		Seed:                   opts.Seed,
		Replications:           opts.Replications,
		DisableResolutionCache: opts.DisableResolutionCache,
	}})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ResolutionMoments returns the exact mean and variance of the correct
// weight W = sum_s w_s * Bernoulli(p_s) of a resolved delegation outcome.
// These are the quantities the paper's variance-manipulation argument is
// about: delegation shifts the mean up by >= alpha per delegation and
// inflates the variance by concentrating weight on fewer independent sinks.
func ResolutionMoments(in *core.Instance, res *core.Resolution) (mean, variance float64) {
	var m, v prob.Accumulator
	for _, sk := range res.Sinks {
		w := float64(res.Weight[sk])
		p := in.Competency(sk)
		m.Add(w * p)
		v.Add(w * w * p * (1 - p))
	}
	return m.Sum(), v.Sum()
}
