package election

import (
	"context"
	"errors"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func mustInstance(t *testing.T, top graph.Topology, p []float64) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func constComps(n int, p float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestDirectProbabilityExactSmall(t *testing.T) {
	// Three voters at 0.6: P[majority] = 3*0.36*0.4 + 0.216 = 0.648.
	in := mustInstance(t, graph.NewComplete(3), constComps(3, 0.6))
	got, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.648) > 1e-12 {
		t.Fatalf("P^D = %v, want 0.648", got)
	}
}

func TestDirectProbabilityEmpty(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(0), nil)
	if _, err := DirectProbabilityExact(in); !errors.Is(err, ErrNoVoters) {
		t.Fatalf("err = %v", err)
	}
	if _, err := DirectProbability(context.Background(), in, 100, rng.New(1)); !errors.Is(err, ErrNoVoters) {
		t.Fatalf("err = %v", err)
	}
}

func TestDirectProbabilityMCPathAgreesWithExact(t *testing.T) {
	// Force the MC path by exceeding the exact limit? DirectProbability
	// switches on n; instead compare the MC estimator on a small n directly
	// via a large-n-like call path: use n just under the cutoff with exact,
	// then MC with many samples on the same instance by calling the
	// internal estimator through a big instance is expensive. Here: build a
	// 5001-voter instance cheaply with p=0.51 and check MC lands near the
	// normal approximation.
	const n = 5001
	in := mustInstance(t, graph.NewComplete(n), constComps(n, 0.51))
	got, err := DirectProbability(context.Background(), in, 4000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	approx := DirectNormalApproximation(in).SF(float64(n) / 2)
	if math.Abs(got-approx) > 0.05 {
		t.Fatalf("MC %v vs normal approx %v", got, approx)
	}
}

func TestDirectNormalApproximation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(100), constComps(100, 0.5))
	nrm := DirectNormalApproximation(in)
	if math.Abs(nrm.Mu-50) > 1e-12 {
		t.Fatalf("mu = %v", nrm.Mu)
	}
	if math.Abs(nrm.Sigma-5) > 1e-12 {
		t.Fatalf("sigma = %v", nrm.Sigma)
	}
}

func TestResolutionProbabilityDictator(t *testing.T) {
	// Figure 1: all weight on the center with p = 2/3.
	const n = 9
	p := constComps(n, 3.0/5)
	p[0] = 2.0 / 3
	in := mustInstance(t, graph.NewComplete(n), p)
	d := core.NewDelegationGraph(n)
	for i := 1; i < n; i++ {
		if err := d.SetDelegate(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("dictator P^M = %v, want 2/3", got)
	}
}

func TestResolutionProbabilityAllDirectEqualsDirect(t *testing.T) {
	p := []float64{0.3, 0.8, 0.55, 0.62, 0.41}
	in := mustInstance(t, graph.NewComplete(5), p)
	d := core.NewDelegationGraph(5)
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := DirectProbabilityExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm-pd) > 1e-12 {
		t.Fatalf("all-direct P^M %v != P^D %v", pm, pd)
	}
}

func TestResolutionProbabilityMCMatchesExact(t *testing.T) {
	p := []float64{0.2, 0.4, 0.6, 0.7, 0.9, 0.55, 0.35}
	in := mustInstance(t, graph.NewComplete(7), p)
	d := core.NewDelegationGraph(7)
	// 0 -> 4, 1 -> 4, 5 -> 3.
	for _, e := range [][2]int{{0, 4}, {1, 4}, {5, 3}} {
		if err := d.SetDelegate(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ResolutionProbabilityMC(context.Background(), in, res, 200000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-mc) > 0.01 {
		t.Fatalf("exact %v vs MC %v", exact, mc)
	}
}

func TestResolutionProbabilityAllAbstained(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(2), []float64{0.3, 0.9})
	d := core.NewDelegationGraph(2)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	// Make the sink itself abstain too by delegating 1 -> nothing...
	// a single voter cannot abstain, so emulate the empty-sink case
	// directly with a synthetic resolution.
	res := &core.Resolution{SinkOf: []int{core.NoDelegate, core.NoDelegate}}
	pm, err := ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	if pm != 0 {
		t.Fatalf("no sinks should mean P = 0, got %v", pm)
	}
}

func TestEvaluateMechanismStarLoss(t *testing.T) {
	// The Figure 1 shape: greedy delegation on a competent-center star
	// loses versus direct voting once n is large.
	const n = 101
	g, err := graph.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	p := constComps(n, 3.0/5)
	p[0] = 2.0 / 3
	in := mustInstance(t, g, p)

	res, err := EvaluateMechanism(context.Background(), in, mechanism.GreedyBest{Alpha: 0.01}, Options{
		Replications: 8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PM-2.0/3) > 1e-9 {
		t.Fatalf("star delegation P^M = %v, want 2/3", res.PM)
	}
	if res.PD < 0.95 {
		t.Fatalf("direct voting on 101 voters at 0.6 should be near-certain, got %v", res.PD)
	}
	if res.Gain > -0.25 {
		t.Fatalf("expected loss near -1/3, gain = %v", res.Gain)
	}
	if res.MaxMaxWeight != n {
		t.Fatalf("expected dictator weight %d, got %d", n, res.MaxMaxWeight)
	}
}

func TestEvaluateMechanismCompleteGain(t *testing.T) {
	// Algorithm 1 on K_n with competencies below 1/2 on average: delegation
	// should deliver positive gain.
	const n = 301
	s := rng.New(11)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.35*s.Float64() // mean ~0.475 < 1/2
	}
	in := mustInstance(t, graph.NewComplete(n), p)
	res, err := EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: 0.05}, Options{
		Replications: 16, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain <= 0 {
		t.Fatalf("expected positive gain on K_n, got %v (PM=%v PD=%v)", res.Gain, res.PM, res.PD)
	}
	if res.MeanDelegators == 0 {
		t.Fatal("expected delegation")
	}
}

func TestEvaluateMechanismDeterministic(t *testing.T) {
	const n = 50
	s := rng.New(17)
	p := make([]float64, n)
	for i := range p {
		p[i] = s.Float64()
	}
	in := mustInstance(t, graph.NewComplete(n), p)
	opts := Options{Replications: 8, Seed: 99}
	a, err := EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: 0.02}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: 0.02}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.PM != b.PM || a.PD != b.PD || a.Gain != b.Gain {
		t.Fatalf("same seed must give identical results: %+v vs %+v", a, b)
	}
}

func TestEvaluateMechanismEmpty(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(0), nil)
	if _, err := EvaluateMechanism(context.Background(), in, mechanism.Direct{}, Options{}); !errors.Is(err, ErrNoVoters) {
		t.Fatalf("err = %v", err)
	}
}

func TestEvaluateDirectMechanismZeroGain(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(9), constComps(9, 0.55))
	res, err := EvaluateMechanism(context.Background(), in, mechanism.Direct{}, Options{Replications: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gain) > 1e-12 {
		t.Fatalf("direct mechanism gain = %v, want 0", res.Gain)
	}
}

func TestEvaluateMechanismSurfacesCycleError(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(6), constComps(6, 0.5))
	_, err := EvaluateMechanism(context.Background(), in, mechanism.CycleForcing{}, Options{Replications: 2, Seed: 1})
	if !errors.Is(err, core.ErrCyclicDelegation) {
		t.Fatalf("err = %v, want ErrCyclicDelegation", err)
	}
}
