package election

// The normal-approximation evaluation path: the bottom rung of the serving
// layer's graceful-degradation ladder. When a request's deadline budget
// cannot afford the exact engine (the quadratic P^D table plus one
// weighted-majority DP per replication), the evaluator keeps the
// mechanism's randomness exact — realizations are applied and resolved
// precisely as the exact path would — but scores each resolved outcome by
// the normal approximation of its weighted vote total, with a certified
// Berry–Esseen error bound attached. Cost drops from O(n^2 + R*n*W) DP
// units to O(R*n) flat work.

import (
	"context"
	"math"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// ApproxResult is the outcome of an approximate evaluation: the usual
// Result plus the certified approximation error.
type ApproxResult struct {
	Result
	// PDErrorBound bounds |PD - exact P^D|; PMErrorBound bounds
	// |PM - P^M scored by the exact DP on the same realizations|; ErrorBound
	// = PDErrorBound + PMErrorBound therefore bounds the gain error. All
	// three are certified by the Berry–Esseen theorem
	// (prob.BerryEsseenWeightedBound) and are typically O(1/sqrt(n)).
	ErrorBound   float64
	PDErrorBound float64
	PMErrorBound float64
}

// EvaluateMechanismApprox estimates P^M, P^D, and the gain of mech on in by
// normal approximation. Mechanism realizations and their resolutions are
// computed exactly (same RNG derivation discipline as EvaluateMechanism:
// root stream from the seed, one numbered child stream per replication);
// only the vote-total scoring is approximated, so the certified bound in
// the result covers everything that separates this answer from the exact
// evaluator's DP-scored one. Deterministic for a fixed Options.Seed.
//
// The evaluation is sequential: the approximate path exists to fit inside
// deadline budgets the exact path cannot, and its per-replication work is
// O(n), so worker fan-out would cost more in coordination than it saves.
// Cancelling ctx aborts between replications with ctx's error.
func EvaluateMechanismApprox(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts Options) (*ApproxResult, error) {
	if in.N() == 0 {
		return nil, ErrNoVoters
	}
	opts = opts.withDefaults()
	n := in.N()

	ps := in.Competencies()
	direct := DirectNormalApproximation(in)
	pd := direct.SF(float64(n) / 2)
	pdBound := prob.BerryEsseenBound(ps)

	root := rng.New(opts.Seed)
	rv := rvPool.Get().(*core.Resolver)
	defer rvPool.Put(rv)

	// Per-replication scratch for the sink weight/competency vectors the
	// Berry–Esseen bound consumes; reused across replications.
	weights := make([]float64, 0, n)
	sinkPs := make([]float64, 0, n)

	var pmSum prob.Summary
	var delegators, sinks, maxWeights, chains prob.Accumulator
	result := &ApproxResult{
		Result:       Result{Mechanism: mech.Name(), N: n, PD: pd},
		PDErrorBound: pdBound,
	}
	for r := 0; r < opts.Replications; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := root.Derive(uint64(r) + 1)
		d, err := mech.Apply(in, s.DeriveString("mechanism"))
		if err != nil {
			return nil, err
		}
		res, err := rv.Resolve(d)
		if err != nil {
			return nil, err
		}
		weights = weights[:0]
		sinkPs = sinkPs[:0]
		for _, sk := range res.Sinks {
			weights = append(weights, float64(res.Weight[sk]))
			sinkPs = append(sinkPs, in.Competency(sk))
		}
		mean, variance := ResolutionMoments(in, res)
		var pm float64
		if len(res.Sinks) == 0 {
			pm = 0
		} else {
			pm = prob.Normal{Mu: mean, Sigma: math.Sqrt(variance)}.SF(float64(res.TotalWeight) / 2)
		}
		if b := prob.BerryEsseenWeightedBound(weights, sinkPs); b > result.PMErrorBound {
			result.PMErrorBound = b
		}
		pmSum.Add(pm)
		delegators.Add(float64(res.Delegators))
		sinks.Add(float64(len(res.Sinks)))
		maxWeights.Add(float64(res.MaxWeight))
		chains.Add(float64(res.LongestChain))
		if res.MaxWeight > result.MaxMaxWeight {
			result.MaxMaxWeight = res.MaxWeight
		}
	}
	reps := float64(opts.Replications)
	result.MeanDelegators = delegators.Sum() / reps
	result.MeanSinks = sinks.Sum() / reps
	result.MeanMaxWeight = maxWeights.Sum() / reps
	result.MeanLongestChain = chains.Sum() / reps
	result.PM = pmSum.Mean()
	result.PMStdErr = pmSum.StdErr()
	result.Gain = result.PM - pd
	lo, hi := pmSum.MeanCI(0.95)
	result.GainLo = lo - pd
	result.GainHi = hi - pd
	result.ErrorBound = result.PDErrorBound + result.PMErrorBound
	return result, nil
}

// ApproximateResolution scores one resolved delegation outcome by the
// normal approximation of its weighted vote total, returning the
// approximate probability of a correct decision and a certified
// Berry–Esseen bound on its distance from the exact DP score. The what-if
// endpoint's degradation path. An empty resolution (everyone abstained)
// scores 0 with the trivial bound 1.
func ApproximateResolution(in *core.Instance, res *core.Resolution) (pm, bound float64) {
	if len(res.Sinks) == 0 {
		return 0, 1
	}
	weights := make([]float64, 0, len(res.Sinks))
	sinkPs := make([]float64, 0, len(res.Sinks))
	for _, sk := range res.Sinks {
		weights = append(weights, float64(res.Weight[sk]))
		sinkPs = append(sinkPs, in.Competency(sk))
	}
	mean, variance := ResolutionMoments(in, res)
	pm = prob.Normal{Mu: mean, Sigma: math.Sqrt(variance)}.SF(float64(res.TotalWeight) / 2)
	return pm, prob.BerryEsseenWeightedBound(weights, sinkPs)
}
