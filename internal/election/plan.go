package election

// The staged evaluation pipeline. Every experiment in the reproduction
// sweeps mechanisms and approval margins over the *same* instance; the
// monolithic EvaluateMechanism used to rebuild all sweep-invariant state at
// every point. The pipeline splits evaluation into:
//
//  1. Plan (NewPlan)      — a per-instance artifact owning everything that
//     does not depend on the sweep point: the exact P^D table, the shared
//     resolution-score cache over canonical (weight, p) multisets, and the
//     instance's approval suffix memos (prewarmable per alpha). The D&C
//     convolution tree is a pure function of a resolution's canonical
//     multiset, so "owning the tree" means owning the score cache: a
//     repeated multiset skips the tree entirely.
//  2. Sweep (EvaluateSweep) — evaluates many SweepPoints against one Plan.
//     Each point derives all randomness from its own Seed exactly as the
//     single-point evaluator always did, so batched results are
//     bit-identical to point-by-point EvaluateMechanism calls, with
//     identical RNG draw sequences.
//  3. Parallel kernels — the one-off exact P^D runs on the fork-join D&C
//     evaluator (prob.PMFParallelWS) with the point's worker budget, since
//     it is computed before the replication pool spins up and would
//     otherwise leave every worker idle. Replication scoring stays
//     sequential per worker; the workers are the parallelism there.
//
// EvaluateMechanism survives as a one-point sweep over a fresh Plan, so no
// caller breaks and the equivalence is structural rather than asserted.

import (
	"context"
	"sync"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
	"liquid/internal/telemetry"
)

// Plan is the per-instance stage of the evaluation pipeline: it
// canonicalises one instance and owns the sweep-invariant state shared by
// every point evaluated against it. A Plan is safe for concurrent use; all
// shared state is either immutable or memoized values that are pure
// functions of the instance.
type Plan struct {
	in   *core.Instance
	opts Options

	// scores memoizes exact resolution scores across every cached sweep
	// point. Values are pure functions of the canonical voter multiset, so
	// sharing across points (or mechanisms) cannot change any result.
	scores *ScoreCache

	// pd memoizes the exact P^D table's majority mass (n <= 4096 only; the
	// Monte-Carlo branch is seed-dependent and stays per-point). pdStale
	// marks a delta-derived plan whose retained tree has not been brought
	// up to this instance yet; the first exact read settles it.
	pdMu    sync.Mutex
	pd      float64
	pdSet   bool
	pdStale bool

	// pdTree is the retained weight-1 evaluation tree behind the memoized
	// P^D, present only on plans that have been through ApplyDelta (or
	// seeded one). ApplyDelta MOVES it to the derived plan — along a chain
	// of derived plans (churn sequences, growth experiments) each step then
	// pays one O(log n) patch instead of the full DP. See delta.go.
	pdTree *prob.DeltaTree
}

// NewPlan canonicalises in and returns a Plan carrying opts as the base
// options of every sweep point. Per-point fields of opts (Seed,
// Replications, DisableResolutionCache) become defaults a SweepPoint can
// override.
func NewPlan(in *core.Instance, opts Options) (*Plan, error) {
	if in.N() == 0 {
		return nil, ErrNoVoters
	}
	return &Plan{in: in, opts: opts.withDefaults(), scores: NewScoreCache()}, nil
}

// Instance returns the instance the plan canonicalises.
func (p *Plan) Instance() *core.Instance { return p.in }

// PrewarmApproval builds the instance's approval suffix memo for each
// alpha, so a sweep's first point at that margin does not pay the memo
// construction inside its replication loop. Purely a warm-up: the memo is
// a deterministic function of the instance and alphas, and mechanisms
// build it on demand anyway.
func (p *Plan) PrewarmApproval(alphas ...float64) {
	for _, alpha := range alphas {
		p.in.ApprovalView(alpha)
	}
}

// SweepPoint is one evaluation against a Plan: a mechanism plus the
// per-point options. Fields left zero inherit the plan's base Options.
type SweepPoint struct {
	// Mechanism is the delegation mechanism to evaluate.
	Mechanism mechanism.Mechanism
	// Seed drives all of the point's randomness, exactly as Options.Seed
	// drives EvaluateMechanism: equal (plan options, point) pairs are
	// bit-identical however the sweep is batched or ordered.
	Seed uint64
	// Replications overrides the plan's base replication count when > 0.
	Replications int
	// DisableResolutionCache bypasses the plan's shared score cache and the
	// P^D memos for this point (see Options.DisableResolutionCache).
	DisableResolutionCache bool
}

// EvaluateSweep evaluates points against plan, returning one Result per
// point in input order. Results are bit-identical to calling
// EvaluateMechanism once per point with the plan's base options and the
// point's overrides — batching shares scratch and memoized pure values,
// never randomness — except for the Result cache-traffic telemetry fields,
// which depend on sharing and scheduling. Cancelling ctx aborts the sweep
// with ctx's error.
func EvaluateSweep(ctx context.Context, plan *Plan, points []SweepPoint) ([]*Result, error) {
	results := make([]*Result, len(points))
	for i, pt := range points {
		res, err := plan.evaluatePoint(ctx, pt)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// pointOptions resolves a sweep point against the plan's base options.
func (p *Plan) pointOptions(pt SweepPoint) Options {
	opts := p.opts
	opts.Seed = pt.Seed
	if pt.Replications > 0 {
		opts.Replications = pt.Replications
	}
	if pt.DisableResolutionCache {
		opts.DisableResolutionCache = true
	}
	return opts
}

// evaluatePoint scores one sweep point. The structure — and every RNG
// derivation — is the single-point evaluator's: root stream from the seed,
// "direct" child stream for P^D, one numbered child stream per
// replication. Only where the scratch and memoized pure values come from
// differs.
func (p *Plan) evaluatePoint(ctx context.Context, pt SweepPoint) (*Result, error) {
	opts := p.pointOptions(pt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Telemetry: a child span under the engine's per-experiment span (nil
	// and therefore free when no span was installed) and a replication
	// counter. Write-only — nothing below reads these back.
	sp := telemetry.SpanFromContext(ctx).Child("evaluate")
	defer sp.End()
	telemetry.NewCounter("election/replications").Add(uint64(opts.Replications))
	root := rng.New(opts.Seed)
	pd, err := p.directProbability(ctx, opts, root.DeriveString("direct"))
	if err != nil {
		return nil, err
	}

	var cache *ScoreCache
	if !opts.DisableResolutionCache {
		cache = p.scores
	}
	mech := pt.Mechanism
	outs := make([]repOut, opts.Replications)
	workers := opts.Workers
	if workers > opts.Replications {
		workers = opts.Replications
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One workspace and resolver per worker: scratch is reused
			// across this worker's replications and never shared. The score
			// cache is shared — its values are pure functions of their keys,
			// so scheduling cannot change any result, only the hit counts.
			ws := wsPool.Get().(*prob.Workspace)
			rv := rvPool.Get().(*core.Resolver)
			defer wsPool.Put(ws)
			defer rvPool.Put(rv)
			for r := range work {
				// Each replication draws from a stream derived only from
				// (seed, r), so scheduling order cannot change the outcome.
				outs[r] = evaluateReplication(ctx, p.in, mech, opts, root.Derive(uint64(r)+1), ws, rv, cache)
			}
		}()
	}
feed:
	for r := 0; r < opts.Replications; r++ {
		select {
		case <-ctx.Done():
			break feed
		case work <- r:
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var pmSum prob.Summary
	var delegators, sinks, maxWeights, chains prob.Accumulator
	result := &Result{Mechanism: mech.Name(), N: p.in.N(), PD: pd}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		pmSum.Add(o.pm)
		delegators.Add(float64(o.delegators))
		sinks.Add(float64(o.sinks))
		maxWeights.Add(float64(o.maxWeight))
		chains.Add(float64(o.longestChain))
		if o.maxWeight > result.MaxMaxWeight {
			result.MaxMaxWeight = o.maxWeight
		}
	}
	reps := float64(opts.Replications)
	result.MeanDelegators = delegators.Sum() / reps
	result.MeanSinks = sinks.Sum() / reps
	result.MeanMaxWeight = maxWeights.Sum() / reps
	result.MeanLongestChain = chains.Sum() / reps
	if cache != nil {
		result.ResolutionCacheHits, result.ResolutionCacheMisses = cache.Stats()
	}
	result.PM = pmSum.Mean()
	result.PMStdErr = pmSum.StdErr()
	result.Gain = result.PM - pd
	lo, hi := pmSum.MeanCI(0.95)
	result.GainLo = lo - pd
	result.GainHi = hi - pd
	return result, nil
}

// directProbability returns the point's P^D. The exact branch (n <= 4096)
// is seed-free, so cached points share the plan memo (and the process-wide
// instance cache under it); a cache-disabled point recomputes the DP from
// scratch. The Monte-Carlo branch draws from the point's "direct" stream
// and is never memoized — its value is part of the point's RNG contract.
func (p *Plan) directProbability(ctx context.Context, opts Options, s *rng.Stream) (float64, error) {
	n := p.in.N()
	if n > 4096 {
		return DirectProbability(ctx, p.in, opts.VoteSamples*4, s)
	}
	if opts.DisableResolutionCache {
		return directProbabilityExactFresh(ctx, p.in, opts.Workers)
	}
	p.pdMu.Lock()
	if p.pdSet {
		v := p.pd
		p.pdMu.Unlock()
		cDirectHits.Inc()
		return v, nil
	}
	if p.pdStale {
		// Delta-derived plan: settle the deferred tree patch rather than
		// re-running the full table.
		v, err := p.refreshPDLocked()
		p.pdMu.Unlock()
		if err != nil {
			return 0, err
		}
		cDirectMisses.Inc()
		return v, nil
	}
	p.pdMu.Unlock()
	v, ok := pdCacheGet(p.in)
	if ok {
		cDirectHits.Inc()
	} else {
		cDirectMisses.Inc()
		var err error
		// The one-off exact table is the natural home for the parallel D&C
		// tree: it runs before the replication pool exists, so the whole
		// worker budget is otherwise idle. Bit-identical to the sequential
		// evaluator for every budget.
		v, err = directProbabilityExactFresh(ctx, p.in, opts.Workers)
		if err != nil {
			return 0, err
		}
		pdCachePut(p.in, v)
	}
	p.pdMu.Lock()
	p.pd, p.pdSet = v, true
	p.pdMu.Unlock()
	return v, nil
}
