package election_test

import (
	"context"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
)

// Example evaluates the paper's Algorithm 1 against direct voting on a
// small complete graph. The exact engine leaves no vote-sampling noise, so
// results are reproducible to the last digit.
func Example() {
	p := []float64{0.8, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		panic(err)
	}
	res, err := election.EvaluateMechanism(context.Background(), in, mechanism.ApprovalThreshold{Alpha: 0.01}, election.Options{
		Replications: 256,
		Seed:         7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P^D = %.4f\n", res.PD)
	fmt.Printf("gain > 0: %v\n", res.Gain > 0)
	// Output:
	// P^D = 0.1966
	// gain > 0: true
}

// ExampleResolutionProbabilityExact scores a hand-built delegation graph.
func ExampleResolutionProbabilityExact() {
	in, err := core.NewInstance(graph.NewComplete(3), []float64{0.9, 0.4, 0.4})
	if err != nil {
		panic(err)
	}
	d := core.NewDelegationGraph(3)
	_ = d.SetDelegate(1, 0) // both weak voters follow the expert
	_ = d.SetDelegate(2, 0)
	res, err := d.Resolve()
	if err != nil {
		panic(err)
	}
	pm, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P^M = %.2f\n", pm) // the dictatorship equals the expert's p
	// Output:
	// P^M = 0.90
}
