package election

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func spgInstance(t *testing.T, n int, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.30 + 0.19*s.Float64()
	}
	return mustInstance(t, graph.NewComplete(n), p)
}

func TestCompareThresholdBeatsDirect(t *testing.T) {
	in := spgInstance(t, 301, 91)
	cmp, err := CompareMechanisms(context.Background(), in,
		mechanism.ApprovalThreshold{Alpha: 0.05},
		mechanism.Direct{},
		Options{Replications: 16, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Winner() != "A" {
		t.Fatalf("threshold should beat direct: %+v", cmp)
	}
	if cmp.AWins == 0 || cmp.BWins > 0 {
		t.Fatalf("win counts: %+v", cmp)
	}
	if cmp.MeanDiff <= 0 {
		t.Fatalf("MeanDiff = %v", cmp.MeanDiff)
	}
}

func TestCompareIdenticalMechanismsTie(t *testing.T) {
	in := spgInstance(t, 101, 93)
	cmp, err := CompareMechanisms(context.Background(), in,
		mechanism.ApprovalThreshold{Alpha: 0.05},
		mechanism.ApprovalThreshold{Alpha: 0.05},
		Options{Replications: 8, Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Same mechanism, same stream: identical results every replication.
	if cmp.Ties != 8 || cmp.Winner() != "tie" {
		t.Fatalf("identical mechanisms should tie: %+v", cmp)
	}
}

func TestCompareSymmetry(t *testing.T) {
	in := spgInstance(t, 151, 95)
	ab, err := CompareMechanisms(context.Background(), in,
		mechanism.ApprovalThreshold{Alpha: 0.02},
		mechanism.ApprovalThreshold{Alpha: 0.15},
		Options{Replications: 8, Seed: 7},
	)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := CompareMechanisms(context.Background(), in,
		mechanism.ApprovalThreshold{Alpha: 0.15},
		mechanism.ApprovalThreshold{Alpha: 0.02},
		Options{Replications: 8, Seed: 7},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ab.MeanDiff != -ba.MeanDiff {
		t.Fatalf("comparison not antisymmetric: %v vs %v", ab.MeanDiff, ba.MeanDiff)
	}
}

func TestCompareErrors(t *testing.T) {
	empty := mustInstance(t, graph.NewComplete(0), nil)
	if _, err := CompareMechanisms(context.Background(), empty, mechanism.Direct{}, mechanism.Direct{}, Options{}); !errors.Is(err, ErrNoVoters) {
		t.Fatalf("err = %v", err)
	}
	in := spgInstance(t, 21, 97)
	if _, err := CompareMechanisms(context.Background(), in, mechanism.CycleForcing{}, mechanism.Direct{}, Options{Replications: 2, Seed: 1}); err == nil {
		t.Fatal("cycle-forcing mechanism accepted")
	}
}
