package election

import (
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
)

// ErrTooManyOutcomes reports that exhaustive enumeration would exceed the
// configured state budget.
var ErrTooManyOutcomes = errors.New("election: too many delegation outcomes to enumerate")

// ExactMechanismProbability computes P^M(G) with no sampling error at all:
// it enumerates every possible delegation graph the mechanism can produce
// (the product of the per-voter distributions), weights each by its
// probability, and scores it with the exact weighted-majority DP.
//
// The number of combinations is the product of the voters' choice-set
// sizes; enumeration aborts with ErrTooManyOutcomes once it would exceed
// maxOutcomes (default 1 << 20 if <= 0). Intended for small instances and
// for validating the sampling engine.
func ExactMechanismProbability(in *core.Instance, mech mechanism.DistributionMechanism, maxOutcomes int64) (float64, error) {
	n := in.N()
	if n == 0 {
		return 0, ErrNoVoters
	}
	if maxOutcomes <= 0 {
		maxOutcomes = 1 << 20
	}

	dists := make([][]mechanism.Choice, n)
	total := int64(1)
	for v := 0; v < n; v++ {
		d, err := mech.DelegateDistribution(in, v)
		if err != nil {
			return 0, err
		}
		if len(d) == 0 {
			return 0, fmt.Errorf("mechanism %q returned empty distribution for voter %d", mech.Name(), v)
		}
		var sum prob.Accumulator
		for _, c := range d {
			if c.P < 0 {
				return 0, fmt.Errorf("mechanism %q returned negative probability for voter %d", mech.Name(), v)
			}
			sum.Add(c.P)
		}
		if s := sum.Sum(); s < 1-1e-9 || s > 1+1e-9 {
			return 0, fmt.Errorf("mechanism %q distribution for voter %d sums to %v", mech.Name(), v, s)
		}
		dists[v] = d
		if total > maxOutcomes/int64(len(d)) {
			return 0, fmt.Errorf("%w: more than %d combinations", ErrTooManyOutcomes, maxOutcomes)
		}
		total *= int64(len(d))
	}

	dg := core.NewDelegationGraph(n)
	// One workspace and cache for the whole enumeration: distinct delegation
	// graphs frequently resolve to the same weight/competency multiset, so
	// memoization collapses the scoring cost of the product space.
	ws := prob.NewWorkspace()
	rv := new(core.Resolver)
	scores := NewScoreCache()
	var acc prob.Accumulator
	var enumerate func(v int, weight float64) error
	enumerate = func(v int, weight float64) error {
		if weight == 0 {
			return nil
		}
		if v == n {
			res, err := rv.Resolve(dg)
			if err != nil {
				return err
			}
			pm, err := ResolutionProbabilityExactCached(in, res, ws, scores)
			if err != nil {
				return err
			}
			acc.Add(weight * pm)
			return nil
		}
		for _, c := range dists[v] {
			if c.Delegate == core.NoDelegate {
				dg.Delegate[v] = core.NoDelegate
			} else if err := dg.SetDelegate(v, c.Delegate); err != nil {
				return err
			}
			if err := enumerate(v+1, weight*c.P); err != nil {
				return err
			}
		}
		dg.Delegate[v] = core.NoDelegate
		return nil
	}
	if err := enumerate(0, 1); err != nil {
		return 0, err
	}
	return acc.Sum(), nil
}
