package election

import (
	"context"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// randomInstance builds a complete-graph instance with competencies in
// [lo, hi).
func randomInstance(t *testing.T, n int, lo, hi float64, s *rng.Stream) *core.Instance {
	t.Helper()
	p := make([]float64, n)
	for i := range p {
		p[i] = lo + (hi-lo)*s.Float64()
	}
	return mustInstance(t, graph.NewComplete(n), p)
}

// sameResult compares every deterministic Result field bit-for-bit. The
// cache-traffic fields are excluded by contract: they are telemetry whose
// split depends on sharing and scheduling (see Result).
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Mechanism != want.Mechanism || got.N != want.N {
		t.Fatalf("%s: identity mismatch: (%q, %d) vs (%q, %d)", label, got.Mechanism, got.N, want.Mechanism, want.N)
	}
	fields := []struct {
		name      string
		got, want float64
	}{
		{"PM", got.PM, want.PM},
		{"PMStdErr", got.PMStdErr, want.PMStdErr},
		{"PD", got.PD, want.PD},
		{"Gain", got.Gain, want.Gain},
		{"GainLo", got.GainLo, want.GainLo},
		{"GainHi", got.GainHi, want.GainHi},
		{"MeanDelegators", got.MeanDelegators, want.MeanDelegators},
		{"MeanSinks", got.MeanSinks, want.MeanSinks},
		{"MeanMaxWeight", got.MeanMaxWeight, want.MeanMaxWeight},
		{"MeanLongestChain", got.MeanLongestChain, want.MeanLongestChain},
	}
	for _, f := range fields {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Fatalf("%s: %s = %v (bits %x), want %v (bits %x)",
				label, f.name, f.got, math.Float64bits(f.got), f.want, math.Float64bits(f.want))
		}
	}
	if got.MaxMaxWeight != want.MaxMaxWeight {
		t.Fatalf("%s: MaxMaxWeight = %d, want %d", label, got.MaxMaxWeight, want.MaxMaxWeight)
	}
}

// sweepPoints builds a mechanism x margin grid with per-point derived
// seeds, the shape every experiment sweep has.
func sweepPoints(seed uint64) []SweepPoint {
	var points []SweepPoint
	for _, alpha := range []float64{0.02, 0.05, 0.1} {
		points = append(points,
			SweepPoint{
				Mechanism: mechanism.ApprovalThreshold{Alpha: alpha},
				Seed:      rng.Derive(seed, "threshold", "alpha", string(rune('a'+int(alpha*100)))),
			},
			SweepPoint{
				Mechanism: mechanism.GreedyBest{Alpha: alpha},
				Seed:      rng.Derive(seed, "greedy", "alpha", string(rune('a'+int(alpha*100)))),
			},
		)
	}
	points = append(points, SweepPoint{Mechanism: mechanism.Direct{}, Seed: rng.Derive(seed, "direct")})
	return points
}

// TestEvaluateSweepMatchesPointwise is the batched-vs-unbatched property:
// for random instances, EvaluateSweep over a shuffled point set must return
// results bit-identical to point-by-point EvaluateMechanism with the same
// options. Bit-identity here certifies the RNG draw contract too: each
// point's streams are derived only from its own seed, so any extra or
// missing draw in the batched path would shift a sampled value and break
// the float equality (the forced-Monte-Carlo variant below makes every
// value draw-sequence-sensitive on purpose).
func TestEvaluateSweepMatchesPointwise(t *testing.T) {
	ctx := context.Background()
	s := rng.New(97)
	base := Options{Replications: 8, Workers: 2, VoteSamples: 200}
	for _, n := range []int{101, 302} {
		in := randomInstance(t, n, 0.3, 0.6, s)
		points := sweepPoints(uint64(n))

		want := make([]*Result, len(points))
		for i, pt := range points {
			opts := base
			opts.Seed = pt.Seed
			res, err := EvaluateMechanism(ctx, in, pt.Mechanism, opts)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}

		// Shuffle the points, sweep, and undo the permutation: order inside
		// a sweep must not leak into any point's result.
		perm := rng.New(uint64(7 * n)).Perm(len(points))
		shuffled := make([]SweepPoint, len(points))
		for i, j := range perm {
			shuffled[j] = points[i]
		}
		plan, err := NewPlan(in, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateSweep(ctx, plan, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range perm {
			sameResult(t, "shuffled sweep", got[j], want[i])
		}
	}
}

// TestEvaluateSweepMonteCarloBranches repeats the property where both the
// P^D estimate (n > 4096) and every replication score (ExactCostLimit: 1)
// run Monte Carlo. Every reported float is now a function of the exact
// sequence of RNG draws, so bit-equality between the batched and unbatched
// paths proves the sweep consumes streams identically — zero extra draws.
func TestEvaluateSweepMonteCarloBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips the n>4096 Monte-Carlo instance")
	}
	ctx := context.Background()
	s := rng.New(101)
	in := randomInstance(t, 4099, 0.3, 0.6, s)
	base := Options{Replications: 3, Workers: 3, VoteSamples: 25, ExactCostLimit: 1}
	points := []SweepPoint{
		{Mechanism: mechanism.ApprovalThreshold{Alpha: 0.05}, Seed: 11},
		{Mechanism: mechanism.Direct{}, Seed: 12},
		{Mechanism: mechanism.GreedyBest{Alpha: 0.03}, Seed: 13},
	}
	plan, err := NewPlan(in, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateSweep(ctx, plan, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range points {
		opts := base
		opts.Seed = pt.Seed
		want, err := EvaluateMechanism(ctx, in, pt.Mechanism, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "MC branch", got[i], want)
	}
}

// TestSweepDisableResolutionCachePerPoint pins the per-point cache knob:
// within one sweep, a cache-disabled point must recompute everything from
// scratch yet produce exactly the bytes its cached twin produced — even
// when earlier points already populated the plan's score cache and the
// process-wide P^D memo (the old bug: the flag was only honoured before
// the first evaluation of an instance ever warmed those caches).
func TestSweepDisableResolutionCachePerPoint(t *testing.T) {
	ctx := context.Background()
	s := rng.New(103)
	in := randomInstance(t, 201, 0.3, 0.6, s)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	base := Options{Replications: 6, Workers: 2}
	plan, err := NewPlan(in, base)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed three times: warm the caches, then evaluate with them
	// bypassed, then once more with them hot again.
	points := []SweepPoint{
		{Mechanism: mech, Seed: 5},
		{Mechanism: mech, Seed: 5, DisableResolutionCache: true},
		{Mechanism: mech, Seed: 5},
	}
	got, err := EvaluateSweep(ctx, plan, points)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "disabled vs warm", got[1], got[0])
	sameResult(t, "rewarmed vs warm", got[2], got[0])
	if got[1].ResolutionCacheHits != 0 || got[1].ResolutionCacheMisses != 0 {
		t.Fatalf("cache-disabled point reported cache traffic: %d hits / %d misses",
			got[1].ResolutionCacheHits, got[1].ResolutionCacheMisses)
	}
	if got[2].ResolutionCacheHits == 0 {
		t.Fatal("re-enabled point saw no cache hits; plan cache was not shared")
	}
}

// TestPlanPrewarmApproval checks prewarming is invisible in results.
func TestPlanPrewarmApproval(t *testing.T) {
	ctx := context.Background()
	s := rng.New(107)
	in := randomInstance(t, 151, 0.3, 0.6, s)
	base := Options{Replications: 4}
	cold, err := NewPlan(in, base)
	if err != nil {
		t.Fatal(err)
	}
	pt := SweepPoint{Mechanism: mechanism.ApprovalThreshold{Alpha: 0.07}, Seed: 3}
	want, err := EvaluateSweep(ctx, cold, []SweepPoint{pt})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewPlan(in, base)
	if err != nil {
		t.Fatal(err)
	}
	warm.PrewarmApproval(0.07, 0.02)
	got, err := EvaluateSweep(ctx, warm, []SweepPoint{pt})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "prewarmed", got[0], want[0])
}
