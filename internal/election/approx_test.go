package election_test

import (
	"context"
	"math"
	"testing"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func approxTestInstance(t *testing.T, n int, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.19*s.Float64()
	}
	in, err := core.NewInstance(graph.NewComplete(n), p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestApproxWithinCertifiedBound is the degradation ladder's correctness
// contract: the approximate evaluator's PD and PM must sit within their
// certified Berry–Esseen bounds of the exact evaluator's, for the same
// seed (same realizations, scored by DP on one side and by normal
// approximation on the other).
func TestApproxWithinCertifiedBound(t *testing.T) {
	in := approxTestInstance(t, 301, 7)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	opts := election.Options{Replications: 16, Seed: 11}

	exact, err := election.EvaluateMechanism(context.Background(), in, mech, opts)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := election.EvaluateMechanismApprox(context.Background(), in, mech, opts)
	if err != nil {
		t.Fatal(err)
	}
	if approx.ErrorBound <= 0 || approx.ErrorBound > 1 {
		t.Fatalf("ErrorBound = %g, want in (0, 1]", approx.ErrorBound)
	}
	if approx.ErrorBound != approx.PDErrorBound+approx.PMErrorBound {
		t.Fatalf("ErrorBound %g != PD %g + PM %g", approx.ErrorBound, approx.PDErrorBound, approx.PMErrorBound)
	}
	if diff := math.Abs(exact.PD - approx.PD); diff > approx.PDErrorBound {
		t.Fatalf("|PD diff| = %g exceeds certified %g", diff, approx.PDErrorBound)
	}
	if diff := math.Abs(exact.PM - approx.PM); diff > approx.PMErrorBound {
		t.Fatalf("|PM diff| = %g exceeds certified %g", diff, approx.PMErrorBound)
	}
	if diff := math.Abs(exact.Gain - approx.Gain); diff > approx.ErrorBound {
		t.Fatalf("|gain diff| = %g exceeds certified %g", diff, approx.ErrorBound)
	}
	// The realizations themselves are exact, so the structural statistics
	// must agree bit-for-bit with the exact evaluator's.
	if exact.MeanDelegators != approx.MeanDelegators ||
		exact.MeanSinks != approx.MeanSinks ||
		exact.MeanMaxWeight != approx.MeanMaxWeight ||
		exact.MaxMaxWeight != approx.MaxMaxWeight ||
		exact.MeanLongestChain != approx.MeanLongestChain {
		t.Fatalf("structural stats diverge: exact %+v approx %+v", exact, approx.Result)
	}
}

func TestApproxDeterministic(t *testing.T) {
	in := approxTestInstance(t, 150, 9)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	opts := election.Options{Replications: 8, Seed: 5}
	a, err := election.EvaluateMechanismApprox(context.Background(), in, mech, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := election.EvaluateMechanismApprox(context.Background(), in, mech, opts)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestApproxCancellation(t *testing.T) {
	in := approxTestInstance(t, 100, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := election.EvaluateMechanismApprox(ctx, in, mechanism.Direct{}, election.Options{Replications: 4, Seed: 1})
	if err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestApproximateResolution(t *testing.T) {
	in := approxTestInstance(t, 201, 13)
	d := core.NewDelegationGraph(in.N())
	// A couple of concrete delegations toward higher-competency voters.
	order := in.CompetencyOrder()
	top := order[len(order)-1]
	for i := 0; i < 20; i++ {
		v := order[i]
		if v == top {
			continue
		}
		if err := d.SetDelegate(v, top); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		t.Fatal(err)
	}
	pm, bound := election.ApproximateResolution(in, res)
	if diff := math.Abs(exact - pm); diff > bound {
		t.Fatalf("|exact-approx| = %g exceeds certified %g", diff, bound)
	}
}
