package election

// Incremental re-evaluation (DESIGN.md §15). A Plan canonicalises one
// instance; evolving-graph workloads — delegation churn, BA growth, liquidd
// what-if queries — evaluate long chains of instances that differ from
// their predecessor by a handful of voters. ApplyDelta derives the next
// plan from the previous one instead of starting over:
//
//   - the ScoreCache is shared: its values are pure functions of canonical
//     (weight, p) multisets, independent of which instance produced them,
//     so every multiset the mutated instance re-realizes is a hit;
//   - the exact P^D is patched through a retained prob.DeltaTree over the
//     weight-1 competency multiset: a k-voter delta costs O(k log n)
//     merges instead of the full O(n^2 / FFT) table build (n <= 4096 only
//     — above that P^D is Monte-Carlo and seed-dependent, never memoized);
//   - everything else a Plan owns is either immutable or rebuilt lazily.
//
// Scenario is the delegation-level counterpart: it pins one plan and one
// delegation profile and re-scores P^M through its own retained tree as
// the profile is edited. Dynamics (best-response sweeps, churn) and the
// liquidd what-if endpoint sit on Scenario.
//
// The correctness gate for everything in this file is bit-identity: a
// derived plan must be indistinguishable, byte for byte, from a fresh
// NewPlan on the mutated instance, and a Scenario score must equal
// ResolutionProbabilityExact on the same resolution. Both reduce to the
// DeltaTree's own guarantee (a patched tree equals a from-scratch build)
// plus using the same canonical voter orders the transient paths use:
// CompetencyOrder for P^D — ascending competency, which is the value
// order sort.Float64s produces in directProbabilityCached, competencies
// being non-negative — and resolutionVoters for P^M.

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/prob"
)

// DeltaKind enumerates the supported incremental edits.
type DeltaKind int

const (
	// DeltaCompetency changes Voter's competency to P.
	DeltaCompetency DeltaKind = iota + 1
	// DeltaRepoint re-points Voter's delegation to Target
	// (core.NoDelegate for direct). Only Scenario accepts it: a Plan has
	// no delegation profile to edit.
	DeltaRepoint
	// DeltaAddVoter appends a voter with competency P and explicit-graph
	// edges to each id in Edges. On complete topologies Edges must be nil
	// (the new voter is adjacent to everyone by construction).
	DeltaAddVoter
	// DeltaRemoveVoter removes Voter; higher ids shift down by one. In a
	// Scenario, delegations onto the removed voter become direct.
	DeltaRemoveVoter
	// DeltaAddEdge adds the undirected edge {Voter, Target} (explicit
	// graphs only).
	DeltaAddEdge
	// DeltaRemoveEdge removes the undirected edge {Voter, Target}
	// (explicit graphs only).
	DeltaRemoveEdge
)

// String names the kind for error messages.
func (k DeltaKind) String() string {
	switch k {
	case DeltaCompetency:
		return "competency"
	case DeltaRepoint:
		return "repoint"
	case DeltaAddVoter:
		return "add-voter"
	case DeltaRemoveVoter:
		return "remove-voter"
	case DeltaAddEdge:
		return "add-edge"
	case DeltaRemoveEdge:
		return "remove-edge"
	default:
		return fmt.Sprintf("DeltaKind(%d)", int(k))
	}
}

// Delta is one incremental edit. Which fields matter depends on Kind; see
// the kind constants.
type Delta struct {
	Kind   DeltaKind
	Voter  int
	Target int
	P      float64
	Edges  []int
}

// applyInstanceDeltas folds instance-level deltas over in, returning the
// mutated instance. Competency changes use the O(n) patched constructor;
// structural edits (voter/edge add/remove) rebuild the topology and run
// the full NewInstance.
func applyInstanceDeltas(in *core.Instance, deltas []Delta) (*core.Instance, error) {
	for _, d := range deltas {
		var err error
		switch d.Kind {
		case DeltaCompetency:
			in, err = in.WithCompetency(d.Voter, d.P)
		case DeltaAddVoter:
			in, err = addVoter(in, d)
		case DeltaRemoveVoter:
			in, err = removeVoter(in, d.Voter)
		case DeltaAddEdge, DeltaRemoveEdge:
			in, err = editEdge(in, d)
		case DeltaRepoint:
			err = fmt.Errorf("election: %s delta needs a delegation profile; apply it through a Scenario", d.Kind)
		default:
			err = fmt.Errorf("election: unknown delta kind %s", d.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}

func addVoter(in *core.Instance, d Delta) (*core.Instance, error) {
	n := in.N()
	p := append(in.Competencies(), d.P)
	switch top := in.Topology().(type) {
	case graph.Complete:
		if len(d.Edges) != 0 {
			return nil, fmt.Errorf("election: add-voter on a complete topology takes no edge list")
		}
		return core.NewInstance(graph.NewComplete(n+1), p)
	case *graph.Graph:
		g, err := graph.NewGraphFromEdges(n+1, top.Edges())
		if err != nil {
			return nil, fmt.Errorf("election: add-voter: %w", err)
		}
		for _, u := range d.Edges {
			if err := g.AddEdge(u, n); err != nil {
				return nil, fmt.Errorf("election: add-voter edge {%d,%d}: %w", u, n, err)
			}
		}
		return core.NewInstance(g, p)
	default:
		return nil, fmt.Errorf("election: add-voter unsupported on topology %T", top)
	}
}

func removeVoter(in *core.Instance, v int) (*core.Instance, error) {
	n := in.N()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("election: remove-voter %d out of range [0,%d)", v, n)
	}
	ps := in.Competencies()
	p := append(ps[:v], ps[v+1:]...)
	switch top := in.Topology().(type) {
	case graph.Complete:
		return core.NewInstance(graph.NewComplete(n-1), p)
	case *graph.Graph:
		var edges [][2]int
		for _, e := range top.Edges() {
			if e[0] == v || e[1] == v {
				continue
			}
			if e[0] > v {
				e[0]--
			}
			if e[1] > v {
				e[1]--
			}
			edges = append(edges, e)
		}
		g, err := graph.NewGraphFromEdges(n-1, edges)
		if err != nil {
			return nil, fmt.Errorf("election: remove-voter: %w", err)
		}
		return core.NewInstance(g, p)
	default:
		return nil, fmt.Errorf("election: remove-voter unsupported on topology %T", top)
	}
}

func editEdge(in *core.Instance, d Delta) (*core.Instance, error) {
	top, ok := in.Topology().(*graph.Graph)
	if !ok {
		return nil, fmt.Errorf("election: %s requires an explicit graph topology, have %T", d.Kind, in.Topology())
	}
	u, v := d.Voter, d.Target
	var edges [][2]int
	switch d.Kind {
	case DeltaAddEdge:
		if top.HasEdge(u, v) {
			return nil, fmt.Errorf("election: add-edge {%d,%d}: already present", u, v)
		}
		edges = append(top.Edges(), [2]int{u, v})
	default: // DeltaRemoveEdge
		if !top.HasEdge(u, v) {
			return nil, fmt.Errorf("election: remove-edge {%d,%d}: not present", u, v)
		}
		for _, e := range top.Edges() {
			if (e[0] == u && e[1] == v) || (e[0] == v && e[1] == u) {
				continue
			}
			edges = append(edges, e)
		}
	}
	g, err := graph.NewGraphFromEdges(in.N(), edges)
	if err != nil {
		return nil, fmt.Errorf("election: %s {%d,%d}: %w", d.Kind, u, v, err)
	}
	return core.NewInstance(g, in.Competencies())
}

// competencyVoters fills buf with the instance's weight-1 canonical voter
// sequence — ascending competency, the order both P^D paths score.
func competencyVoters(in *core.Instance, buf []prob.WeightedVoter) []prob.WeightedVoter {
	buf = buf[:0]
	for _, v := range in.CompetencyOrder() {
		buf = append(buf, prob.WeightedVoter{Weight: 1, P: in.Competency(v)})
	}
	return buf
}

// pdPatchMaxN bounds the instances whose P^D ApplyDelta patches: it must
// match the exact-branch bound in Plan.directProbability — above it P^D is
// Monte-Carlo, seed-dependent, and never memoized, so there is nothing to
// patch.
const pdPatchMaxN = 4096

// ApplyDelta derives the plan of the mutated instance. The derived plan is
// bit-identical in every evaluation to NewPlan on the same mutated
// instance — EvaluateSweep, P^D, the lot — but shares the receiver's score
// cache (its values are instance-independent pure functions) and, for
// n <= 4096, patches the receiver's retained P^D tree instead of re-running
// the full table, an O(k log n) update for a k-voter delta.
//
// The retained tree MOVES to the derived plan: a chain of ApplyDelta calls
// (churn, growth) keeps patching one tree, while the receiver — typically
// retired at that point — falls back to the ordinary memo path if evaluated
// again. The patch itself is lazy: it runs on the derived plan's first
// exact P^D read (refreshPDLocked), so delta chains that never ask for P^D
// — P^M-only what-if probes, churn scoring — pay nothing, and a chain of k
// unread deltas collapses into one diff when finally read. Repoint deltas
// are rejected here; apply them through a Scenario.
func (p *Plan) ApplyDelta(deltas ...Delta) (*Plan, error) {
	in2, err := applyInstanceDeltas(p.in, deltas)
	if err != nil {
		return nil, err
	}
	if in2.N() == 0 {
		return nil, ErrNoVoters
	}
	derived := &Plan{in: in2, opts: p.opts, scores: p.scores}
	if in2.N() > pdPatchMaxN {
		return derived, nil
	}
	p.pdMu.Lock()
	derived.pdTree = p.pdTree
	p.pdTree = nil
	p.pdMu.Unlock()
	derived.pdStale = true
	return derived, nil
}

// refreshPDLocked settles a delta-derived plan's deferred P^D: seed or
// patch the retained tree against the current instance and memoize its
// majority mass. Tree results are bit-identical to from-scratch builds, so
// the memoized value equals what directProbabilityExactFresh would compute
// — the global pdCache entry it feeds is sound for every future reader.
// The caller holds p.pdMu.
func (p *Plan) refreshPDLocked() (float64, error) {
	voters := competencyVoters(p.in, nil)
	var err error
	if p.pdTree == nil {
		if p.pdTree, err = prob.NewDeltaTree(voters); err != nil {
			return 0, fmt.Errorf("election: delta P^D tree: %w", err)
		}
	} else if err = p.pdTree.Update(voters); err != nil {
		return 0, fmt.Errorf("election: delta P^D tree: %w", err)
	}
	v := p.pdTree.ProbCorrectDecision()
	p.pdStale = false
	p.pd, p.pdSet = v, true
	pdCachePut(p.in, v)
	return v, nil
}

// DeltaTreeStats returns the retained P^D tree's deterministic counters
// (zero if the plan has none). Deterministic: pure functions of the
// ApplyDelta call sequence, safe to render in reproduced tables.
func (p *Plan) DeltaTreeStats() prob.DeltaTreeStats {
	p.pdMu.Lock()
	defer p.pdMu.Unlock()
	if p.pdTree == nil {
		return prob.DeltaTreeStats{}
	}
	return p.pdTree.Stats()
}

// Scenario pins one plan and one delegation profile and re-scores the
// profile incrementally as it is edited. It owns its resolver, workspace,
// and retained trees — a Scenario is single-threaded scratch, not a shared
// artifact — and its plan reference advances through derived plans as
// instance-level deltas arrive.
type Scenario struct {
	plan *Plan
	d    *core.DelegationGraph
	rv   core.Resolver
	ws   *prob.Workspace

	// tree retains the weighted-majority evaluation of the current
	// resolution's canonical multiset; consecutive scores after small
	// edits patch it instead of re-running the DP.
	tree *prob.DeltaTree

	// pdTree retains the scenario's own weight-1 P^D evaluation,
	// independent of the plan chain's tree so that serving scenarios never
	// steal a tree the plan chain is still patching.
	pdTree *prob.DeltaTree

	pm    float64
	pmSet bool
	res   resolutionSummary

	// lastRes retains the most recent resolve of s.d. Resolution structure
	// is a pure function of the delegation profile, so competency and edge
	// deltas — which leave the profile alone — keep it valid and Score skips
	// the re-resolve.
	lastRes *core.Resolution
}

// resolutionSummary is the structural snapshot of the last resolve.
type resolutionSummary struct {
	sinks        int
	maxWeight    int
	totalWeight  int
	delegators   int
	longestChain int
}

// NewScenario pins plan's current instance and a copy of d.
func NewScenario(plan *Plan, d *core.DelegationGraph) (*Scenario, error) {
	if d.N() != plan.Instance().N() {
		return nil, fmt.Errorf("%w: delegation over %d voters for instance of %d", core.ErrInvalidDelegation, d.N(), plan.Instance().N())
	}
	s := &Scenario{plan: plan, ws: prob.NewWorkspace()}
	s.d = copyDelegation(d)
	return s, nil
}

func copyDelegation(d *core.DelegationGraph) *core.DelegationGraph {
	c := &core.DelegationGraph{Delegate: append([]int(nil), d.Delegate...)}
	if d.Abstained != nil {
		c.Abstained = append([]bool(nil), d.Abstained...)
	}
	return c
}

// Plan returns the scenario's current (possibly derived) plan.
func (s *Scenario) Plan() *Plan { return s.plan }

// Delegation returns the scenario's profile. It is the scenario's own
// mutable copy: callers may read it freely but must route edits through
// ApplyDelta/SetDelegate so the retained score stays coherent.
func (s *Scenario) Delegation() *core.DelegationGraph { return s.d }

// SetDelegate re-points voter i to j (core.NoDelegate for direct),
// invalidating the retained score. It is the primitive behind
// DeltaRepoint, exposed directly for tight loops (best-response sweeps
// try many candidate targets per voter).
func (s *Scenario) SetDelegate(i, j int) error {
	if j == core.NoDelegate {
		if i < 0 || i >= s.d.N() {
			return fmt.Errorf("%w: voter %d out of range", core.ErrInvalidDelegation, i)
		}
		s.d.Delegate[i] = core.NoDelegate
	} else if err := s.d.SetDelegate(i, j); err != nil {
		return err
	}
	s.pmSet = false
	s.lastRes = nil
	return nil
}

// SetDelegation replaces the whole profile (the scenario keeps its own
// copy). The retained tree diffs the next Score against whatever it last
// evaluated, so rebasing between nearby profiles stays cheap.
func (s *Scenario) SetDelegation(d *core.DelegationGraph) error {
	if d.N() != s.plan.Instance().N() {
		return fmt.Errorf("%w: delegation over %d voters for instance of %d", core.ErrInvalidDelegation, d.N(), s.plan.Instance().N())
	}
	s.d = copyDelegation(d)
	s.pmSet = false
	s.lastRes = nil
	return nil
}

// ApplyDelta applies deltas in order: repoints edit the profile in place,
// instance-level deltas advance the plan chain and remap the profile where
// ids shift. On error the scenario is left unchanged (deltas are staged
// against copies until all validate).
func (s *Scenario) ApplyDelta(deltas ...Delta) error {
	plan := s.plan
	d := copyDelegation(s.d)
	profileEdited := false
	for _, dl := range deltas {
		if dl.Kind != DeltaRepoint {
			p2, err := plan.ApplyDelta(dl)
			if err != nil {
				return err
			}
			plan = p2
		}
		switch dl.Kind {
		case DeltaRepoint, DeltaAddVoter, DeltaRemoveVoter:
			profileEdited = true
		}
		d2, err := applyProfileDelta(d, dl)
		if err != nil {
			return err
		}
		d = d2
	}
	s.plan = plan
	s.d = d
	s.pmSet = false
	if profileEdited {
		s.lastRes = nil
	}
	return nil
}

// applyProfileDelta folds one delta's effect on a delegation profile:
// repoints edit in place, add-voter appends (with an optional initial
// delegation at Target), remove-voter remaps ids, and competency/edge
// edits leave the profile alone.
func applyProfileDelta(d *core.DelegationGraph, dl Delta) (*core.DelegationGraph, error) {
	switch dl.Kind {
	case DeltaRepoint:
		if dl.Target == core.NoDelegate {
			if dl.Voter < 0 || dl.Voter >= d.N() {
				return nil, fmt.Errorf("%w: voter %d out of range", core.ErrInvalidDelegation, dl.Voter)
			}
			d.Delegate[dl.Voter] = core.NoDelegate
		} else if err := d.SetDelegate(dl.Voter, dl.Target); err != nil {
			return nil, err
		}
	case DeltaAddVoter:
		d.Delegate = append(d.Delegate, core.NoDelegate)
		if d.Abstained != nil {
			d.Abstained = append(d.Abstained, false)
		}
		if dl.Target != core.NoDelegate {
			if err := d.SetDelegate(d.N()-1, dl.Target); err != nil {
				return nil, err
			}
		}
	case DeltaRemoveVoter:
		d = removeVoterFromDelegation(d, dl.Voter)
	}
	return d, nil
}

// PreviewDeltas applies deltas to an instance and delegation profile
// without any plan or retained-tree work: the same per-delta validation
// and profile remapping Scenario.ApplyDelta performs, minus the
// evaluation state. Serving layers use it to validate a delta list — and
// resolve the post-delta profile for cycle rejection — before paying for
// admission. The inputs are never mutated.
func PreviewDeltas(in *core.Instance, d *core.DelegationGraph, deltas ...Delta) (*core.Instance, *core.DelegationGraph, error) {
	if d.N() != in.N() {
		return nil, nil, fmt.Errorf("%w: delegation over %d voters for instance of %d", core.ErrInvalidDelegation, d.N(), in.N())
	}
	out := copyDelegation(d)
	for _, dl := range deltas {
		if dl.Kind != DeltaRepoint {
			in2, err := applyInstanceDeltas(in, []Delta{dl})
			if err != nil {
				return nil, nil, err
			}
			if in2.N() == 0 {
				return nil, nil, ErrNoVoters
			}
			in = in2
		}
		d2, err := applyProfileDelta(out, dl)
		if err != nil {
			return nil, nil, err
		}
		out = d2
	}
	return in, out, nil
}

// removeVoterFromDelegation drops voter v: ids above v shift down, and
// delegations onto v become direct.
func removeVoterFromDelegation(d *core.DelegationGraph, v int) *core.DelegationGraph {
	out := &core.DelegationGraph{Delegate: make([]int, 0, d.N()-1)}
	if d.Abstained != nil {
		out.Abstained = make([]bool, 0, d.N()-1)
	}
	for i, t := range d.Delegate {
		if i == v {
			continue
		}
		switch {
		case t == v:
			t = core.NoDelegate
		case t > v:
			t--
		}
		out.Delegate = append(out.Delegate, t)
		if d.Abstained != nil {
			out.Abstained = append(out.Abstained, d.Abstained[i])
		}
	}
	return out
}

// Score resolves the profile and returns P^M exactly — bit-identical to
// ResolutionProbabilityExact on the same instance and profile — patching
// the retained tree with whatever changed since the last Score.
func (s *Scenario) Score() (float64, error) {
	if s.pmSet {
		return s.pm, nil
	}
	res := s.lastRes
	var err error
	if res == nil {
		if res, err = s.rv.Resolve(s.d); err != nil {
			return 0, err
		}
		s.lastRes = res
	}
	s.res = resolutionSummary{
		sinks:        len(res.Sinks),
		maxWeight:    res.MaxWeight,
		totalWeight:  res.TotalWeight,
		delegators:   res.Delegators,
		longestChain: res.LongestChain,
	}
	// The same canonical multiset every exact scoring path uses; the tree
	// then matches ResolutionProbabilityExact byte for byte (empty multiset
	// included: the all-abstained PMF is the point mass at zero, whose
	// strict majority probability is 0, the cached path's early return).
	voters := resolutionVoters(s.plan.Instance(), res, s.ws)
	if s.tree == nil {
		if s.tree, err = prob.NewDeltaTree(voters); err != nil {
			return 0, err
		}
	} else if err = s.tree.Update(voters); err != nil {
		return 0, err
	}
	s.pm = s.tree.ProbCorrectDecision()
	s.pmSet = true
	return s.pm, nil
}

// PD returns the instance's exact P^D through the scenario's own retained
// tree (n <= 4096 only). Bit-identical to DirectProbabilityExact.
func (s *Scenario) PD() (float64, error) {
	in := s.plan.Instance()
	if in.N() == 0 {
		return 0, ErrNoVoters
	}
	if in.N() > pdPatchMaxN {
		return 0, fmt.Errorf("election: scenario P^D is exact-only (n=%d > %d)", in.N(), pdPatchMaxN)
	}
	if v, ok := pdCacheGet(in); ok {
		cDirectHits.Inc()
		return v, nil
	}
	cDirectMisses.Inc()
	voters := competencyVoters(in, s.ws.VoterBuffer(in.N()))
	var err error
	if s.pdTree == nil {
		if s.pdTree, err = prob.NewDeltaTree(voters); err != nil {
			return 0, err
		}
	} else if err = s.pdTree.Update(voters); err != nil {
		return 0, err
	}
	v := s.pdTree.ProbCorrectDecision()
	pdCachePut(in, v)
	return v, nil
}

// Structural accessors for the last scored resolution (valid after Score).

// Sinks returns the sink count of the last scored resolution.
func (s *Scenario) Sinks() int { return s.res.sinks }

// MaxWeight returns the largest sink weight of the last scored resolution.
func (s *Scenario) MaxWeight() int { return s.res.maxWeight }

// TotalWeight returns the total sink weight of the last scored resolution.
func (s *Scenario) TotalWeight() int { return s.res.totalWeight }

// Delegators returns the delegator count of the last scored resolution.
func (s *Scenario) Delegators() int { return s.res.delegators }

// LongestChain returns the longest delegation chain of the last scored
// resolution.
func (s *Scenario) LongestChain() int { return s.res.longestChain }

// TreeStats returns the retained P^M tree's deterministic counters (zero
// before the first Score).
func (s *Scenario) TreeStats() prob.DeltaTreeStats {
	if s.tree == nil {
		return prob.DeltaTreeStats{}
	}
	return s.tree.Stats()
}
