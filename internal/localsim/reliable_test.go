package localsim

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func lossyTestInstance(t *testing.T, n int, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	g, err := graph.RandomRegular(n, 8, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	return mustInstance(t, g, p)
}

func TestReliableMatchesCentralizedUnderLoss(t *testing.T) {
	in := lossyTestInstance(t, 60, 61)
	for _, loss := range []float64{0, 0.1, 0.3, 0.5} {
		res, err := RunReliableDelegation(context.Background(), in, 0.03, ThresholdRule(nil), 71, loss)
		if err != nil {
			t.Fatalf("loss %v: %v", loss, err)
		}
		central, err := res.Delegation.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < in.N(); v++ {
			want := 0
			if central.SinkOf[v] == v {
				want = central.Weight[v]
			}
			if res.Weights[v] != want {
				t.Fatalf("loss %v: node %d weight %d, want %d", loss, v, res.Weights[v], want)
			}
		}
	}
}

func TestReliableSameDecisionsAsUnreliable(t *testing.T) {
	// Same seed => same per-node decision streams => identical delegation
	// graphs, loss or no loss.
	in := lossyTestInstance(t, 40, 62)
	a, err := RunDelegation(context.Background(), in, 0.03, ThresholdRule(nil), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReliableDelegation(context.Background(), in, 0.03, ThresholdRule(nil), 5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Delegation.Delegate {
		if a.Delegation.Delegate[v] != b.Delegation.Delegate[v] {
			t.Fatalf("node %d: delegate %d vs %d", v, a.Delegation.Delegate[v], b.Delegation.Delegate[v])
		}
	}
}

func TestReliableLossCostsMessages(t *testing.T) {
	in := lossyTestInstance(t, 50, 63)
	clean, err := RunReliableDelegation(context.Background(), in, 0.03, ThresholdRule(nil), 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunReliableDelegation(context.Background(), in, 0.03, ThresholdRule(nil), 9, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Messages <= clean.Messages {
		t.Fatalf("retransmission should cost messages: %d vs %d", lossy.Messages, clean.Messages)
	}
	if lossy.Rounds <= clean.Rounds {
		t.Fatalf("loss should cost rounds: %d vs %d", lossy.Rounds, clean.Rounds)
	}
}

func TestUnreliableProtocolLosesWeightUnderLoss(t *testing.T) {
	// The ack-free protocol undercounts when messages drop: total reported
	// weight falls below n. This is the failure the reliable variant fixes.
	in := lossyTestInstance(t, 80, 64)
	n := in.N()
	root := rng.New(33)
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nbrs := in.Topology().Neighbors(v)
		approved := make([]bool, len(nbrs))
		for k, u := range nbrs {
			approved[k] = in.Approves(v, u, 0.03)
		}
		contexts[v] = &NodeContext{ID: v, Neighbors: nbrs, Approved: approved, Rand: root.Derive(uint64(v))}
		nodes[v] = &delegationNode{decide: ThresholdRule(nil)}
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLoss(0.5, root.DeriveString("loss")); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(context.Background(), n+2); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, node := range nodes {
		total += node.(*delegationNode).weight
	}
	if total >= n {
		t.Fatalf("expected weight loss under 50%% drops, got total %d of %d", total, n)
	}
	if nw.Dropped() == 0 {
		t.Fatal("expected dropped messages")
	}
}

func TestSetLossValidation(t *testing.T) {
	nw, err := NewNetwork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLoss(-0.1, rng.New(1)); !errors.Is(err, ErrProtocol) {
		t.Error("negative rate accepted")
	}
	if err := nw.SetLoss(1, rng.New(1)); !errors.Is(err, ErrProtocol) {
		t.Error("rate 1 accepted")
	}
	if err := nw.SetLoss(0.5, nil); !errors.Is(err, ErrProtocol) {
		t.Error("nil stream accepted")
	}
	if err := nw.SetLoss(0, nil); err != nil {
		t.Errorf("zero loss with nil stream should be fine: %v", err)
	}
}

func TestReliableValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.2, 0.5, 0.8})
	if _, err := RunReliableDelegation(context.Background(), in, -1, ThresholdRule(nil), 1, 0); !errors.Is(err, ErrProtocol) {
		t.Error("negative alpha accepted")
	}
	if _, err := RunReliableDelegation(context.Background(), in, 0.1, nil, 1, 0); !errors.Is(err, ErrProtocol) {
		t.Error("nil rule accepted")
	}
	if _, err := RunReliableDelegation(context.Background(), in, 0.1, ThresholdRule(nil), 1, 1.5); !errors.Is(err, ErrProtocol) {
		t.Error("bad loss rate accepted")
	}
}

func TestReliableSurvivesAsyncDelays(t *testing.T) {
	in := lossyTestInstance(t, 50, 81)
	for _, tt := range []struct {
		loss  float64
		delay int
	}{
		{0, 3},
		{0.2, 2},
		{0.4, 4},
		{0.5, 5}, // heavy loss and delay combined
	} {
		res, err := RunReliableDelegationAsync(context.Background(), in, 0.03, ThresholdRule(nil), 17, tt.loss, tt.delay)
		if err != nil {
			t.Fatalf("loss %v delay %d: %v", tt.loss, tt.delay, err)
		}
		central, err := res.Delegation.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < in.N(); v++ {
			want := 0
			if central.SinkOf[v] == v {
				want = central.Weight[v]
			}
			if res.Weights[v] != want {
				t.Fatalf("loss %v delay %d: node %d weight %d, want %d", tt.loss, tt.delay, v, res.Weights[v], want)
			}
		}
	}
}

func TestSetDelayValidation(t *testing.T) {
	nw, err := NewNetwork(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetDelay(3, nil); !errors.Is(err, ErrProtocol) {
		t.Error("delay without stream accepted")
	}
	if err := nw.SetDelay(0, nil); err != nil {
		t.Errorf("zero delay should be fine: %v", err)
	}
}
