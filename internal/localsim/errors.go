package localsim

import (
	"errors"
	"fmt"
)

// ErrProtocol reports a protocol violation detected by the simulator. All
// structured violations (ProtocolError) unwrap to it, so callers can use
// errors.Is(err, ErrProtocol) regardless of which invariant tripped.
var ErrProtocol = errors.New("localsim: protocol violation")

// Violation classifies a protocol invariant breach.
type Violation int

// The violations the simulator detects.
const (
	// ViolationForgedSender: a node emitted a message whose From field is
	// not its own id.
	ViolationForgedSender Violation = iota
	// ViolationUnknownRecipient: a message was addressed to an id outside
	// [0, n).
	ViolationUnknownRecipient
	// ViolationNonNeighbor: a message was addressed to a node that is not a
	// neighbour of the sender.
	ViolationNonNeighbor
	// ViolationNoQuiescence: the round budget was exhausted with messages
	// still in flight or nodes still busy.
	ViolationNoQuiescence
	// ViolationConfigAfterStart: SetLoss/SetDelay/SetFaults was called
	// after Run or RunRounds had started.
	ViolationConfigAfterStart
	// ViolationAlreadyStarted: Run or RunRounds was invoked twice on the
	// same Network.
	ViolationAlreadyStarted
	// ViolationBadParameter: a configuration value was out of range.
	ViolationBadParameter
)

// String implements fmt.Stringer.
func (v Violation) String() string {
	switch v {
	case ViolationForgedSender:
		return "forged sender"
	case ViolationUnknownRecipient:
		return "unknown recipient"
	case ViolationNonNeighbor:
		return "non-neighbour recipient"
	case ViolationNoQuiescence:
		return "no quiescence"
	case ViolationConfigAfterStart:
		return "configuration after start"
	case ViolationAlreadyStarted:
		return "already started"
	case ViolationBadParameter:
		return "bad parameter"
	default:
		return fmt.Sprintf("violation(%d)", int(v))
	}
}

// ProtocolError is a structured protocol violation: which invariant broke,
// who broke it, and when. It unwraps to ErrProtocol.
type ProtocolError struct {
	Violation Violation
	// Node is the offending node id, or -1 when not node-specific.
	Node int
	// Target is the message addressee involved, or -1.
	Target int
	// Round is the simulation round of the violation, or -1 (e.g. during
	// configuration).
	Round int
	// Detail is a free-form elaboration.
	Detail string
}

// Error implements error.
func (e *ProtocolError) Error() string {
	msg := fmt.Sprintf("%v: %v", ErrProtocol, e.Violation)
	if e.Node >= 0 {
		msg += fmt.Sprintf(" by node %d", e.Node)
	}
	if e.Target >= 0 {
		msg += fmt.Sprintf(" (target %d)", e.Target)
	}
	if e.Round >= 0 {
		msg += fmt.Sprintf(" at round %d", e.Round)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrProtocol) hold for every ProtocolError.
func (e *ProtocolError) Unwrap() error { return ErrProtocol }

// violationf builds a ProtocolError with no node/round attribution.
func violationf(v Violation, format string, args ...any) *ProtocolError {
	return &ProtocolError{Violation: v, Node: -1, Target: -1, Round: -1, Detail: fmt.Sprintf(format, args...)}
}
