package localsim

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

// TestRunDelegationCancelled checks the cooperative-cancellation contract:
// a pre-cancelled context aborts the protocol between rounds with the
// context's error, and a background context leaves results unchanged.
func TestRunDelegationCancelled(t *testing.T) {
	top, err := graph.RandomRegular(200, 8, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, top.N())
	s := rng.New(11)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunDelegation(ctx, in, 0.05, ThresholdRule(nil), 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunDelegation returned %v, want context.Canceled", err)
	}
	if _, err := RunDistributedElection(ctx, in, 0.05, ThresholdRule(nil), 3, 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunDistributedElection returned %v, want context.Canceled", err)
	}

	// Cancellation must not perturb the uncancelled path: two background
	// runs at the same seed still agree.
	a, err := RunDelegation(context.Background(), in, 0.05, ThresholdRule(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDelegation(context.Background(), in, 0.05, ThresholdRule(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Weights {
		if a.Weights[v] != b.Weights[v] {
			t.Fatalf("determinism broken at node %d", v)
		}
	}
}
