// Package localsim is a synchronous message-passing simulator in the spirit
// of the LOCAL model of distributed computing, which the paper cites as the
// inspiration for its locality restriction (Section 1.2).
//
// Each voter runs as a node that only knows the pseudonymous identities of
// its neighbours and which of them it approves (the paper's information
// model: nobody knows numeric competencies). The package ships a
// distributed implementation of the threshold delegation mechanism plus a
// weight-convergecast phase; its output is verified against the centralized
// resolution in tests, demonstrating that the paper's mechanisms really are
// implementable locally.
//
// Networks can be made faulty along two axes: probabilistic link faults
// (SetLoss, SetDelay) and scheduled faults injected by a FaultInjector
// (SetFaults): crash-stop nodes, network partitions with heal rounds,
// message duplication, and delivery reordering. internal/fault provides a
// deterministic, seed-derived FaultInjector implementation.
package localsim

import (
	"context"

	"liquid/internal/rng"
	"liquid/internal/telemetry"
)

// Simulator telemetry on the telemetry.Default registry: one runs tick per
// execution plus the run's round/message/drop tallies, added when the loop
// exits so a run contributes exactly once however it ends. The per-network
// accessors (Rounds, Messages, ...) stay the source protocol checks read;
// these aggregates are write-only observability (telemflow analyzer).
var (
	cNetRuns       = telemetry.NewCounter("localsim/runs")
	cNetRounds     = telemetry.NewCounter("localsim/rounds")
	cNetMessages   = telemetry.NewCounter("localsim/messages")
	cNetDropped    = telemetry.NewCounter("localsim/messages_dropped")
	cNetDuplicated = telemetry.NewCounter("localsim/messages_duplicated")
)

// Message is a point-to-point message delivered in the round after it is
// sent. Kind, Payload, and Seq semantics belong to the protocol.
type Message struct {
	From    int
	To      int
	Kind    int
	Payload int
	Seq     int
}

// NodeContext is the read-only local view a node is given: its own id, its
// neighbour ids, its approval bits, and a private random stream. Ids are
// pseudonymous: protocols may compare and store them but learn nothing
// else.
type NodeContext struct {
	ID        int
	Neighbors []int
	// Approved[k] reports whether the node approves Neighbors[k].
	Approved []bool
	Rand     *rng.Stream
}

// ApprovedNeighbors returns the ids of approved neighbours.
func (c *NodeContext) ApprovedNeighbors() []int {
	var out []int
	for k, ok := range c.Approved {
		if ok {
			out = append(out, c.Neighbors[k])
		}
	}
	return out
}

// Node is a protocol participant. Init runs once before round 0; Round runs
// every round with the messages delivered this round and returns the
// messages to send. The simulation stops at global quiescence (no messages
// in flight and no node requesting more rounds).
type Node interface {
	Init(ctx *NodeContext) []Message
	Round(round int, inbox []Message, ctx *NodeContext) []Message
}

// Persistent is an optional Node extension for retransmission protocols on
// lossy networks: a node reporting Busy() == true keeps the simulation
// running even in rounds where every in-flight message was dropped.
//
// Busy extends Run only. RunRounds executes a fixed schedule by contract
// and deliberately ignores it (see RunRounds).
type Persistent interface {
	Busy() bool
}

// FaultInjector is the hook through which a fault plan perturbs a network.
// Implementations must be deterministic functions of their own state (plans
// carry their own derived random streams), so a seeded run is reproducible.
// internal/fault provides the canonical implementation.
type FaultInjector interface {
	// Crashed reports whether node is crash-stopped at round (crash-stop is
	// monotone: once true for some round it stays true for all later
	// rounds). A crashed node neither executes rounds, nor sends, nor
	// receives.
	Crashed(node, round int) bool
	// Cut reports whether the link from -> to is severed (partitioned) for
	// messages sent during round. Cut messages are dropped at send time.
	Cut(from, to, round int) bool
	// Duplicates returns how many extra copies of a message sent
	// from -> to during round to deliver (0 for none). Each copy draws its
	// own delivery delay.
	Duplicates(from, to, round int) int
	// Reorder may permute the batch of messages due for delivery this
	// round in place, modelling delivery-order nondeterminism.
	Reorder(round int, batch []Message)
}

// Network simulates a synchronous network of nodes, optionally with lossy
// links and injected faults.
type Network struct {
	contexts []*NodeContext
	nodes    []Node

	lossRate   float64
	lossStream *rng.Stream

	maxDelay    int
	delayStream *rng.Stream

	faults FaultInjector

	started       bool
	ranQuiescence bool

	rounds     int
	messages   int
	dropped    int
	cutDrops   int
	crashDrops int
	duplicated int
}

// SetLoss makes every message independently dropped with probability rate,
// drawn from s. Rate outside [0, 1) is rejected. Calling after Run or
// RunRounds has started is a protocol violation (ErrProtocol).
func (nw *Network) SetLoss(rate float64, s *rng.Stream) error {
	if nw.started {
		return violationf(ViolationConfigAfterStart, "SetLoss after the simulation started")
	}
	if rate < 0 || rate >= 1 {
		return violationf(ViolationBadParameter, "loss rate %v not in [0, 1)", rate)
	}
	if rate > 0 && s == nil {
		return violationf(ViolationBadParameter, "loss rate needs a random stream")
	}
	nw.lossRate = rate
	nw.lossStream = s
	return nil
}

// SetDelay makes message delivery asynchronous: each message is delivered
// after 1 + IntN(maxDelay) rounds instead of exactly one. maxDelay < 1
// disables extra delay. Calling after Run or RunRounds has started is a
// protocol violation (ErrProtocol).
func (nw *Network) SetDelay(maxDelay int, s *rng.Stream) error {
	if nw.started {
		return violationf(ViolationConfigAfterStart, "SetDelay after the simulation started")
	}
	if maxDelay > 0 && s == nil {
		return violationf(ViolationBadParameter, "delay needs a random stream")
	}
	nw.maxDelay = maxDelay
	nw.delayStream = s
	return nil
}

// SetFaults installs a fault injector (nil removes it). Calling after Run
// or RunRounds has started is a protocol violation (ErrProtocol).
func (nw *Network) SetFaults(fi FaultInjector) error {
	if nw.started {
		return violationf(ViolationConfigAfterStart, "SetFaults after the simulation started")
	}
	nw.faults = fi
	return nil
}

// NewNetwork builds a network over the given contexts and nodes (parallel
// slices).
func NewNetwork(contexts []*NodeContext, nodes []Node) (*Network, error) {
	if len(contexts) != len(nodes) {
		return nil, violationf(ViolationBadParameter, "%d contexts for %d nodes", len(contexts), len(nodes))
	}
	return &Network{contexts: contexts, nodes: nodes}, nil
}

// Run executes the protocol until quiescence or maxRounds, whichever comes
// first. It returns an error if maxRounds is exhausted with messages still
// in flight, or if any node addresses a message to a non-neighbour.
// Cancelling ctx stops the simulation between rounds with ctx's error.
// Crashed nodes do not count towards quiescence. Run may only be invoked
// once per Network (ErrProtocol otherwise).
func (nw *Network) Run(ctx context.Context, maxRounds int) error {
	if nw.ranQuiescence {
		return violationf(ViolationAlreadyStarted, "Run can only be invoked once per network")
	}
	nw.ranQuiescence = true
	return nw.run(ctx, maxRounds, false)
}

// RunRounds executes exactly `rounds` synchronous rounds regardless of
// message backlog — for protocols (like gossip) that send every round and
// never reach quiescence. Cancelling ctx stops the simulation between
// rounds with ctx's error.
//
// RunRounds shares Run's delivery machinery (loss, delay, and injected
// faults all apply), with two documented divergences inherent to a fixed
// schedule: messages still in flight when the budget ends are discarded,
// and Persistent.Busy is ignored — a node reporting Busy neither extends
// nor shortens the schedule (tested in TestRunRoundsIgnoresBusy).
//
// Unlike Run, RunRounds may be called repeatedly to resume the schedule
// (convergence checks between segments); each call re-runs Init and numbers
// its rounds from 0, so nodes whose Init emits messages should be driven in
// a single call.
func (nw *Network) RunRounds(ctx context.Context, rounds int) error {
	return nw.run(ctx, rounds, true)
}

// crashed reports whether the injector (if any) declares node down at
// round.
func (nw *Network) crashed(node, round int) bool {
	return nw.faults != nil && nw.faults.Crashed(node, round)
}

// deliver validates and enqueues the messages sender emitted during
// sendRound onto the delivery wheel, applying injected faults and link
// faults in order: crash (sender down), cut (partition), loss, then
// duplication and delay.
func (nw *Network) deliver(wheel [][]Message, pending *int, msgs []Message, sender, sendRound int) error {
	n := len(nw.nodes)
	for _, m := range msgs {
		if m.From != sender {
			return &ProtocolError{Violation: ViolationForgedSender, Node: sender, Target: m.From, Round: sendRound,
				Detail: "message claims a different sender"}
		}
		if m.To < 0 || m.To >= n {
			return &ProtocolError{Violation: ViolationUnknownRecipient, Node: sender, Target: m.To, Round: sendRound,
				Detail: "recipient outside the network"}
		}
		if !nw.isNeighbor(sender, m.To) {
			return &ProtocolError{Violation: ViolationNonNeighbor, Node: sender, Target: m.To, Round: sendRound,
				Detail: "recipient is not a neighbour"}
		}
		if nw.crashed(sender, sendRound) {
			// Only reachable for Init output of nodes crashed at round 0:
			// the round loop never runs crashed nodes.
			nw.crashDrops++
			continue
		}
		if nw.faults != nil && nw.faults.Cut(m.From, m.To, sendRound) {
			nw.messages++
			nw.cutDrops++
			continue
		}
		nw.messages++
		if nw.lossRate > 0 && nw.lossStream.Bernoulli(nw.lossRate) {
			nw.dropped++
			continue
		}
		copies := 1
		if nw.faults != nil {
			if extra := nw.faults.Duplicates(m.From, m.To, sendRound); extra > 0 {
				copies += extra
				nw.duplicated += extra
			}
		}
		for c := 0; c < copies; c++ {
			slot := 0
			if nw.maxDelay > 0 {
				slot = nw.delayStream.IntN(nw.maxDelay + 1)
			}
			wheel[slot] = append(wheel[slot], m)
			*pending++
		}
	}
	return nil
}

// anyBusy reports whether any live node requests more rounds.
func (nw *Network) anyBusy(round int) bool {
	for i, node := range nw.nodes {
		if nw.crashed(i, round) {
			continue
		}
		if p, ok := node.(Persistent); ok && p.Busy() {
			return true
		}
	}
	return false
}

// run is the shared execution loop behind Run (fixed == false: stop at
// quiescence, error past maxRounds) and RunRounds (fixed == true: execute
// exactly maxRounds rounds).
func (nw *Network) run(ctx context.Context, maxRounds int, fixed bool) error {
	nw.started = true
	// Snapshot the cumulative tallies so a network executed twice (Run then
	// RunRounds on a fresh network is the normal shape, but nothing forbids
	// reuse) contributes each round and message to the aggregates once.
	r0, m0 := nw.rounds, nw.messages
	d0 := nw.dropped + nw.cutDrops + nw.crashDrops
	du0 := nw.duplicated
	defer func() {
		cNetRuns.Inc()
		cNetRounds.Add(uint64(nw.rounds - r0))
		cNetMessages.Add(uint64(nw.messages - m0))
		cNetDropped.Add(uint64(nw.dropped + nw.cutDrops + nw.crashDrops - d0))
		cNetDuplicated.Add(uint64(nw.duplicated - du0))
	}()

	n := len(nw.nodes)
	// wheel[k] holds messages due k rounds from now; wheel[0] is the next
	// round's inbox batch.
	wheelSize := nw.maxDelay + 1
	if wheelSize < 1 {
		wheelSize = 1
	}
	wheel := make([][]Message, wheelSize)
	pending := 0

	for i, node := range nw.nodes {
		if err := nw.deliver(wheel, &pending, node.Init(nw.contexts[i]), i, 0); err != nil {
			return err
		}
	}

	inbox := make([][]Message, n)
	for round := 0; ; round++ {
		if fixed {
			if round >= maxRounds {
				return nil // in-flight messages past the schedule are discarded
			}
		} else if pending == 0 && !nw.anyBusy(round) {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !fixed && round >= maxRounds {
			return &ProtocolError{Violation: ViolationNoQuiescence, Node: -1, Target: -1, Round: maxRounds,
				Detail: "round budget exhausted with messages in flight"}
		}
		nw.rounds++
		// Pop the due slot and rotate the wheel.
		due := wheel[0]
		copy(wheel, wheel[1:])
		wheel[len(wheel)-1] = nil
		pending -= len(due)
		if nw.faults != nil {
			nw.faults.Reorder(round, due)
		}
		for i := range inbox {
			inbox[i] = inbox[i][:0]
		}
		for _, m := range due {
			if nw.crashed(m.To, round) {
				nw.crashDrops++
				continue
			}
			inbox[m.To] = append(inbox[m.To], m)
		}
		for i, node := range nw.nodes {
			if nw.crashed(i, round) {
				continue
			}
			if err := nw.deliver(wheel, &pending, node.Round(round, inbox[i], nw.contexts[i]), i, round); err != nil {
				return err
			}
		}
	}
}

func (nw *Network) isNeighbor(u, v int) bool {
	for _, w := range nw.contexts[u].Neighbors {
		if w == v {
			return true
		}
	}
	return false
}

// Rounds returns the number of executed rounds.
func (nw *Network) Rounds() int { return nw.rounds }

// Messages returns the total number of sent messages (including dropped
// and partitioned, excluding sends suppressed by sender crashes).
func (nw *Network) Messages() int { return nw.messages }

// Dropped returns the number of messages lost to probabilistic link
// faults.
func (nw *Network) Dropped() int { return nw.dropped }

// CutDrops returns the number of messages lost to partitions.
func (nw *Network) CutDrops() int { return nw.cutDrops }

// CrashDrops returns the number of messages suppressed by crashed senders
// or discarded at crashed recipients.
func (nw *Network) CrashDrops() int { return nw.crashDrops }

// Duplicated returns the number of extra message copies injected.
func (nw *Network) Duplicated() int { return nw.duplicated }
