// Package localsim is a synchronous message-passing simulator in the spirit
// of the LOCAL model of distributed computing, which the paper cites as the
// inspiration for its locality restriction (Section 1.2).
//
// Each voter runs as a node that only knows the pseudonymous identities of
// its neighbours and which of them it approves (the paper's information
// model: nobody knows numeric competencies). The package ships a
// distributed implementation of the threshold delegation mechanism plus a
// weight-convergecast phase; its output is verified against the centralized
// resolution in tests, demonstrating that the paper's mechanisms really are
// implementable locally.
package localsim

import (
	"context"
	"errors"
	"fmt"

	"liquid/internal/rng"
)

// ErrProtocol reports a protocol violation detected by the simulator.
var ErrProtocol = errors.New("localsim: protocol violation")

// Message is a point-to-point message delivered in the round after it is
// sent. Kind, Payload, and Seq semantics belong to the protocol.
type Message struct {
	From    int
	To      int
	Kind    int
	Payload int
	Seq     int
}

// NodeContext is the read-only local view a node is given: its own id, its
// neighbour ids, its approval bits, and a private random stream. Ids are
// pseudonymous: protocols may compare and store them but learn nothing
// else.
type NodeContext struct {
	ID        int
	Neighbors []int
	// Approved[k] reports whether the node approves Neighbors[k].
	Approved []bool
	Rand     *rng.Stream
}

// ApprovedNeighbors returns the ids of approved neighbours.
func (c *NodeContext) ApprovedNeighbors() []int {
	var out []int
	for k, ok := range c.Approved {
		if ok {
			out = append(out, c.Neighbors[k])
		}
	}
	return out
}

// Node is a protocol participant. Init runs once before round 0; Round runs
// every round with the messages delivered this round and returns the
// messages to send. The simulation stops at global quiescence (no messages
// in flight and no node requesting more rounds).
type Node interface {
	Init(ctx *NodeContext) []Message
	Round(round int, inbox []Message, ctx *NodeContext) []Message
}

// Persistent is an optional Node extension for retransmission protocols on
// lossy networks: a node reporting Busy() == true keeps the simulation
// running even in rounds where every in-flight message was dropped.
type Persistent interface {
	Busy() bool
}

// Network simulates a synchronous network of nodes, optionally with lossy
// links.
type Network struct {
	contexts []*NodeContext
	nodes    []Node

	lossRate   float64
	lossStream *rng.Stream

	maxDelay    int
	delayStream *rng.Stream

	rounds   int
	messages int
	dropped  int
}

// SetLoss makes every message independently dropped with probability rate,
// drawn from s. Call before Run. Rate outside [0, 1) is rejected.
func (nw *Network) SetLoss(rate float64, s *rng.Stream) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("%w: loss rate %v not in [0, 1)", ErrProtocol, rate)
	}
	if rate > 0 && s == nil {
		return fmt.Errorf("%w: loss rate needs a random stream", ErrProtocol)
	}
	nw.lossRate = rate
	nw.lossStream = s
	return nil
}

// SetDelay makes message delivery asynchronous: each message is delivered
// after 1 + IntN(maxDelay) rounds instead of exactly one. Call before Run.
// maxDelay < 1 disables extra delay.
func (nw *Network) SetDelay(maxDelay int, s *rng.Stream) error {
	if maxDelay > 0 && s == nil {
		return fmt.Errorf("%w: delay needs a random stream", ErrProtocol)
	}
	nw.maxDelay = maxDelay
	nw.delayStream = s
	return nil
}

// NewNetwork builds a network over the given contexts and nodes (parallel
// slices).
func NewNetwork(contexts []*NodeContext, nodes []Node) (*Network, error) {
	if len(contexts) != len(nodes) {
		return nil, fmt.Errorf("%w: %d contexts for %d nodes", ErrProtocol, len(contexts), len(nodes))
	}
	return &Network{contexts: contexts, nodes: nodes}, nil
}

// Run executes the protocol until quiescence or maxRounds, whichever comes
// first. It returns an error if maxRounds is exhausted with messages still
// in flight, or if any node addresses a message to a non-neighbour.
// Cancelling ctx stops the simulation between rounds with ctx's error.
func (nw *Network) Run(ctx context.Context, maxRounds int) error {
	n := len(nw.nodes)
	// wheel[k] holds messages due k rounds from now; wheel[0] is the next
	// round's inbox batch.
	wheelSize := nw.maxDelay + 1
	if wheelSize < 1 {
		wheelSize = 1
	}
	wheel := make([][]Message, wheelSize)
	pending := 0

	deliver := func(msgs []Message, sender int) error {
		for _, m := range msgs {
			if m.From != sender {
				return fmt.Errorf("%w: node %d forged sender %d", ErrProtocol, sender, m.From)
			}
			if m.To < 0 || m.To >= n {
				return fmt.Errorf("%w: node %d sent to unknown node %d", ErrProtocol, sender, m.To)
			}
			if !nw.isNeighbor(sender, m.To) {
				return fmt.Errorf("%w: node %d sent to non-neighbour %d", ErrProtocol, sender, m.To)
			}
			nw.messages++
			if nw.lossRate > 0 && nw.lossStream.Bernoulli(nw.lossRate) {
				nw.dropped++
				continue
			}
			slot := 0
			if nw.maxDelay > 0 {
				slot = nw.delayStream.IntN(nw.maxDelay + 1)
			}
			wheel[slot] = append(wheel[slot], m)
			pending++
		}
		return nil
	}

	for i, node := range nw.nodes {
		if err := deliver(node.Init(nw.contexts[i]), i); err != nil {
			return err
		}
	}

	anyBusy := func() bool {
		for _, node := range nw.nodes {
			if p, ok := node.(Persistent); ok && p.Busy() {
				return true
			}
		}
		return false
	}

	inbox := make([][]Message, n)
	for round := 0; pending > 0 || anyBusy(); round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if round >= maxRounds {
			return fmt.Errorf("%w: no quiescence after %d rounds", ErrProtocol, maxRounds)
		}
		nw.rounds++
		// Pop the due slot and rotate the wheel.
		due := wheel[0]
		copy(wheel, wheel[1:])
		wheel[len(wheel)-1] = nil
		pending -= len(due)
		for i := range inbox {
			inbox[i] = inbox[i][:0]
		}
		for _, m := range due {
			inbox[m.To] = append(inbox[m.To], m)
		}
		for i, node := range nw.nodes {
			if err := deliver(node.Round(round, inbox[i], nw.contexts[i]), i); err != nil {
				return err
			}
		}
	}
	return nil
}

func (nw *Network) isNeighbor(u, v int) bool {
	for _, w := range nw.contexts[u].Neighbors {
		if w == v {
			return true
		}
	}
	return false
}

// RunRounds executes exactly `rounds` synchronous rounds regardless of
// message backlog — for protocols (like gossip) that send every round and
// never reach quiescence. Cancelling ctx stops the simulation between
// rounds with ctx's error.
func (nw *Network) RunRounds(ctx context.Context, rounds int) error {
	n := len(nw.nodes)
	inboxes := make([][]Message, n)
	deliver := func(msgs []Message, sender int) error {
		for _, m := range msgs {
			if m.From != sender {
				return fmt.Errorf("%w: node %d forged sender %d", ErrProtocol, sender, m.From)
			}
			if m.To < 0 || m.To >= n {
				return fmt.Errorf("%w: node %d sent to unknown node %d", ErrProtocol, sender, m.To)
			}
			if !nw.isNeighbor(sender, m.To) {
				return fmt.Errorf("%w: node %d sent to non-neighbour %d", ErrProtocol, sender, m.To)
			}
			nw.messages++
			if nw.lossRate > 0 && nw.lossStream.Bernoulli(nw.lossRate) {
				nw.dropped++
				continue
			}
			inboxes[m.To] = append(inboxes[m.To], m)
		}
		return nil
	}
	for i, node := range nw.nodes {
		if err := deliver(node.Init(nw.contexts[i]), i); err != nil {
			return err
		}
	}
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		nw.rounds++
		current := inboxes
		inboxes = make([][]Message, n)
		for i, node := range nw.nodes {
			if err := deliver(node.Round(round, current[i], nw.contexts[i]), i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rounds returns the number of executed rounds.
func (nw *Network) Rounds() int { return nw.rounds }

// Messages returns the total number of sent messages (including dropped).
func (nw *Network) Messages() int { return nw.messages }

// Dropped returns the number of messages lost to link faults.
func (nw *Network) Dropped() int { return nw.dropped }
