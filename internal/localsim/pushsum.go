package localsim

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

// KindPushSum carries one push-sum share; Payload and Seq hold the fixed-
// point encoded (s, w) pair.
const KindPushSum = 100

// pushSumScale converts float mass to the integer message fields. The
// scale bounds quantization noise: a node holding mass w sees ratio noise
// of order 1/(pushSumScale * w) per received message, so 2^40 keeps even
// deep-drought nodes (w ~ 2^-25) accurate to well under 1%. Total encoded
// mass stays far below 2^63 for any realistic electorate.
const pushSumScale = 1 << 40

// pushSumNode runs Kempe–Dobra–Gehrke push-sum gossip: every round it keeps
// half of its (s, w) mass and pushes the other half to a uniformly random
// neighbour. Mass conservation makes every node's ratio s/w converge to the
// global ratio sum(s)/sum(w) on connected graphs — here, the fraction of
// total vote weight cast for the correct option, so every node can decide
// the election locally.
type pushSumNode struct {
	s, w float64
}

var _ Node = (*pushSumNode)(nil)

// Init implements Node.
func (p *pushSumNode) Init(_ *NodeContext) []Message { return nil }

// Round implements Node.
func (p *pushSumNode) Round(_ int, inbox []Message, ctx *NodeContext) []Message {
	for _, m := range inbox {
		if m.Kind != KindPushSum {
			continue
		}
		p.s += float64(m.Payload) / pushSumScale
		p.w += float64(m.Seq) / pushSumScale
	}
	if len(ctx.Neighbors) == 0 {
		return nil
	}
	p.s /= 2
	p.w /= 2
	target := ctx.Neighbors[ctx.Rand.IntN(len(ctx.Neighbors))]
	return []Message{{
		From:    ctx.ID,
		To:      target,
		Kind:    KindPushSum,
		Payload: int(math.Round(p.s * pushSumScale)),
		Seq:     int(math.Round(p.w * pushSumScale)),
	}}
}

// Estimate returns the node's current estimate of the correct-weight
// fraction, and ok = false while the node has not yet accumulated any
// weight mass.
func (p *pushSumNode) Estimate() (float64, bool) {
	if p.w <= 1.0/pushSumScale {
		return 0, false
	}
	return p.s / p.w, true
}

// ElectionResult is the outcome of a fully distributed election: delegation
// and weight convergecast followed by push-sum gossip so that every node
// learns the result without any central tally.
type ElectionResult struct {
	// CorrectWon is the true outcome (computed from the actual votes).
	CorrectWon bool
	// Estimates[v] is node v's final estimate of the correct-weight
	// fraction.
	Estimates []float64
	// Agreeing counts nodes whose local decision matches the true outcome.
	Agreeing int
	// GossipRounds is the number of gossip rounds executed.
	GossipRounds int
}

// RunDistributedElection runs the full pipeline: (1) distributed delegation
// with the given rule, (2) weight convergecast, (3) sinks draw their votes,
// (4) push-sum gossip spreads the tally so every node can decide locally.
func RunDistributedElection(ctx context.Context, in *core.Instance, alpha float64, decide DecisionRule, seed uint64, gossipRounds int) (*ElectionResult, error) {
	if gossipRounds < 1 {
		return nil, fmt.Errorf("%w: gossip rounds %d", ErrProtocol, gossipRounds)
	}
	deleg, err := RunDelegation(ctx, in, alpha, decide, seed)
	if err != nil {
		return nil, err
	}
	res, err := deleg.Delegation.Resolve()
	if err != nil {
		return nil, err
	}

	n := in.N()
	root := rng.New(seed)
	votes := root.DeriveString("votes")
	correctWeight := 0
	voteOf := make([]bool, n)
	for _, sk := range res.Sinks {
		voteOf[sk] = votes.Bernoulli(in.Competency(sk))
		if voteOf[sk] {
			correctWeight += res.Weight[sk]
		}
	}

	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	psNodes := make([]*pushSumNode, n)
	for v := 0; v < n; v++ {
		contexts[v] = &NodeContext{
			ID:        v,
			Neighbors: in.Topology().Neighbors(v),
			Rand:      root.Derive(uint64(v) + 7_000_000),
		}
		node := &pushSumNode{}
		if res.SinkOf[v] == v {
			node.w = float64(res.Weight[v])
			if voteOf[v] {
				node.s = float64(res.Weight[v])
			}
		}
		psNodes[v] = node
		nodes[v] = node
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		return nil, err
	}
	if err := nw.RunRounds(ctx, gossipRounds); err != nil {
		return nil, err
	}

	out := &ElectionResult{
		CorrectWon:   2*correctWeight > res.TotalWeight,
		Estimates:    make([]float64, n),
		GossipRounds: gossipRounds,
	}
	for v, node := range psNodes {
		est, ok := node.Estimate()
		if ok {
			out.Estimates[v] = est
			if (est > 0.5) == out.CorrectWon {
				out.Agreeing++
			}
		}
	}
	return out, nil
}

// PushSumConvergenceRounds runs push-sum gossip over the topology with the
// given initial (value, weight) pairs and returns the number of rounds
// until every node's estimate is within eps of the true ratio
// sum(values)/sum(weights). It returns an error if maxRounds is exhausted
// first. Convergence is checked every checkEvery rounds (10).
func PushSumConvergenceRounds(ctx context.Context, top graph.Topology, values, weights []float64, eps float64, maxRounds int, seed uint64) (int, error) {
	n := top.N()
	if len(values) != n || len(weights) != n {
		return 0, fmt.Errorf("%w: %d values / %d weights for %d nodes", ErrProtocol, len(values), len(weights), n)
	}
	if eps <= 0 || maxRounds < 1 {
		return 0, fmt.Errorf("%w: eps %v, maxRounds %d", ErrProtocol, eps, maxRounds)
	}
	var sumS, sumW float64
	for i := range values {
		sumS += values[i]
		sumW += weights[i]
	}
	if sumW <= 0 {
		return 0, fmt.Errorf("%w: total weight %v", ErrProtocol, sumW)
	}
	truth := sumS / sumW

	root := rng.New(seed)
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	ps := make([]*pushSumNode, n)
	for v := 0; v < n; v++ {
		contexts[v] = &NodeContext{ID: v, Neighbors: top.Neighbors(v), Rand: root.Derive(uint64(v))}
		node := &pushSumNode{s: values[v], w: weights[v]}
		ps[v] = node
		nodes[v] = node
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		return 0, err
	}

	const checkEvery = 10
	done := 0
	for done < maxRounds {
		step := checkEvery
		if done+step > maxRounds {
			step = maxRounds - done
		}
		if err := nw.RunRounds(ctx, step); err != nil {
			return 0, err
		}
		done += step
		converged := true
		for _, node := range ps {
			est, ok := node.Estimate()
			if !ok || math.Abs(est-truth) > eps {
				converged = false
				break
			}
		}
		if converged {
			return done, nil
		}
	}
	return 0, fmt.Errorf("%w: push-sum not within %v after %d rounds", ErrProtocol, eps, maxRounds)
}
