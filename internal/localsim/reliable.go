package localsim

import (
	"context"
	"fmt"
	"slices"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// Message kinds for the reliable convergecast protocol.
const (
	// KindData carries a weight contribution; must be acknowledged.
	KindData = iota + 1
	// KindAck acknowledges a KindData message by sequence number.
	KindAck
)

// reliableNode runs the delegation weight convergecast over lossy links
// using per-message acknowledgements: every data message carries a
// (sender-local) sequence number and is retransmitted each round until the
// matching ack arrives; receivers deduplicate by (sender, seq) and always
// re-ack, so lost acks are also tolerated. With loss rate q < 1 the
// protocol terminates with the exact lossless weights.
type reliableNode struct {
	decide DecisionRule

	delegate int
	weight   int

	nextSeq int
	outbox  map[int]Message     // unacked data messages by seq
	seen    map[[2]int]struct{} // (sender, seq) pairs already absorbed
}

var _ Node = (*reliableNode)(nil)
var _ Persistent = (*reliableNode)(nil)

// Init implements Node.
func (r *reliableNode) Init(ctx *NodeContext) []Message {
	r.weight = 1
	r.outbox = make(map[int]Message)
	r.seen = make(map[[2]int]struct{})
	r.delegate = r.decide(ctx)
	if r.delegate == core.NoDelegate {
		return nil
	}
	r.weight = 0
	return []Message{r.enqueue(ctx.ID, 1)}
}

// enqueue registers a new data message in the outbox and returns it.
func (r *reliableNode) enqueue(from, amount int) Message {
	r.nextSeq++
	m := Message{From: from, To: r.delegate, Kind: KindData, Payload: amount, Seq: r.nextSeq}
	r.outbox[m.Seq] = m
	return m
}

// Round implements Node.
func (r *reliableNode) Round(_ int, inbox []Message, ctx *NodeContext) []Message {
	var out []Message
	received := 0
	for _, m := range inbox {
		switch m.Kind {
		case KindAck:
			delete(r.outbox, m.Seq)
		case KindData:
			// Always ack, even duplicates (the previous ack may have been
			// lost).
			out = append(out, Message{From: ctx.ID, To: m.From, Kind: KindAck, Seq: m.Seq})
			key := [2]int{m.From, m.Seq}
			if _, dup := r.seen[key]; dup {
				continue
			}
			r.seen[key] = struct{}{}
			received += m.Payload
		}
	}
	if received > 0 {
		if r.delegate == core.NoDelegate {
			r.weight += received
		} else {
			r.enqueue(ctx.ID, received) // forwarded below with the resends
		}
	}
	// Retransmit everything unacked (including any newly enqueued data), in
	// seq order: emission order decides which loss-stream draw hits which
	// message, so ranging the map directly would make drop patterns (and
	// convergence round counts) vary run to run.
	seqs := make([]int, 0, len(r.outbox))
	for seq := range r.outbox {
		seqs = append(seqs, seq)
	}
	slices.Sort(seqs)
	for _, seq := range seqs {
		out = append(out, r.outbox[seq])
	}
	return out
}

// Busy implements Persistent.
func (r *reliableNode) Busy() bool { return len(r.outbox) > 0 }

// RunReliableDelegation executes the delegation protocol over a network
// that drops each message independently with probability lossRate, using
// ack-based retransmission. The result matches the lossless protocol
// exactly (same per-node decision streams), demonstrating fault tolerance
// of the convergecast.
func RunReliableDelegation(ctx context.Context, in *core.Instance, alpha float64, decide DecisionRule, seed uint64, lossRate float64) (*Result, error) {
	return RunReliableDelegationAsync(ctx, in, alpha, decide, seed, lossRate, 0)
}

// RunReliableDelegationAsync additionally makes delivery asynchronous:
// every message takes between 1 and 1+maxDelay rounds. Retransmission
// absorbs both loss and reordering, so the result still matches the
// synchronous lossless run.
func RunReliableDelegationAsync(ctx context.Context, in *core.Instance, alpha float64, decide DecisionRule, seed uint64, lossRate float64, maxDelay int) (*Result, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrProtocol, alpha)
	}
	if decide == nil {
		return nil, fmt.Errorf("%w: nil decision rule", ErrProtocol)
	}
	n := in.N()
	root := rng.New(seed)
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nbrs := in.Topology().Neighbors(v)
		approved := make([]bool, len(nbrs))
		for k, u := range nbrs {
			approved[k] = in.Approves(v, u, alpha)
		}
		contexts[v] = &NodeContext{
			ID:        v,
			Neighbors: nbrs,
			Approved:  approved,
			Rand:      root.Derive(uint64(v)),
		}
		nodes[v] = &reliableNode{decide: decide}
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		return nil, err
	}
	if err := nw.SetLoss(lossRate, root.DeriveString("loss")); err != nil {
		return nil, err
	}
	if err := nw.SetDelay(maxDelay, root.DeriveString("delay")); err != nil {
		return nil, err
	}
	// Budget: each hop needs ~(1+maxDelay)/(1-q)^2 expected rounds for
	// data+ack; give generous headroom over the worst chain length.
	budget := (200 + 40*n) * (maxDelay + 1)
	if err := nw.Run(ctx, budget); err != nil {
		return nil, err
	}

	res := &Result{
		Delegation: core.NewDelegationGraph(n),
		Weights:    make([]int, n),
		Rounds:     nw.Rounds(),
		Messages:   nw.Messages(),
	}
	for v, node := range nodes {
		rn, ok := node.(*reliableNode)
		if !ok {
			return nil, fmt.Errorf("%w: unexpected node type", ErrProtocol)
		}
		res.Weights[v] = rn.weight
		if rn.delegate != core.NoDelegate {
			if err := res.Delegation.SetDelegate(v, rn.delegate); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
