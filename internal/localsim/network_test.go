package localsim

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/rng"
)

// quietNode sends nothing and finishes immediately.
type quietNode struct{}

func (quietNode) Init(*NodeContext) []Message                  { return nil }
func (quietNode) Round(int, []Message, *NodeContext) []Message { return nil }

// busyNode claims to be Busy forever but never sends; under Run it would
// spin until the budget errors, under RunRounds it must be ignored.
type busyNode struct{ rounds int }

func (b *busyNode) Init(*NodeContext) []Message { return nil }
func (b *busyNode) Round(int, []Message, *NodeContext) []Message {
	b.rounds++
	return nil
}
func (b *busyNode) Busy() bool { return true }

func pairNetwork(t *testing.T, a, b Node) *Network {
	t.Helper()
	contexts := []*NodeContext{
		{ID: 0, Neighbors: []int{1}},
		{ID: 1, Neighbors: []int{0}},
	}
	nw, err := NewNetwork(contexts, []Node{a, b})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return nw
}

func TestConfigAfterStartRejected(t *testing.T) {
	nw := pairNetwork(t, quietNode{}, quietNode{})
	if err := nw.Run(context.Background(), 10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := rng.New(1)
	for name, err := range map[string]error{
		"SetLoss":   nw.SetLoss(0.1, s),
		"SetDelay":  nw.SetDelay(2, s),
		"SetFaults": nw.SetFaults(nil),
	} {
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("%s after start: got %v, want ErrProtocol", name, err)
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) || pe.Violation != ViolationConfigAfterStart {
			t.Errorf("%s after start: got %v, want ViolationConfigAfterStart", name, err)
		}
	}
}

func TestRunTwiceRejected(t *testing.T) {
	nw := pairNetwork(t, quietNode{}, quietNode{})
	if err := nw.Run(context.Background(), 10); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	err := nw.Run(context.Background(), 10)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Violation != ViolationAlreadyStarted {
		t.Fatalf("second Run: got %v, want ViolationAlreadyStarted", err)
	}
}

// TestRunRoundsIgnoresBusy pins the documented divergence from Run: a node
// reporting Busy neither extends nor shortens a fixed schedule.
func TestRunRoundsIgnoresBusy(t *testing.T) {
	b := &busyNode{}
	nw := pairNetwork(t, b, quietNode{})
	if err := nw.RunRounds(context.Background(), 7); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if b.rounds != 7 {
		t.Fatalf("busy node ran %d rounds, want exactly 7", b.rounds)
	}
	// The same node under Run spins to the budget and errors, because Busy
	// keeps the simulation alive with no messages in flight.
	b2 := &busyNode{}
	nw2 := pairNetwork(t, b2, quietNode{})
	err := nw2.Run(context.Background(), 5)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Violation != ViolationNoQuiescence {
		t.Fatalf("Run with eternally busy node: got %v, want ViolationNoQuiescence", err)
	}
}

// TestRunRoundsResumes pins the resume contract push-sum relies on: repeated
// RunRounds calls accumulate the round counter.
func TestRunRoundsResumes(t *testing.T) {
	b := &busyNode{}
	nw := pairNetwork(t, b, quietNode{})
	for i := 0; i < 3; i++ {
		if err := nw.RunRounds(context.Background(), 4); err != nil {
			t.Fatalf("RunRounds segment %d: %v", i, err)
		}
	}
	if b.rounds != 12 {
		t.Fatalf("node ran %d rounds across segments, want 12", b.rounds)
	}
	if nw.Rounds() != 12 {
		t.Fatalf("network counted %d rounds, want 12", nw.Rounds())
	}
}

func TestBadParameterRejected(t *testing.T) {
	nw := pairNetwork(t, quietNode{}, quietNode{})
	for _, err := range []error{
		nw.SetLoss(-0.1, rng.New(1)),
		nw.SetLoss(1.0, rng.New(1)),
		nw.SetLoss(0.5, nil),
		nw.SetDelay(3, nil),
	} {
		var pe *ProtocolError
		if !errors.As(err, &pe) || pe.Violation != ViolationBadParameter {
			t.Errorf("got %v, want ViolationBadParameter", err)
		}
	}
}
