package localsim

import (
	"context"
	"errors"
	"testing"
)

// fuzzEmitter sends one arbitrary, possibly malformed message from Init
// and then stays quiet.
type fuzzEmitter struct {
	msg Message
}

func (e *fuzzEmitter) Init(*NodeContext) []Message                  { return []Message{e.msg} }
func (e *fuzzEmitter) Round(int, []Message, *NodeContext) []Message { return nil }

// FuzzMessageValidation throws adversarial messages at the network's
// validation layer on a path topology: the simulator must reject forged
// senders, out-of-range recipients, and non-neighbour sends with exactly
// the right typed violation, accept everything well-formed, and never
// panic regardless of input.
func FuzzMessageValidation(f *testing.F) {
	f.Add(5, 1, 1, 2, 0, 0, 0)
	f.Add(5, 1, 0, 2, 1, -3, 9) // forged sender
	f.Add(5, 1, 1, 99, 0, 0, 0) // unknown recipient
	f.Add(5, 1, 1, -1, 0, 0, 0) // negative recipient
	f.Add(6, 0, 0, 4, 2, 7, 1)  // non-neighbour send
	f.Add(3, 2, 2, 2, 0, 0, 0)  // self-send (not a neighbour)
	f.Fuzz(func(t *testing.T, nRaw, emitterRaw, from, to, kind, payload, seq int) {
		n := 3 + int(uint(nRaw)%6) // path of 3..8 nodes
		emitter := int(uint(emitterRaw) % uint(n))

		contexts := make([]*NodeContext, n)
		nodes := make([]Node, n)
		for v := 0; v < n; v++ {
			var nbrs []int
			if v > 0 {
				nbrs = append(nbrs, v-1)
			}
			if v < n-1 {
				nbrs = append(nbrs, v+1)
			}
			contexts[v] = &NodeContext{ID: v, Neighbors: nbrs, Approved: make([]bool, len(nbrs))}
			if v == emitter {
				nodes[v] = &fuzzEmitter{msg: Message{From: from, To: to, Kind: kind, Payload: payload, Seq: seq}}
			} else {
				nodes[v] = &fuzzEmitter{msg: Message{From: v, To: contexts[v].Neighbors[0]}}
			}
		}
		nw, err := NewNetwork(contexts, nodes)
		if err != nil {
			t.Fatal(err)
		}
		err = nw.Run(context.Background(), 16)

		var want Violation
		wellFormed := false
		switch {
		case from != emitter:
			want = ViolationForgedSender
		case to < 0 || to >= n:
			want = ViolationUnknownRecipient
		case to != emitter-1 && to != emitter+1:
			want = ViolationNonNeighbor
		default:
			wellFormed = true
		}

		if wellFormed {
			if err != nil {
				t.Fatalf("well-formed message from %d to %d rejected: %v", emitter, to, err)
			}
			return
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("malformed message (from=%d claimed=%d to=%d, n=%d) accepted: err=%v", emitter, from, to, n, err)
		}
		if pe.Violation != want {
			t.Fatalf("violation = %v, want %v (from=%d claimed=%d to=%d, n=%d)", pe.Violation, want, emitter, from, to, n)
		}
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("ProtocolError does not unwrap to ErrProtocol: %v", err)
		}
		if pe.Node != emitter {
			t.Fatalf("violation attributed to node %d, want %d", pe.Node, emitter)
		}
	})
}
