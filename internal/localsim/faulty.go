package localsim

import (
	"context"
	"slices"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// DefaultSuspectAfter is the default liveness timeout (in rounds, scaled by
// maxDelay+1 at the runner): a node whose oldest unacknowledged data
// message is this old suspects its delegate has crashed or is partitioned
// away, reclaims all unacknowledged weight, and falls back to voting
// directly. Under pure loss q the probability of a false suspicion per
// message is (1-(1-q)^2)^DefaultSuspectAfter — about 2e-4 even at q = 0.5 —
// and a false fallback is safe: it only moves weight, never loses it.
const DefaultSuspectAfter = 30

// reclaimEntry remembers a payload the node reclaimed at fallback time so a
// late acknowledgement (or the post-run reconciliation sweep) can undo the
// double count if the recipient had in fact absorbed it.
type reclaimEntry struct {
	to      int
	payload int
}

// faultReliableNode is the crash-tolerant variant of reliableNode: the same
// ack-based retransmission convergecast, extended with a liveness timeout.
// Each outbox entry remembers when it was enqueued; when the oldest entry's
// age reaches suspectAfter rounds the node gives up on its delegate,
// reclaims every unacknowledged payload into its own weight, and becomes a
// sink (direct vote). Late acks for reclaimed sequence numbers subtract the
// payload again, and the runner reconciles any remaining ambiguity from the
// receivers' dedup sets after quiescence.
type faultReliableNode struct {
	decide       DecisionRule
	suspectAfter int

	delegate int
	weight   int
	fellBack bool

	nextSeq   int
	outbox    map[int]Message // unacked data messages by seq
	enqueued  map[int]int     // seq -> round the message was first enqueued
	reclaimed map[int]reclaimEntry
	seen      map[[2]int]struct{} // (sender, seq) pairs already absorbed
}

var _ Node = (*faultReliableNode)(nil)
var _ Persistent = (*faultReliableNode)(nil)

// Init implements Node.
func (r *faultReliableNode) Init(ctx *NodeContext) []Message {
	r.weight = 1
	r.outbox = make(map[int]Message)
	r.enqueued = make(map[int]int)
	r.reclaimed = make(map[int]reclaimEntry)
	r.seen = make(map[[2]int]struct{})
	r.delegate = r.decide(ctx)
	if r.delegate == core.NoDelegate {
		return nil
	}
	r.weight = 0
	return []Message{r.enqueue(ctx.ID, 1, 0)}
}

// enqueue registers a new data message in the outbox and returns it.
func (r *faultReliableNode) enqueue(from, amount, round int) Message {
	r.nextSeq++
	m := Message{From: from, To: r.delegate, Kind: KindData, Payload: amount, Seq: r.nextSeq}
	r.outbox[m.Seq] = m
	r.enqueued[m.Seq] = round
	return m
}

// sink reports whether the node currently accumulates weight instead of
// forwarding it.
func (r *faultReliableNode) sink() bool { return r.delegate == core.NoDelegate || r.fellBack }

// Round implements Node.
func (r *faultReliableNode) Round(round int, inbox []Message, ctx *NodeContext) []Message {
	var out []Message
	received := 0
	for _, m := range inbox {
		switch m.Kind {
		case KindAck:
			if _, live := r.outbox[m.Seq]; live {
				delete(r.outbox, m.Seq)
				delete(r.enqueued, m.Seq)
				continue
			}
			if rec, ok := r.reclaimed[m.Seq]; ok {
				// The delegate did absorb this payload before we gave up on
				// it: undo the reclaim so the unit is not counted twice.
				r.weight -= rec.payload
				delete(r.reclaimed, m.Seq)
			}
		case KindData:
			// Always ack, even duplicates (the previous ack may have been
			// lost).
			out = append(out, Message{From: ctx.ID, To: m.From, Kind: KindAck, Seq: m.Seq})
			key := [2]int{m.From, m.Seq}
			if _, dup := r.seen[key]; dup {
				continue
			}
			r.seen[key] = struct{}{}
			received += m.Payload
		}
	}
	if received > 0 {
		if r.sink() {
			r.weight += received
		} else {
			r.enqueue(ctx.ID, received, round) // forwarded below with the resends
		}
	}
	// Liveness timeout: if the oldest unacked message has waited
	// suspectAfter rounds, the delegate is presumed dead or unreachable.
	// Reclaim every unacked payload and vote directly from now on.
	if !r.sink() && len(r.outbox) > 0 {
		oldest := round + 1
		for _, at := range r.enqueued {
			if at < oldest {
				oldest = at
			}
		}
		if round-oldest >= r.suspectAfter {
			for seq, m := range r.outbox {
				r.weight += m.Payload
				r.reclaimed[seq] = reclaimEntry{to: m.To, payload: m.Payload}
			}
			clear(r.outbox)
			clear(r.enqueued)
			r.fellBack = true
		}
	}
	// Retransmit everything unacked (including any newly enqueued data), in
	// seq order: emission order decides which loss-stream draw hits which
	// message, so ranging the map directly would make drop patterns (and
	// convergence round counts) vary run to run.
	seqs := make([]int, 0, len(r.outbox))
	for seq := range r.outbox {
		seqs = append(seqs, seq)
	}
	slices.Sort(seqs)
	for _, seq := range seqs {
		out = append(out, r.outbox[seq])
	}
	return out
}

// Busy implements Persistent.
func (r *faultReliableNode) Busy() bool { return len(r.outbox) > 0 }

// ReliableFaultOptions configures RunReliableDelegationFaulty.
type ReliableFaultOptions struct {
	// LossRate drops each message independently with this probability.
	LossRate float64
	// MaxDelay makes delivery take between 1 and 1+MaxDelay rounds.
	MaxDelay int
	// Faults is the scheduled fault injector (crashes, partitions,
	// duplication, reordering); nil injects nothing.
	Faults FaultInjector
	// SuspectAfter overrides the liveness timeout in rounds; 0 means
	// DefaultSuspectAfter * (MaxDelay + 1).
	SuspectAfter int
	// Budget overrides the round budget; 0 derives one from n and MaxDelay.
	Budget int
}

// FaultReport is the outcome of a convergecast under injected faults, with
// exact weight accounting: every one of the n weight units is either held
// by a live node (LiveTotal) or trapped at a crashed one (TrappedTotal),
// and LiveTotal + TrappedTotal == n always.
type FaultReport struct {
	// Delegation holds the delegation decisions still in force at the end:
	// fallen-back nodes appear as direct voters.
	Delegation *core.DelegationGraph
	// Weights[v] is the weight node v holds after reconciliation (0 for
	// every non-sink and for most crashed nodes).
	Weights []int
	// Crashed[v] reports whether v was crash-stopped during the run.
	Crashed []bool
	// FellBack lists the live nodes that timed out on their delegate and
	// reverted to a direct vote, ascending.
	FellBack []int
	// LiveTotal is the weight held by live nodes; TrappedTotal is the
	// weight stranded at crashed nodes (their absorbed weight plus
	// in-custody payloads that were never absorbed downstream).
	LiveTotal    int
	TrappedTotal int
	// Reconciled counts weight units whose double count (sender reclaimed,
	// receiver absorbed) was resolved by the post-quiescence sweep rather
	// than by a late ack.
	Reconciled int

	Rounds     int
	Messages   int
	Dropped    int
	CutDrops   int
	CrashDrops int
	Duplicated int
}

// RunReliableDelegationFaulty executes the crash-tolerant delegation
// convergecast under the given fault options. It terminates for any plan
// with crash rate < 1 and loss rate < 1: nodes that cannot reach their
// delegate fall back to direct votes after a liveness timeout, so
// quiescence is always reached (within the round budget). The returned
// report satisfies LiveTotal + TrappedTotal == n exactly.
//
// With zero faults (no injector, LossRate 0, MaxDelay 0) the resulting
// delegation and weights match RunReliableDelegation bit for bit: the
// per-node decision streams are derived identically.
func RunReliableDelegationFaulty(ctx context.Context, in *core.Instance, alpha float64, decide DecisionRule, seed uint64, opts ReliableFaultOptions) (*FaultReport, error) {
	if alpha < 0 {
		return nil, violationf(ViolationBadParameter, "negative alpha %v", alpha)
	}
	if decide == nil {
		return nil, violationf(ViolationBadParameter, "nil decision rule")
	}
	suspectAfter := opts.SuspectAfter
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter * (opts.MaxDelay + 1)
	}
	n := in.N()
	root := rng.New(seed)
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	rnodes := make([]*faultReliableNode, n)
	for v := 0; v < n; v++ {
		nbrs := in.Topology().Neighbors(v)
		approved := make([]bool, len(nbrs))
		for k, u := range nbrs {
			approved[k] = in.Approves(v, u, alpha)
		}
		contexts[v] = &NodeContext{
			ID:        v,
			Neighbors: nbrs,
			Approved:  approved,
			Rand:      root.Derive(uint64(v)),
		}
		rnodes[v] = &faultReliableNode{decide: decide, suspectAfter: suspectAfter}
		nodes[v] = rnodes[v]
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		return nil, err
	}
	if err := nw.SetLoss(opts.LossRate, root.DeriveString("loss")); err != nil {
		return nil, err
	}
	if err := nw.SetDelay(opts.MaxDelay, root.DeriveString("delay")); err != nil {
		return nil, err
	}
	if err := nw.SetFaults(opts.Faults); err != nil {
		return nil, err
	}
	budget := opts.Budget
	if budget <= 0 {
		// Each hop needs ~(1+maxDelay)/(1-q)^2 expected rounds for
		// data+ack, and a fallback takes suspectAfter rounds; give
		// generous headroom over the worst chain length.
		budget = (200+40*n)*(opts.MaxDelay+1) + (n+1)*suspectAfter
	}
	if err := nw.Run(ctx, budget); err != nil {
		return nil, err
	}

	report := &FaultReport{
		Delegation: core.NewDelegationGraph(n),
		Weights:    make([]int, n),
		Crashed:    make([]bool, n),
		Rounds:     nw.Rounds(),
		Messages:   nw.Messages(),
		Dropped:    nw.Dropped(),
		CutDrops:   nw.CutDrops(),
		CrashDrops: nw.CrashDrops(),
		Duplicated: nw.Duplicated(),
	}
	// Crash-stop is monotone, so probing the quiescence instant (the same
	// round index the final quiescence check used) identifies every node
	// that was down at any point during the run — including one whose
	// crash round coincides with quiescence, which is exactly what allowed
	// the network to quiesce despite its non-empty outbox.
	lastRound := nw.Rounds()
	for v := range rnodes {
		report.Crashed[v] = nw.crashed(v, lastRound)
	}

	// Reconciliation sweep: a reclaim double-counts a unit exactly when the
	// recipient had absorbed the payload (its dedup set has the key) but
	// the ack never made it back — the classic two-generals ambiguity,
	// which no in-protocol rule can settle. The runner has the global view,
	// so it settles it here, making conservation exact.
	for v, rn := range rnodes {
		seqs := make([]int, 0, len(rn.reclaimed))
		for seq := range rn.reclaimed {
			seqs = append(seqs, seq)
		}
		slices.Sort(seqs)
		for _, seq := range seqs {
			rec := rn.reclaimed[seq]
			if _, absorbed := rnodes[rec.to].seen[[2]int{v, seq}]; absorbed {
				rn.weight -= rec.payload
				if !report.Crashed[v] {
					report.Reconciled += rec.payload
				}
				delete(rn.reclaimed, seq)
			}
		}
	}

	for v, rn := range rnodes {
		if report.Crashed[v] {
			// Trapped custody: the node's absorbed weight plus every
			// in-flight payload that no recipient ever absorbed.
			trapped := rn.weight
			for seq, m := range rn.outbox {
				if _, absorbed := rnodes[m.To].seen[[2]int{v, seq}]; !absorbed {
					trapped += m.Payload
				}
			}
			report.TrappedTotal += trapped
			continue
		}
		if len(rn.outbox) != 0 {
			return nil, violationf(ViolationNoQuiescence, "live node %d still has %d unacked messages", v, len(rn.outbox))
		}
		report.Weights[v] = rn.weight
		report.LiveTotal += rn.weight
		if rn.fellBack {
			report.FellBack = append(report.FellBack, v)
		}
		if rn.delegate != core.NoDelegate && !rn.fellBack {
			if err := report.Delegation.SetDelegate(v, rn.delegate); err != nil {
				return nil, err
			}
		}
	}
	return report, nil
}
