package localsim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

func mustInstance(t *testing.T, top graph.Topology, p []float64) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestDistributedMatchesCentralizedResolution(t *testing.T) {
	s := rng.New(5)
	g, err := graph.ErdosRenyi(40, 0.25, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 40)
	for i := range p {
		p[i] = s.Float64()
	}
	in := mustInstance(t, g, p)

	res, err := RunThresholdDelegation(context.Background(), in, 0.05, nil, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Delegation.ValidateLocal(in, 0.05); err != nil {
		t.Fatalf("protocol produced non-local delegation: %v", err)
	}
	central, err := res.Delegation.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.N(); v++ {
		wantW := 0
		if central.SinkOf[v] == v {
			wantW = central.Weight[v]
		}
		if res.Weights[v] != wantW {
			t.Fatalf("node %d reports weight %d, centralized resolution says %d", v, res.Weights[v], wantW)
		}
	}
	// Convergecast terminates in longest-chain + O(1) rounds.
	if res.Rounds > central.LongestChain+2 {
		t.Fatalf("rounds %d for chain length %d", res.Rounds, central.LongestChain)
	}
}

func TestDistributedThresholdBlocksDelegation(t *testing.T) {
	// One strong voter; threshold 2 cannot be met anywhere.
	p := []float64{0.9, 0.4, 0.4, 0.4}
	expTop, err := graph.CompleteExplicit(4)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, expTop, p)
	res, err := RunThresholdDelegation(context.Background(), in, 0.1, mechanism.ConstantThreshold(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delegation.NumDelegators() != 0 {
		t.Fatal("threshold 2 should block delegation")
	}
	for v, w := range res.Weights {
		if w != 1 {
			t.Fatalf("direct voter %d weight %d", v, w)
		}
	}
	if res.Messages != 0 {
		t.Fatalf("no delegation should mean no messages, got %d", res.Messages)
	}
}

func TestDistributedStarConcentration(t *testing.T) {
	g, err := graph.Star(9)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 9)
	p[0] = 2.0 / 3
	for i := 1; i < 9; i++ {
		p[i] = 3.0 / 5
	}
	in := mustInstance(t, g, p)
	res, err := RunThresholdDelegation(context.Background(), in, 0.01, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] != 9 {
		t.Fatalf("center weight %d, want 9", res.Weights[0])
	}
	if res.Rounds != 1 {
		t.Fatalf("star convergecast should take 1 round, took %d", res.Rounds)
	}
}

func TestDistributedNegativeAlpha(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.1, 0.5, 0.9})
	if _, err := RunThresholdDelegation(context.Background(), in, -0.1, nil, 1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkRejectsNonNeighborSend(t *testing.T) {
	contexts := []*NodeContext{
		{ID: 0, Neighbors: []int{1}, Approved: []bool{false}, Rand: rng.New(1)},
		{ID: 1, Neighbors: []int{0}, Approved: []bool{false}, Rand: rng.New(2)},
		{ID: 2, Rand: rng.New(3)},
	}
	nodes := []Node{
		&badSender{target: 2}, // 2 is not a neighbour of 0
		&silentNode{},
		&silentNode{},
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(context.Background(), 10); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkRejectsForgedSender(t *testing.T) {
	contexts := []*NodeContext{
		{ID: 0, Neighbors: []int{1}, Approved: []bool{false}, Rand: rng.New(1)},
		{ID: 1, Neighbors: []int{0}, Approved: []bool{false}, Rand: rng.New(2)},
	}
	nodes := []Node{&forgingSender{}, &silentNode{}}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(context.Background(), 10); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkRoundLimit(t *testing.T) {
	contexts := []*NodeContext{
		{ID: 0, Neighbors: []int{1}, Approved: []bool{false}, Rand: rng.New(1)},
		{ID: 1, Neighbors: []int{0}, Approved: []bool{false}, Rand: rng.New(2)},
	}
	nodes := []Node{&pingPong{peer: 1}, &pingPong{peer: 0}}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(context.Background(), 5); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkSizeMismatch(t *testing.T) {
	if _, err := NewNetwork(make([]*NodeContext, 2), make([]Node, 3)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuickDistributedWeightsMatchCentralized(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%25) + 3
		s := rng.New(seed)
		g, err := graph.ErdosRenyi(n, 0.3, s)
		if err != nil {
			return false
		}
		p := make([]float64, n)
		for i := range p {
			p[i] = s.Float64()
		}
		in, err := core.NewInstance(g, p)
		if err != nil {
			return false
		}
		res, err := RunThresholdDelegation(context.Background(), in, 0.03, nil, seed^0xBEEF)
		if err != nil {
			return false
		}
		central, err := res.Delegation.Resolve()
		if err != nil {
			return false
		}
		total := 0
		for v, w := range res.Weights {
			total += w
			want := 0
			if central.SinkOf[v] == v {
				want = central.Weight[v]
			}
			if w != want {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type silentNode struct{}

func (*silentNode) Init(*NodeContext) []Message                  { return nil }
func (*silentNode) Round(int, []Message, *NodeContext) []Message { return nil }

type badSender struct{ target int }

func (b *badSender) Init(ctx *NodeContext) []Message {
	return []Message{{From: ctx.ID, To: b.target, Payload: 1}}
}
func (*badSender) Round(int, []Message, *NodeContext) []Message { return nil }

type forgingSender struct{}

func (*forgingSender) Init(ctx *NodeContext) []Message {
	return []Message{{From: ctx.ID + 1, To: 1, Payload: 1}}
}
func (*forgingSender) Round(int, []Message, *NodeContext) []Message { return nil }

type pingPong struct{ peer int }

func (p *pingPong) Init(ctx *NodeContext) []Message {
	return []Message{{From: ctx.ID, To: p.peer, Payload: 1}}
}

func (p *pingPong) Round(_ int, inbox []Message, ctx *NodeContext) []Message {
	if len(inbox) == 0 {
		return nil
	}
	return []Message{{From: ctx.ID, To: p.peer, Payload: 1}}
}

func TestHalfNeighborhoodDistributedMatchesCentralized(t *testing.T) {
	s := rng.New(31)
	g, err := graph.RandomRegular(60, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 60)
	for i := range p {
		p[i] = 0.45 + 0.1*s.Float64()
	}
	in := mustInstance(t, g, p)
	res, err := RunHalfNeighborhoodDelegation(context.Background(), in, 0.02, 41)
	if err != nil {
		t.Fatal(err)
	}
	// Every delegation must satisfy the half-neighbourhood rule.
	for v, j := range res.Delegation.Delegate {
		approved := in.ApprovalSet(v, 0.02)
		if j == core.NoDelegate {
			if len(approved) > 0 && 2*len(approved) >= in.Topology().Degree(v) {
				t.Fatalf("node %d should have delegated (%d approved of %d)", v, len(approved), in.Topology().Degree(v))
			}
			continue
		}
		if 2*len(approved) < in.Topology().Degree(v) {
			t.Fatalf("node %d delegated below the half threshold", v)
		}
		if !in.Approves(v, j, 0.02) {
			t.Fatalf("node %d delegated to unapproved %d", v, j)
		}
	}
	central, err := res.Delegation.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.N(); v++ {
		want := 0
		if central.SinkOf[v] == v {
			want = central.Weight[v]
		}
		if res.Weights[v] != want {
			t.Fatalf("node %d weight %d, want %d", v, res.Weights[v], want)
		}
	}
}

func TestRunDelegationNilRule(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.1, 0.5, 0.9})
	if _, err := RunDelegation(context.Background(), in, 0.1, nil, 1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}
