package localsim

import (
	"context"
	"errors"
	"math"
	"testing"

	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestPushSumConvergesToFraction(t *testing.T) {
	// Hand-built mass: half the nodes start with (1,1), half with (0,1);
	// every estimate must approach 0.5.
	const n = 64
	s := rng.New(41)
	g, err := graph.RandomRegular(n, 8, s)
	if err != nil {
		t.Fatal(err)
	}
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	ps := make([]*pushSumNode, n)
	for v := 0; v < n; v++ {
		contexts[v] = &NodeContext{ID: v, Neighbors: g.Neighbors(v), Rand: s.Derive(uint64(v))}
		node := &pushSumNode{w: 1}
		if v%2 == 0 {
			node.s = 1
		}
		ps[v] = node
		nodes[v] = node
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.RunRounds(context.Background(), 120); err != nil {
		t.Fatal(err)
	}
	for v, node := range ps {
		est, ok := node.Estimate()
		if !ok {
			t.Fatalf("node %d has no estimate", v)
		}
		if math.Abs(est-0.5) > 0.02 {
			t.Fatalf("node %d estimate %v, want ~0.5", v, est)
		}
	}
}

func TestPushSumMassConservation(t *testing.T) {
	const n = 30
	s := rng.New(43)
	g, err := graph.RandomRegular(n, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	ps := make([]*pushSumNode, n)
	var wantS, wantW float64
	for v := 0; v < n; v++ {
		contexts[v] = &NodeContext{ID: v, Neighbors: g.Neighbors(v), Rand: s.Derive(uint64(v))}
		node := &pushSumNode{s: float64(v % 3), w: 1}
		wantS += node.s
		wantW += node.w
		ps[v] = node
		nodes[v] = node
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.RunRounds(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	// After the final round, half of each node's mass is in flight; total
	// held mass plus the final messages must equal the initial mass. We
	// only check held mass is within the in-flight bound (quantization
	// aside).
	var gotS, gotW float64
	for _, node := range ps {
		gotS += node.s
		gotW += node.w
	}
	if gotS > wantS+1e-3 || gotW > wantW+1e-3 {
		t.Fatalf("mass created: s %v > %v or w %v > %v", gotS, wantS, gotW, wantW)
	}
	if gotS < wantS/4 || gotW < wantW/4 {
		t.Fatalf("mass vanished: s %v of %v, w %v of %v", gotS, wantS, gotW, wantW)
	}
}

func TestRunDistributedElection(t *testing.T) {
	s := rng.New(47)
	g, err := graph.RandomRegular(100, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 100)
	for i := range p {
		p[i] = 0.55 + 0.3*s.Float64() // competent electorate: clear margin
	}
	in := mustInstance(t, g, p)
	res, err := RunDistributedElection(context.Background(), in, 0.03, ThresholdRule(nil), 7, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CorrectWon {
		t.Fatal("competent electorate should decide correctly")
	}
	// With a clear margin and enough gossip, (nearly) all nodes agree.
	if res.Agreeing < 95 {
		t.Fatalf("only %d/100 nodes agree with the outcome", res.Agreeing)
	}
}

func TestRunDistributedElectionValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), []float64{0.3, 0.5, 0.7})
	if _, err := RunDistributedElection(context.Background(), in, 0.05, ThresholdRule(nil), 1, 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunDistributedElectionDeterministic(t *testing.T) {
	s := rng.New(53)
	g, err := graph.RandomRegular(40, 6, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 40)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	in := mustInstance(t, g, p)
	a, err := RunDistributedElection(context.Background(), in, 0.05, ThresholdRule(nil), 9, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDistributedElection(context.Background(), in, 0.05, ThresholdRule(nil), 9, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.CorrectWon != b.CorrectWon || a.Agreeing != b.Agreeing {
		t.Fatal("same seed must reproduce the election")
	}
	for v := range a.Estimates {
		if a.Estimates[v] != b.Estimates[v] {
			t.Fatal("estimates differ across identical runs")
		}
	}
}
