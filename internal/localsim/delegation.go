package localsim

import (
	"context"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// DecisionRule is the purely local delegation decision a node makes from
// its own view: it returns the chosen delegate id, or core.NoDelegate to
// vote directly. Implementations may use ctx.Rand.
type DecisionRule func(ctx *NodeContext) int

// ThresholdRule is the distributed form of Algorithm 1: delegate to a
// uniformly random approved neighbour iff the approval set reaches
// threshold(degree). A nil threshold means "whenever possible".
func ThresholdRule(threshold mechanism.ThresholdFunc) DecisionRule {
	return func(ctx *NodeContext) int {
		approved := ctx.ApprovedNeighbors()
		min := 1
		if threshold != nil {
			if t := threshold(len(ctx.Neighbors)); t > min {
				min = t
			}
		}
		if len(approved) < min {
			return core.NoDelegate
		}
		return approved[ctx.Rand.IntN(len(approved))]
	}
}

// HalfNeighborhoodRule is the distributed form of the Theorem 5 mechanism:
// delegate iff at least half the neighbourhood is approved.
func HalfNeighborhoodRule() DecisionRule {
	return func(ctx *NodeContext) int {
		approved := ctx.ApprovedNeighbors()
		if len(ctx.Neighbors) == 0 || len(approved) == 0 || 2*len(approved) < len(ctx.Neighbors) {
			return core.NoDelegate
		}
		return approved[ctx.Rand.IntN(len(approved))]
	}
}

// delegationNode runs the distributed delegation protocol:
//
//	Init:    apply the decision rule; if delegating, send this node's own
//	         vote weight (1) downstream.
//	Round r: forward any weight received in round r-1 downstream (if this
//	         node delegated) or absorb it (if this node is a sink).
//
// After quiescence every sink's weight equals 1 + the number of voters
// whose delegation chain ends at it — exactly core.Resolution.
type delegationNode struct {
	decide DecisionRule

	delegate int // target id or core.NoDelegate
	weight   int // accumulated weight (meaningful for sinks)
}

// Init implements Node.
func (d *delegationNode) Init(ctx *NodeContext) []Message {
	d.weight = 1
	d.delegate = d.decide(ctx)
	if d.delegate == core.NoDelegate {
		return nil
	}
	d.weight = 0
	// Hand the own vote downstream immediately.
	return []Message{{From: ctx.ID, To: d.delegate, Payload: 1}}
}

// Round implements Node.
func (d *delegationNode) Round(_ int, inbox []Message, ctx *NodeContext) []Message {
	received := 0
	for _, m := range inbox {
		if m.Payload <= 0 {
			continue
		}
		received += m.Payload
	}
	if received == 0 {
		return nil
	}
	if d.delegate == core.NoDelegate {
		d.weight += received
		return nil
	}
	return []Message{{From: ctx.ID, To: d.delegate, Payload: received}}
}

// Result is the outcome of a distributed delegation run.
type Result struct {
	// Delegation is the delegation graph the protocol produced.
	Delegation *core.DelegationGraph
	// Weights[v] is the weight node v reports for itself (1 + received for
	// sinks, 0 for delegators).
	Weights []int
	// Rounds is the number of synchronous rounds until quiescence.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int
}

// RunThresholdDelegation executes the distributed threshold-delegation
// protocol (Algorithm 1) on the instance. See RunDelegation for details.
func RunThresholdDelegation(ctx context.Context, in *core.Instance, alpha float64, threshold mechanism.ThresholdFunc, seed uint64) (*Result, error) {
	return RunDelegation(ctx, in, alpha, ThresholdRule(threshold), seed)
}

// RunHalfNeighborhoodDelegation executes the distributed Theorem 5
// mechanism. See RunDelegation for details.
func RunHalfNeighborhoodDelegation(ctx context.Context, in *core.Instance, alpha float64, seed uint64) (*Result, error) {
	return RunDelegation(ctx, in, alpha, HalfNeighborhoodRule(), seed)
}

// RunDelegation executes a distributed delegation protocol with the given
// local decision rule. Per-node random streams are derived from seed and
// the node id, so the run is deterministic.
//
// The maximum round budget is n+2: a delegation chain has at most n-1 hops.
func RunDelegation(ctx context.Context, in *core.Instance, alpha float64, decide DecisionRule, seed uint64) (*Result, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrProtocol, alpha)
	}
	if decide == nil {
		return nil, fmt.Errorf("%w: nil decision rule", ErrProtocol)
	}
	n := in.N()
	root := rng.New(seed)
	contexts := make([]*NodeContext, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nbrs := in.Topology().Neighbors(v)
		approved := make([]bool, len(nbrs))
		for k, u := range nbrs {
			approved[k] = in.Approves(v, u, alpha)
		}
		contexts[v] = &NodeContext{
			ID:        v,
			Neighbors: nbrs,
			Approved:  approved,
			Rand:      root.Derive(uint64(v)),
		}
		nodes[v] = &delegationNode{decide: decide}
	}
	nw, err := NewNetwork(contexts, nodes)
	if err != nil {
		return nil, err
	}
	if err := nw.Run(ctx, n+2); err != nil {
		return nil, err
	}

	res := &Result{
		Delegation: core.NewDelegationGraph(n),
		Weights:    make([]int, n),
		Rounds:     nw.Rounds(),
		Messages:   nw.Messages(),
	}
	for v, node := range nodes {
		dn, ok := node.(*delegationNode)
		if !ok {
			return nil, fmt.Errorf("%w: unexpected node type", ErrProtocol)
		}
		res.Weights[v] = dn.weight
		if dn.delegate != core.NoDelegate {
			if err := res.Delegation.SetDelegate(v, dn.delegate); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}
