package localsim_test

import (
	"context"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/rng"
)

// Example runs the delegation mechanism as a distributed protocol over an
// unreliable network (30% message loss) and verifies the weights match the
// centralized resolution.
func Example() {
	s := rng.New(4)
	top, err := graph.RandomRegular(60, 8, s)
	if err != nil {
		panic(err)
	}
	p := make([]float64, 60)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(top, p)
	if err != nil {
		panic(err)
	}

	res, err := localsim.RunReliableDelegation(context.Background(), in, 0.05, localsim.ThresholdRule(nil), 7, 0.3)
	if err != nil {
		panic(err)
	}
	central, err := res.Delegation.Resolve()
	if err != nil {
		panic(err)
	}
	match := true
	for v := 0; v < in.N(); v++ {
		want := 0
		if central.SinkOf[v] == v {
			want = central.Weight[v]
		}
		if res.Weights[v] != want {
			match = false
		}
	}
	fmt.Println("distributed weights match centralized:", match)
	fmt.Println("retransmissions happened:", res.Messages > in.N())
	// Output:
	// distributed weights match centralized: true
	// retransmissions happened: true
}
