package mechanism

import (
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestNeighborSamplingDelegatesUpward(t *testing.T) {
	const n = 100
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 21))
	m := NeighborSampling{Alpha: 0.05, D: 8}
	d, err := m.Apply(in, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDelegators() == 0 {
		t.Fatal("expected some delegation with d=8 on uniform competencies")
	}
	for i, j := range d.Delegate {
		if j == core.NoDelegate {
			continue
		}
		if j == i {
			t.Fatal("self delegation")
		}
		if in.Competency(j) < in.Competency(i)+0.05 {
			t.Fatalf("voter %d delegated to unapproved %d", i, j)
		}
	}
	if _, err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborSamplingValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(10), uniformComps(10, 23))
	tests := []NeighborSampling{
		{Alpha: -1, D: 3},
		{Alpha: 0.1, D: 0},
		{Alpha: 0.1, D: 10}, // d must be < n
	}
	for _, m := range tests {
		if _, err := m.Apply(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
			t.Errorf("%+v: err = %v", m, err)
		}
	}
}

func TestNeighborSamplingThreshold(t *testing.T) {
	// One strong voter among many equals: each voter's sample of d=3
	// contains the strong voter rarely; with threshold j(d)=2 nobody can
	// delegate (at most 1 approved in any sample).
	p := make([]float64, 40)
	for i := range p {
		p[i] = 0.4
	}
	p[0] = 0.95
	in := mustInstance(t, graph.NewComplete(40), p)
	m := NeighborSampling{Alpha: 0.1, D: 3, Threshold: ConstantThreshold(2)}
	d, err := m.Apply(in, rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDelegators() != 0 {
		t.Fatalf("threshold 2 should block all delegation, got %d", d.NumDelegators())
	}
}

func TestNeighborSamplingNeverSamplesSelf(t *testing.T) {
	// With n=2, each voter's only possible sample is the other voter.
	in := mustInstance(t, graph.NewComplete(2), []float64{0.2, 0.9})
	m := NeighborSampling{Alpha: 0.1, D: 1}
	for seed := uint64(0); seed < 50; seed++ {
		d, err := m.Apply(in, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if d.Delegate[0] != 1 {
			t.Fatalf("seed %d: voter 0 delegate = %d, want 1", seed, d.Delegate[0])
		}
		if d.Delegate[1] != core.NoDelegate {
			t.Fatal("stronger voter delegated")
		}
	}
}

func TestSampledGraphDelegationsShape(t *testing.T) {
	const n, dd = 30, 4
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 25))
	m := NeighborSampling{Alpha: 0.02, D: dd}
	d, samples, err := m.SampledGraphDelegations(in, rng.New(26))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != n {
		t.Fatalf("samples rows = %d", len(samples))
	}
	for i, row := range samples {
		if len(row) != dd {
			t.Fatalf("voter %d sampled %d neighbours", i, len(row))
		}
		seen := make(map[int]bool)
		for _, j := range row {
			if j == i {
				t.Fatalf("voter %d sampled itself", i)
			}
			if j < 0 || j >= n {
				t.Fatalf("sample out of range: %d", j)
			}
			if seen[j] {
				t.Fatalf("voter %d sampled %d twice", i, j)
			}
			seen[j] = true
		}
		// Any delegation must be inside the sample.
		if tgt := d.Delegate[i]; tgt != core.NoDelegate && !seen[tgt] {
			t.Fatalf("voter %d delegated outside its sample", i)
		}
	}
}
