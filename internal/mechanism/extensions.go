package mechanism

import (
	"fmt"
	"slices"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// WeightCapped wraps a mechanism and enforces the Lemma 5 condition: no
// sink may accumulate weight above MaxWeight. Delegation edges are cut
// (turning the cut voter into a direct voter for its own subtree) until
// every delegation tree has size at most MaxWeight.
//
// The cut strategy is the standard bounded-partition post-order walk: it
// guarantees the cap exactly and removes the minimum number of edges
// greedily (largest subtree first at each overweight node).
type WeightCapped struct {
	Inner     Mechanism
	MaxWeight int
}

var _ Mechanism = WeightCapped{}

// Name implements Mechanism.
func (m WeightCapped) Name() string {
	return fmt.Sprintf("%s|cap(w=%d)", m.Inner.Name(), m.MaxWeight)
}

// Apply implements Mechanism.
func (m WeightCapped) Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error) {
	if m.Inner == nil {
		return nil, fmt.Errorf("%w: WeightCapped requires an inner mechanism", ErrInvalidMechanism)
	}
	if m.MaxWeight < 1 {
		return nil, fmt.Errorf("%w: max weight %d < 1", ErrInvalidMechanism, m.MaxWeight)
	}
	d, err := m.Inner.Apply(in, s)
	if err != nil {
		return nil, err
	}
	if err := CapWeights(d, m.MaxWeight); err != nil {
		return nil, err
	}
	return d, nil
}

// CapWeights cuts delegation edges of d in place until no sink weight
// exceeds maxWeight. Abstaining voters keep their (weightless) delegation
// edges untouched by treating them as zero-size subtrees.
func CapWeights(d *core.DelegationGraph, maxWeight int) error {
	if maxWeight < 1 {
		return fmt.Errorf("%w: max weight %d < 1", ErrInvalidMechanism, maxWeight)
	}
	n := d.N()
	// Children of the delegation forest in CSR form: one flat array plus
	// offsets, instead of n little slices (this sits on the Lemma 5 hot
	// path, where the allocation churn of per-node lists dominated).
	buf := make([]int, 3*n+1)
	childStart, childList, size := buf[:n+1], buf[n+1:2*n+1], buf[2*n+1:]
	for _, j := range d.Delegate {
		if j != core.NoDelegate {
			childStart[j+1]++
		}
	}
	for v := 0; v < n; v++ {
		childStart[v+1] += childStart[v]
	}
	fill := make([]int, n)
	copy(fill, childStart[:n])
	roots := 0
	for i, j := range d.Delegate {
		if j != core.NoDelegate {
			childList[fill[j]] = i
			fill[j]++
		} else {
			roots++
		}
	}
	// Pre-order discovery via an explicit stack from each root (direct
	// voter); reversing it gives children-before-parents.
	order := fill[:0] // reuse: fill's prefix is consumed left to right
	stack := make([]int, 0, n)
	for r := 0; r < n; r++ {
		if d.Delegate[r] != core.NoDelegate { // not a root
			continue
		}
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			stack = append(stack, childList[childStart[v]:childStart[v+1]]...)
		}
	}
	if len(order) != n {
		return fmt.Errorf("%w: delegation graph contains a cycle", core.ErrCyclicDelegation)
	}
	abst := func(i int) bool { return d.Abstained != nil && d.Abstained[i] }
	var att []int
	// Process in reverse discovery order (children before parents).
	for k := n - 1; k >= 0; k-- {
		v := order[k]
		sz := 1
		if abst(v) {
			sz = 0
		}
		kids := childList[childStart[v]:childStart[v+1]]
		for _, c := range kids {
			if d.Delegate[c] == v { // still attached
				sz += size[c]
			}
		}
		if sz > maxWeight {
			// Cut attached children, largest subtree first.
			att = att[:0]
			for _, c := range kids {
				if d.Delegate[c] == v {
					att = append(att, c)
				}
			}
			slices.SortFunc(att, func(a, b int) int { return size[b] - size[a] })
			for _, c := range att {
				if sz <= maxWeight {
					break
				}
				d.Delegate[c] = core.NoDelegate
				if d.Abstained != nil && d.Abstained[c] {
					// An abstainer that no longer delegates must vote.
					d.Abstained[c] = false
				}
				sz -= size[c]
			}
		}
		size[v] = sz
	}
	return nil
}

// Abstaining wraps a mechanism with the Section 6 abstention model: each
// voter that delegates independently abstains with probability Q instead of
// passing its vote on. Only delegators may abstain, matching the paper's
// restriction that avoids the all-but-one-sink-abstains failure mode.
type Abstaining struct {
	Inner Mechanism
	Q     float64
}

var _ Mechanism = Abstaining{}

// Name implements Mechanism.
func (m Abstaining) Name() string { return fmt.Sprintf("%s|abstain(q=%g)", m.Inner.Name(), m.Q) }

// Apply implements Mechanism.
func (m Abstaining) Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error) {
	if m.Inner == nil {
		return nil, fmt.Errorf("%w: Abstaining requires an inner mechanism", ErrInvalidMechanism)
	}
	if m.Q < 0 || m.Q > 1 {
		return nil, fmt.Errorf("%w: abstention probability %v not in [0,1]", ErrInvalidMechanism, m.Q)
	}
	d, err := m.Inner.Apply(in, s)
	if err != nil {
		return nil, err
	}
	for i, j := range d.Delegate {
		if j != core.NoDelegate && s.Bernoulli(m.Q) {
			d.SetAbstained(i)
		}
	}
	return d, nil
}

// MultiDelegation is the realized output of a multi-delegate mechanism
// (Section 6, weighted majority vote): each voter either votes directly
// (empty delegate list) or consults a set of approved delegates and votes
// with the majority of their final votes (own Bernoulli draw breaks ties).
type MultiDelegation struct {
	// Delegates[i] lists the voters i consults; empty means direct voting.
	Delegates [][]int
	// Weights[i][k] is the weight voter i assigns to Delegates[i][k]. Nil
	// (or a nil row) means equal weights. Weights must be positive.
	Weights [][]float64
}

// N returns the number of voters.
func (md *MultiDelegation) N() int { return len(md.Delegates) }

// NumDelegators counts voters with at least one delegate.
func (md *MultiDelegation) NumDelegators() int {
	c := 0
	for _, ds := range md.Delegates {
		if len(ds) > 0 {
			c++
		}
	}
	return c
}

// MultiMechanism produces multi-delegate outputs.
type MultiMechanism interface {
	Name() string
	ApplyMulti(in *core.Instance, s *rng.Stream) (*MultiDelegation, error)
}

// MultiDelegate samples up to K distinct approved neighbours per voter.
// A voter with fewer than Threshold(degree) approved neighbours votes
// directly.
type MultiDelegate struct {
	Alpha     float64
	K         int
	Threshold ThresholdFunc
}

var _ MultiMechanism = MultiDelegate{}

// Name implements MultiMechanism.
func (m MultiDelegate) Name() string { return fmt.Sprintf("multi-delegate(α=%g,k=%d)", m.Alpha, m.K) }

// ApplyMulti implements MultiMechanism.
func (m MultiDelegate) ApplyMulti(in *core.Instance, s *rng.Stream) (*MultiDelegation, error) {
	if m.Alpha < 0 || m.K < 1 {
		return nil, fmt.Errorf("%w: MultiDelegate(α=%v, k=%d)", ErrInvalidMechanism, m.Alpha, m.K)
	}
	n := in.N()
	md := &MultiDelegation{Delegates: make([][]int, n)}
	for i := 0; i < n; i++ {
		threshold := 1
		if m.Threshold != nil {
			threshold = max(m.Threshold(in.Topology().Degree(i)), 1)
		}
		approved := in.ApprovalSet(i, m.Alpha)
		if len(approved) < threshold {
			continue
		}
		if len(approved) <= m.K {
			md.Delegates[i] = approved
			continue
		}
		idx := s.SampleWithoutReplacement(len(approved), m.K)
		picks := make([]int, 0, m.K)
		for _, k := range idx {
			picks = append(picks, approved[k])
		}
		md.Delegates[i] = picks
	}
	return md, nil
}

// WeightFunc produces the local weights a voter assigns to its k consulted
// delegates, in consultation order (the "arbitrary ranking" of the paper's
// Section 2.2). The returned slice must have length k and positive entries.
type WeightFunc func(k int) []float64

// EqualWeights weighs all delegates equally.
func EqualWeights(k int) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1
	}
	return w
}

// HarmonicWeights weighs the r-th consulted delegate 1/r, a top-heavy
// locally defined weight function.
func HarmonicWeights(k int) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	return w
}

// WeightedMultiDelegate is the full Section 6 weighted-majority extension:
// each voter consults up to K approved delegates and combines their votes
// with a locally defined weight function over its private ranking.
type WeightedMultiDelegate struct {
	Alpha   float64
	K       int
	Weights WeightFunc
}

var _ MultiMechanism = WeightedMultiDelegate{}

// Name implements MultiMechanism.
func (m WeightedMultiDelegate) Name() string {
	return fmt.Sprintf("weighted-multi-delegate(α=%g,k=%d)", m.Alpha, m.K)
}

// ApplyMulti implements MultiMechanism.
func (m WeightedMultiDelegate) ApplyMulti(in *core.Instance, s *rng.Stream) (*MultiDelegation, error) {
	base := MultiDelegate{Alpha: m.Alpha, K: m.K}
	md, err := base.ApplyMulti(in, s)
	if err != nil {
		return nil, err
	}
	weigh := m.Weights
	if weigh == nil {
		weigh = EqualWeights
	}
	md.Weights = make([][]float64, len(md.Delegates))
	for i, ds := range md.Delegates {
		if len(ds) == 0 {
			continue
		}
		w := weigh(len(ds))
		if len(w) != len(ds) {
			return nil, fmt.Errorf("%w: weight function returned %d weights for %d delegates", ErrInvalidMechanism, len(w), len(ds))
		}
		for _, v := range w {
			if v <= 0 {
				return nil, fmt.Errorf("%w: non-positive delegate weight %v", ErrInvalidMechanism, v)
			}
		}
		md.Weights[i] = w
	}
	return md, nil
}
