package mechanism

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// Choice is one option in a voter's delegation distribution: delegate to
// Delegate (or vote directly when Delegate == core.NoDelegate) with
// probability P.
type Choice struct {
	Delegate int
	P        float64
}

// DistributionMechanism is a mechanism that can expose the paper's raw
// object - the per-voter probability distribution over delegates - instead
// of only sampled realizations. It enables exact (enumeration-based)
// evaluation on small instances and distribution-level testing.
type DistributionMechanism interface {
	Mechanism
	// DelegateDistribution returns voter's distribution. Probabilities sum
	// to 1; the direct-voting option (core.NoDelegate) is included when it
	// has positive mass.
	DelegateDistribution(in *core.Instance, voter int) ([]Choice, error)
}

var (
	_ DistributionMechanism = Direct{}
	_ DistributionMechanism = ApprovalThreshold{}
	_ DistributionMechanism = HalfNeighborhood{}
	_ DistributionMechanism = GreedyBest{}
	_ DistributionMechanism = ProbabilisticDelegation{}
)

// DelegateDistribution implements DistributionMechanism.
func (Direct) DelegateDistribution(_ *core.Instance, _ int) ([]Choice, error) {
	return []Choice{{Delegate: core.NoDelegate, P: 1}}, nil
}

// DelegateDistribution implements DistributionMechanism.
func (m ApprovalThreshold) DelegateDistribution(in *core.Instance, voter int) ([]Choice, error) {
	if m.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	threshold := 1
	if m.Threshold != nil {
		threshold = max(m.Threshold(in.Topology().Degree(voter)), 1)
	}
	approved := in.ApprovalSet(voter, m.Alpha)
	if len(approved) < threshold {
		return []Choice{{Delegate: core.NoDelegate, P: 1}}, nil
	}
	return uniformChoices(approved), nil
}

// DelegateDistribution implements DistributionMechanism.
func (m HalfNeighborhood) DelegateDistribution(in *core.Instance, voter int) ([]Choice, error) {
	if m.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	deg := in.Topology().Degree(voter)
	approved := in.ApprovalSet(voter, m.Alpha)
	if deg == 0 || len(approved) == 0 || 2*len(approved) < deg {
		return []Choice{{Delegate: core.NoDelegate, P: 1}}, nil
	}
	return uniformChoices(approved), nil
}

// DelegateDistribution implements DistributionMechanism.
func (m GreedyBest) DelegateDistribution(in *core.Instance, voter int) ([]Choice, error) {
	if m.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	best := core.NoDelegate
	bestP := in.Competency(voter) + m.Alpha
	for _, j := range in.Topology().Neighbors(voter) {
		if p := in.Competency(j); p >= bestP && (best == core.NoDelegate || p > in.Competency(best)) {
			best = j
		}
	}
	return []Choice{{Delegate: best, P: 1}}, nil
}

func uniformChoices(approved []int) []Choice {
	out := make([]Choice, len(approved))
	p := 1 / float64(len(approved))
	for i, j := range approved {
		out[i] = Choice{Delegate: j, P: p}
	}
	return out
}

// ProbabilisticDelegation is the controlled-participation mechanism used in
// do-no-harm analyses: each voter with a nonempty approval set delegates
// with probability Q (to a uniformly random approved neighbour) and votes
// directly otherwise. Q tunes the expected number of delegations, the
// quantity Lemma 3 restricts.
type ProbabilisticDelegation struct {
	Alpha float64
	Q     float64
}

var _ Mechanism = ProbabilisticDelegation{}

// Name implements Mechanism.
func (m ProbabilisticDelegation) Name() string {
	return fmt.Sprintf("probabilistic(α=%g,q=%g)", m.Alpha, m.Q)
}

// Apply implements Mechanism.
func (m ProbabilisticDelegation) Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	d := core.NewDelegationGraph(in.N())
	for i := 0; i < in.N(); i++ {
		if !s.Bernoulli(m.Q) {
			continue
		}
		j, ok := in.SampleApproved(i, m.Alpha, s)
		if !ok {
			continue
		}
		if err := d.SetDelegate(i, j); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// DelegateDistribution implements DistributionMechanism.
func (m ProbabilisticDelegation) DelegateDistribution(in *core.Instance, voter int) ([]Choice, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	approved := in.ApprovalSet(voter, m.Alpha)
	if len(approved) == 0 || m.Q == 0 {
		return []Choice{{Delegate: core.NoDelegate, P: 1}}, nil
	}
	out := make([]Choice, 0, len(approved)+1)
	if m.Q < 1 {
		out = append(out, Choice{Delegate: core.NoDelegate, P: 1 - m.Q})
	}
	p := m.Q / float64(len(approved))
	for _, j := range approved {
		out = append(out, Choice{Delegate: j, P: p})
	}
	return out, nil
}

func (m ProbabilisticDelegation) validate() error {
	if m.Alpha < 0 {
		return fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	if m.Q < 0 || m.Q > 1 {
		return fmt.Errorf("%w: delegation probability %v not in [0,1]", ErrInvalidMechanism, m.Q)
	}
	return nil
}
