package mechanism

import (
	"errors"
	"testing"
	"testing/quick"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func mustInstance(t *testing.T, top graph.Topology, p []float64) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(top, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func uniformComps(n int, seed uint64) []float64 {
	s := rng.New(seed)
	p := make([]float64, n)
	for i := range p {
		p[i] = s.Float64()
	}
	return p
}

func TestDirect(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(5), uniformComps(5, 1))
	d, err := Direct{}.Apply(in, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDelegators() != 0 {
		t.Fatal("direct voting should not delegate")
	}
}

func TestApprovalThresholdDelegatesUpward(t *testing.T) {
	const n = 50
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 3))
	m := ApprovalThreshold{Alpha: 0.05}
	d, err := m.Apply(in, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range d.Delegate {
		if j == core.NoDelegate {
			continue
		}
		if in.Competency(j) < in.Competency(i)+0.05 {
			t.Fatalf("voter %d (p=%v) delegated to %d (p=%v)", i, in.Competency(i), j, in.Competency(j))
		}
	}
	// The most competent voter can never delegate.
	top := in.TopByCompetency(1)[0]
	if d.Delegate[top] != core.NoDelegate {
		t.Fatal("most competent voter delegated")
	}
	// Delegation graph must resolve without cycles.
	if _, err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestApprovalThresholdRespectsThreshold(t *testing.T) {
	// Competencies: one excellent voter, everyone else equal. With
	// threshold 2 nobody delegates (approval sets have size 1).
	p := []float64{0.9, 0.4, 0.4, 0.4, 0.4}
	in := mustInstance(t, graph.NewComplete(5), p)
	m := ApprovalThreshold{Alpha: 0.1, Threshold: ConstantThreshold(2)}
	d, err := m.Apply(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDelegators() != 0 {
		t.Fatalf("threshold 2 with approval sets of size 1: %d delegators", d.NumDelegators())
	}
	// With threshold 1 all four weak voters delegate to voter 0.
	m1 := ApprovalThreshold{Alpha: 0.1, Threshold: ConstantThreshold(1)}
	d1, err := m1.Apply(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumDelegators() != 4 {
		t.Fatalf("expected 4 delegators, got %d", d1.NumDelegators())
	}
}

func TestApprovalThresholdLocalOnExplicitGraph(t *testing.T) {
	g, err := graph.Star(6)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.8, 0.3, 0.35, 0.4, 0.45, 0.9}
	in := mustInstance(t, g, p)
	m := ApprovalThreshold{Alpha: 0.1}
	d, err := m.Apply(in, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateLocal(in, 0.1); err != nil {
		t.Fatal(err)
	}
	// Leaf 5 (p=0.9) must not delegate: its only neighbour is weaker.
	if d.Delegate[5] != core.NoDelegate {
		t.Fatal("leaf 5 should vote directly")
	}
	// Leaves 1..4 must delegate to the center.
	for i := 1; i <= 4; i++ {
		if d.Delegate[i] != 0 {
			t.Fatalf("leaf %d delegated to %d", i, d.Delegate[i])
		}
	}
}

func TestApprovalThresholdNegativeAlpha(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), uniformComps(3, 7))
	if _, err := (ApprovalThreshold{Alpha: -0.1}).Apply(in, rng.New(8)); !errors.Is(err, ErrInvalidMechanism) {
		t.Fatalf("err = %v", err)
	}
}

func TestFractionThreshold(t *testing.T) {
	tests := []struct {
		f    float64
		n    int
		want int
	}{
		{0.5, 10, 5},
		{0.5, 11, 6},
		{0, 10, 0},
		{-1, 10, 0},
		{0.1, 5, 1},
		{1, 7, 7},
	}
	for _, tt := range tests {
		if got := FractionThreshold(tt.f)(tt.n); got != tt.want {
			t.Errorf("FractionThreshold(%v)(%d) = %d, want %d", tt.f, tt.n, got, tt.want)
		}
	}
}

func TestGreedyBestStar(t *testing.T) {
	// Figure 1: center p=2/3, leaves p=3/5. Greedy sends every leaf's vote
	// to the center.
	const n = 9
	g, err := graph.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, n)
	p[0] = 2.0 / 3
	for i := 1; i < n; i++ {
		p[i] = 3.0 / 5
	}
	in := mustInstance(t, g, p)
	d, err := GreedyBest{Alpha: 0.01}.Apply(in, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWeight != n || len(res.Sinks) != 1 || res.Sinks[0] != 0 {
		t.Fatalf("greedy star should concentrate all weight: %+v", res)
	}
}

func TestGreedyBestPicksMostCompetent(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), []float64{0.2, 0.5, 0.9, 0.7})
	d, err := GreedyBest{Alpha: 0.1}.Apply(in, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3} {
		if d.Delegate[i] != 2 {
			t.Fatalf("voter %d delegated to %d, want 2", i, d.Delegate[i])
		}
	}
	if d.Delegate[2] != core.NoDelegate {
		t.Fatal("top voter delegated")
	}
}

func TestHalfNeighborhood(t *testing.T) {
	// Path 0-1-2 with competencies 0.3, 0.5, 0.9.
	g, err := graph.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, []float64{0.3, 0.5, 0.9})
	d, err := HalfNeighborhood{Alpha: 0.1}.Apply(in, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// Voter 0: 1 neighbour, 1 approved (0.5 >= 0.4) -> delegates.
	if d.Delegate[0] != 1 {
		t.Fatalf("voter 0 delegate = %d", d.Delegate[0])
	}
	// Voter 1: 2 neighbours, 1 approved (0.9) -> 1 >= 2/2 -> delegates to 2.
	if d.Delegate[1] != 2 {
		t.Fatalf("voter 1 delegate = %d", d.Delegate[1])
	}
	// Voter 2: no approved neighbours.
	if d.Delegate[2] != core.NoDelegate {
		t.Fatal("voter 2 should vote directly")
	}
}

func TestHalfNeighborhoodBelowHalf(t *testing.T) {
	// Star center with 4 leaves, only 1 approved: 1 < 4/2, center votes.
	g, err := graph.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	in := mustInstance(t, g, []float64{0.5, 0.9, 0.3, 0.3, 0.3})
	d, err := HalfNeighborhood{Alpha: 0.1}.Apply(in, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if d.Delegate[0] != core.NoDelegate {
		t.Fatal("center should not delegate with <half approved")
	}
}

func TestQuickMechanismsAlwaysAcyclicAndApproved(t *testing.T) {
	mechanisms := []Mechanism{
		ApprovalThreshold{Alpha: 0.02},
		ApprovalThreshold{Alpha: 0.02, Threshold: ConstantThreshold(3)},
		GreedyBest{Alpha: 0.02},
		HalfNeighborhood{Alpha: 0.02},
	}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 3
		s := rng.New(seed)
		g, err := graph.ErdosRenyi(n, 0.3, s.DeriveString("graph"))
		if err != nil {
			return false
		}
		in, err := core.NewInstance(g, uniformComps(n, seed^0xABCD))
		if err != nil {
			return false
		}
		for _, m := range mechanisms {
			d, err := m.Apply(in, s.DeriveString(m.Name()))
			if err != nil {
				return false
			}
			if err := d.ValidateLocal(in, 0.02); err != nil {
				return false
			}
			if _, err := d.Resolve(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
