package mechanism

import (
	"errors"
	"testing"
	"testing/quick"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestCapWeightsChain(t *testing.T) {
	// Chain 0->1->2->3->4: sink 4 would have weight 5; cap at 2.
	d := core.NewDelegationGraph(5)
	for i := 0; i < 4; i++ {
		if err := d.SetDelegate(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := CapWeights(d, 2); err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWeight > 2 {
		t.Fatalf("max weight %d after cap 2", res.MaxWeight)
	}
	if res.TotalWeight != 5 {
		t.Fatalf("votes lost: total weight %d", res.TotalWeight)
	}
}

func TestCapWeightsStar(t *testing.T) {
	// Nine voters all delegating to voter 0; cap 3 keeps at most 2 others.
	d := core.NewDelegationGraph(9)
	for i := 1; i < 9; i++ {
		if err := d.SetDelegate(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := CapWeights(d, 3); err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWeight > 3 {
		t.Fatalf("max weight %d", res.MaxWeight)
	}
	if res.Weight[0] != 3 {
		t.Fatalf("center weight %d, want exactly 3 (cap should cut minimally)", res.Weight[0])
	}
}

func TestCapWeightsRejectsBadCap(t *testing.T) {
	d := core.NewDelegationGraph(3)
	if err := CapWeights(d, 0); !errors.Is(err, ErrInvalidMechanism) {
		t.Fatalf("err = %v", err)
	}
}

func TestCapWeightsNoOpWhenUnderCap(t *testing.T) {
	d := core.NewDelegationGraph(4)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := CapWeights(d, 5); err != nil {
		t.Fatal(err)
	}
	if d.Delegate[0] != 1 {
		t.Fatal("cap cut an edge it should not have")
	}
}

func TestWeightCappedMechanism(t *testing.T) {
	const n = 60
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 31))
	m := WeightCapped{Inner: GreedyBest{Alpha: 0.01}, MaxWeight: 4}
	d, err := m.Apply(in, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxWeight > 4 {
		t.Fatalf("max weight %d exceeds cap", res.MaxWeight)
	}
	if res.TotalWeight != n {
		t.Fatalf("total weight %d, want %d", res.TotalWeight, n)
	}
}

func TestWeightCappedValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), uniformComps(3, 33))
	if _, err := (WeightCapped{MaxWeight: 2}).Apply(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("nil inner accepted")
	}
	if _, err := (WeightCapped{Inner: Direct{}, MaxWeight: 0}).Apply(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("cap 0 accepted")
	}
}

func TestAbstainingAll(t *testing.T) {
	const n = 30
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 34))
	m := Abstaining{Inner: ApprovalThreshold{Alpha: 0.05}, Q: 1}
	d, err := m.Apply(in, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	delegators := 0
	for _, j := range d.Delegate {
		if j != core.NoDelegate {
			delegators++
		}
	}
	if delegators == 0 {
		t.Fatal("expected delegators")
	}
	if res.TotalWeight != n-delegators {
		t.Fatalf("total weight %d, want %d", res.TotalWeight, n-delegators)
	}
}

func TestAbstainingNone(t *testing.T) {
	const n = 20
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 36))
	m := Abstaining{Inner: ApprovalThreshold{Alpha: 0.05}, Q: 0}
	d, err := m.Apply(in, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight != n {
		t.Fatal("q=0 must not abstain anyone")
	}
}

func TestAbstainingValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), uniformComps(3, 38))
	if _, err := (Abstaining{Q: 0.5}).Apply(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("nil inner accepted")
	}
	if _, err := (Abstaining{Inner: Direct{}, Q: 1.5}).Apply(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("q > 1 accepted")
	}
}

func TestMultiDelegate(t *testing.T) {
	const n = 40
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 39))
	m := MultiDelegate{Alpha: 0.05, K: 3}
	md, err := m.ApplyMulti(in, rng.New(40))
	if err != nil {
		t.Fatal(err)
	}
	if md.N() != n {
		t.Fatalf("N = %d", md.N())
	}
	if md.NumDelegators() == 0 {
		t.Fatal("expected delegators")
	}
	for i, ds := range md.Delegates {
		if len(ds) > 3 {
			t.Fatalf("voter %d consults %d delegates", i, len(ds))
		}
		seen := make(map[int]bool)
		for _, j := range ds {
			if !in.Approves(i, j, 0.05) {
				t.Fatalf("voter %d consults unapproved %d", i, j)
			}
			if seen[j] {
				t.Fatalf("voter %d consults %d twice", i, j)
			}
			seen[j] = true
		}
	}
}

func TestMultiDelegateSmallApprovalSetTakesAll(t *testing.T) {
	p := []float64{0.2, 0.8, 0.9, 0.35}
	in := mustInstance(t, graph.NewComplete(4), p)
	md, err := MultiDelegate{Alpha: 0.1, K: 5}.ApplyMulti(in, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Delegates[0]) != 3 {
		t.Fatalf("voter 0 should consult all 3 approved, got %v", md.Delegates[0])
	}
	if len(md.Delegates[2]) != 0 {
		t.Fatal("top voter should vote directly")
	}
}

func TestMultiDelegateValidation(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(3), uniformComps(3, 42))
	if _, err := (MultiDelegate{Alpha: -1, K: 2}).ApplyMulti(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("negative alpha accepted")
	}
	if _, err := (MultiDelegate{Alpha: 0.1, K: 0}).ApplyMulti(in, rng.New(1)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("k=0 accepted")
	}
}

func TestQuickCapWeightsInvariant(t *testing.T) {
	f := func(seed uint64, nRaw, capRaw uint8) bool {
		n := int(nRaw%40) + 2
		cap := int(capRaw%8) + 1
		s := rng.New(seed)
		d := core.NewDelegationGraph(n)
		for i := 0; i < n-1; i++ {
			if s.Bernoulli(0.7) {
				if err := d.SetDelegate(i, i+1+s.IntN(n-i-1)); err != nil {
					return false
				}
			}
		}
		if err := CapWeights(d, cap); err != nil {
			return false
		}
		res, err := d.Resolve()
		if err != nil {
			return false
		}
		return res.MaxWeight <= cap && res.TotalWeight == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMultiDelegateEqualMatchesPlain(t *testing.T) {
	const n = 30
	in := mustInstance(t, graph.NewComplete(n), uniformComps(n, 71))
	plain, err := MultiDelegate{Alpha: 0.05, K: 3}.ApplyMulti(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := WeightedMultiDelegate{Alpha: 0.05, K: 3}.ApplyMulti(in, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Delegates {
		if len(plain.Delegates[v]) != len(weighted.Delegates[v]) {
			t.Fatalf("voter %d delegate counts differ", v)
		}
		if len(weighted.Delegates[v]) > 0 {
			for _, w := range weighted.Weights[v] {
				if w != 1 {
					t.Fatalf("default weights should be equal, got %v", w)
				}
			}
		}
	}
}

func TestWeightedMultiDelegateHarmonic(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(20), uniformComps(20, 72))
	md, err := WeightedMultiDelegate{Alpha: 0.02, K: 4, Weights: HarmonicWeights}.ApplyMulti(in, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for v, ds := range md.Delegates {
		if len(ds) == 0 {
			continue
		}
		for k, w := range md.Weights[v] {
			want := 1 / float64(k+1)
			if w != want {
				t.Fatalf("voter %d weight[%d] = %v, want %v", v, k, w, want)
			}
		}
	}
}

func TestWeightedMultiDelegateRejectsBadWeightFunc(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(10), uniformComps(10, 73))
	short := func(k int) []float64 { return make([]float64, k-1) }
	if _, err := (WeightedMultiDelegate{Alpha: 0.02, K: 3, Weights: short}).ApplyMulti(in, rng.New(7)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("short weight vector accepted")
	}
	zero := func(k int) []float64 { return make([]float64, k) }
	if _, err := (WeightedMultiDelegate{Alpha: 0.02, K: 3, Weights: zero}).ApplyMulti(in, rng.New(8)); !errors.Is(err, ErrInvalidMechanism) {
		t.Error("zero weights accepted")
	}
}
