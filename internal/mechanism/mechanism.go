// Package mechanism implements the paper's delegation mechanisms: direct
// voting (Example 2), the approval-set-threshold mechanism for complete and
// general graphs (Algorithm 1), the random-d-neighbour mechanism that
// creates Rand(n, d) (Algorithm 2), the half-neighbourhood rule of
// Theorem 5, a concentrating greedy baseline (the Figure 1 failure mode),
// and the Section 6 extensions: weight caps, abstention, and
// multi-delegate weighted majority.
//
// A Mechanism consumes a problem instance and a random stream and emits one
// realized delegation graph; the paper's "probability distribution over
// delegates" is realized by sampling, and election engines average over
// realizations.
package mechanism

import (
	"errors"
	"fmt"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// ErrInvalidMechanism reports invalid mechanism configuration.
var ErrInvalidMechanism = errors.New("mechanism: invalid mechanism")

// Mechanism is a (randomized) local delegation mechanism.
type Mechanism interface {
	// Name is a short identifier for reports.
	Name() string
	// Apply computes one realization of the mechanism's delegation choices
	// on the instance.
	Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error)
}

// Direct is Example 2: nobody delegates.
type Direct struct{}

var _ Mechanism = Direct{}

// Name implements Mechanism.
func (Direct) Name() string { return "direct" }

// Apply implements Mechanism.
func (Direct) Apply(in *core.Instance, _ *rng.Stream) (*core.DelegationGraph, error) {
	return core.NewDelegationGraph(in.N()), nil
}

// ThresholdFunc maps a voter's neighbourhood size to the approval-set size
// required before the voter delegates. The paper's j(n) / j(d).
type ThresholdFunc func(neighbors int) int

// ConstantThreshold returns j(n) = c.
func ConstantThreshold(c int) ThresholdFunc {
	return func(int) int { return c }
}

// FractionThreshold returns j(n) = ceil(f * n), the "fraction of the
// neighbourhood" thresholds used by Algorithm 2 and Theorem 5.
func FractionThreshold(f float64) ThresholdFunc {
	return func(n int) int {
		if f <= 0 {
			return 0
		}
		v := int(f * float64(n))
		if float64(v) < f*float64(n) {
			v++
		}
		return v
	}
}

// ApprovalThreshold is Algorithm 1 generalized to arbitrary topologies: a
// voter with at least Threshold(#neighbours) approved neighbours delegates
// to a uniformly random approved neighbour, otherwise votes directly.
//
// On a complete topology this is exactly Algorithm 1 (the neighbourhood
// size is n-1 ~ n), with O(log n) work per voter.
type ApprovalThreshold struct {
	// Alpha is the approval margin: i approves j iff p_j >= p_i + Alpha.
	Alpha float64
	// Threshold is j(n); nil means 0 (delegate whenever possible).
	Threshold ThresholdFunc
}

var _ Mechanism = ApprovalThreshold{}

// Name implements Mechanism.
func (m ApprovalThreshold) Name() string { return fmt.Sprintf("approval-threshold(α=%g)", m.Alpha) }

// Apply implements Mechanism.
func (m ApprovalThreshold) Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error) {
	if m.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	d := core.NewDelegationGraph(in.N())
	view := in.ApprovalView(m.Alpha)
	for i := 0; i < in.N(); i++ {
		if m.Threshold != nil {
			if view.Count(i) < max(m.Threshold(in.Topology().Degree(i)), 1) {
				continue
			}
		}
		// With no threshold the only requirement is |J(i)| >= 1, which
		// Sample reports itself (consuming no randomness when the set is
		// empty), so the count query is skipped entirely.
		j, ok := view.Sample(i, s)
		if !ok {
			continue
		}
		if err := d.SetDelegate(i, j); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// GreedyBest delegates to the single most competent approved neighbour
// whenever one exists. It is deterministic and concentrates weight on local
// maxima — the behaviour that makes the Figure 1 star lose.
type GreedyBest struct {
	Alpha float64
}

var _ Mechanism = GreedyBest{}

// Name implements Mechanism.
func (m GreedyBest) Name() string { return fmt.Sprintf("greedy-best(α=%g)", m.Alpha) }

// Apply implements Mechanism.
func (m GreedyBest) Apply(in *core.Instance, _ *rng.Stream) (*core.DelegationGraph, error) {
	if m.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	d := core.NewDelegationGraph(in.N())
	for i := 0; i < in.N(); i++ {
		best := core.NoDelegate
		bestP := in.Competency(i) + m.Alpha
		for _, j := range in.Topology().Neighbors(i) {
			if p := in.Competency(j); p >= bestP && (best == core.NoDelegate || p > in.Competency(best)) {
				best = j
			}
		}
		if best != core.NoDelegate {
			if err := d.SetDelegate(i, best); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// HalfNeighborhood is the Theorem 5 mechanism: a voter delegates (to a
// uniformly random approved neighbour) iff at least half of its neighbours
// are approved.
type HalfNeighborhood struct {
	Alpha float64
}

var _ Mechanism = HalfNeighborhood{}

// Name implements Mechanism.
func (m HalfNeighborhood) Name() string { return fmt.Sprintf("half-neighborhood(α=%g)", m.Alpha) }

// Apply implements Mechanism.
func (m HalfNeighborhood) Apply(in *core.Instance, s *rng.Stream) (*core.DelegationGraph, error) {
	if m.Alpha < 0 {
		return nil, fmt.Errorf("%w: negative alpha %v", ErrInvalidMechanism, m.Alpha)
	}
	d := core.NewDelegationGraph(in.N())
	for i := 0; i < in.N(); i++ {
		deg := in.Topology().Degree(i)
		if deg == 0 {
			continue
		}
		count := in.ApprovalCount(i, m.Alpha)
		if 2*count < deg || count == 0 {
			continue
		}
		j, ok := in.SampleApproved(i, m.Alpha, s)
		if !ok {
			continue
		}
		if err := d.SetDelegate(i, j); err != nil {
			return nil, err
		}
	}
	return d, nil
}
