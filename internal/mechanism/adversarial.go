package mechanism

import (
	"liquid/internal/core"
	"liquid/internal/rng"
)

// This file holds deliberately broken mechanisms used for failure
// injection: they violate the model's invariants (acyclicity, locality,
// approval consistency) so that tests can verify the engines reject them
// with typed errors instead of silently producing wrong numbers.

// CycleForcing returns a delegation graph containing a 2-cycle between the
// first two voters. Resolution must fail with core.ErrCyclicDelegation.
type CycleForcing struct{}

var _ Mechanism = CycleForcing{}

// Name implements Mechanism.
func (CycleForcing) Name() string { return "adversarial-cycle" }

// Apply implements Mechanism.
func (CycleForcing) Apply(in *core.Instance, _ *rng.Stream) (*core.DelegationGraph, error) {
	d := core.NewDelegationGraph(in.N())
	if in.N() >= 2 {
		if err := d.SetDelegate(0, 1); err != nil {
			return nil, err
		}
		if err := d.SetDelegate(1, 0); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// NonLocal delegates every voter to the globally most competent voter,
// ignoring the topology. ValidateLocal must reject it on any instance where
// some voter is not adjacent to the top voter.
type NonLocal struct{}

var _ Mechanism = NonLocal{}

// Name implements Mechanism.
func (NonLocal) Name() string { return "adversarial-nonlocal" }

// Apply implements Mechanism.
func (NonLocal) Apply(in *core.Instance, _ *rng.Stream) (*core.DelegationGraph, error) {
	d := core.NewDelegationGraph(in.N())
	if in.N() < 2 {
		return d, nil
	}
	top := in.TopByCompetency(1)[0]
	for v := 0; v < in.N(); v++ {
		if v == top {
			continue
		}
		if err := d.SetDelegate(v, top); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Downward delegates every voter to its least competent neighbour (if
// strictly worse), violating approval consistency. ValidateLocal at any
// alpha >= 0 must reject it whenever it delegates.
type Downward struct{}

var _ Mechanism = Downward{}

// Name implements Mechanism.
func (Downward) Name() string { return "adversarial-downward" }

// Apply implements Mechanism.
func (Downward) Apply(in *core.Instance, _ *rng.Stream) (*core.DelegationGraph, error) {
	d := core.NewDelegationGraph(in.N())
	for v := 0; v < in.N(); v++ {
		worst := core.NoDelegate
		for _, u := range in.Topology().Neighbors(v) {
			if in.Competency(u) < in.Competency(v) &&
				(worst == core.NoDelegate || in.Competency(u) < in.Competency(worst)) {
				worst = u
			}
		}
		if worst != core.NoDelegate {
			if err := d.SetDelegate(v, worst); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}
