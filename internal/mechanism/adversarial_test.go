package mechanism

import (
	"errors"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/rng"
)

func TestCycleForcingIsRejectedAtResolve(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(4), uniformComps(4, 51))
	d, err := CycleForcing{}.Apply(in, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Resolve(); !errors.Is(err, core.ErrCyclicDelegation) {
		t.Fatalf("Resolve err = %v, want ErrCyclicDelegation", err)
	}
}

func TestNonLocalIsRejectedByValidateLocal(t *testing.T) {
	// Path graph: only neighbours of the top voter may legally delegate to
	// it.
	g, err := graph.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.1, 0.2, 0.9, 0.3, 0.4}
	in := mustInstance(t, g, p)
	d, err := NonLocal{}.Apply(in, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateLocal(in, 0.01); !errors.Is(err, core.ErrInvalidDelegation) {
		t.Fatalf("ValidateLocal err = %v, want ErrInvalidDelegation", err)
	}
}

func TestDownwardIsRejectedByValidateLocal(t *testing.T) {
	in := mustInstance(t, graph.NewComplete(5), []float64{0.1, 0.3, 0.5, 0.7, 0.9})
	d, err := Downward{}.Apply(in, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDelegators() == 0 {
		t.Fatal("expected downward delegations")
	}
	if err := d.ValidateLocal(in, 0); !errors.Is(err, core.ErrInvalidDelegation) {
		t.Fatalf("ValidateLocal err = %v, want ErrInvalidDelegation", err)
	}
}

func TestDownwardResolvesAcyclically(t *testing.T) {
	// Downward delegation is still acyclic (strictly decreasing
	// competency), so Resolve succeeds even though it is unapproved; the
	// locality validator is the guard that catches it.
	in := mustInstance(t, graph.NewComplete(5), []float64{0.1, 0.3, 0.5, 0.7, 0.9})
	d, err := Downward{}.Apply(in, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Everyone lands on the least competent voter.
	if res.Weight[0] != 5 {
		t.Fatalf("weights %v", res.Weight)
	}
}
