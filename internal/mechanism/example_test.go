package mechanism_test

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// Example runs the paper's Algorithm 1 on a small instance and resolves the
// delegation graph.
func Example() {
	p := []float64{0.9, 0.4, 0.4, 0.4}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		panic(err)
	}
	mech := mechanism.ApprovalThreshold{Alpha: 0.1}
	d, err := mech.Apply(in, rng.New(1))
	if err != nil {
		panic(err)
	}
	res, err := d.Resolve()
	if err != nil {
		panic(err)
	}
	fmt.Println("delegators:", res.Delegators)
	fmt.Println("expert weight:", res.Weight[0])
	// Output:
	// delegators: 3
	// expert weight: 4
}

// ExampleWeightCapped shows the Lemma 5 weight cap taming concentration.
func ExampleWeightCapped() {
	p := []float64{0.9, 0.4, 0.4, 0.4, 0.4, 0.4}
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		panic(err)
	}
	mech := mechanism.WeightCapped{
		Inner:     mechanism.GreedyBest{Alpha: 0.1},
		MaxWeight: 3,
	}
	d, err := mech.Apply(in, rng.New(2))
	if err != nil {
		panic(err)
	}
	res, err := d.Resolve()
	if err != nil {
		panic(err)
	}
	fmt.Println("max sink weight:", res.MaxWeight)
	// Output:
	// max sink weight: 3
}

// ExampleThresholdFunc shows the threshold helpers.
func ExampleThresholdFunc() {
	fmt.Println(mechanism.ConstantThreshold(5)(1000))
	fmt.Println(mechanism.FractionThreshold(0.25)(10))
	// Output:
	// 5
	// 3
}
