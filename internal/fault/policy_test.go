package fault

import (
	"context"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/rng"
)

// chainInstance builds a complete graph over 5 voters with strictly
// increasing competencies and the delegation chain 0 -> 1 -> 2, with 3 and
// 4 voting directly.
func chainInstance(t *testing.T) (*core.Instance, *core.DelegationGraph) {
	t.Helper()
	in, err := core.NewInstance(graph.NewComplete(5), []float64{0.5, 0.6, 0.7, 0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDelegationGraph(5)
	if err := d.SetDelegate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDelegate(1, 2); err != nil {
		t.Fatal(err)
	}
	return in, d
}

func TestLoseWeightDropsWholeChain(t *testing.T) {
	in, d := chainInstance(t)
	down := []bool{false, false, true, false, false} // sink of the chain is down
	rec, err := ApplyPolicy(in, d, down, nil, LoseWeight, 0.05, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Units 0, 1, 2 are lost; 3 and 4 survive.
	if rec.Lost != 3 {
		t.Fatalf("Lost = %d, want 3", rec.Lost)
	}
	if res.TotalWeight != 2 {
		t.Fatalf("TotalWeight = %d, want 2", res.TotalWeight)
	}
	for _, v := range []int{3, 4} {
		if res.Weight[v] != 1 {
			t.Errorf("direct voter %d weight %d, want 1", v, res.Weight[v])
		}
	}
}

func TestFallbackToDirectStopsAtPredecessor(t *testing.T) {
	in, d := chainInstance(t)
	down := []bool{false, false, true, false, false}
	rec, err := ApplyPolicy(in, d, down, nil, FallbackToDirect, 0.05, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Voter 1's delegate is down, so 1 becomes a sink holding its own unit
	// plus voter 0's; only voter 2's unit is lost.
	if rec.Lost != 1 || rec.FellBack != 1 {
		t.Fatalf("Lost = %d, FellBack = %d, want 1 and 1", rec.Lost, rec.FellBack)
	}
	if res.Weight[1] != 2 {
		t.Fatalf("fallback sink 1 weight %d, want 2", res.Weight[1])
	}
	if res.TotalWeight != 4 {
		t.Fatalf("TotalWeight = %d, want 4", res.TotalWeight)
	}
}

func TestRedelegateRewritesToApprovedAvailable(t *testing.T) {
	in, d := chainInstance(t)
	down := []bool{false, false, true, false, false}
	rec, err := ApplyPolicy(in, d, down, nil, Redelegate, 0.05, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Voter 1 redelegates to an approved available neighbour (3 or 4, the
	// more competent live voters).
	if rec.Redelegated != 1 {
		t.Fatalf("Redelegated = %d, want 1", rec.Redelegated)
	}
	nd := rec.Graph.Delegate[1]
	if nd != 3 && nd != 4 {
		t.Fatalf("voter 1 redelegated to %d, want 3 or 4", nd)
	}
	if res.TotalWeight != 4 {
		t.Fatalf("TotalWeight = %d, want 4", res.TotalWeight)
	}
	// The redelegation target now represents voters 0 and 1.
	if res.SinkOf[0] != nd || res.SinkOf[1] != nd {
		t.Fatalf("chain not rerouted: SinkOf = %v", res.SinkOf[:2])
	}
}

func TestAbstentionWithdrawsOwnUnitOnly(t *testing.T) {
	in, d := chainInstance(t)
	abstain := []bool{false, true, false, false, false}
	rec, err := ApplyPolicy(in, d, nil, abstain, FallbackToDirect, 0.05, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Voter 1 abstains but still relays: voter 0's unit reaches sink 2.
	if res.Weight[2] != 2 {
		t.Fatalf("sink 2 weight %d, want 2 (own + relayed)", res.Weight[2])
	}
	if res.TotalWeight != 4 {
		t.Fatalf("TotalWeight = %d, want 4", res.TotalWeight)
	}
}

func TestPolicyConservation(t *testing.T) {
	// Under every policy: surviving weight + lost weight == n.
	s := rng.New(42)
	g, err := graph.RandomRegular(60, 6, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 60)
	for i := range p {
		p[i] = 0.4 + 0.5*s.Float64()
	}
	in, err := core.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	mech := mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(2)}
	d, err := mech.Apply(in, s.DeriveString("mech"))
	if err != nil {
		t.Fatal(err)
	}
	down := make([]bool, 60)
	for v := range down {
		down[v] = s.Bernoulli(0.2)
	}
	for _, pol := range Policies() {
		rec, err := ApplyPolicy(in, d, down, nil, pol, 0.05, s.DeriveString(pol.String()))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		res, err := rec.Resolve()
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.TotalWeight+rec.Lost != 60 {
			t.Errorf("%v: surviving %d + lost %d != 60", pol, res.TotalWeight, rec.Lost)
		}
		for _, sk := range res.Sinks {
			if down[sk] && res.Weight[sk] > 0 {
				t.Errorf("%v: down node %d holds weight %d", pol, sk, res.Weight[sk])
			}
		}
	}
}

func TestEvaluateUnderFaultsDeterministicAcrossWorkers(t *testing.T) {
	s := rng.New(5)
	g, err := graph.RandomRegular(50, 6, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 50)
	for i := range p {
		p[i] = 0.45 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	mech := mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(2)}
	run := func(workers int) *ElectionResult {
		t.Helper()
		opts := ElectionOptions{
			DownRate: 0.15,
			Policy:   FallbackToDirect,
			Alpha:    0.05,
		}
		opts.Replications = 16
		opts.Workers = workers
		opts.Seed = 77
		res, err := EvaluateUnderFaults(context.Background(), in, mech, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.PM != b.PM || a.PD != b.PD || a.MeanLost != b.MeanLost || a.MeanDown != b.MeanDown {
		t.Fatalf("worker count changed results: %+v vs %+v", a, b)
	}
	if a.PM <= 0 || a.PM >= 1 {
		t.Fatalf("implausible PM %v", a.PM)
	}
}
