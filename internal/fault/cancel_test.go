package fault

import (
	"context"
	"errors"
	"testing"

	"liquid/internal/localsim"
	"liquid/internal/rng"
)

// countdownCtx is a context that reports cancellation after its Err method
// has been polled n times — a deterministic way to cancel mid-simulation,
// since the network polls Err exactly once per round.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

// TestFaultyConvergecastCancelledMidPlan cancels the context in the middle
// of an active fault plan (crashes pending, partition unhealed) and checks
// the simulation stops with the context's error instead of running the
// plan to completion.
func TestFaultyConvergecastCancelledMidPlan(t *testing.T) {
	const n = 50
	in := propertyInstance(t, n, 29)
	plan, err := SamplePlan(n, PlanParams{
		CrashRate:     0.2,
		CrashWindow:   40,
		PartitionSize: 10,
		PartitionFrom: 2,
		PartitionHeal: 60,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	opts := localsim.ReliableFaultOptions{LossRate: 0.2, Faults: plan}

	// The uncancelled run takes many rounds; cancel a few rounds in.
	full, err := localsim.RunReliableDelegationFaulty(context.Background(), in, 0.03, localsim.ThresholdRule(nil), 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds < 10 {
		t.Fatalf("plan resolved in %d rounds; too fast to cancel mid-flight", full.Rounds)
	}
	ctx := &countdownCtx{Context: context.Background(), remaining: 5}
	if _, err := localsim.RunReliableDelegationFaulty(ctx, in, 0.03, localsim.ThresholdRule(nil), 5, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-plan cancellation returned %v, want context.Canceled", err)
	}

	// A pre-cancelled context aborts immediately as well.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := localsim.RunReliableDelegationFaulty(pre, in, 0.03, localsim.ThresholdRule(nil), 5, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	// Cancellation must not perturb a later uncancelled run at the same
	// seed (the plan carries its own streams, so reuse a fresh plan).
	plan2, err := SamplePlan(n, PlanParams{
		CrashRate:     0.2,
		CrashWindow:   40,
		PartitionSize: 10,
		PartitionFrom: 2,
		PartitionHeal: 60,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	again, err := localsim.RunReliableDelegationFaulty(context.Background(), in, 0.03, localsim.ThresholdRule(nil), 5,
		localsim.ReliableFaultOptions{LossRate: 0.2, Faults: plan2})
	if err != nil {
		t.Fatal(err)
	}
	if again.LiveTotal != full.LiveTotal || again.TrappedTotal != full.TrappedTotal || again.Rounds != full.Rounds {
		t.Fatalf("determinism broken after cancellation: %+v vs %+v", again, full)
	}
}
