package fault

import (
	"context"
	"fmt"
	"testing"

	"liquid/internal/core"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/rng"
)

func propertyInstance(t testing.TB, n int, seed uint64) *core.Instance {
	t.Helper()
	s := rng.New(seed)
	g, err := graph.RandomRegular(n, 8, s)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	in, err := core.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestFaultyConvergecastProperty is the headline robustness property: for
// any seeded random plan with crash rate < 1 and loss rate < 1, the
// crash-tolerant convergecast terminates and accounts for every one of the
// n weight units exactly — LiveTotal + TrappedTotal == n, weights are
// non-negative, crashed nodes hold nothing, and every live non-sink ends
// empty-handed.
func TestFaultyConvergecastProperty(t *testing.T) {
	const n = 50
	in := propertyInstance(t, n, 17)
	cases := []struct {
		loss, crash float64
		delay       int
		params      PlanParams
	}{
		{loss: 0, crash: 0.1},
		{loss: 0.2, crash: 0.1},
		{loss: 0.4, crash: 0.3, delay: 2},
		{loss: 0.2, crash: 0.05, params: PlanParams{PartitionSize: 10, PartitionFrom: 3, PartitionHeal: 20}},
		{loss: 0.3, crash: 0.2, delay: 1, params: PlanParams{PartitionSize: 8, PartitionFrom: 0, PartitionHeal: 0, DupRate: 0.2, ReorderRate: 0.5}},
		{loss: 0.5, crash: 0.5, delay: 1, params: PlanParams{DupRate: 0.3, ReorderRate: 1}},
	}
	for ci, c := range cases {
		for seed := uint64(1); seed <= 4; seed++ {
			name := fmt.Sprintf("case%d/seed%d", ci, seed)
			params := c.params
			params.CrashRate = c.crash
			plan, err := SamplePlan(n, params, rng.New(1000+seed))
			if err != nil {
				t.Fatal(err)
			}
			report, err := localsim.RunReliableDelegationFaulty(context.Background(), in, 0.03,
				localsim.ThresholdRule(nil), seed, localsim.ReliableFaultOptions{
					LossRate: c.loss,
					MaxDelay: c.delay,
					Faults:   plan,
				})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if report.LiveTotal+report.TrappedTotal != n {
				t.Errorf("%s: conservation broken: live %d + trapped %d != %d",
					name, report.LiveTotal, report.TrappedTotal, n)
			}
			for v, w := range report.Weights {
				if w < 0 {
					t.Errorf("%s: node %d has negative weight %d", name, v, w)
				}
				if report.Crashed[v] && w != 0 {
					t.Errorf("%s: crashed node %d reported weight %d", name, v, w)
				}
			}
			for _, v := range report.FellBack {
				if report.Crashed[v] {
					t.Errorf("%s: crashed node %d listed as fallen back", name, v)
				}
			}
			// Live nodes that still delegate must hold no weight: their
			// custody was transferred (or they fell back, which clears the
			// edge in the report's delegation view).
			for v := 0; v < n; v++ {
				if !report.Crashed[v] && report.Delegation.Delegate[v] != core.NoDelegate && report.Weights[v] != 0 {
					t.Errorf("%s: live delegator %d holds weight %d", name, v, report.Weights[v])
				}
			}
		}
	}
}

// TestFaultyConvergecastZeroFaultsMatchesReliable pins the compatibility
// guarantee: with no injected faults the crash-tolerant runner reproduces
// RunReliableDelegation bit for bit.
func TestFaultyConvergecastZeroFaultsMatchesReliable(t *testing.T) {
	in := propertyInstance(t, 60, 23)
	for _, loss := range []float64{0, 0.25} {
		want, err := localsim.RunReliableDelegation(context.Background(), in, 0.03, localsim.ThresholdRule(nil), 9, loss)
		if err != nil {
			t.Fatal(err)
		}
		got, err := localsim.RunReliableDelegationFaulty(context.Background(), in, 0.03,
			localsim.ThresholdRule(nil), 9, localsim.ReliableFaultOptions{LossRate: loss})
		if err != nil {
			t.Fatal(err)
		}
		if got.TrappedTotal != 0 || len(got.FellBack) != 0 || got.Reconciled != 0 {
			t.Fatalf("loss %v: zero-fault run reports trapped %d, fellback %v, reconciled %d",
				loss, got.TrappedTotal, got.FellBack, got.Reconciled)
		}
		if got.LiveTotal != in.N() {
			t.Fatalf("loss %v: LiveTotal %d, want %d", loss, got.LiveTotal, in.N())
		}
		for v := 0; v < in.N(); v++ {
			if want.Weights[v] != got.Weights[v] {
				t.Fatalf("loss %v: node %d weight %d vs reliable %d", loss, v, got.Weights[v], want.Weights[v])
			}
			if want.Delegation.Delegate[v] != got.Delegation.Delegate[v] {
				t.Fatalf("loss %v: node %d delegate %d vs reliable %d",
					loss, v, got.Delegation.Delegate[v], want.Delegation.Delegate[v])
			}
		}
	}
}

// TestFaultyConvergecastCrashedDelegateFallsBack checks the liveness
// timeout end to end on a hand-built scenario: a two-node chain whose
// delegate crashes before the handoff can be acknowledged.
func TestFaultyConvergecastCrashedDelegateFallsBack(t *testing.T) {
	in, err := core.NewInstance(graph.NewComplete(4), []float64{0.5, 0.6, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone who delegates picks their best approved neighbour: with
	// alpha 0.05 every voter approves 3, so the greedy rule would send all
	// units there. Crash 3 at round 0: nothing it is sent is ever
	// delivered, so all senders must time out and fall back.
	plan := NewPlan(4)
	if err := plan.CrashAt(3, 0); err != nil {
		t.Fatal(err)
	}
	report, err := localsim.RunReliableDelegationFaulty(context.Background(), in, 0.05,
		localsim.ThresholdRule(nil), 3, localsim.ReliableFaultOptions{Faults: plan, SuspectAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if report.LiveTotal+report.TrappedTotal != 4 {
		t.Fatalf("conservation broken: %d + %d != 4", report.LiveTotal, report.TrappedTotal)
	}
	if !report.Crashed[3] {
		t.Fatal("node 3 not reported crashed")
	}
	// Node 3's own unit is trapped; every live delegator to 3 must have
	// reclaimed its unit via fallback.
	if report.TrappedTotal != 1 {
		t.Fatalf("TrappedTotal = %d, want 1 (only the crashed node's own unit)", report.TrappedTotal)
	}
	live := 0
	for v := 0; v < 3; v++ {
		live += report.Weights[v]
	}
	if live != 3 {
		t.Fatalf("live nodes hold %d units, want 3", live)
	}
}
