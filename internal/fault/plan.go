// Package fault is the deterministic fault-injection layer: scheduled
// crash-stop failures, network partitions with heal rounds, message
// duplication and reordering for the LOCAL simulator, plus election-level
// sink-unavailability and abstention faults with pluggable recovery
// policies.
//
// Everything is driven by rng streams derived from a root seed, so a fault
// plan is a pure function of (seed, parameters): two runs with the same
// seed inject byte-identical faults regardless of scheduling or worker
// count.
package fault

import (
	"fmt"
	"sort"

	"liquid/internal/localsim"
	"liquid/internal/rng"
	"liquid/internal/telemetry"
)

// Injected-fault telemetry by kind, on the telemetry.Default registry.
// Scheduling counters tick when a plan is built; injection counters tick
// when a fault actually fires during simulation. Write-only with respect
// to results: no code in this package reads the counts back (telemflow).
var (
	cCrashesScheduled   = telemetry.NewCounter("fault/crashes_scheduled")
	cPartitionsAdded    = telemetry.NewCounter("fault/partitions_scheduled")
	cDuplicatesInjected = telemetry.NewCounter("fault/duplicates_injected")
	cReordersInjected   = telemetry.NewCounter("fault/reorders_injected")
)

// Partition severs a node set from the rest of the network for a window of
// rounds: messages crossing the boundary in either direction during
// [From, Heal) are dropped at send time. Heal <= From means the partition
// never heals.
type Partition struct {
	// Members lists the nodes on the minority side of the cut.
	Members []int
	// From is the first round the cut is active.
	From int
	// Heal is the first round the cut is no longer active; Heal <= From
	// means the partition is permanent.
	Heal int
}

// active reports whether the cut applies to messages sent during round.
func (p *Partition) active(round int) bool {
	if round < p.From {
		return false
	}
	return p.Heal <= p.From || round < p.Heal
}

// Plan is a deterministic fault schedule implementing
// localsim.FaultInjector. The zero value injects nothing; build plans with
// NewPlan and the setters, or sample one with SamplePlan.
type Plan struct {
	// crashRound[v] is the round from which node v is crash-stopped, or -1.
	crashRound []int
	partitions []Partition
	inside     []map[int]bool // inside[k][v]: v is a member of partition k

	dupRate   float64
	dupStream *rng.Stream

	reorderRate   float64
	reorderStream *rng.Stream
}

var _ localsim.FaultInjector = (*Plan)(nil)

// NewPlan returns an empty fault plan for an n-node network.
func NewPlan(n int) *Plan {
	p := &Plan{crashRound: make([]int, n)}
	for v := range p.crashRound {
		p.crashRound[v] = -1
	}
	return p
}

// N returns the network size the plan was built for.
func (p *Plan) N() int { return len(p.crashRound) }

// CrashAt schedules node v to crash-stop at round r: from round r on it
// executes no rounds, sends nothing, and receives nothing.
func (p *Plan) CrashAt(v, r int) error {
	if v < 0 || v >= len(p.crashRound) {
		return fmt.Errorf("fault: crash node %d out of range [0,%d)", v, len(p.crashRound))
	}
	if r < 0 {
		return fmt.Errorf("fault: negative crash round %d", r)
	}
	if cur := p.crashRound[v]; cur < 0 || r < cur {
		if cur < 0 {
			cCrashesScheduled.Inc()
		}
		p.crashRound[v] = r
	}
	return nil
}

// CrashedNodes returns the nodes with a scheduled crash, ascending.
func (p *Plan) CrashedNodes() []int {
	var out []int
	for v, r := range p.crashRound {
		if r >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// AddPartition schedules a partition.
func (p *Plan) AddPartition(part Partition) error {
	in := make(map[int]bool, len(part.Members))
	for _, v := range part.Members {
		if v < 0 || v >= len(p.crashRound) {
			return fmt.Errorf("fault: partition member %d out of range [0,%d)", v, len(p.crashRound))
		}
		in[v] = true
	}
	p.partitions = append(p.partitions, part)
	p.inside = append(p.inside, in)
	cPartitionsAdded.Inc()
	return nil
}

// SetDuplication makes each delivered message independently duplicated with
// probability rate, drawn from s.
func (p *Plan) SetDuplication(rate float64, s *rng.Stream) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("fault: duplication rate %v not in [0, 1)", rate)
	}
	if rate > 0 && s == nil {
		return fmt.Errorf("fault: duplication needs a random stream")
	}
	p.dupRate = rate
	p.dupStream = s
	return nil
}

// SetReordering makes each round's delivery batch independently shuffled
// with probability rate, drawn from s.
func (p *Plan) SetReordering(rate float64, s *rng.Stream) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("fault: reordering rate %v not in [0, 1]", rate)
	}
	if rate > 0 && s == nil {
		return fmt.Errorf("fault: reordering needs a random stream")
	}
	p.reorderRate = rate
	p.reorderStream = s
	return nil
}

// Crashed implements localsim.FaultInjector.
func (p *Plan) Crashed(node, round int) bool {
	if node < 0 || node >= len(p.crashRound) {
		return false
	}
	r := p.crashRound[node]
	return r >= 0 && round >= r
}

// Cut implements localsim.FaultInjector.
func (p *Plan) Cut(from, to, round int) bool {
	for k := range p.partitions {
		if p.partitions[k].active(round) && p.inside[k][from] != p.inside[k][to] {
			return true
		}
	}
	return false
}

// Duplicates implements localsim.FaultInjector.
func (p *Plan) Duplicates(_, _, _ int) int {
	if p.dupRate > 0 && p.dupStream.Bernoulli(p.dupRate) {
		cDuplicatesInjected.Inc()
		return 1
	}
	return 0
}

// Reorder implements localsim.FaultInjector.
func (p *Plan) Reorder(_ int, batch []localsim.Message) {
	if p.reorderRate == 0 || len(batch) < 2 {
		return
	}
	if !p.reorderStream.Bernoulli(p.reorderRate) {
		return
	}
	cReordersInjected.Inc()
	p.reorderStream.Shuffle(len(batch), func(i, j int) {
		batch[i], batch[j] = batch[j], batch[i]
	})
}

// PlanParams parameterizes SamplePlan.
type PlanParams struct {
	// CrashRate crashes each node independently with this probability, at a
	// round uniform in [0, CrashWindow).
	CrashRate float64
	// CrashWindow bounds crash rounds; 0 means 50.
	CrashWindow int
	// PartitionSize is the number of nodes severed from the rest; 0 means
	// no partition.
	PartitionSize int
	// PartitionFrom / PartitionHeal delimit the partition window
	// (PartitionHeal <= PartitionFrom means permanent).
	PartitionFrom, PartitionHeal int
	// DupRate / ReorderRate enable message duplication and batch
	// reordering.
	DupRate, ReorderRate float64
}

// SamplePlan draws a random fault plan from s. The plan's own streams for
// duplication and reordering are derived from s, so the plan is fully
// determined by the stream's seed and the parameters.
func SamplePlan(n int, params PlanParams, s *rng.Stream) (*Plan, error) {
	p := NewPlan(n)
	window := params.CrashWindow
	if window <= 0 {
		window = 50
	}
	if params.CrashRate > 0 {
		for v := 0; v < n; v++ {
			if s.Bernoulli(params.CrashRate) {
				if err := p.CrashAt(v, s.IntN(window)); err != nil {
					return nil, err
				}
			}
		}
	}
	if params.PartitionSize > 0 {
		size := params.PartitionSize
		if size > n {
			size = n
		}
		members := s.SampleWithoutReplacement(n, size)
		sort.Ints(members)
		if err := p.AddPartition(Partition{Members: members, From: params.PartitionFrom, Heal: params.PartitionHeal}); err != nil {
			return nil, err
		}
	}
	if err := p.SetDuplication(params.DupRate, s.DeriveString("dup")); err != nil {
		return nil, err
	}
	if err := p.SetReordering(params.ReorderRate, s.DeriveString("reorder")); err != nil {
		return nil, err
	}
	return p, nil
}
