package fault

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/rng"
)

// ElectionOptions configures EvaluateUnderFaults. The embedded
// election.Options carries Replications, VoteSamples, ExactCostLimit,
// Workers, and Seed with the same defaults.
type ElectionOptions struct {
	election.Options
	// DownRate marks each voter independently unavailable with this
	// probability (sink-unavailability fault).
	DownRate float64
	// AbstainRate additionally withdraws each voter's own unit with this
	// probability (abstention fault).
	AbstainRate float64
	// Policy is the recovery policy applied to the faulty graph.
	Policy Policy
	// Alpha is the approval margin used to validate Redelegate targets.
	Alpha float64
}

// ElectionResult summarizes a mechanism evaluation under election-level
// faults.
type ElectionResult struct {
	Mechanism string
	Policy    Policy
	N         int

	// PM is the probability the faulty mechanism outcome decides correctly,
	// averaged over mechanism and fault randomness (exact in the votes);
	// PMStdErr is its standard error.
	PM       float64
	PMStdErr float64
	// PD is the fault-free direct-voting baseline P^D(G), so
	// Gain = PM - PD measures how much of do-no-harm survives the faults.
	PD   float64
	Gain float64

	// MeanDown / MeanLost / MeanFellBack / MeanRedelegated average the
	// fault footprint per replication.
	MeanDown        float64
	MeanLost        float64
	MeanFellBack    float64
	MeanRedelegated float64
}

// Worker scratch pools; scratch never influences results (see
// prob.Workspace and core.Resolver), so pooling affects allocation only.
var (
	faultWSPool = sync.Pool{New: func() any { return prob.NewWorkspace() }}
	faultRVPool = sync.Pool{New: func() any { return new(core.Resolver) }}
)

// faultRep is the per-replication outcome.
type faultRep struct {
	pm          float64
	down        int
	lost        int
	fellBack    int
	redelegated int
	err         error
}

// evaluateFaultReplication runs one mechanism realization, injects faults,
// repairs with the policy, and scores the result.
func evaluateFaultReplication(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts ElectionOptions, s *rng.Stream, ws *prob.Workspace, rv *core.Resolver, cache *election.ScoreCache) faultRep {
	if err := ctx.Err(); err != nil {
		return faultRep{err: err}
	}
	d, err := mech.Apply(in, s.DeriveString("mechanism"))
	if err != nil {
		return faultRep{err: err}
	}
	n := in.N()
	var down, abstain []bool
	downCount := 0
	if opts.DownRate > 0 {
		ds := s.DeriveString("down")
		down = make([]bool, n)
		for v := range down {
			down[v] = ds.Bernoulli(opts.DownRate)
			if down[v] {
				downCount++
			}
		}
	}
	if opts.AbstainRate > 0 {
		as := s.DeriveString("abstain")
		abstain = make([]bool, n)
		for v := range abstain {
			abstain[v] = as.Bernoulli(opts.AbstainRate)
		}
	}
	rec, err := ApplyPolicy(in, d, down, abstain, opts.Policy, opts.Alpha, s.DeriveString("redelegate"))
	if err != nil {
		return faultRep{err: err}
	}
	res, err := rec.ResolveInto(rv)
	if err != nil {
		return faultRep{err: err}
	}
	var pm float64
	if int64(len(res.Sinks))*int64(res.TotalWeight) <= opts.ExactCostLimit {
		pm, err = election.ResolutionProbabilityExactCached(in, res, ws, cache)
	} else {
		pm, err = election.ResolutionProbabilityMC(ctx, in, res, opts.VoteSamples, s.DeriveString("votes"))
	}
	if err != nil {
		return faultRep{err: err}
	}
	return faultRep{
		pm:          pm,
		down:        downCount,
		lost:        rec.Lost,
		fellBack:    rec.FellBack,
		redelegated: rec.Redelegated,
	}
}

// SweepPoint is one fault-evaluation configuration of a sweep: a mechanism
// plus its full per-point options (the fault engine's points differ in
// rates and policies, not just seeds, so the whole option set is per-point).
type SweepPoint struct {
	Mechanism mechanism.Mechanism
	Opts      ElectionOptions
}

// EvaluateSweep evaluates points against one instance, sharing the
// resolution-score cache across every point. The cache memoizes pure
// functions of canonical voter multisets (see election/cache.go), so
// results are bit-identical to calling EvaluateUnderFaults once per point —
// which is exactly what that function now does, as a one-point sweep. The
// sharing is what makes the R1 grid cheap: policies repair the same
// realizations at a fixed rate (common random numbers), so their resolved
// multisets collide constantly across points.
func EvaluateSweep(ctx context.Context, in *core.Instance, points []SweepPoint) ([]*ElectionResult, error) {
	cache := election.NewScoreCache()
	results := make([]*ElectionResult, len(points))
	for i, pt := range points {
		res, err := evaluateFaultPoint(ctx, in, pt.Mechanism, pt.Opts, cache)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// EvaluateUnderFaults estimates P^M(G) under sink-unavailability and
// abstention faults repaired by the configured recovery policy, with the
// fault-free P^D(G) as the do-no-harm baseline. Replications run in
// parallel on independent streams derived only from (Seed, replication),
// so results are bit-identical regardless of Workers. It is a one-point
// sweep: batch related configurations through EvaluateSweep to share the
// exact-score cache across them.
func EvaluateUnderFaults(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts ElectionOptions) (*ElectionResult, error) {
	return evaluateFaultPoint(ctx, in, mech, opts, election.NewScoreCache())
}

// evaluateFaultPoint scores one fault configuration, memoizing exact
// resolution scores in cache (shared across a sweep's points; pure values,
// so sharing cannot change any result).
func evaluateFaultPoint(ctx context.Context, in *core.Instance, mech mechanism.Mechanism, opts ElectionOptions, cache *election.ScoreCache) (*ElectionResult, error) {
	if opts.Replications <= 0 {
		opts.Replications = 64
	}
	if opts.VoteSamples <= 0 {
		opts.VoteSamples = 2000
	}
	if opts.ExactCostLimit <= 0 {
		opts.ExactCostLimit = 1 << 23
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if in.N() == 0 {
		return nil, election.ErrNoVoters
	}
	if opts.DownRate < 0 || opts.DownRate >= 1 {
		return nil, fmt.Errorf("fault: down rate %v not in [0, 1)", opts.DownRate)
	}
	if opts.AbstainRate < 0 || opts.AbstainRate >= 1 {
		return nil, fmt.Errorf("fault: abstain rate %v not in [0, 1)", opts.AbstainRate)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	root := rng.New(opts.Seed)
	pd, err := election.DirectProbability(ctx, in, opts.VoteSamples*4, root.DeriveString("direct"))
	if err != nil {
		return nil, err
	}

	outs := make([]faultRep, opts.Replications)
	workers := opts.Workers
	if workers > opts.Replications {
		workers = opts.Replications
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch, shared score cache: cached scores are
			// bit-identical to recomputation, so sharing cannot perturb
			// results (see election/cache.go).
			ws := faultWSPool.Get().(*prob.Workspace)
			rv := faultRVPool.Get().(*core.Resolver)
			defer faultWSPool.Put(ws)
			defer faultRVPool.Put(rv)
			for r := range work {
				// Streams depend only on (seed, r): scheduling order cannot
				// change the outcome.
				outs[r] = evaluateFaultReplication(ctx, in, mech, opts, root.Derive(uint64(r)+1), ws, rv, cache)
			}
		}()
	}
feed:
	for r := 0; r < opts.Replications; r++ {
		select {
		case <-ctx.Done():
			break feed
		case work <- r:
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var pmSum prob.Summary
	result := &ElectionResult{Mechanism: mech.Name(), Policy: opts.Policy, N: in.N(), PD: pd}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		pmSum.Add(o.pm)
		result.MeanDown += float64(o.down)
		result.MeanLost += float64(o.lost)
		result.MeanFellBack += float64(o.fellBack)
		result.MeanRedelegated += float64(o.redelegated)
	}
	reps := float64(opts.Replications)
	result.MeanDown /= reps
	result.MeanLost /= reps
	result.MeanFellBack /= reps
	result.MeanRedelegated /= reps
	result.PM = pmSum.Mean()
	result.PMStdErr = pmSum.StdErr()
	result.Gain = result.PM - pd
	return result, nil
}
