package fault

import (
	"testing"

	"liquid/internal/localsim"
	"liquid/internal/rng"
)

func TestCrashStopIsMonotone(t *testing.T) {
	p := NewPlan(4)
	if err := p.CrashAt(2, 5); err != nil {
		t.Fatal(err)
	}
	for round, want := range map[int]bool{0: false, 4: false, 5: true, 6: true, 100: true} {
		if got := p.Crashed(2, round); got != want {
			t.Errorf("Crashed(2, %d) = %v, want %v", round, got, want)
		}
	}
	if p.Crashed(1, 50) {
		t.Error("node 1 never crashes")
	}
	// A second, earlier crash schedule wins; a later one is ignored.
	if err := p.CrashAt(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.CrashAt(2, 9); err != nil {
		t.Fatal(err)
	}
	if !p.Crashed(2, 3) || p.Crashed(2, 2) {
		t.Error("earliest crash round should win")
	}
	if got := p.CrashedNodes(); len(got) != 1 || got[0] != 2 {
		t.Errorf("CrashedNodes = %v, want [2]", got)
	}
	if err := p.CrashAt(7, 0); err == nil {
		t.Error("out-of-range crash node accepted")
	}
	if err := p.CrashAt(0, -1); err == nil {
		t.Error("negative crash round accepted")
	}
}

func TestPartitionWindowAndHeal(t *testing.T) {
	p := NewPlan(6)
	if err := p.AddPartition(Partition{Members: []int{0, 1}, From: 3, Heal: 7}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		from, to, round int
		want            bool
	}{
		{0, 2, 2, false}, // before the window
		{0, 2, 3, true},  // crossing, active
		{2, 0, 5, true},  // crossing the other way
		{0, 1, 5, false}, // same side
		{2, 3, 5, false}, // same side (majority)
		{0, 2, 7, false}, // healed
	}
	for _, c := range cases {
		if got := p.Cut(c.from, c.to, c.round); got != c.want {
			t.Errorf("Cut(%d,%d,%d) = %v, want %v", c.from, c.to, c.round, got, c.want)
		}
	}
	// Heal <= From means permanent.
	perm := NewPlan(4)
	if err := perm.AddPartition(Partition{Members: []int{3}, From: 2, Heal: 0}); err != nil {
		t.Fatal(err)
	}
	if !perm.Cut(3, 0, 1_000_000) {
		t.Error("permanent partition should never heal")
	}
	if err := perm.AddPartition(Partition{Members: []int{9}, From: 0, Heal: 0}); err == nil {
		t.Error("out-of-range partition member accepted")
	}
}

func TestDuplicationAndReordering(t *testing.T) {
	p := NewPlan(3)
	if err := p.SetDuplication(1.1, rng.New(1)); err == nil {
		t.Error("duplication rate > 1 accepted")
	}
	if err := p.SetDuplication(0.5, nil); err == nil {
		t.Error("duplication without stream accepted")
	}
	if err := p.SetDuplication(0.9, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	extra := 0
	for i := 0; i < 200; i++ {
		extra += p.Duplicates(0, 1, i)
	}
	if extra < 120 || extra > 200 {
		t.Errorf("dup rate 0.9 produced %d/200 extras", extra)
	}

	if err := p.SetReordering(-0.1, rng.New(2)); err == nil {
		t.Error("negative reordering rate accepted")
	}
	if err := p.SetReordering(1, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	batch := []localsim.Message{{From: 0, To: 1, Seq: 1}, {From: 1, To: 2, Seq: 2}, {From: 2, To: 0, Seq: 3}}
	changed := false
	for i := 0; i < 20 && !changed; i++ {
		p.Reorder(i, batch)
		changed = batch[0].Seq != 1 || batch[1].Seq != 2 || batch[2].Seq != 3
	}
	if !changed {
		t.Error("reordering at rate 1 never permuted a batch")
	}
}

func TestSamplePlanDeterministic(t *testing.T) {
	params := PlanParams{
		CrashRate:     0.3,
		CrashWindow:   20,
		PartitionSize: 5,
		PartitionFrom: 2,
		PartitionHeal: 12,
		DupRate:       0.1,
		ReorderRate:   0.2,
	}
	a, err := SamplePlan(30, params, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SamplePlan(30, params, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 30; v++ {
		for _, r := range []int{0, 5, 19, 40} {
			if a.Crashed(v, r) != b.Crashed(v, r) {
				t.Fatalf("crash schedule differs at node %d round %d", v, r)
			}
			if a.Cut(v, (v+1)%30, r) != b.Cut(v, (v+1)%30, r) {
				t.Fatalf("partition differs at node %d round %d", v, r)
			}
		}
	}
	c, err := SamplePlan(30, params, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < 30 && same; v++ {
		same = a.Crashed(v, 40) == c.Crashed(v, 40)
	}
	if same && len(a.CrashedNodes()) == len(c.CrashedNodes()) {
		// Identical crash sets across different seeds would be suspicious
		// but not impossible; require at least the partitions to differ.
		diff := false
		for v := 0; v < 30 && !diff; v++ {
			diff = a.Cut(v, (v+1)%30, 5) != c.Cut(v, (v+1)%30, 5)
		}
		if !diff {
			t.Error("two different seeds produced identical plans")
		}
	}
}
