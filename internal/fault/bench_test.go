package fault

import (
	"context"
	"testing"

	"liquid/internal/localsim"
	"liquid/internal/rng"
)

// benchFaultyRun is the shared body: one crash-tolerant convergecast on a
// random 8-regular graph of n nodes under the given plan parameters and
// 20% message loss.
func benchFaultyRun(b *testing.B, n int, params PlanParams) {
	in := propertyInstance(b, n, 97)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := SamplePlan(n, params, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := localsim.RunReliableDelegationFaulty(context.Background(), in, 0.03,
			localsim.ThresholdRule(nil), uint64(i)+1,
			localsim.ReliableFaultOptions{LossRate: 0.2, Faults: plan})
		if err != nil {
			b.Fatal(err)
		}
		if rep.LiveTotal+rep.TrappedTotal != n {
			b.Fatalf("conservation broken: %d + %d != %d", rep.LiveTotal, rep.TrappedTotal, n)
		}
	}
}

// BenchmarkReliableUnderFaults measures the reliable delegation protocol
// under the headline fault mix: 10% crash-stop nodes and 20% message loss.
func BenchmarkReliableUnderFaults(b *testing.B) {
	benchFaultyRun(b, 200, PlanParams{CrashRate: 0.10, CrashWindow: 20})
}

// BenchmarkReliableFaultFree is the baseline: same protocol and loss rate,
// empty fault plan.
func BenchmarkReliableFaultFree(b *testing.B) {
	benchFaultyRun(b, 200, PlanParams{})
}
