package fault

import (
	"fmt"

	"liquid/internal/core"
	"liquid/internal/rng"
)

// Policy selects how a delegation graph recovers when nodes become
// unavailable after delegation but before votes are cast.
type Policy int

const (
	// LoseWeight drops every vote unit whose delegation chain passes
	// through an unavailable node — the pessimistic baseline with no
	// recovery at all.
	LoseWeight Policy = iota
	// FallbackToDirect stops each unit at the last available node on its
	// chain, which then votes directly — the election-level counterpart of
	// the convergecast liveness-timeout fallback.
	FallbackToDirect
	// Redelegate rewrites each edge into an unavailable node to a uniformly
	// random approved available neighbour, falling back to a direct vote
	// when no such neighbour exists.
	Redelegate
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LoseWeight:
		return "lose-weight"
	case FallbackToDirect:
		return "fallback-to-direct"
	case Redelegate:
		return "redelegate"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Policies lists all recovery policies in presentation order.
func Policies() []Policy { return []Policy{LoseWeight, FallbackToDirect, Redelegate} }

// Recovery is the outcome of applying a recovery policy: the repaired
// delegation graph plus the per-voter weights that survive (0 for lost
// units), ready for core.ResolveWithWeights.
type Recovery struct {
	// Graph is the repaired delegation graph over all n voters; unavailable
	// voters appear as direct voters with zero weight.
	Graph *core.DelegationGraph
	// Weights[v] is voter v's surviving initial weight (0 or 1).
	Weights []int
	// Lost counts vote units destroyed by the faults under this policy.
	Lost int
	// FellBack counts voters whose edge was cut to a direct vote.
	FellBack int
	// Redelegated counts voters whose edge was rewritten to a new
	// delegate (Redelegate policy only).
	Redelegated int
}

// Resolve resolves the repaired graph with the surviving weights.
func (r *Recovery) Resolve() (*core.Resolution, error) {
	return r.Graph.ResolveWithWeights(r.Weights)
}

// ResolveInto is Resolve with caller-provided resolver scratch; see
// core.Resolver for the aliasing rules.
func (r *Recovery) ResolveInto(rv *core.Resolver) (*core.Resolution, error) {
	return rv.ResolveWithWeights(r.Graph, r.Weights)
}

// ApplyPolicy repairs the delegation graph d on instance in under the given
// fault sets: down[v] marks voter v unavailable (a crashed sink or an
// unreachable delegate — its own unit is always lost), abstain[v] marks a
// voter that withdraws its own unit but still relays delegated weight
// (Section 6 semantics). Either slice may be nil. The redelegation stream s
// is only consulted by the Redelegate policy; alpha is the approval margin
// used to validate redelegation targets.
//
// With alpha > 0 redelegation preserves acyclicity (approval is strictly
// competence-increasing), so Recovery.Resolve cannot fail; with alpha == 0
// a redelegation cycle is reported by Resolve.
func ApplyPolicy(in *core.Instance, d *core.DelegationGraph, down, abstain []bool, policy Policy, alpha float64, s *rng.Stream) (*Recovery, error) {
	n := d.N()
	if in.N() != n {
		return nil, fmt.Errorf("fault: delegation graph size %d vs instance %d", n, in.N())
	}
	if down != nil && len(down) != n {
		return nil, fmt.Errorf("fault: %d down flags for %d voters", len(down), n)
	}
	if abstain != nil && len(abstain) != n {
		return nil, fmt.Errorf("fault: %d abstain flags for %d voters", len(abstain), n)
	}
	isDown := func(v int) bool { return down != nil && down[v] }

	rec := &Recovery{
		Graph:   core.NewDelegationGraph(n),
		Weights: make([]int, n),
	}
	for v := 0; v < n; v++ {
		rec.Weights[v] = 1
		if isDown(v) || (abstain != nil && abstain[v]) {
			rec.Weights[v] = 0
			rec.Lost++
		}
	}

	for v := 0; v < n; v++ {
		target := d.Delegate[v]
		if isDown(v) || target == core.NoDelegate {
			// Unavailable voters relay nothing; available direct voters
			// stay direct.
			continue
		}
		if !isDown(target) {
			if err := rec.Graph.SetDelegate(v, target); err != nil {
				return nil, err
			}
			continue
		}
		switch policy {
		case LoseWeight:
			// The edge leads into a dead chain segment: everything v holds
			// (its own unit and anything delegated to it) is lost. Keeping
			// the edge and zeroing weights below would miss upstream units,
			// so chains into down nodes are zeroed in a second pass.
			if err := rec.Graph.SetDelegate(v, target); err != nil {
				return nil, err
			}
		case FallbackToDirect:
			rec.FellBack++
		case Redelegate:
			u := pickRedelegate(in, v, alpha, isDown, s)
			if u == core.NoDelegate {
				rec.FellBack++
				continue
			}
			if err := rec.Graph.SetDelegate(v, u); err != nil {
				return nil, err
			}
			rec.Redelegated++
		default:
			return nil, fmt.Errorf("fault: unknown policy %v", policy)
		}
	}

	if policy == LoseWeight {
		// Zero out every unit whose chain reaches a down node. Chains are
		// acyclic, so a simple memoized walk suffices.
		dead := make([]int8, n) // 0 unknown, 1 dead, 2 alive
		var classify func(v int) int8
		classify = func(v int) int8 {
			if dead[v] != 0 {
				return dead[v]
			}
			if isDown(v) {
				dead[v] = 1
				return 1
			}
			t := rec.Graph.Delegate[v]
			if t == core.NoDelegate {
				dead[v] = 2
				return 2
			}
			dead[v] = classify(t)
			return dead[v]
		}
		for v := 0; v < n; v++ {
			if classify(v) == 1 && rec.Weights[v] != 0 {
				rec.Weights[v] = 0
				rec.Lost++
			}
		}
	}
	return rec, nil
}

// pickRedelegate returns a uniformly random approved available neighbour of
// v, or core.NoDelegate if none exists.
func pickRedelegate(in *core.Instance, v int, alpha float64, isDown func(int) bool, s *rng.Stream) int {
	var candidates []int
	for _, u := range in.Topology().Neighbors(v) {
		if !isDown(u) && in.Approves(v, u, alpha) {
			candidates = append(candidates, u)
		}
	}
	if len(candidates) == 0 {
		return core.NoDelegate
	}
	return candidates[s.IntN(len(candidates))]
}
