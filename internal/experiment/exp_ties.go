package experiment

import (
	"context"
	"math"

	"liquid/internal/graph"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runA5 quantifies how much the paper's ties-lose rule (Section 2.2)
// matters: for even electorates the three tie rules differ by exactly the
// tie probability, which shrinks like 1/sqrt(n) for direct voting — so the
// modelling choice is asymptotically irrelevant, as the paper implicitly
// assumes.
func runA5(ctx context.Context, cfg Config) (*Outcome, error) {
	root := rng.New(cfg.Seed)
	sizes := dedupeSizes([]int{10, 40, 160, 640, cfg.scaleInt(2560, 640)})

	tab := report.NewTable("Ablation A5: tie-breaking rule (direct voting, even n, p in [0.4, 0.6])",
		"n", "P(tie)", "P ties-lose", "P ties-win", "P ties-coin", "spread", "spread * sqrt(n)")

	spreads := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		in, err := uniformInstance(graph.NewComplete(n), 0.4, 0.6, root.Derive(uint64(n)))
		if err != nil {
			return nil, err
		}
		voters := make([]prob.WeightedVoter, n)
		for i := range voters {
			voters[i] = prob.WeightedVoter{Weight: 1, P: in.Competency(i)}
		}
		wm, err := prob.NewWeightedMajority(voters)
		if err != nil {
			return nil, err
		}
		lose := wm.ProbCorrectDecisionRule(prob.TiesLose)
		win := wm.ProbCorrectDecisionRule(prob.TiesWin)
		coin := wm.ProbCorrectDecisionRule(prob.TiesCoin)
		tie := wm.ProbTie()
		spread := win - lose
		spreads = append(spreads, spread)
		tab.AddRow(report.Itoa(n), report.G(tie), report.F(lose), report.F(win),
			report.F(coin), report.G(spread), report.F(spread*math.Sqrt(float64(n))))

		// Internal consistency: spread equals the tie probability, coin sits
		// exactly between.
		if math.Abs(spread-tie) > 1e-12 || math.Abs(coin-(lose+win)/2) > 1e-12 {
			return nil, errf("tie-rule identities violated at n=%d", n)
		}
	}

	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("tie-rule spread shrinks with n", isNonIncreasing(spreads, 1e-6),
				"spreads %v", spreads),
			check("spread is negligible at the largest n", spreads[len(spreads)-1] < 0.04,
				"spread %v", spreads[len(spreads)-1]),
		},
	}, nil
}
