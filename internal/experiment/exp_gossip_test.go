package experiment

import (
	"context"
	"testing"
)

// TestX12AcrossSeedsSmallScale guards against seed-sensitive gossip
// convergence regressions (quantization noise once stalled rare seeds).
func TestX12AcrossSeedsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := uint64(1); seed <= 6; seed++ {
		out, err := Run(context.Background(), "X12", Config{Seed: seed, Scale: 0.1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if failed := out.Failed(); len(failed) > 0 {
			t.Errorf("seed %d failed: %v", seed, failed)
		}
	}
}
