package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runF1 reproduces Figure 1: the star topology with a competent center
// (p = 2/3) and slightly weaker leaves (p = 3/5). Direct voting tends to
// certainty as n grows; any delegate-to-strictly-better mechanism funnels
// every vote to the center, fixing P^M at exactly 2/3.
func runF1(ctx context.Context, cfg Config) (*Outcome, error) {
	sizes := dedupeSizes([]int{9, 33, 101, 501, cfg.scaleInt(2001, 501)})
	tab := newGainTable("Figure 1: star with center p=2/3, leaves p=3/5 (greedy delegation)")

	var (
		gains   []float64
		lastPD  float64
		lastPM  float64
		checkPM = true
	)
	for _, n := range sizes {
		top, err := graph.Star(n)
		if err != nil {
			return nil, err
		}
		p := make([]float64, n)
		p[0] = 2.0 / 3
		for i := 1; i < n; i++ {
			p[i] = 3.0 / 5
		}
		in, err := core.NewInstance(top, p)
		if err != nil {
			return nil, err
		}
		res, err := election.EvaluateMechanism(ctx, in, mechanism.GreedyBest{Alpha: 0.01}, election.Options{
			Replications: 4, // the mechanism is deterministic here
			Seed:         cfg.Seed,
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		addGainRow(tab, n, res)
		gains = append(gains, res.Gain)
		lastPD, lastPM = res.PD, res.PM
		if math.Abs(res.PM-2.0/3) > 1e-9 {
			checkPM = false
		}
	}

	return &Outcome{
		Replications: 4,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("delegation fixes P^M at 2/3", checkPM, "last P^M = %.4f", lastPM),
			check("direct voting tends to 1", lastPD > 0.99, "last P^D = %.4f", lastPD),
			check("loss approaches 1/3", math.Abs(gains[len(gains)-1]+(lastPD-2.0/3)) < 1e-9 && gains[len(gains)-1] < -0.3,
				"last gain = %.4f", gains[len(gains)-1]),
			check("loss grows with n (negative gain monotone)", isNonIncreasing(gains, 1e-9),
				"gains = %v", gains),
		},
	}, nil
}

// runF2 reproduces the Figure 2 example: nine voters with the printed
// competencies, alpha = 0.01, Algorithm 1 with threshold j = 0, on the
// complete graph. The output is one realized delegation graph plus its
// resolution, with the structural facts the figure illustrates verified.
func runF2(ctx context.Context, cfg Config) (*Outcome, error) {
	p := []float64{0.8, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1}
	const alpha = 0.01
	in, err := core.NewInstance(graph.NewComplete(len(p)), p)
	if err != nil {
		return nil, err
	}
	s := rng.New(cfg.Seed)
	mech := mechanism.ApprovalThreshold{Alpha: alpha}
	d, err := mech.Apply(in, s)
	if err != nil {
		return nil, err
	}
	res, err := d.Resolve()
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Figure 2: realized delegation graph (alpha=0.01, threshold 0)",
		"voter", "p", "|J(i)|", "delegates to", "sink", "sink weight")
	for i := range p {
		target := "-"
		if d.Delegate[i] != core.NoDelegate {
			target = fmt.Sprintf("v%d", d.Delegate[i]+1)
		}
		w := ""
		if res.SinkOf[i] == i {
			w = report.Itoa(res.Weight[i])
		}
		tab.AddRow(
			fmt.Sprintf("v%d", i+1),
			report.F(p[i]),
			report.Itoa(in.ApprovalCount(i, alpha)),
			target,
			fmt.Sprintf("v%d", res.SinkOf[i]+1),
			w,
		)
	}

	pm, err := election.ResolutionProbabilityExact(in, res)
	if err != nil {
		return nil, err
	}
	pd, err := election.DirectProbabilityExact(in)
	if err != nil {
		return nil, err
	}
	summary := report.NewTable("Figure 2: outcome", "quantity", "value")
	summary.AddRow("P^D (direct)", report.F(pd))
	summary.AddRow("P^M (delegation)", report.F(pm))
	summary.AddRow("gain", report.F(pm-pd))
	summary.AddRow("sinks", report.Itoa(len(res.Sinks)))
	summary.AddRow("max weight", report.Itoa(res.MaxWeight))
	summary.AddRow("longest chain", report.Itoa(res.LongestChain))

	everyEligibleDelegated := true
	for i := range p {
		if in.ApprovalCount(i, alpha) > 0 && d.Delegate[i] == core.NoDelegate {
			everyEligibleDelegated = false
		}
	}
	localErr := d.ValidateLocal(in, alpha)

	return &Outcome{
		Replications: 1,
		Tables:       []*report.Table{tab, summary},
		Checks: []Check{
			check("delegation graph is acyclic", true, "longest chain %d", res.LongestChain),
			check("all delegations approved and local", localErr == nil, "%v", localErr),
			check("every voter with nonempty J(i) delegates (threshold 0)", everyEligibleDelegated, ""),
			check("top voter v1 is a sink", res.SinkOf[0] == 0, "sink of v1 = v%d", res.SinkOf[0]+1),
			check("delegation beats direct voting on this instance", pm > pd, "P^M=%.4f P^D=%.4f", pm, pd),
		},
	}, nil
}
