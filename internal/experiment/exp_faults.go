package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/fault"
	"liquid/internal/graph"
	"liquid/internal/localsim"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// The R-series experiments quantify robustness: how much of the paper's
// do-no-harm guarantee survives when voters fail. R1 works at the election
// level (sink unavailability and abstention repaired by recovery policies,
// scored by the exact engine); R2 works at the protocol level (crash-stop
// nodes and partitions injected into the reliable convergecast).

// faultTopo is one topology/mechanism pairing for the robustness sweeps,
// mirroring the Theorem 2/3/4 settings.
type faultTopo struct {
	name  string
	build func(n int, s *rng.Stream) (graph.Topology, error)
	mech  func(n int) mechanism.Mechanism
}

func faultTopologies() []faultTopo {
	return []faultTopo{
		{
			name:  "K_n",
			build: func(n int, _ *rng.Stream) (graph.Topology, error) { return graph.NewComplete(n), nil },
			mech: func(n int) mechanism.Mechanism {
				j := int(math.Ceil(math.Cbrt(float64(n))))
				return mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(j)}
			},
		},
		{
			name: "Rand(n,16)",
			build: func(n int, s *rng.Stream) (graph.Topology, error) {
				return graph.RandomRegular(n, 16, s)
			},
			mech: func(n int) mechanism.Mechanism {
				return mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(2)}
			},
		},
		{
			name: "bounded-deg",
			build: func(n int, s *rng.Stream) (graph.Topology, error) {
				maxDeg := int(math.Ceil(math.Pow(float64(n), 0.45)))
				return graph.RandomBoundedDegree(n, maxDeg, 8*n, s)
			},
			mech: func(n int) mechanism.Mechanism {
				return mechanism.ApprovalThreshold{Alpha: 0.05}
			},
		},
	}
}

// r1Regime is one competency range of the availability-fault sweep. The
// two regimes separate the two faces of recovery: when delegators are
// barely better than coin flips, a recovered direct vote adds variance and
// almost no signal (the paper's variance argument, in reverse), so
// dropping stranded weight matches recovering it; when every voter is
// solidly competent, recovered weight carries real signal and the
// recovery policies dominate lose-weight.
type r1Regime struct {
	name     string
	pLo, pHi float64
}

// runR1 sweeps sink-unavailability (and one abstention point) across the
// three recovery policies in both regimes. The election seed deliberately
// excludes the policy, so at a fixed (regime, topology, rate) all three
// policies repair the same mechanism realizations and the same fault
// draws: the policy comparison is paired (common random numbers), and at
// zero faults the three policies must agree bit-for-bit with each other
// and with the fault-free election engine.
func runR1(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(301, 151)
	reps := cfg.scaleInt(32, 8)
	downRates := []float64{0, 0.10, 0.20, 0.30}
	maxDown := downRates[len(downRates)-1]
	policies := fault.Policies()
	regimes := []r1Regime{
		{name: "coin-flip", pLo: 0.50, pHi: 0.58},
		{name: "competent", pLo: 0.55, pHi: 0.63},
	}

	root := rng.New(cfg.Seed)
	var tables []*report.Table
	var checks []Check
	// edges[regime] sums (policy PM - lose-weight PM) at the heaviest
	// rate across topologies; hurts[regime] sums lose-weight degradation.
	edges := map[string]map[fault.Policy]float64{}
	hurts := map[string]float64{}
	meanDownOK := true
	meanDownDetail := ""
	abstainDelta := 0.0

	for _, reg := range regimes {
		tab := report.NewTable(
			fmt.Sprintf("R1: availability faults, %s regime (n=%d, p in [%g, %g], %d reps)", reg.name, n, reg.pLo, reg.pHi, reps),
			"topology", "policy", "down", "abstain", "P^D", "P^M", "std err", "loss", "lost units", "fellback", "redelegated")
		tables = append(tables, tab)
		addRow := func(tp faultTopo, pol fault.Policy, down, abstain float64, res *fault.ElectionResult) {
			tab.AddRow(tp.name, pol.String(), report.F2(down), report.F2(abstain),
				report.F(res.PD), report.F(res.PM), report.F(res.PMStdErr), report.F(res.PD-res.PM),
				report.F2(res.MeanLost), report.F2(res.MeanFellBack), report.F2(res.MeanRedelegated))
		}
		edges[reg.name] = map[fault.Policy]float64{}

		for _, tp := range faultTopologies() {
			top, err := tp.build(n, root.DeriveString("top:"+reg.name+":"+tp.name))
			if err != nil {
				return nil, err
			}
			in, err := uniformInstance(top, reg.pLo, reg.pHi, root.DeriveString("inst:"+reg.name+":"+tp.name))
			if err != nil {
				return nil, err
			}
			mech := tp.mech(n)
			pmAt := map[float64]map[fault.Policy]float64{}

			// Fault-free baseline from the standard election engine, at
			// the same seed the zero-fault row uses.
			base, err := election.EvaluateMechanism(ctx, in, mech, election.Options{
				Replications: reps,
				Seed:         rng.Derive(cfg.Seed, "R1", reg.name, tp.name, "down=0"),
				Workers:      cfg.Workers,
			})
			if err != nil {
				return nil, err
			}

			// The whole rate x policy grid (plus the abstention point in the
			// coin-flip regime) is one sweep sharing an exact-score cache.
			// The per-point seeds are derived exactly as the old per-point
			// calls derived them — in particular they still exclude the
			// policy, so the CRN pairing and the zero-fault bit-identity
			// checks below are untouched.
			var points []fault.SweepPoint
			for _, q := range downRates {
				for _, pol := range policies {
					points = append(points, fault.SweepPoint{
						Mechanism: mech,
						Opts: fault.ElectionOptions{
							Options: election.Options{
								Replications: reps,
								Seed:         rng.Derive(cfg.Seed, "R1", reg.name, tp.name, fmt.Sprintf("down=%g", q)),
								Workers:      cfg.Workers,
							},
							DownRate: q,
							Policy:   pol,
							Alpha:    0.05,
						},
					})
				}
			}
			if reg.name == "coin-flip" {
				// One abstention point on top of availability faults,
				// fallback policy: withdrawing units must not raise P^M.
				points = append(points, fault.SweepPoint{
					Mechanism: mech,
					Opts: fault.ElectionOptions{
						Options: election.Options{
							Replications: reps,
							Seed:         rng.Derive(cfg.Seed, "R1", reg.name, tp.name, "down=0.1+abstain"),
							Workers:      cfg.Workers,
						},
						DownRate:    0.10,
						AbstainRate: 0.10,
						Policy:      fault.FallbackToDirect,
						Alpha:       0.05,
					},
				})
			}
			sweep, err := evaluateFaultPoints(ctx, cfg, in, points)
			if err != nil {
				return nil, err
			}

			k := 0
			for _, q := range downRates {
				pmAt[q] = map[fault.Policy]float64{}
				for _, pol := range policies {
					res := sweep[k]
					k++
					addRow(tp, pol, q, 0, res)
					pmAt[q][pol] = res.PM
					// The injected fault footprint should match the
					// configured rate within Monte-Carlo noise.
					want := q * float64(n)
					slack := 5 * math.Sqrt(float64(n)*q*(1-q)/float64(reps))
					if math.Abs(res.MeanDown-want) > slack+1e-9 {
						meanDownOK = false
						meanDownDetail = fmt.Sprintf("%s/%s down=%g: mean down %.2f, want %.2f±%.2f",
							reg.name, tp.name, q, res.MeanDown, want, slack)
					}
				}
			}
			if reg.name == "coin-flip" {
				abst := sweep[k]
				addRow(tp, fault.FallbackToDirect, 0.10, 0.10, abst)
				abstainDelta += abst.PM - pmAt[0.10][fault.FallbackToDirect]
			}

			zero := pmAt[0]
			checks = append(checks,
				check(fmt.Sprintf("%s/%s: zero-fault P^M bit-identical to the election engine", reg.name, tp.name),
					zero[fault.LoseWeight] == base.PM,
					"faults engine %.6f vs election engine %.6f", zero[fault.LoseWeight], base.PM),
				check(fmt.Sprintf("%s/%s: policies agree bit-for-bit at zero faults", reg.name, tp.name),
					zero[fault.LoseWeight] == zero[fault.FallbackToDirect] &&
						zero[fault.LoseWeight] == zero[fault.Redelegate],
					"lose-weight %.6f, fallback %.6f, redelegate %.6f",
					zero[fault.LoseWeight], zero[fault.FallbackToDirect], zero[fault.Redelegate]),
			)
			hurts[reg.name] += zero[fault.LoseWeight] - pmAt[maxDown][fault.LoseWeight]
			for _, pol := range []fault.Policy{fault.FallbackToDirect, fault.Redelegate} {
				edges[reg.name][pol] += pmAt[maxDown][pol] - pmAt[maxDown][fault.LoseWeight]
			}
		}
	}

	checks = append(checks,
		check("lose-weight: availability faults degrade P^M in both regimes",
			hurts["coin-flip"] > 0 && hurts["competent"] > 0,
			"summed degradation at down=%.2f: coin-flip %.4f, competent %.4f",
			maxDown, hurts["coin-flip"], hurts["competent"]),
		check("coin-flip regime: recovering near-1/2 voters is worth no more than dropping them",
			math.Abs(edges["coin-flip"][fault.FallbackToDirect]) <= 0.05,
			"summed fallback edge over lose-weight: %.4f", edges["coin-flip"][fault.FallbackToDirect]),
		check("competent regime: fallback-to-direct dominates lose-weight",
			edges["competent"][fault.FallbackToDirect] > 0,
			"summed edge over lose-weight: %.4f", edges["competent"][fault.FallbackToDirect]),
		check("redelegation stays within a narrow band of lose-weight (concentration offsets recovered signal)",
			math.Abs(edges["coin-flip"][fault.Redelegate]) <= 0.05 &&
				math.Abs(edges["competent"][fault.Redelegate]) <= 0.05,
			"summed edges over lose-weight: coin-flip %.4f, competent %.4f",
			edges["coin-flip"][fault.Redelegate], edges["competent"][fault.Redelegate]),
		check("abstention does not raise P^M", abstainDelta <= 0.01,
			"summed P^M shift from 10%% abstention: %.4f", abstainDelta),
		check("fault injection hits the configured rate", meanDownOK, "%s", meanDownDetail),
	)

	return &Outcome{
		Replications: reps,
		Tables:       tables,
		Checks:       checks,
	}, nil
}

// resolutionFromFaultReport turns the surviving weights of a faulty
// convergecast into a core.Resolution so the exact engine can score the
// election the failed protocol actually produced.
func resolutionFromFaultReport(rep *localsim.FaultReport) *core.Resolution {
	res := &core.Resolution{Weight: rep.Weights, TotalWeight: rep.LiveTotal}
	for v, w := range rep.Weights {
		if w > 0 {
			res.Sinks = append(res.Sinks, v)
			if w > res.MaxWeight {
				res.MaxWeight = w
			}
		}
	}
	return res
}

// r2Cell is one fault configuration of the protocol-level sweep.
type r2Cell struct {
	name   string
	params fault.PlanParams
	// benign cells (no faults, or a partition healed well inside the
	// liveness timeout) must reproduce the fault-free protocol exactly.
	benign bool
}

// runR2 injects crash-stop faults, partitions, duplication and reordering
// into the reliable convergecast and accounts for every weight unit: live
// plus trapped must equal n at every point, benign plans must reproduce
// the fault-free run bit-for-bit, and the exact engine scores P^M of the
// election each degraded run actually delivered.
func runR2(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(96, 48)
	trials := cfg.scaleInt(5, 3)
	const (
		alpha    = 0.03
		lossRate = 0.2
		pLo, pHi = 0.50, 0.58
	)
	cells := []r2Cell{
		{name: "none", params: fault.PlanParams{}, benign: true},
		{name: "crash=0.10", params: fault.PlanParams{CrashRate: 0.10, CrashWindow: 15}},
		{name: "crash=0.30", params: fault.PlanParams{CrashRate: 0.30, CrashWindow: 15}},
		{name: "part n/4 healed", params: fault.PlanParams{PartitionSize: n / 4, PartitionFrom: 2, PartitionHeal: 12}, benign: true},
		{name: "part n/4 perm", params: fault.PlanParams{PartitionSize: n / 4, PartitionFrom: 2, PartitionHeal: 2}},
		{name: "crash=0.10+dup+reorder", params: fault.PlanParams{CrashRate: 0.10, CrashWindow: 15, DupRate: 0.2, ReorderRate: 0.5}},
	}

	root := rng.New(cfg.Seed)
	tab := report.NewTable(
		fmt.Sprintf("R2: reliable convergecast under crash faults and partitions (n=%d, loss=%.2f, %d trials)", n, lossRate, trials),
		"topology", "faults", "live", "trapped", "fellback", "reconciled", "rounds", "msgs", "dup", "P^M|faults")

	conserved := true
	conservedDetail := ""
	benignExact := true
	benignDetail := ""
	// Shared exact-scoring scratch and memo across cells and trials; cached
	// scores are bit-identical to recomputation (see election/cache.go).
	ws := prob.NewWorkspace()
	scores := election.NewScoreCache()
	trappedByCell := map[string]int{}
	fellBackByCell := map[string]int{}
	duplicatedByCell := map[string]int{}
	pmByCell := map[string]float64{}

	for _, tp := range faultTopologies() {
		top, err := tp.build(n, root.DeriveString("top:"+tp.name))
		if err != nil {
			return nil, err
		}
		in, err := uniformInstance(top, pLo, pHi, root.DeriveString("inst:"+tp.name))
		if err != nil {
			return nil, err
		}
		for _, cell := range cells {
			var live, trapped, fellBack, reconciled, rounds, msgs, dup int
			var pmSum float64
			for t := 0; t < trials; t++ {
				// The trial seed deliberately excludes the cell name: every
				// cell degrades the same (topology, trial) realization, so
				// cell-to-cell comparisons (crash=0.30 vs none) are paired
				// by common random numbers rather than drowned in
				// realization noise.
				seed := rng.Derive(cfg.Seed, "R2", tp.name, fmt.Sprintf("trial=%d", t))
				plan, err := fault.SamplePlan(n, cell.params, rng.New(rng.Derive(seed, "plan")))
				if err != nil {
					return nil, err
				}
				runSeed := rng.Derive(seed, "run")
				rep, err := localsim.RunReliableDelegationFaulty(ctx, in, alpha, localsim.ThresholdRule(nil), runSeed,
					localsim.ReliableFaultOptions{LossRate: lossRate, Faults: plan})
				if err != nil {
					return nil, err
				}
				if rep.LiveTotal+rep.TrappedTotal != n {
					conserved = false
					conservedDetail = fmt.Sprintf("%s %s trial %d: live %d + trapped %d != %d",
						tp.name, cell.name, t, rep.LiveTotal, rep.TrappedTotal, n)
				}
				if cell.benign {
					// The same seed through the fault-free runner must give
					// the same weights: benign plans do no harm, exactly.
					plain, err := localsim.RunReliableDelegation(ctx, in, alpha, localsim.ThresholdRule(nil), runSeed, lossRate)
					if err != nil {
						return nil, err
					}
					same := rep.TrappedTotal == 0 && len(rep.FellBack) == 0
					for v := 0; same && v < n; v++ {
						same = rep.Weights[v] == plain.Weights[v]
					}
					if !same {
						benignExact = false
						benignDetail = fmt.Sprintf("%s %s trial %d diverged from the fault-free run", tp.name, cell.name, t)
					}
				}
				pm, err := election.ResolutionProbabilityExactCached(in, resolutionFromFaultReport(rep), ws, scores)
				if err != nil {
					return nil, err
				}
				pmSum += pm
				live += rep.LiveTotal
				trapped += rep.TrappedTotal
				fellBack += len(rep.FellBack)
				reconciled += rep.Reconciled
				rounds += rep.Rounds
				msgs += rep.Messages
				dup += rep.Duplicated
			}
			ft := float64(trials)
			tab.AddRow(tp.name, cell.name,
				report.F2(float64(live)/ft), report.F2(float64(trapped)/ft),
				report.F2(float64(fellBack)/ft), report.F2(float64(reconciled)/ft),
				report.F2(float64(rounds)/ft), report.Itoa(msgs/trials),
				report.F2(float64(dup)/ft), report.F(pmSum/ft))
			trappedByCell[cell.name] += trapped
			fellBackByCell[cell.name] += fellBack
			duplicatedByCell[cell.name] += dup
			pmByCell[cell.name] += pmSum / ft
		}
	}

	checks := []Check{
		check("conservation: live + trapped == n at every point", conserved, "%s", conservedDetail),
		check("zero-fault and healed-partition plans reproduce the fault-free run exactly", benignExact, "%s", benignDetail),
		check("no weight is trapped without crashes", trappedByCell["none"] == 0 && trappedByCell["part n/4 perm"] == 0,
			"trapped: none %d, permanent partition %d", trappedByCell["none"], trappedByCell["part n/4 perm"]),
		check("trapped weight grows with the crash rate",
			trappedByCell["crash=0.10"] > 0 && trappedByCell["crash=0.30"] >= trappedByCell["crash=0.10"],
			"trapped: crash=0.10 %d, crash=0.30 %d", trappedByCell["crash=0.10"], trappedByCell["crash=0.30"]),
		check("a permanent partition forces liveness fallbacks", fellBackByCell["part n/4 perm"] > 0,
			"fallbacks under the permanent partition: %d", fellBackByCell["part n/4 perm"]),
		check("duplication fault actually duplicates", duplicatedByCell["crash=0.10+dup+reorder"] > 0,
			"duplicated deliveries: %d", duplicatedByCell["crash=0.10+dup+reorder"]),
		check("crashes do harm to P^M", pmByCell["crash=0.30"] <= pmByCell["none"]+0.01,
			"summed P^M: crash=0.30 %.4f vs none %.4f", pmByCell["crash=0.30"], pmByCell["none"]),
	}

	return &Outcome{
		Replications: trials,
		Tables:       []*report.Table{tab},
		Checks:       checks,
	}, nil
}
