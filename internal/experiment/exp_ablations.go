package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/recycle"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runA1 ablates the delegation threshold j(n) on the complete graph: small
// thresholds maximize delegation and gain in the SPG regime; thresholds
// near n suppress delegation entirely.
func runA1(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1001, 301)
	reps := cfg.scaleInt(32, 8)
	root := rng.New(cfg.Seed)
	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}

	type thDef struct {
		name string
		j    int
	}
	logN := int(math.Ceil(math.Log(float64(n))))
	sqrtN := int(math.Ceil(math.Sqrt(float64(n))))
	ths := []thDef{
		{"1", 1},
		{"log n", logN},
		{"n^{1/2}", sqrtN},
		{"n/4", n / 4},
		{"n/2", n / 2},
		{"9n/10", 9 * n / 10},
	}

	tab := report.NewTable("Ablation A1: threshold j(n) on K_n (alpha=0.05, SPG regime)",
		"j(n)", "delegators", "gain", "gain 95% CI")
	// One sweep over the threshold grid: the instance, its P^D, and the
	// resolution-score cache are shared across all six points; each point's
	// seed is derived exactly as the old per-point calls derived it, so the
	// table is unchanged.
	points := make([]election.SweepPoint, len(ths))
	for i, th := range ths {
		points[i] = election.SweepPoint{
			Mechanism: mechanism.ApprovalThreshold{Alpha: 0.05, Threshold: mechanism.ConstantThreshold(th.j)},
			Seed:      rng.Derive(cfg.Seed, "A1", fmt.Sprintf("j=%d", th.j)),
		}
	}
	results, err := evaluatePoints(ctx, cfg, in,
		election.Options{Replications: reps, Workers: cfg.Workers}, points)
	if err != nil {
		return nil, err
	}
	gains := make([]float64, 0, len(ths))
	delegs := make([]float64, 0, len(ths))
	for i, th := range ths {
		res := results[i]
		gains = append(gains, res.Gain)
		delegs = append(delegs, res.MeanDelegators)
		tab.AddRow(th.name, report.F2(res.MeanDelegators), report.F(res.Gain),
			report.Interval(res.GainLo, res.GainHi))
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("small thresholds gain", gains[0] > 0 && gains[1] > 0, "gains %v", gains),
			check("delegation count decreases with threshold", isNonIncreasing(delegs, 1), "delegators %v", delegs),
			check("huge threshold converges to direct voting", math.Abs(gains[len(gains)-1]) < 0.03,
				"gain at 9n/10 = %v", gains[len(gains)-1]),
		},
	}, nil
}

// runA2 ablates the approval margin alpha: larger alpha increases the
// per-delegation expectation boost (each delegation gains >= alpha) but
// shrinks approval sets; the partition complexity of the induced recycle
// structure scales like 1/alpha.
func runA2(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1001, 301)
	reps := cfg.scaleInt(32, 8)
	root := rng.New(cfg.Seed)
	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}

	alphas := []float64{0.01, 0.02, 0.05, 0.1, 0.15}
	tab := report.NewTable("Ablation A2: approval margin alpha on K_n (SPG regime)",
		"alpha", "1/alpha", "partition complexity c", "delegators", "gain", "gain 95% CI")

	// The alpha grid as one sweep: prewarming the approval memos up front
	// moves their construction off the replication path (a pure warm-up —
	// mechanisms build them on demand anyway), and the per-point seeds
	// match the old per-point calls exactly.
	points := make([]election.SweepPoint, len(alphas))
	for i, alpha := range alphas {
		points[i] = election.SweepPoint{
			Mechanism: mechanism.ApprovalThreshold{Alpha: alpha},
			Seed:      rng.Derive(cfg.Seed, "A2", fmt.Sprintf("alpha=%g", alpha)),
		}
	}
	results, err := evaluatePoints(ctx, cfg, in,
		election.Options{Replications: reps, Workers: cfg.Workers}, points, alphas...)
	if err != nil {
		return nil, err
	}
	gains := make([]float64, 0, len(alphas))
	cs := make([]float64, 0, len(alphas))
	for i, alpha := range alphas {
		res := results[i]
		rg, err := recycle.FromCompleteDelegation(in, alpha, 1)
		if err != nil {
			return nil, err
		}
		c := rg.PartitionComplexity()
		gains = append(gains, res.Gain)
		cs = append(cs, float64(c))
		tab.AddRow(report.G(alpha), report.F2(1/alpha), report.Itoa(c),
			report.F2(res.MeanDelegators), report.F(res.Gain), report.Interval(res.GainLo, res.GainHi))
	}

	// c should be bounded by 1/alpha (paper: c <= 1/alpha) and decrease as
	// alpha grows.
	cBounded := true
	for i, alpha := range alphas {
		if cs[i] > 1/alpha+1 {
			cBounded = false
		}
	}
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("partition complexity bounded by 1/alpha", cBounded, "c %v", cs),
			check("complexity decreases with alpha", isNonIncreasing(cs, 0.5), "c %v", cs),
			check("all alphas gain in the SPG regime", minFloat(gains) > 0, "gains %v", gains),
		},
	}, nil
}

// runA3 compares the exact DP engine with the Monte-Carlo engine on the
// same resolved delegation graphs: probabilities must agree within
// sampling error, and the exact engine's determinism is verified.
func runA3(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(801, 201)
	votes := cfg.scaleInt(60000, 20000)
	root := rng.New(cfg.Seed)
	in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.70, root.DeriveString("inst"))
	if err != nil {
		return nil, err
	}

	// Note: no wall-clock columns here — experiment tables must be
	// byte-identical across runs and worker counts; the DP cost column is the
	// deterministic proxy for engine effort.
	tab := report.NewTable("Ablation A3: exact DP vs Monte-Carlo scoring of identical delegation graphs",
		"realization", "sinks", "DP cost", "exact P^M", "MC P^M", "|diff|")

	maxDiff := 0.0
	deterministic := true
	for r := 0; r < 5; r++ {
		s := root.Derive(uint64(r) + 1)
		d, err := (mechanism.ApprovalThreshold{Alpha: 0.03}).Apply(in, s)
		if err != nil {
			return nil, err
		}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		exact, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		again, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		if again != exact {
			deterministic = false
		}
		mc, err := election.ResolutionProbabilityMC(ctx, in, res, votes, s.DeriveString("mc"))
		if err != nil {
			return nil, err
		}
		diff := math.Abs(exact - mc)
		if diff > maxDiff {
			maxDiff = diff
		}
		cost := int64(len(res.Sinks)) * int64(res.TotalWeight)
		tab.AddRow(report.Itoa(r), report.Itoa(len(res.Sinks)), report.Itoa(int(cost)),
			report.F(exact), report.F(mc), report.F(diff))
	}

	// MC standard error at p ~ 0.5 is 0.5/sqrt(votes); allow 5 sigma.
	tol := 5 * 0.5 / math.Sqrt(float64(votes))
	return &Outcome{
		Replications: 5,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("engines agree within sampling error", maxDiff <= tol, "max diff %v, tol %v", maxDiff, tol),
			check("exact engine is deterministic", deterministic, ""),
		},
	}, nil
}
