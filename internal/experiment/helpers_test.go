package experiment

import (
	"math"
	"testing"
)

func TestDedupeSizes(t *testing.T) {
	tests := []struct {
		in, want []int
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}},
		{[]int{1, 2, 2}, []int{1, 2}},
		{[]int{5, 5, 5}, []int{5}},
		{[]int{1}, []int{1}},
		{nil, nil},
	}
	for _, tt := range tests {
		got := dedupeSizes(append([]int(nil), tt.in...))
		if len(got) != len(tt.want) {
			t.Fatalf("dedupe(%v) = %v, want %v", tt.in, got, tt.want)
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Fatalf("dedupe(%v) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestIsNonIncreasing(t *testing.T) {
	if !isNonIncreasing([]float64{3, 2, 1}, 0) {
		t.Error("strictly decreasing should pass")
	}
	if !isNonIncreasing([]float64{1, 1.05, 0.5}, 0.1) {
		t.Error("small bump within tolerance should pass")
	}
	if isNonIncreasing([]float64{1, 2}, 0.5) {
		t.Error("big rise should fail")
	}
	if !isNonIncreasing(nil, 0) {
		t.Error("empty is trivially non-increasing")
	}
}

func TestTrendDown(t *testing.T) {
	if !trendDown([]float64{0.5, 0.3, 0.1}, 0.2) {
		t.Error("clear downtrend should pass")
	}
	if trendDown([]float64{0.5}, 0.1) {
		t.Error("single point has no trend")
	}
	if trendDown([]float64{0.1, 0.5}, 0.2) {
		t.Error("uptrend should fail")
	}
	if !trendDown([]float64{0.01, 0.02}, 0.05) {
		t.Error("both tiny should count as down (already at floor)")
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if got := minFloat([]float64{3, 1, 2}); got != 1 {
		t.Errorf("minFloat = %v", got)
	}
	if !math.IsInf(minFloat(nil), 1) {
		t.Error("minFloat(nil) should be +Inf")
	}
	if got := maxAbs([]float64{-3, 1, 2}); got != 3 {
		t.Errorf("maxAbs = %v", got)
	}
	if got := maxFloat([]float64{1, 5, 2}); got != 5 {
		t.Errorf("maxFloat = %v", got)
	}
	if got := countPositive([]float64{-1, 0, 2, 3}); got != 2 {
		t.Errorf("countPositive = %d", got)
	}
}

func TestPairwiseAtMost(t *testing.T) {
	if !pairwiseAtMost([]float64{1, 2}, []float64{1.5, 2.5}, 0) {
		t.Error("dominated should pass")
	}
	if pairwiseAtMost([]float64{3}, []float64{1}, 0.5) {
		t.Error("violation should fail")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	out := sortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Errorf("sortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func TestCheckFormatting(t *testing.T) {
	c := check("name", true, "value %d", 42)
	if !c.Passed || c.Name != "name" || c.Detail != "value 42" {
		t.Errorf("check = %+v", c)
	}
}
