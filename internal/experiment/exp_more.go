package experiment

import (
	"context"
	"fmt"
	"math"

	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/popmodel"
	"liquid/internal/prob"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runL4 validates Lemma 4 (from Kahng et al., restated and used by the
// paper): the direct-vote total with bounded competencies converges to a
// normal distribution. We measure the Kolmogorov-Smirnov distance between
// the exact Poisson-binomial law and its matching normal as n grows.
func runL4(ctx context.Context, cfg Config) (*Outcome, error) {
	root := rng.New(cfg.Seed)
	sizes := dedupeSizes([]int{25, 100, 400, 1600, cfg.scaleInt(4000, 1600)})

	tab := report.NewTable("Lemma 4: CLT for direct voting, p in (0.2, 0.8)",
		"n", "mu", "sigma", "KS distance", "KS * sqrt(n)")

	dists := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		s := root.Derive(uint64(n))
		p := make([]float64, n)
		for i := range p {
			p[i] = 0.2 + 0.6*s.Float64()
		}
		pb, err := prob.NewPoissonBinomial(p)
		if err != nil {
			return nil, err
		}
		nrm := pb.NormalApproximation()
		d := prob.KolmogorovDistanceToNormal(pb.PMF(), nrm)
		dists = append(dists, d)
		tab.AddRow(report.Itoa(n), report.F2(nrm.Mu), report.F2(nrm.Sigma),
			report.G(d), report.F(d*math.Sqrt(float64(n))))
	}

	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("KS distance shrinks with n", isNonIncreasing(dists, 1e-6), "distances %v", dists),
			check("KS distance small at the largest n", dists[len(dists)-1] < 0.01,
				"distance %v", dists[len(dists)-1]),
			check("Berry-Esseen 1/sqrt(n) rate visible",
				dists[len(dists)-1]*math.Sqrt(float64(sizes[len(sizes)-1])) < 1,
				"KS*sqrt(n) %v", dists[len(dists)-1]*math.Sqrt(float64(sizes[len(sizes)-1]))),
		},
	}, nil
}

// runX4 validates the probabilistic-competency extension (Section 6, the
// Halpern et al. bridge): competencies are drawn from a distribution per
// instance, and the desiderata become probabilistic — the fraction of
// instance draws with positive gain should be high, the fraction with
// nontrivial harm near zero, for distribution families centred below 1/2.
func runX4(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(501, 201)
	instances := cfg.scaleInt(24, 8)
	reps := cfg.scaleInt(16, 6)

	type popDef struct {
		name string
		pop  popmodel.Population
	}
	pops := []popDef{
		{"uniform[0.30,0.49]", popmodel.Population{
			Competency: prob.UniformSampler{Lo: 0.30, Hi: 0.49}}},
		{"beta(2,3)->[0.2,0.6]", popmodel.Population{
			Competency: prob.ClampedSampler{
				Base: prob.BetaSampler{Alpha: 2, Beta: 3},
				Lo:   0.2, Hi: 0.6}}},
		{"truncnorm(0.45,0.05)", popmodel.Population{
			Competency: prob.TruncatedNormalSampler{Mu: 0.45, Sigma: 0.05, Lo: 0.2, Hi: 0.6}}},
		{"uniform[0.52,0.80] (DNH)", popmodel.Population{
			Competency: prob.UniformSampler{Lo: 0.52, Hi: 0.80}}},
	}

	tab := report.NewTable(
		fmt.Sprintf("Extension X4: probabilistic competencies on K_n (n=%d, %d instance draws)", n, instances),
		"distribution", "mean gain", "frac positive", "frac harmful", "worst loss")

	var (
		spgFracs  []float64
		harmFracs []float64
	)
	mech := mechanism.ApprovalThreshold{Alpha: 0.05}
	for i, pd := range pops {
		v, err := popmodel.Evaluate(ctx, pd.pop, mech, popmodel.EvaluateOptions{
			N: n, Instances: instances, Replications: reps, HarmEps: 0.02,
			Seed: rng.Derive(cfg.Seed, "X4", pd.name),
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(pd.name, report.F(v.MeanGain), report.F2(v.FracPositive),
			report.F2(v.FracHarmful), report.F(v.WorstLoss))
		if i < 3 {
			spgFracs = append(spgFracs, v.FracPositive)
		}
		harmFracs = append(harmFracs, v.FracHarmful)
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("below-1/2 distributions gain on (almost) every draw",
				minFloat(spgFracs) >= 0.9, "positive fractions %v", spgFracs),
			check("no distribution shows nontrivial harm", maxAbs(harmFracs) == 0,
				"harmful fractions %v", harmFracs),
		},
	}, nil
}

// runX5 contrasts sparse, poorly connected topologies with the paper's
// good classes: on cycles, paths, and grids the approval sets are tiny, so
// delegation barely moves the outcome — connectivity is what buys gain.
// Small-world rewiring (Watts-Strogatz) restores some of it.
func runX5(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(1000, 300)
	reps := cfg.scaleInt(24, 8)
	root := rng.New(cfg.Seed)

	type topDef struct {
		name  string
		build func(s *rng.Stream) (graph.Topology, error)
	}
	tops := []topDef{
		{"cycle", func(_ *rng.Stream) (graph.Topology, error) { return graph.Cycle(n) }},
		{"path", func(_ *rng.Stream) (graph.Topology, error) { return graph.Path(n) }},
		{"grid", func(_ *rng.Stream) (graph.Topology, error) {
			side := int(math.Sqrt(float64(n)))
			return graph.Grid(side, side)
		}},
		{"small-world k=8 beta=0.2", func(s *rng.Stream) (graph.Topology, error) {
			return graph.WattsStrogatz(n, 8, 0.2, s)
		}},
		{"random 8-regular", func(s *rng.Stream) (graph.Topology, error) {
			return graph.RandomRegular(n, 8, s)
		}},
		{"complete", func(_ *rng.Stream) (graph.Topology, error) { return graph.NewComplete(n), nil }},
	}

	tab := report.NewTable(
		fmt.Sprintf("Extension X5: connectivity vs gain (threshold mechanism, alpha=0.05, SPG regime, n~%d)", n),
		"topology", "mean degree", "delegators", "longest chain", "gain", "gain 95% CI")

	gains := make(map[string]float64, len(tops))
	for i, td := range tops {
		top, err := td.build(root.Derive(uint64(i) + 1))
		if err != nil {
			return nil, err
		}
		in, err := uniformInstance(top, 0.30, 0.49, root.Derive(uint64(i)*17+3))
		if err != nil {
			return nil, err
		}
		res, err := election.EvaluateMechanism(ctx, in, mechanism.ApprovalThreshold{Alpha: 0.05}, election.Options{
			Replications: reps, Seed: rng.Derive(cfg.Seed, "X5", td.name), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		gains[td.name] = res.Gain
		tab.AddRow(td.name, report.F2(graph.Degrees(top).Mean), report.F2(res.MeanDelegators),
			report.F2(res.MeanLongestChain), report.F(res.Gain), report.Interval(res.GainLo, res.GainHi))
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("complete graph dominates sparse rings/paths",
				gains["complete"] > gains["cycle"] && gains["complete"] > gains["path"],
				"complete %v cycle %v path %v", gains["complete"], gains["cycle"], gains["path"]),
			check("8-regular beats degree-2 structures",
				gains["random 8-regular"] >= gains["cycle"] && gains["random 8-regular"] >= gains["path"],
				"8-regular %v cycle %v path %v", gains["random 8-regular"], gains["cycle"], gains["path"]),
			check("no topology harms in the SPG regime",
				minFloat([]float64{gains["cycle"], gains["path"], gains["grid"],
					gains["small-world k=8 beta=0.2"], gains["random 8-regular"], gains["complete"]}) >= -0.01,
				"gains %v", gains),
		},
	}, nil
}
