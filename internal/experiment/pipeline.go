package experiment

// The sweep-shaped experiments (A1's threshold grid, A2's alpha grid, R1's
// rate x policy grid) evaluate many points against one instance. They go
// through the staged evaluation pipeline — build a Plan, batch the points —
// unless Config.LegacyEval asks for the historical point-by-point calls.
// Both paths are bit-identical by the pipeline's equivalence contract
// (election/plan.go); routing them through one helper keeps the experiments
// oblivious to which path ran and gives cmd/reproduce a switch to certify
// the contract on full-scale output.

import (
	"context"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/fault"
)

// evaluatePoints evaluates a sweep of points on one instance, batched
// through a Plan or point-by-point under cfg.LegacyEval. prewarmAlphas
// lists approval margins to warm on the plan before the sweep runs (a pure
// warm-up, skipped on the legacy path to match its historical behaviour —
// mechanisms build the memos on demand either way).
func evaluatePoints(ctx context.Context, cfg Config, in *core.Instance, base election.Options, points []election.SweepPoint, prewarmAlphas ...float64) ([]*election.Result, error) {
	if cfg.LegacyEval {
		results := make([]*election.Result, len(points))
		for i, pt := range points {
			opts := base
			opts.Seed = pt.Seed
			if pt.Replications > 0 {
				opts.Replications = pt.Replications
			}
			if pt.DisableResolutionCache {
				opts.DisableResolutionCache = true
			}
			res, err := election.EvaluateMechanism(ctx, in, pt.Mechanism, opts)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	plan, err := election.NewPlan(in, base)
	if err != nil {
		return nil, err
	}
	plan.PrewarmApproval(prewarmAlphas...)
	return election.EvaluateSweep(ctx, plan, points)
}

// evaluateFaultPoints is the fault-engine analogue: one instance, many
// fault configurations, scored with a shared exact-score cache unless
// cfg.LegacyEval asks for isolated per-point calls.
func evaluateFaultPoints(ctx context.Context, cfg Config, in *core.Instance, points []fault.SweepPoint) ([]*fault.ElectionResult, error) {
	if cfg.LegacyEval {
		results := make([]*fault.ElectionResult, len(points))
		for i, pt := range points {
			res, err := fault.EvaluateUnderFaults(ctx, in, pt.Mechanism, pt.Opts)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	return fault.EvaluateSweep(ctx, in, points)
}
