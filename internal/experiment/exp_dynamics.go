package experiment

import (
	"context"
	"fmt"

	"liquid/internal/dynamics"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runX8 explores the rational-delegation perspective of the related work
// the paper cites: voters best-respond (common-interest utility = group
// accuracy) instead of following a fixed mechanism. The game is an exact
// potential game, so round-robin best response converges to a pure Nash
// equilibrium; started from all-direct voting, the equilibrium can only
// improve on direct voting. We compare equilibrium quality with the
// paper's randomized threshold mechanism on the same instances.
func runX8(ctx context.Context, cfg Config) (*Outcome, error) {
	n := cfg.scaleInt(60, 24)
	trials := cfg.scaleInt(8, 4)
	const alpha = 0.05
	root := rng.New(cfg.Seed)

	tab := report.NewTable(
		fmt.Sprintf("X8: best-response delegation equilibria (K_n, n=%d, alpha=%g)", n, alpha),
		"trial", "converged", "sweeps", "moves", "P^D", "equilibrium P", "Alg.1 P^M", "equilibrium gain")

	var (
		allConverged = true
		neverHarms   = true
		beatsRandom  = 0
	)
	eqGains := make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		in, err := uniformInstance(graph.NewComplete(n), 0.30, 0.49, root.Derive(uint64(trial)+1))
		if err != nil {
			return nil, err
		}
		tr, err := dynamics.BestResponse(in, dynamics.Options{Alpha: alpha})
		if err != nil {
			return nil, err
		}
		rnd, err := election.EvaluateMechanism(ctx, in, mechanism.ApprovalThreshold{Alpha: alpha}, election.Options{
			Replications: 16, Seed: rng.Derive(cfg.Seed, "X8", fmt.Sprintf("trial=%d", trial)), Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		if !tr.Converged {
			allConverged = false
		}
		if tr.FinalProb < tr.InitialProb-1e-12 {
			neverHarms = false
		}
		if tr.FinalProb >= rnd.PM-1e-9 {
			beatsRandom++
		}
		eqGains = append(eqGains, tr.FinalProb-tr.InitialProb)
		tab.AddRow(report.Itoa(trial), fmt.Sprintf("%v", tr.Converged), report.Itoa(tr.Sweeps),
			report.Itoa(tr.Moves), report.F(tr.InitialProb), report.F(tr.FinalProb),
			report.F(rnd.PM), report.F(tr.FinalProb-tr.InitialProb))
	}

	return &Outcome{
		Replications: trials,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("best response always converges (potential game)", allConverged, ""),
			check("equilibria never fall below direct voting", neverHarms, ""),
			check("equilibria gain strictly on most instances", countPositive(eqGains) >= trials*3/4,
				"gains %v", eqGains),
			check("equilibria at least match the randomized mechanism on most instances",
				beatsRandom >= trials*3/4, "%d of %d", beatsRandom, trials),
		},
	}, nil
}

// countPositive returns the number of strictly positive entries.
func countPositive(xs []float64) int {
	c := 0
	for _, x := range xs {
		if x > 0 {
			c++
		}
	}
	return c
}
