package experiment

import (
	"context"
	"math"

	"liquid/internal/core"
	"liquid/internal/election"
	"liquid/internal/graph"
	"liquid/internal/mechanism"
	"liquid/internal/prob"
	"liquid/internal/recycle"
	"liquid/internal/report"
	"liquid/internal/rng"
)

// runL1 measures the Lemma 1 event empirically: for an independent
// Bernoulli sequence, how often does some prefix sum X_i with i >= j fall
// below (1 - eps/j^{1/3}) * mu(X_i)? The failure rate must decay in j.
func runL1(ctx context.Context, cfg Config) (*Outcome, error) {
	const eps = 1.0
	n := cfg.scaleInt(20000, 2000)
	reps := cfg.scaleInt(400, 60)
	root := rng.New(cfg.Seed)

	p := make([]float64, n)
	for i := range p {
		p[i] = 0.3 + 0.4*root.DeriveString("p").Float64()
	}
	g, err := recycle.NewIndependent(p)
	if err != nil {
		return nil, err
	}
	muPrefix := g.MeanPrefixSums()

	js := []int{10, 50, 250, 1250, n / 4}
	tab := report.NewTable("Lemma 1: P[exists i >= j with X_i < (1 - eps/j^{1/3}) mu(X_i)], eps=1",
		"j", "threshold factor at j", "failures", "reps", "failure rate", "Wilson 95% hi")

	rates := make([]float64, 0, len(js))
	// One pass per replication: realize once, test all j values on the same
	// path to keep the comparison paired.
	fails := make([]int, len(js))
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := root.Derive(uint64(r) + 10)
		prefix := g.RealizePrefixSums(s)
		// firstBad: smallest index i where X_i dips below its j-dependent
		// envelope is computed per j (the envelope changes with j).
		for ji, j := range js {
			factor := 1 - eps/math.Cbrt(float64(j))
			bad := false
			for i := j; i < n; i++ {
				if float64(prefix[i]) < factor*muPrefix[i] {
					bad = true
					break
				}
			}
			if bad {
				fails[ji]++
			}
		}
	}
	for ji, j := range js {
		rate := float64(fails[ji]) / float64(reps)
		_, hi := prob.WilsonInterval(fails[ji], reps, 0.95)
		factor := 1 - eps/math.Cbrt(float64(j))
		tab.AddRow(report.Itoa(j), report.F(factor), report.Itoa(fails[ji]),
			report.Itoa(reps), report.F(rate), report.F(hi))
		rates = append(rates, rate)
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("failure rate non-increasing in j", isNonIncreasing(rates, 0.02), "rates %v", rates),
			check("large-j failure rate near zero", rates[len(rates)-1] < 0.05, "rate %v", rates[len(rates)-1]),
		},
	}, nil
}

// runL2 measures Lemma 2: recycle-sampled sums with partition complexity c
// stay above mu(X_n) - c*eps*n/j^{1/3}. We construct layered recycle graphs
// with exact complexity c and track both the violation rate of the bound
// and the worst observed normalized deviation, which should grow with c
// (the dependency makes the lower tail fatter) while staying inside the
// c-scaled envelope.
func runL2(ctx context.Context, cfg Config) (*Outcome, error) {
	const eps = 0.5
	n := cfg.scaleInt(10000, 1500)
	reps := cfg.scaleInt(300, 50)
	j := n / 10
	root := rng.New(cfg.Seed)

	tab := report.NewTable("Lemma 2: recycle-sampled concentration, j = n/10, eps = 0.5",
		"c", "mu(X_n)", "bound", "violations", "reps", "worst deviation", "stddev of X_n")

	cs := []int{1, 2, 4, 8}
	violationRates := make([]float64, 0, len(cs))
	stddevs := make([]float64, 0, len(cs))
	for _, c := range cs {
		g, err := layeredRecycleGraph(n, j, c, root.Derive(uint64(c)))
		if err != nil {
			return nil, err
		}
		if got := g.PartitionComplexity(); got != c {
			return nil, errf("layered graph complexity = %d, want %d", got, c)
		}
		mu := g.MeanSum()
		bound := g.Lemma2Bound(eps)

		var sum prob.Summary
		violations := 0
		worst := 0.0
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := root.Derive(uint64(c)*1000 + uint64(r) + 1)
			x := float64(g.RealizeSum(s))
			sum.Add(x)
			if x < bound {
				violations++
			}
			if dev := mu - x; dev > worst {
				worst = dev
			}
		}
		rate := float64(violations) / float64(reps)
		violationRates = append(violationRates, rate)
		stddevs = append(stddevs, sum.StdDev())
		tab.AddRow(report.Itoa(c), report.F2(mu), report.F2(bound),
			report.Itoa(violations), report.Itoa(reps), report.F2(worst), report.F2(sum.StdDev()))
	}

	maxRate := 0.0
	for _, r := range violationRates {
		if r > maxRate {
			maxRate = r
		}
	}
	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("Lemma 2 bound holds w.h.p. for every c", maxRate < 0.05, "max violation rate %v", maxRate),
			check("dependency widens the spread (stddev grows with c)",
				stddevs[len(stddevs)-1] > stddevs[0], "stddevs %v", stddevs),
		},
	}, nil
}

// layeredRecycleGraph builds a (j, c, n)-recycle graph with exact partition
// complexity c: after the fresh prefix of size j, the remaining vertices are
// split into c layers; each copying vertex copies uniformly from everything
// before its layer, and layer boundaries force chains of length exactly c.
func layeredRecycleGraph(n, j, c int, s *rng.Stream) (*recycle.Graph, error) {
	z := make([]float64, n)
	p := make([]float64, n)
	upTo := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = 0.3 + 0.4*s.Float64()
	}
	for i := 0; i < j; i++ {
		z[i] = 1
	}
	layer := (n - j) / c
	if layer < 1 {
		layer = 1
	}
	for i := j; i < n; i++ {
		t := (i - j) / layer // layer index
		if t >= c {
			t = c - 1
		}
		start := j + t*layer
		z[i] = 0
		upTo[i] = start
		if upTo[i] < j {
			upTo[i] = j
		}
	}
	return recycle.New(j, z, p, upTo)
}

// runL3 measures Lemma 3: with bounded competencies, delegating at most
// n^{1/2 - eps} votes flips the outcome with vanishing probability. We
// build the most harmful local delegation we can (k mid-tier voters
// delegate onto the single best voter, concentrating exactly k+1 weight)
// and measure the realized loss and the exact flip-window probability.
func runL3(ctx context.Context, cfg Config) (*Outcome, error) {
	const (
		beta = 0.2
		eps  = 0.1
	)
	sizes := dedupeSizes([]int{501, 1001, 2001, cfg.scaleInt(4001, 2001)})
	root := rng.New(cfg.Seed)

	tab := report.NewTable("Lemma 3: adversarial delegation of k = n^{1/2-eps} votes, p in (0.2, 0.8)",
		"n", "k delegated", "P^D", "P^M", "loss", "normal flip bound")

	losses := make([]float64, 0, len(sizes))
	bounds := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		in, err := uniformInstance(graph.NewComplete(n), beta+0.01, 1-beta-0.01, root.Derive(uint64(n)))
		if err != nil {
			return nil, err
		}
		k := int(math.Pow(float64(n), 0.5-eps))
		d := core.NewDelegationGraph(n)
		// The k voters just below the top delegate to the top voter: this
		// is local-mechanism-feasible (target is approved) and concentrates
		// weight k+1 on one sink, the worst case the lemma's proof charges.
		order := in.TopByCompetency(k + 1)
		top := order[0]
		for _, v := range order[1:] {
			if err := d.SetDelegate(v, top); err != nil {
				return nil, err
			}
		}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		pm, err := election.ResolutionProbabilityExact(in, res)
		if err != nil {
			return nil, err
		}
		pd, err := election.DirectProbabilityExact(in)
		if err != nil {
			return nil, err
		}
		loss := pd - pm
		losses = append(losses, loss)
		nrm := election.DirectNormalApproximation(in)
		bound := prob.FlipProbabilityBound(n, nrm.Mu, nrm.Sigma, 2*float64(k))
		bounds = append(bounds, bound)
		tab.AddRow(report.Itoa(n), report.Itoa(k), report.F(pd), report.F(pm),
			report.F(loss), report.F(bound))
	}

	return &Outcome{
		Tables: []*report.Table{tab},
		Checks: []Check{
			check("loss bounded by the flip-window probability",
				pairwiseAtMost(losses, bounds, 0.02), "losses %v bounds %v", losses, bounds),
			check("flip bound decays with n", trendDown(bounds, 0.02) || isNonIncreasing(bounds, 0.02),
				"bounds %v", bounds),
			check("loss stays small everywhere", maxAbs(losses) < 0.1, "losses %v", losses),
		},
	}, nil
}

// runL5 measures Lemma 5/6: with every sink weight at most w, deviations of
// the realized correct weight from its mean stay inside sqrt(n^{1+eps} * w).
func runL5(ctx context.Context, cfg Config) (*Outcome, error) {
	const eps = 0.1
	n := cfg.scaleInt(4001, 801)
	reps := cfg.scaleInt(400, 80)
	root := rng.New(cfg.Seed)

	in, err := uniformInstance(graph.NewComplete(n), 0.25, 0.75, root.DeriveString("instance"))
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Lemma 5: deviation of correct weight vs max sink weight w (eps = 0.1)",
		"w", "sinks", "envelope sqrt(n^{1+eps} w)", "violations", "reps", "max |X - mu|", "mean |X - mu|")

	ws := []int{1, 4, 16, 64}
	meanDevs := make([]float64, 0, len(ws))
	maxViolationRate := 0.0
	for _, w := range ws {
		mech := mechanism.WeightCapped{
			Inner:     mechanism.ApprovalThreshold{Alpha: 0.02},
			MaxWeight: w,
		}
		d, err := mech.Apply(in, root.Derive(uint64(w)))
		if err != nil {
			return nil, err
		}
		res, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		// Mean of the correct-weight variable.
		var mu float64
		for _, sk := range res.Sinks {
			mu += float64(res.Weight[sk]) * in.Competency(sk)
		}
		envelope := math.Sqrt(math.Pow(float64(n), 1+eps) * float64(w))

		violations := 0
		maxDev, sumDev := 0.0, 0.0
		voteStream := root.Derive(uint64(w) * 7919)
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var x float64
			for _, sk := range res.Sinks {
				if voteStream.Bernoulli(in.Competency(sk)) {
					x += float64(res.Weight[sk])
				}
			}
			dev := math.Abs(x - mu)
			sumDev += dev
			if dev > maxDev {
				maxDev = dev
			}
			if dev > envelope {
				violations++
			}
		}
		rate := float64(violations) / float64(reps)
		if rate > maxViolationRate {
			maxViolationRate = rate
		}
		meanDevs = append(meanDevs, sumDev/float64(reps))
		tab.AddRow(report.Itoa(w), report.Itoa(len(res.Sinks)), report.F2(envelope),
			report.Itoa(violations), report.Itoa(reps), report.F2(maxDev), report.F2(sumDev/float64(reps)))
	}

	return &Outcome{
		Replications: reps,
		Tables:       []*report.Table{tab},
		Checks: []Check{
			check("envelope holds w.h.p. (violation rate < 5%)", maxViolationRate < 0.05,
				"max rate %v", maxViolationRate),
			check("deviation grows with w", meanDevs[len(meanDevs)-1] > meanDevs[0], "mean devs %v", meanDevs),
		},
	}, nil
}

// pairwiseAtMost reports xs[i] <= ys[i] + tol for all i.
func pairwiseAtMost(xs, ys []float64, tol float64) bool {
	for i := range xs {
		if xs[i] > ys[i]+tol {
			return false
		}
	}
	return true
}

// maxAbs returns max |x|.
func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
